"""Tests for the MiniC semantic linter (repro.lang.lint).

One test per rule code, the flow-sensitivity corners (short-circuit
evaluation, merges, loops), the CLI exit-code contract, and the
clean-baseline expectation over the whole workload suite.
"""

import json

import pytest

from repro.cli import main
from repro.lang.lint import RULES, SEVERITY, const_value, lint_source
from repro.lang.semantics import parse_and_analyze
from repro.workloads.registry import get_workload, workload_names


def rules_of(source: str) -> list[str]:
    return [f.rule for f in lint_source(source)]


def wrap(body: str) -> str:
    return f"int main(void) {{ {body} }}"


class TestRuleCodes:
    def test_l100_frontend_error(self):
        findings = lint_source("int main( {")
        assert [f.rule for f in findings] == ["L100"]
        assert findings[0].severity == "error"

    def test_l101_use_before_initialization(self):
        assert "L101" in rules_of(wrap("int x; return x;"))

    def test_l101_branch_defined_only_on_one_path(self):
        src = """
        int main(void) {
            int x;
            int c = 3;
            if (c > 1) { x = 1; }
            return x;
        }
        """
        assert "L101" in rules_of(src)

    def test_l101_not_flagged_when_both_paths_define(self):
        src = """
        int main(void) {
            int x;
            int c = 3;
            if (c > 1) { x = 1; } else { x = 2; }
            return x;
        }
        """
        assert "L101" not in rules_of(src)

    def test_l101_short_circuit_rhs_may_not_execute(self):
        src = """
        int main(void) {
            int x;
            int c = 3;
            if (c > 1 && (x = 5) > 0) { return x; }
            return x;
        }
        """
        assert "L101" in rules_of(src)

    def test_l101_parameters_count_as_initialized(self):
        src = "int f(int a) { return a; } int main(void) { return f(1); }"
        assert "L101" not in rules_of(src)

    def test_l102_constant_index_out_of_bounds(self):
        assert "L102" in rules_of(wrap("int a[4]; a[0] = 1; return a[4];"))
        assert "L102" in rules_of(wrap("int a[4]; a[-1] = 1; return 0;"))

    def test_l102_in_bounds_is_clean(self):
        assert "L102" not in rules_of(
            wrap("int a[4]; a[3] = 1; return a[0];"))

    def test_l201_dead_store(self):
        src = """
        int main(void) {
            int x;
            x = 1;
            x = 2;
            return x;
        }
        """
        assert rules_of(src).count("L201") == 1

    def test_l201_declaration_initializer_exempt(self):
        # Defensive `int i = 0;` then reassignment is accepted style.
        src = """
        int main(void) {
            int i = 0;
            i = 5;
            return i;
        }
        """
        assert "L201" not in rules_of(src)

    def test_l201_loop_carried_value_is_live(self):
        src = """
        int main(void) {
            int i, t = 0;
            for (i = 0; i < 4; i++) { t = t + i; }
            return t;
        }
        """
        assert "L201" not in rules_of(src)

    def test_l202_unused_variable_array_parameter(self):
        src = """
        int f(int used, int spare) { return used; }
        int main(void) {
            int dead;
            int tab[8];
            return f(1, 2);
        }
        """
        findings = lint_source(src)
        messages = [f.message for f in findings if f.rule == "L202"]
        assert any("parameter 'spare'" in m for m in messages)
        assert any("variable 'dead'" in m for m in messages)
        assert any("array 'tab'" in m for m in messages)

    def test_l202_globals_are_exempt(self):
        # Globals are externally visible (traces, post-run dumps).
        src = "int visible_state; int main(void) { return 0; }"
        assert "L202" not in rules_of(src)

    def test_l203_constant_branch(self):
        assert "L203" in rules_of(wrap("if (2 > 1) { return 1; } return 0;"))
        assert "L203" not in rules_of(
            wrap("int c = 1; if (c) { return 1; } return 0;"))

    def test_l204_zero_trip_loop(self):
        assert "L204" in rules_of(
            wrap("int i; for (i = 0; 0; i++) { } return 0;"))
        assert "L204" in rules_of(wrap("while (1 > 2) { } return 0;"))

    def test_l204_do_while_runs_once_not_flagged(self):
        assert "L204" not in rules_of(
            wrap("int n = 0; do { n++; } while (0); return n;"))

    def test_l205_non_terminating_loop(self):
        assert "L205" in rules_of(wrap("while (1) { } return 0;"))
        assert "L205" in rules_of(wrap("for (;;) { } return 0;"))

    def test_l205_break_or_return_escapes(self):
        assert "L205" not in rules_of(wrap("while (1) { break; } return 0;"))
        assert "L205" not in rules_of(wrap("for (;;) { return 3; }"))

    def test_l205_break_in_nested_loop_does_not_count(self):
        src = wrap("""
            int i;
            while (1) {
                for (i = 0; i < 3; i++) { break; }
            }
            return 0;
        """)
        assert "L205" in rules_of(src)


class TestFindingShape:
    def test_severities_match_table(self):
        assert set(SEVERITY) == set(RULES)
        for finding in lint_source(wrap("int x; return x;")):
            assert finding.severity == SEVERITY[finding.rule]
            assert finding.line > 0
            assert finding.function == "main"

    def test_findings_sorted_by_position(self):
        findings = lint_source("""
        int main(void) {
            int a[2];
            int x;
            a[5] = 1;
            return x;
        }
        """)
        assert [f.line for f in findings] == sorted(f.line for f in findings)

    def test_format_is_stable(self):
        finding = lint_source(wrap("int x; return x;"))[0]
        text = finding.format("demo.c")
        assert text.startswith("demo.c:")
        assert "error L101:" in text


class TestConstFolding:
    @pytest.mark.parametrize("expr,value", [
        ("1 + 2 * 3", 7),
        ("-7 / 2", -3),          # C semantics truncate toward zero
        ("-7 % 2", -1),
        ("1 << 4", 16),
        ("sizeof(int)", 4),
        ("0 && (1 / 0)", 0),     # short-circuit guards the bad operand
        ("1 || (1 / 0)", 1),
        ("(2 > 1) ? 5 : 9", 5),
    ])
    def test_folds(self, expr, value):
        program = parse_and_analyze(
            f"int main(void) {{ return {expr}; }}", "<test>")
        ret = program.functions[-1].body.stmts[-1]
        assert const_value(ret.expr) == value

    def test_division_by_zero_is_not_constant(self):
        program = parse_and_analyze(
            "int main(void) { return 1 / 0; }", "<test>")
        ret = program.functions[-1].body.stmts[-1]
        assert const_value(ret.expr) is None


class TestSuiteBaseline:
    def test_every_workload_scenario_lints_clean(self):
        for name in workload_names():
            workload = get_workload(name)
            for scenario in workload.scenario_names():
                findings = lint_source(workload.source_for(scenario),
                                       f"{name}/{scenario}")
                assert findings == [], (
                    f"{name}/{scenario}: "
                    f"{[f.format() for f in findings]}")


class TestCli:
    def test_suite_lints_clean_and_exits_zero(self, capsys):
        assert main(["lint"]) == 0
        out = capsys.readouterr().out
        assert "0 error(s)" in out

    def test_seeded_bug_file_exits_nonzero(self, tmp_path, capsys):
        bad = tmp_path / "bad.c"
        bad.write_text("""
        int main(void) {
            int a[4];
            int x;
            a[9] = x;
            return 0;
        }
        """)
        assert main(["lint", "--file", str(bad)]) == 1
        out = capsys.readouterr().out
        assert "L101" in out and "L102" in out

    def test_json_payload(self, tmp_path, capsys):
        bad = tmp_path / "bad.c"
        bad.write_text("int main(void) { int x; return x; }")
        assert main(["lint", "--file", str(bad), "--json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["command"] == "lint"
        assert payload["ok"] is False
        assert payload["errors"] == 1
        finding = payload["sources"][0]["findings"][0]
        assert finding["rule"] == "L101"
        assert finding["severity"] == "error"

    def test_json_suite_payload_is_ok(self, capsys):
        assert main(["lint", "adpcm", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True
        assert all(src["workload"] == "adpcm"
                   for src in payload["sources"])

    def test_unknown_workload_is_an_error(self):
        with pytest.raises(SystemExit, match="lint"):
            main(["lint", "no-such-workload"])
