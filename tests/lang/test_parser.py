"""Unit tests for the MiniC parser."""

import pytest

from repro.lang import ast_nodes as ast
from repro.lang.ctypes_ import ArrayType, PointerType, StructType
from repro.lang.errors import ParseError
from repro.lang.parser import parse


def parse_expr(text):
    """Parse `text` as the returned expression of a wrapper function."""
    program = parse(f"int main() {{ return {text}; }}")
    stmt = program.function("main").body.stmts[0]
    assert isinstance(stmt, ast.Return)
    return stmt.expr


def parse_stmts(text):
    program = parse(f"int main() {{ {text} }}")
    return program.function("main").body.stmts


class TestDeclarations:
    def test_global_scalar(self):
        program = parse("int x = 5;")
        decl = program.globals[0].decls[0]
        assert decl.name == "x"
        assert str(decl.ctype) == "int"
        assert isinstance(decl.init, ast.IntLiteral)

    def test_pointer_declarator(self):
        program = parse("char *p;")
        assert isinstance(program.globals[0].decls[0].ctype, PointerType)

    def test_double_pointer(self):
        program = parse("int **pp;")
        ctype = program.globals[0].decls[0].ctype
        assert isinstance(ctype, PointerType)
        assert isinstance(ctype.pointee, PointerType)

    def test_array(self):
        program = parse("int a[10];")
        ctype = program.globals[0].decls[0].ctype
        assert isinstance(ctype, ArrayType)
        assert ctype.length == 10

    def test_2d_array(self):
        program = parse("int a[3][4];")
        ctype = program.globals[0].decls[0].ctype
        assert ctype.length == 3
        assert ctype.element.length == 4

    def test_array_of_pointers(self):
        program = parse("int *a[10];")
        ctype = program.globals[0].decls[0].ctype
        assert isinstance(ctype, ArrayType)
        assert isinstance(ctype.element, PointerType)

    def test_constant_dimension_expression(self):
        program = parse("int a[4 * 8 + 2];")
        assert program.globals[0].decls[0].ctype.length == 34

    def test_non_constant_dimension_rejected(self):
        with pytest.raises(ParseError):
            parse("int n; int a[n];")

    def test_multiple_declarators(self):
        program = parse("int a, b = 2, c;")
        assert [d.name for d in program.globals[0].decls] == ["a", "b", "c"]

    def test_init_list(self):
        program = parse("int a[3] = {1, 2, 3};")
        init = program.globals[0].decls[0].init
        assert isinstance(init, ast.Call) and init.name == "__init_list__"
        assert len(init.args) == 3

    def test_init_list_trailing_comma(self):
        program = parse("int a[2] = {1, 2,};")
        assert len(program.globals[0].decls[0].init.args) == 2

    def test_unsigned_types(self):
        program = parse("unsigned int a; unsigned char b; unsigned c;")
        names = [str(g.decls[0].ctype) for g in program.globals]
        assert names == ["unsigned int", "unsigned char", "unsigned int"]

    def test_short_long(self):
        program = parse("short a; long b; short int c; long int d;")
        sizes = [g.decls[0].ctype.size for g in program.globals]
        assert sizes == [2, 8, 2, 8]


class TestStructs:
    def test_struct_definition(self):
        program = parse("struct point { int x; int y; };")
        struct = program.struct_defs[0].struct_type
        assert isinstance(struct, StructType)
        assert [m.name for m in struct.members] == ["x", "y"]

    def test_struct_variable(self):
        program = parse("struct p { int x; }; struct p g;")
        assert program.globals[0].decls[0].ctype.is_struct

    def test_struct_pointer_member_access(self):
        program = parse(
            "struct p { int x; };"
            "int f(struct p *q) { return q->x; }"
        )
        expr = program.function("f").body.stmts[0].expr
        assert isinstance(expr, ast.Member)
        assert expr.is_arrow

    def test_unknown_struct_rejected(self):
        with pytest.raises(ParseError):
            parse("struct nope g;")

    def test_struct_redefinition_rejected(self):
        with pytest.raises(ParseError):
            parse("struct p { int x; }; struct p { int y; };")


class TestStatements:
    def test_for_with_decl_init(self):
        (stmt,) = parse_stmts("for (int i = 0; i < 10; i++) {}")
        assert isinstance(stmt, ast.For)
        assert isinstance(stmt.init, ast.DeclStmt)

    def test_for_with_expr_init(self):
        (decl, stmt) = parse_stmts("int i; for (i = 0; i < 10; i++) ;")
        assert isinstance(stmt.init, ast.ExprStmt)

    def test_for_empty_clauses(self):
        (stmt,) = parse_stmts("for (;;) break;")
        assert stmt.init is None and stmt.cond is None and stmt.step is None

    def test_while(self):
        (stmt,) = parse_stmts("while (1) {}")
        assert isinstance(stmt, ast.While)

    def test_do_while(self):
        (stmt,) = parse_stmts("do { } while (0);")
        assert isinstance(stmt, ast.DoWhile)

    def test_if_else(self):
        (stmt,) = parse_stmts("if (1) ; else ;")
        assert isinstance(stmt, ast.If)
        assert stmt.else_stmt is not None

    def test_dangling_else_binds_inner(self):
        (stmt,) = parse_stmts("if (1) if (0) ; else ;")
        assert stmt.else_stmt is None
        assert stmt.then_stmt.else_stmt is not None

    def test_break_continue_return(self):
        stmts = parse_stmts("while (1) { break; } while (1) { continue; } return 0;")
        assert isinstance(stmts[-1], ast.Return)

    def test_empty_statement(self):
        (stmt,) = parse_stmts(";")
        assert isinstance(stmt, ast.EmptyStmt)

    def test_nested_blocks(self):
        (stmt,) = parse_stmts("{ { int x; } }")
        assert isinstance(stmt, ast.Block)

    def test_missing_semicolon(self):
        with pytest.raises(ParseError):
            parse_stmts("int x = 5")


class TestExpressions:
    def test_precedence_mul_over_add(self):
        expr = parse_expr("1 + 2 * 3")
        assert expr.op == "+"
        assert expr.right.op == "*"

    def test_parentheses_override(self):
        expr = parse_expr("(1 + 2) * 3")
        assert expr.op == "*"
        assert expr.left.op == "+"

    def test_left_associativity(self):
        expr = parse_expr("10 - 4 - 3")
        assert expr.op == "-"
        assert expr.left.op == "-"

    def test_assignment_right_associative(self):
        program = parse("int main() { int a, b; a = b = 1; return a; }")
        assign = program.function("main").body.stmts[1].expr
        assert isinstance(assign.value, ast.Assign)

    def test_compound_assignment(self):
        (decl, stmt) = parse_stmts("int a; a += 3;")
        assert stmt.expr.op == "+"

    def test_ternary(self):
        expr = parse_expr("1 ? 2 : 3")
        assert isinstance(expr, ast.Ternary)

    def test_nested_ternary(self):
        expr = parse_expr("1 ? 2 : 3 ? 4 : 5")
        assert isinstance(expr.else_expr, ast.Ternary)

    def test_logical_precedence(self):
        expr = parse_expr("1 || 2 && 3")
        assert expr.op == "||"
        assert expr.right.op == "&&"

    def test_unary_chain(self):
        expr = parse_expr("-~!1")
        assert expr.op == "-"
        assert expr.operand.op == "~"
        assert expr.operand.operand.op == "!"

    def test_deref_and_address(self):
        program = parse("int main() { int x; return *&x; }")
        ret = program.function("main").body.stmts[1].expr
        assert ret.op == "*"
        assert ret.operand.op == "&"

    def test_postfix_increment(self):
        program = parse("int main() { int i; i++; return i; }")
        expr = program.function("main").body.stmts[1].expr
        assert isinstance(expr, ast.IncDec)
        assert expr.is_postfix

    def test_prefix_increment(self):
        program = parse("int main() { int i; ++i; return i; }")
        expr = program.function("main").body.stmts[1].expr
        assert not expr.is_postfix

    def test_index_chain(self):
        program = parse("int a[2][3]; int main() { return a[1][2]; }")
        expr = program.function("main").body.stmts[0].expr
        assert isinstance(expr, ast.Index)
        assert isinstance(expr.base, ast.Index)

    def test_call_with_args(self):
        program = parse("int f(int a, int b) { return a; } int main() { return f(1, 2); }")
        call = program.function("main").body.stmts[0].expr
        assert isinstance(call, ast.Call)
        assert len(call.args) == 2

    def test_cast(self):
        expr = parse_expr("(char)300")
        assert isinstance(expr, ast.Cast)
        assert str(expr.target_type) == "char"

    def test_pointer_cast(self):
        expr = parse_expr("(int*)0")
        assert isinstance(expr.target_type, PointerType)

    def test_sizeof_type(self):
        expr = parse_expr("sizeof(int)")
        assert isinstance(expr, ast.SizeofType)

    def test_sizeof_expr(self):
        program = parse("int main() { int x; return sizeof x; }")
        expr = program.function("main").body.stmts[1].expr
        assert isinstance(expr, ast.SizeofExpr)

    def test_string_literal_expr(self):
        program = parse('int main() { printf("hi"); return 0; }')
        call = program.function("main").body.stmts[0].expr
        assert isinstance(call.args[0], ast.StringLiteral)

    def test_unbalanced_paren(self):
        with pytest.raises(ParseError):
            parse("int main() { return (1 + 2; }")


class TestFunctions:
    def test_void_function_no_params(self):
        program = parse("void f() { } void g(void) { }")
        assert len(program.functions) == 2
        assert program.function("f").params == []
        assert program.function("g").params == []

    def test_param_array_decays(self):
        program = parse("int f(int a[10]) { return a[0]; }")
        assert isinstance(program.function("f").params[0].ctype, PointerType)

    def test_pointer_return_type(self):
        program = parse("int *f() { return 0; }")
        assert isinstance(program.function("f").return_type, PointerType)

    def test_walk_covers_all_functions(self):
        program = parse("int f() { return 1; } int main() { return f(); }")
        names = {n.name for n in ast.walk(program) if isinstance(n, ast.FunctionDef)}
        assert names == {"f", "main"}
