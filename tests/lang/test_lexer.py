"""Unit tests for the MiniC lexer."""

import pytest

from repro.lang.errors import LexError
from repro.lang.lexer import tokenize
from repro.lang.tokens import TokenKind


def kinds(source):
    return [t.kind for t in tokenize(source)][:-1]  # drop EOF


def values(source):
    return [t.value for t in tokenize(source)][:-1]


class TestIdentifiersAndKeywords:
    def test_identifier(self):
        tokens = tokenize("foo_bar42")
        assert tokens[0].kind is TokenKind.IDENT
        assert tokens[0].value == "foo_bar42"

    def test_underscore_prefix(self):
        assert tokenize("_x")[0].value == "_x"

    @pytest.mark.parametrize(
        "word,kind",
        [
            ("int", TokenKind.KW_INT),
            ("char", TokenKind.KW_CHAR),
            ("while", TokenKind.KW_WHILE),
            ("do", TokenKind.KW_DO),
            ("for", TokenKind.KW_FOR),
            ("struct", TokenKind.KW_STRUCT),
            ("sizeof", TokenKind.KW_SIZEOF),
            ("return", TokenKind.KW_RETURN),
            ("unsigned", TokenKind.KW_UNSIGNED),
        ],
    )
    def test_keywords(self, word, kind):
        assert tokenize(word)[0].kind is kind

    def test_keyword_prefix_is_identifier(self):
        # "formula" starts with "for" but is one identifier.
        tokens = tokenize("formula")
        assert tokens[0].kind is TokenKind.IDENT


class TestIntegerLiterals:
    @pytest.mark.parametrize(
        "text,value",
        [
            ("0", 0),
            ("42", 42),
            ("2147483647", 2147483647),
            ("0x10", 16),
            ("0xFF", 255),
            ("0xdeadBEEF", 0xDEADBEEF),
            ("010", 8),  # octal
            ("0777", 0o777),
        ],
    )
    def test_values(self, text, value):
        token = tokenize(text)[0]
        assert token.kind is TokenKind.INT_LIT
        assert token.value == value

    @pytest.mark.parametrize("text", ["42u", "42U", "42L", "42ul", "0x10UL"])
    def test_suffixes_are_consumed(self, text):
        tokens = tokenize(text)
        assert tokens[0].kind is TokenKind.INT_LIT
        assert tokens[1].kind is TokenKind.EOF

    def test_bad_hex(self):
        with pytest.raises(LexError):
            tokenize("0x")


class TestFloatLiterals:
    @pytest.mark.parametrize(
        "text,value",
        [
            ("1.5", 1.5),
            ("0.25", 0.25),
            (".5", 0.5),
            ("1e3", 1000.0),
            ("2.5e-2", 0.025),
            ("1E+2", 100.0),
        ],
    )
    def test_values(self, text, value):
        token = tokenize(text)[0]
        assert token.kind is TokenKind.FLOAT_LIT
        assert token.value == pytest.approx(value)

    def test_float_suffix(self):
        tokens = tokenize("1.5f")
        assert tokens[0].kind is TokenKind.FLOAT_LIT
        assert tokens[1].kind is TokenKind.EOF

    def test_integer_then_member_not_float(self):
        # "a.b" must not lex the dot into a float.
        assert kinds("a.b") == [TokenKind.IDENT, TokenKind.DOT, TokenKind.IDENT]


class TestCharAndString:
    @pytest.mark.parametrize(
        "text,value",
        [("'a'", ord("a")), ("'0'", ord("0")), (r"'\n'", 10), (r"'\0'", 0),
         (r"'\\'", ord("\\")), (r"'\x41'", 0x41)],
    )
    def test_char(self, text, value):
        token = tokenize(text)[0]
        assert token.kind is TokenKind.CHAR_LIT
        assert token.value == value

    def test_string(self):
        token = tokenize('"hello world"')[0]
        assert token.kind is TokenKind.STRING_LIT
        assert token.value == "hello world"

    def test_string_escapes(self):
        assert tokenize(r'"a\tb\n"')[0].value == "a\tb\n"

    def test_unterminated_string(self):
        with pytest.raises(LexError):
            tokenize('"abc')

    def test_unterminated_char(self):
        with pytest.raises(LexError):
            tokenize("'a")

    def test_empty_char(self):
        with pytest.raises(LexError):
            tokenize("''")


class TestOperators:
    def test_greedy_multichar(self):
        assert kinds("a<<=b") == [TokenKind.IDENT, TokenKind.LSHIFT_ASSIGN,
                                  TokenKind.IDENT]

    def test_increment_vs_plus(self):
        assert kinds("a++ + b") == [
            TokenKind.IDENT, TokenKind.PLUS_PLUS, TokenKind.PLUS, TokenKind.IDENT,
        ]

    def test_arrow(self):
        assert kinds("p->f") == [TokenKind.IDENT, TokenKind.ARROW, TokenKind.IDENT]

    def test_all_comparisons(self):
        assert kinds("< > <= >= == !=") == [
            TokenKind.LT, TokenKind.GT, TokenKind.LE, TokenKind.GE,
            TokenKind.EQ, TokenKind.NE,
        ]

    def test_logical(self):
        assert kinds("&& || ! & |") == [
            TokenKind.AND_AND, TokenKind.OR_OR, TokenKind.BANG,
            TokenKind.AMP, TokenKind.PIPE,
        ]

    def test_unknown_character(self):
        with pytest.raises(LexError):
            tokenize("a @ b")


class TestCommentsAndWhitespace:
    def test_line_comment(self):
        assert kinds("a // comment\nb") == [TokenKind.IDENT, TokenKind.IDENT]

    def test_block_comment(self):
        assert kinds("a /* x\ny */ b") == [TokenKind.IDENT, TokenKind.IDENT]

    def test_unterminated_block_comment(self):
        with pytest.raises(LexError):
            tokenize("/* never ends")

    def test_preprocessor_line_skipped(self):
        assert kinds("#include <stdio.h>\nint") == [TokenKind.KW_INT]

    def test_empty_input(self):
        tokens = tokenize("")
        assert len(tokens) == 1
        assert tokens[0].kind is TokenKind.EOF


class TestLocations:
    def test_line_and_column(self):
        tokens = tokenize("a\n  b")
        assert tokens[0].location.line == 1
        assert tokens[0].location.column == 1
        assert tokens[1].location.line == 2
        assert tokens[1].location.column == 3

    def test_location_in_error(self):
        with pytest.raises(LexError) as exc:
            tokenize("\n\n  @")
        assert exc.value.location.line == 3
