"""Unit tests for the MiniC type system (ILP32 layout rules)."""

import pytest

from repro.lang.ctypes_ import (
    CHAR,
    DOUBLE,
    FLOAT,
    INT,
    LONG,
    SHORT,
    UCHAR,
    UINT,
    ArrayType,
    PointerType,
    integer_promote,
    layout_struct,
    usual_arithmetic_conversion,
)


class TestSizes:
    @pytest.mark.parametrize(
        "ctype,size",
        [(CHAR, 1), (SHORT, 2), (INT, 4), (LONG, 8), (FLOAT, 4), (DOUBLE, 8)],
    )
    def test_scalar_sizes(self, ctype, size):
        assert ctype.size == size

    def test_pointer_is_32_bit(self):
        assert PointerType(INT).size == 4
        assert PointerType(DOUBLE).size == 4

    def test_array_size(self):
        assert ArrayType(INT, 10).size == 40

    def test_2d_array_size(self):
        assert ArrayType(ArrayType(CHAR, 4), 3).size == 12

    def test_array_alignment_is_element_alignment(self):
        assert ArrayType(DOUBLE, 2).alignment == 8


class TestIntSemantics:
    def test_signed_char_wrap(self):
        assert CHAR.wrap(130) == -126
        assert CHAR.wrap(-129) == 127

    def test_unsigned_char_wrap(self):
        assert UCHAR.wrap(256) == 0
        assert UCHAR.wrap(-1) == 255

    def test_int_wrap(self):
        assert INT.wrap(2**31) == -(2**31)
        assert UINT.wrap(-1) == 2**32 - 1

    def test_ranges(self):
        assert INT.min_value == -(2**31)
        assert INT.max_value == 2**31 - 1
        assert UINT.min_value == 0

    def test_wrap_identity_in_range(self):
        for value in (-128, 0, 127):
            assert CHAR.wrap(value) == value


class TestStructLayout:
    def test_simple_layout(self):
        struct = layout_struct("p", [("x", INT), ("y", INT)])
        assert struct.size == 8
        assert struct.member("y").offset == 4

    def test_padding_for_alignment(self):
        struct = layout_struct("p", [("c", CHAR), ("x", INT)])
        assert struct.member("x").offset == 4
        assert struct.size == 8

    def test_tail_padding(self):
        struct = layout_struct("p", [("x", INT), ("c", CHAR)])
        assert struct.size == 8  # padded to int alignment

    def test_double_member_alignment(self):
        struct = layout_struct("p", [("c", CHAR), ("d", DOUBLE)])
        assert struct.member("d").offset == 8
        assert struct.size == 16
        assert struct.alignment == 8

    def test_array_member(self):
        struct = layout_struct("p", [("a", ArrayType(SHORT, 3)), ("x", INT)])
        assert struct.member("x").offset == 8

    def test_empty_struct(self):
        struct = layout_struct("e", [])
        assert struct.size == 0

    def test_member_lookup_missing(self):
        struct = layout_struct("p", [("x", INT)])
        assert struct.has_member("x")
        assert not struct.has_member("y")


class TestConversions:
    def test_integer_promotion(self):
        assert integer_promote(CHAR) == INT
        assert integer_promote(SHORT) == INT
        assert integer_promote(INT) == INT
        assert integer_promote(LONG) == LONG

    def test_uac_float_wins(self):
        assert usual_arithmetic_conversion(INT, DOUBLE) == DOUBLE
        assert usual_arithmetic_conversion(FLOAT, INT) == FLOAT

    def test_uac_wider_integer_wins(self):
        assert usual_arithmetic_conversion(INT, LONG) == LONG

    def test_uac_unsigned_wins_same_width(self):
        assert usual_arithmetic_conversion(INT, UINT) == UINT

    def test_uac_narrow_promoted(self):
        assert usual_arithmetic_conversion(CHAR, CHAR) == INT
