"""Unit tests for the semantic analyzer."""

import pytest

from repro.lang import ast_nodes as ast
from repro.lang.errors import SemanticError
from repro.lang.semantics import parse_and_analyze


def analyze(source):
    return parse_and_analyze(source)


def main_stmts(source):
    return analyze(source).function("main").body.stmts


class TestSymbolResolution:
    def test_local_resolution(self):
        program = analyze("int main() { int x = 1; return x; }")
        ret = program.function("main").body.stmts[1]
        assert ret.expr.symbol is not None
        assert ret.expr.symbol.name == "x"

    def test_global_resolution(self):
        program = analyze("int g; int main() { return g; }")
        ret = program.function("main").body.stmts[0]
        assert ret.expr.symbol.storage == "global"

    def test_param_resolution(self):
        program = analyze("int f(int a) { return a; } int main() { return f(1); }")
        ret = program.function("f").body.stmts[0]
        assert ret.expr.symbol.storage == "param"

    def test_shadowing(self):
        program = analyze("int x; int main() { int x = 2; return x; }")
        ret = program.function("main").body.stmts[1]
        assert ret.expr.symbol.storage == "local"

    def test_block_scope(self):
        with pytest.raises(SemanticError):
            analyze("int main() { { int x; } return x; }")

    def test_undeclared(self):
        with pytest.raises(SemanticError):
            analyze("int main() { return nope; }")

    def test_redefinition_same_scope(self):
        with pytest.raises(SemanticError):
            analyze("int main() { int x; int x; return 0; }")

    def test_duplicate_function(self):
        with pytest.raises(SemanticError):
            analyze("int f() { return 0; } int f() { return 1; } int main() { return 0; }")

    def test_shadowing_builtin_rejected(self):
        with pytest.raises(SemanticError):
            analyze("int printf(int x) { return x; } int main() { return 0; }")


class TestRegisterPromotion:
    def test_scalar_local_is_register(self):
        program = analyze("int main() { int x = 1; return x; }")
        decl = program.function("main").body.stmts[0].decls[0]
        assert not decl.symbol.in_memory

    def test_array_local_in_memory(self):
        program = analyze("int main() { int a[4]; return a[0]; }")
        decl = program.function("main").body.stmts[0].decls[0]
        assert decl.symbol.in_memory

    def test_struct_local_in_memory(self):
        program = analyze(
            "struct p { int x; }; int main() { struct p v; return v.x; }"
        )
        decl = program.function("main").body.stmts[0].decls[0]
        assert decl.symbol.in_memory

    def test_address_taken_forces_memory(self):
        program = analyze("int main() { int x = 1; int *p = &x; return *p; }")
        decl = program.function("main").body.stmts[0].decls[0]
        assert decl.symbol.in_memory

    def test_globals_always_in_memory(self):
        program = analyze("int g; int main() { return g; }")
        assert program.globals[0].decls[0].symbol.in_memory

    def test_pointer_local_is_register(self):
        program = analyze("int g[4]; int main() { int *p = g; return *p; }")
        decl = program.function("main").body.stmts[0].decls[0]
        assert not decl.symbol.in_memory


class TestTypeChecking:
    def test_deref_non_pointer(self):
        with pytest.raises(SemanticError):
            analyze("int main() { int x; return *x; }")

    def test_subscript_non_array(self):
        with pytest.raises(SemanticError):
            analyze("int main() { int x; return x[0]; }")

    def test_member_of_non_struct(self):
        with pytest.raises(SemanticError):
            analyze("int main() { int x; return x.f; }")

    def test_arrow_on_non_pointer(self):
        with pytest.raises(SemanticError):
            analyze("struct p { int x; }; int main() { struct p v; return v->x; }")

    def test_unknown_member(self):
        with pytest.raises(SemanticError):
            analyze("struct p { int x; }; struct p g; int main() { return g.y; }")

    def test_assign_to_rvalue(self):
        with pytest.raises(SemanticError):
            analyze("int main() { 1 = 2; return 0; }")

    def test_assign_to_array(self):
        with pytest.raises(SemanticError):
            analyze("int a[2]; int b[2]; int main() { a = b; return 0; }")

    def test_call_arity(self):
        with pytest.raises(SemanticError):
            analyze("int f(int a) { return a; } int main() { return f(); }")

    def test_unknown_function(self):
        with pytest.raises(SemanticError):
            analyze("int main() { return nothere(); }")

    def test_void_variable(self):
        with pytest.raises(SemanticError):
            analyze("int main() { void x; return 0; }")

    def test_break_outside_loop(self):
        with pytest.raises(SemanticError):
            analyze("int main() { break; return 0; }")

    def test_continue_outside_loop(self):
        with pytest.raises(SemanticError):
            analyze("int main() { continue; return 0; }")

    def test_void_return_with_value(self):
        with pytest.raises(SemanticError):
            analyze("void f() { return 1; } int main() { return 0; }")

    def test_pointer_arithmetic_types(self):
        program = analyze("int a[4]; int main() { int *p = a + 1; return *p; }")
        decl = program.function("main").body.stmts[0].decls[0]
        assert decl.init.ctype.is_pointer

    def test_pointer_difference_is_int(self):
        program = analyze(
            "int a[4]; int main() { return (int)(&a[3] - &a[0]); }"
        )
        assert program is not None

    def test_invalid_pointer_multiplication(self):
        with pytest.raises(SemanticError):
            analyze("int a[4]; int main() { return (int)(a * 2); }")

    def test_modulo_requires_integers(self):
        with pytest.raises(SemanticError):
            analyze("int main() { return (int)(1.5 % 2); }")

    def test_builtin_call_typed(self):
        program = analyze('int main() { printf("x"); return 0; }')
        call = program.function("main").body.stmts[0].expr
        assert call.is_builtin


class TestNodeIds:
    def test_all_nodes_have_unique_ids(self):
        program = analyze("int g[4]; int main() { int i; for (i=0;i<4;i++) g[i]=i; return 0; }")
        ids = [n.node_id for n in ast.walk(program) if isinstance(n, ast.Node)]
        assert len(ids) == len(set(ids))
        assert all(node_id >= 0 for node_id in ids)

    def test_ids_deterministic(self):
        source = "int g[4]; int main() { g[0] = 1; return g[0]; }"
        first = analyze(source)
        second = analyze(source)
        first_ids = [n.node_id for n in ast.walk(first) if isinstance(n, ast.Node)]
        second_ids = [n.node_id for n in ast.walk(second) if isinstance(n, ast.Node)]
        assert first_ids == second_ids

    def test_expression_types_annotated(self):
        program = analyze("int main() { return 1 + 2; }")
        expr = program.function("main").body.stmts[0].expr
        assert expr.ctype is not None
        assert str(expr.ctype) == "int"
