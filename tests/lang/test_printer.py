"""Tests for the pretty-printer, including parse/print round trips."""

import pytest

from repro.instrument.checkpoints import instrument
from repro.lang.parser import parse
from repro.lang.printer import to_source
from repro.lang.semantics import parse_and_analyze
from repro.workloads.registry import ALL_WORKLOADS


def roundtrip(source: str) -> str:
    return to_source(parse(source))


class TestRoundTrip:
    def test_print_is_reparseable_fixed_point(self):
        source = """
        struct p { int x; int y[4]; };
        struct p g;
        int table[4] = {1, 2, 3, 4};
        int f(int a, char *s) {
            int i;
            for (i = 0; i < a; i++) {
                if (i % 2 == 0) {
                    g.x += table[i] * 2;
                } else {
                    continue;
                }
            }
            while (a > 0) { a--; }
            do { a++; } while (a < 2);
            return g.x + (a > 1 ? 1 : 0);
        }
        int main() { return f(4, "hi"); }
        """
        once = roundtrip(source)
        twice = roundtrip(once)
        assert once == twice

    @pytest.mark.parametrize("name", sorted(ALL_WORKLOADS))
    def test_workloads_roundtrip(self, name):
        source = ALL_WORKLOADS[name].source
        once = roundtrip(source)
        twice = roundtrip(once)
        assert once == twice

    def test_precedence_preserved(self):
        # (1 + 2) * 3 must keep its parentheses through the round trip.
        source = "int main() { return (1 + 2) * 3; }"
        printed = roundtrip(source)
        assert "(1 + 2) * 3" in printed

    def test_nested_unary_printed(self):
        printed = roundtrip("int main() { int x; return -(-x); }")
        assert "--" not in printed  # must not merge into decrement

    def test_string_escapes_printed(self):
        printed = roundtrip('int main() { printf("a\\nb\\"c"); return 0; }')
        assert '"a\\nb\\"c"' in printed


class TestCheckpointPrinting:
    def test_instrumented_loop_shows_checkpoints(self):
        program = parse_and_analyze(
            "int main() { int i; for (i = 0; i < 3; i++) { } return 0; }"
        )
        instrument(program)
        printed = to_source(program)
        assert "CHECKPOINT(10);" in printed  # loop-begin
        assert "CHECKPOINT(11);" in printed  # body-begin
        assert "CHECKPOINT(12);" in printed  # body-end

    def test_checkpoints_suppressed_on_request(self):
        program = parse_and_analyze(
            "int main() { int i; while (i < 3) { i++; } return 0; }"
        )
        instrument(program)
        printed = to_source(program, show_checkpoints=False)
        assert "CHECKPOINT" not in printed

    def test_uninstrumented_has_no_checkpoints(self):
        program = parse_and_analyze(
            "int main() { int i; for (i = 0; i < 3; i++) { } return 0; }"
        )
        assert "CHECKPOINT" not in to_source(program)

    def test_do_while_checkpoint_placement(self):
        program = parse_and_analyze(
            "int main() { int i = 0; do { i++; } while (i < 2); return 0; }"
        )
        instrument(program)
        printed = to_source(program)
        assert printed.index("CHECKPOINT(10)") < printed.index("do")
