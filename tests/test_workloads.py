"""Sanity tests for the workload programs themselves."""

import pytest

from repro.analysis.census import count_lines
from repro.lang.semantics import parse_and_analyze
from repro.staticfar.detector import detect
from repro.workloads.registry import (
    ALL_WORKLOADS,
    FIGURE_WORKLOADS,
    MIBENCH_WORKLOADS,
    get_workload,
    workload_names,
)


class TestRegistry:
    def test_suite_names_in_paper_order(self):
        # The paper's six in table order, then the MediaBench addition.
        assert workload_names() == ("jpeg", "lame", "susan", "fft", "gsm",
                                    "adpcm", "mpeg2")

    def test_figures_registered(self):
        assert set(FIGURE_WORKLOADS) == {
            "fig1a", "fig1b", "fig4a", "fig7a", "fig7b", "fig9",
        }

    def test_all_is_union(self):
        assert set(ALL_WORKLOADS) == set(MIBENCH_WORKLOADS) | set(FIGURE_WORKLOADS)

    def test_lookup_error_lists_names(self):
        with pytest.raises(KeyError) as exc:
            get_workload("quake")
        assert "jpeg" in str(exc.value)


@pytest.mark.parametrize("name", sorted(ALL_WORKLOADS))
class TestAllWorkloadsWellFormed:
    def test_parses_and_analyzes(self, name):
        program = parse_and_analyze(ALL_WORKLOADS[name].source)
        assert program.has_function("main")

    def test_static_detector_runs(self, name):
        program = parse_and_analyze(ALL_WORKLOADS[name].source)
        result = detect(program)
        assert result.loop_count >= 0

    def test_description_present(self, name):
        workload = ALL_WORKLOADS[name]
        assert workload.description
        assert workload.name == name


@pytest.mark.parametrize("name", sorted(MIBENCH_WORKLOADS))
class TestSuiteWorkloads:
    def test_nontrivial_size(self, name):
        assert count_lines(MIBENCH_WORKLOADS[name].source) >= 50

    def test_paper_counterpart_documented(self, name):
        counterpart = MIBENCH_WORKLOADS[name].paper_counterpart
        assert "MiBench" in counterpart or "MediaBench" in counterpart
