"""Engine parity: the bytecode fast path must be observationally identical
to the reference tree-walking interpreter.

For every registered workload (the six mini-MiBench programs and all the
paper figure examples) both engines must produce

* byte-identical traces (checkpoints and memory accesses, in order),
* identical stdout / exit codes / run statistics,
* identical extracted :class:`ForayModel`s (and identical emitted model
  text, which is what the paper tables are computed from).

A hypothesis property extends the check to generated loop nests.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

import pytest

from repro.foray.extractor import ForayExtractor
from repro.foray.emitter import emit_model
from repro.foray.filters import FilterConfig
from repro.sim.machine import EngineConfig, compile_program, run_compiled
from repro.sim.trace import TraceCollector, format_trace
from repro.workloads.registry import ALL_WORKLOADS, MIBENCH_WORKLOADS

RELAXED = FilterConfig(nexec=1, nloc=1)


def run_both_engines(source: str, filter_config: FilterConfig | None = None):
    """Run ``source`` on both engines; returns {engine: (result, trace,
    model)} computed from completely independent runs."""
    out = {}
    for engine in ("ast", "bytecode"):
        compiled = compile_program(source)
        collector = TraceCollector()
        extractor = ForayExtractor(compiled.checkpoint_map, filter_config)
        result = run_compiled(compiled, sinks=(collector, extractor),
                              config=EngineConfig(engine=engine))
        out[engine] = (result, collector, extractor.finish(), extractor)
    return out


@pytest.mark.parametrize("name", sorted(ALL_WORKLOADS))
def test_workload_parity(name):
    workload = ALL_WORKLOADS[name]
    runs = run_both_engines(workload.source, RELAXED)
    ast_result, ast_trace, ast_model, ast_extractor = runs["ast"]
    bc_result, bc_trace, bc_model, bc_extractor = runs["bytecode"]

    assert bc_result.exit_code == ast_result.exit_code
    assert bc_result.stdout == ast_result.stdout
    assert bc_result.stats == ast_result.stats

    # Byte-identical traces (compare the text rendering too so a failure
    # prints something diffable).
    assert len(bc_trace.records) == len(ast_trace.records)
    if bc_trace.records != ast_trace.records:  # pragma: no cover - debugging
        assert format_trace(bc_trace) == format_trace(ast_trace)
    assert bc_trace.records == ast_trace.records

    # Identical models and identical emitted model text; identical Table I
    # input (the executed static-loop census).
    assert emit_model(bc_model) == emit_model(ast_model)
    assert bc_model == ast_model
    assert bc_extractor.executed_loops() == ast_extractor.executed_loops()


@given(
    stride=st.integers(min_value=1, max_value=8),
    offset=st.integers(min_value=0, max_value=16),
    trips=st.tuples(st.integers(min_value=2, max_value=6),
                    st.integers(min_value=2, max_value=8)),
    use_pointer=st.booleans(),
)
@settings(max_examples=25, deadline=None)
def test_generated_nest_parity(stride, offset, trips, use_pointer):
    outer_trip, inner_trip = trips
    row = 64
    if use_pointer:
        body = f"""
            int *p = g + {offset} + {row} * i + {stride} * j;
            *p = i + j;
            total += *p;
        """
    else:
        body = f"""
            g[{offset} + {row} * i + {stride} * j] = i + j;
            total += g[{offset} + {row} * i + {stride} * j];
        """
    source = f"""
    int g[{(outer_trip + 1) * row + 32}];
    int main() {{
        int i, j, total = 0;
        for (i = 0; i < {outer_trip}; i++) {{
            for (j = 0; j < {inner_trip}; j++) {{
                {body}
            }}
            if (i == 1) continue;
            total ^= i;
        }}
        return total & 255;
    }}
    """
    runs = run_both_engines(source, RELAXED)
    ast_result, ast_trace, ast_model, _ = runs["ast"]
    bc_result, bc_trace, bc_model, _ = runs["bytecode"]
    assert bc_result.exit_code == ast_result.exit_code
    assert bc_trace.records == ast_trace.records
    assert bc_model == ast_model


class _LegacyOnlyCollector:
    """A TraceCollector stripped of ``emit_columns``: forces the engine's
    tuple-decode path so the columnar protocol can be diffed against it."""

    def __init__(self) -> None:
        self._inner = TraceCollector()

    @property
    def records(self):
        return self._inner.records

    def emit(self, record) -> None:
        self._inner.emit(record)

    def emit_block(self, accesses, checkpoints) -> None:
        self._inner.emit_block(accesses, checkpoints)


@pytest.mark.parametrize("engine", ("ast", "bytecode"))
@pytest.mark.parametrize("name", sorted(MIBENCH_WORKLOADS))
def test_columnar_decode_parity(name, engine):
    """``emit_columns`` blocks, decoded, must equal the legacy tuple stream
    bit-for-bit — checked by feeding one run to both sink flavours."""
    workload = MIBENCH_WORKLOADS[name]
    compiled = compile_program(workload.source)
    columnar = TraceCollector()
    legacy = _LegacyOnlyCollector()
    result = run_compiled(compiled, sinks=(columnar, legacy),
                          config=EngineConfig(engine=engine))
    assert result.exit_code == 0
    assert len(columnar.records) == len(legacy.records)
    assert columnar.records == legacy.records


@pytest.mark.parametrize("name", sorted(MIBENCH_WORKLOADS))
def test_fused_unfused_identity(name):
    """Superinstruction fusion must not change anything observable: trace,
    stats, stdout and exit code are identical with fusion on and off."""
    workload = MIBENCH_WORKLOADS[name]
    runs = {}
    for fusion in (True, False):
        compiled = compile_program(workload.source)
        collector = TraceCollector()
        result = run_compiled(
            compiled, sinks=(collector,),
            config=EngineConfig(engine="bytecode", fusion=fusion),
        )
        runs[fusion] = (result, collector)
    fused_result, fused_trace = runs[True]
    plain_result, plain_trace = runs[False]
    assert fused_result.exit_code == plain_result.exit_code
    assert fused_result.stdout == plain_result.stdout
    assert fused_result.stats == plain_result.stats
    assert fused_trace.records == plain_trace.records


@pytest.mark.parametrize("name", sorted(ALL_WORKLOADS))
def test_validation_report_parity(name, suite_reports):
    """Both engines must produce identical cross-input validation reports
    for every registered workload's scenario matrix (figure examples have
    no scenarios and are skipped by construction)."""
    from repro.foray.validate import ValidationSink

    workload = ALL_WORKLOADS[name]
    if len(workload.scenarios) < 2:
        pytest.skip("no scenario matrix declared")
    model = suite_reports[name].model

    # Replay the profile scenario and one cross scenario on both engines.
    for scenario in workload.scenarios[:2]:
        reports = {}
        for engine in ("ast", "bytecode"):
            compiled = compile_program(workload.source_for(scenario))
            sink = ValidationSink(model, compiled.checkpoint_map)
            run_compiled(
                compiled, sinks=(sink,),
                config=EngineConfig(engine=engine, input=scenario.input),
            )
            reports[engine] = sink.finish()
        assert reports["bytecode"] == reports["ast"], scenario.name
        assert reports["bytecode"].unexercised == 0
