"""Unit tests for the simulated memory and allocators."""

import pytest

from repro.lang.errors import MemoryFault
from repro.sim.memory import (
    GLOBAL_BASE,
    HEAP_BASE,
    STACK_TOP,
    BumpAllocator,
    Memory,
    StackAllocator,
)


class TestMemory:
    def test_read_back_bytes(self):
        memory = Memory()
        memory.write_bytes(0x1000, b"hello")
        assert memory.read_bytes(0x1000, 5) == b"hello"

    def test_unwritten_memory_is_zero(self):
        memory = Memory()
        assert memory.read_bytes(0x5000, 8) == bytes(8)

    def test_cross_page_write(self):
        memory = Memory()
        addr = 0x1FFC  # last 4 bytes of a page
        memory.write_bytes(addr, b"abcdefgh")
        assert memory.read_bytes(addr, 8) == b"abcdefgh"

    def test_int_roundtrip_signed(self):
        memory = Memory()
        memory.write_int(0x100, -5, 4)
        assert memory.read_int(0x100, 4, signed=True) == -5
        assert memory.read_int(0x100, 4, signed=False) == 2**32 - 5

    def test_int_sizes(self):
        memory = Memory()
        for size, value in [(1, -2), (2, -300), (4, -70000), (8, -2**40)]:
            memory.write_int(0x200, value, size)
            assert memory.read_int(0x200, size, signed=True) == value

    def test_little_endian(self):
        memory = Memory()
        memory.write_int(0x300, 0x01020304, 4)
        assert memory.read_bytes(0x300, 4) == bytes([4, 3, 2, 1])

    def test_float_roundtrip(self):
        memory = Memory()
        memory.write_float(0x400, 3.25, 8)
        assert memory.read_float(0x400, 8) == 3.25

    def test_float32_precision(self):
        memory = Memory()
        memory.write_float(0x500, 1.1, 4)
        assert memory.read_float(0x500, 4) == pytest.approx(1.1, rel=1e-6)

    def test_float32_overflow_becomes_inf(self):
        memory = Memory()
        memory.write_float(0x600, 1e300, 4)
        assert memory.read_float(0x600, 4) == float("inf")

    def test_cstring(self):
        memory = Memory()
        memory.write_bytes(0x700, b"abc\0def")
        assert memory.read_cstring(0x700) == "abc"

    def test_negative_address_faults(self):
        memory = Memory()
        with pytest.raises(MemoryFault):
            memory.read_bytes(-4, 4)


class TestAllocators:
    def test_bump_allocator_disjoint(self):
        alloc = BumpAllocator(HEAP_BASE)
        a = alloc.allocate(16)
        b = alloc.allocate(16)
        assert b >= a + 16

    def test_bump_alignment(self):
        alloc = BumpAllocator(GLOBAL_BASE)
        alloc.allocate(3, align=1)
        addr = alloc.allocate(8, align=8)
        assert addr % 8 == 0

    def test_bump_zero_size_still_advances(self):
        alloc = BumpAllocator(HEAP_BASE)
        a = alloc.allocate(0)
        b = alloc.allocate(0)
        assert a != b

    def test_stack_grows_down(self):
        stack = StackAllocator()
        first = stack.allocate(16)
        second = stack.allocate(16)
        assert second < first < STACK_TOP

    def test_stack_frame_restore(self):
        stack = StackAllocator()
        marker = stack.push_frame()
        stack.allocate(64)
        stack.pop_frame(marker)
        assert stack.sp == marker

    def test_stack_alignment(self):
        stack = StackAllocator()
        addr = stack.allocate(5, align=8)
        assert addr % 8 == 0

    def test_stack_overflow(self):
        stack = StackAllocator(limit=1024)
        with pytest.raises(MemoryFault):
            for _ in range(100):
                stack.allocate(64)

    def test_segment_ordering(self):
        assert GLOBAL_BASE < HEAP_BASE < STACK_TOP
