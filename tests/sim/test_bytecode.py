"""Unit tests for the bytecode lowering pass and virtual machine.

Whole-program parity lives in ``tests/test_engine_parity.py``; these tests
pin down the engine plumbing: lowering artifacts, checkpoint placement on
abnormal control flow, budget/recursion limits, and engine selection.
"""

import pytest

from repro.lang.errors import MiniCRuntimeError
from repro.sim.bytecode import (
    OP_CALL,
    OP_CKPT,
    OP_ELEM,
    OP_LOAD_I,
    OP_STORE_I,
    BytecodeVM,
    lower_program,
)
from repro.sim.interpreter import ExecLimitExceeded
from repro.sim.machine import (
    EngineConfig,
    compile_program,
    lower_compiled,
    run_compiled,
)
from repro.sim.trace import CheckpointKind, TraceCollector


def bc_run(source: str, **kwargs):
    compiled = compile_program(source)
    collector = TraceCollector()
    config = EngineConfig(engine="bytecode", **kwargs)
    result = run_compiled(compiled, sinks=(collector,), config=config)
    return result, collector


def ast_run(source: str, **kwargs):
    compiled = compile_program(source)
    collector = TraceCollector()
    config = EngineConfig(engine="ast", **kwargs)
    result = run_compiled(compiled, sinks=(collector,), config=config)
    return result, collector


class TestLowering:
    def test_flat_instruction_lists(self):
        compiled = compile_program("""
        int data[8];
        int sum(int n) { int i, t = 0; for (i = 0; i < n; i++) t += data[i]; return t; }
        int main() { return sum(8); }
        """)
        bytecode = lower_program(compiled.program)
        assert set(bytecode.functions) == {"sum", "main"}
        ops = {ins[0] for ins in bytecode.functions["sum"].code}
        assert OP_ELEM in ops and OP_LOAD_I in ops and OP_CKPT in ops
        assert any(ins[0] == OP_CALL for ins in bytecode.functions["main"].code)
        assert bytecode.instruction_count > 0

    def test_lowering_cached_on_compiled_program(self):
        compiled = compile_program("int main() { return 0; }")
        first = lower_compiled(compiled)
        assert lower_compiled(compiled) is first
        assert compiled.bytecode is first

    def test_store_sites_present(self):
        compiled = compile_program(
            "int g[4]; int main() { g[1] = 7; return g[1]; }")
        bytecode = lower_program(compiled.program)
        stores = [ins for ins in bytecode.functions["main"].code
                  if ins[0] == OP_STORE_I]
        assert stores and all(ins[-1] >= 0 for ins in stores)

    def test_body_regions_recorded_for_instrumented_loops(self):
        compiled = compile_program("""
        int g[4];
        int main() { int i; for (i = 0; i < 4; i++) g[i] = i; return 0; }
        """)
        bytecode = lower_program(compiled.program)
        regions = bytecode.functions["main"].body_regions
        assert len(regions) == 1
        start, end, body_end_id = regions[0]
        assert start < end
        assert body_end_id in compiled.checkpoint_map.infos


class TestControlFlowCheckpoints:
    """body-end must fire on every body exit, as the paper requires."""

    def checkpoint_kinds(self, collector, cmap):
        return [cmap.kind_of(c.checkpoint_id) for c in collector.checkpoints()]

    @pytest.mark.parametrize("tail", [
        "if (i == 1) break;",
        "if (i == 1) continue;",
        "if (i == 1) return 9;",
        "if (i == 1) exit(3);",
    ])
    def test_abnormal_exits_match_reference(self, tail):
        source = f"""
        int g[8];
        int main() {{
            int i, j;
            for (i = 0; i < 4; i++) {{
                for (j = 0; j < 2; j++) {{ g[2 * i + j] = j; }}
                {tail}
            }}
            return 0;
        }}
        """
        bc_result, bc_trace = bc_run(source)
        ast_result, ast_trace = ast_run(source)
        assert bc_result.exit_code == ast_result.exit_code
        assert bc_trace.records == ast_trace.records

    def test_exit_inside_nested_call_unwinds_checkpoints(self):
        source = """
        int g[8];
        int helper(int i) {
            int j;
            for (j = 0; j < 4; j++) { g[j] = i; if (j == 2) exit(7); }
            return 0;
        }
        int main() {
            int i;
            for (i = 0; i < 3; i++) { helper(i); }
            return 0;
        }
        """
        bc_result, bc_trace = bc_run(source)
        ast_result, ast_trace = ast_run(source)
        assert bc_result.exit_code == ast_result.exit_code == 7
        assert bc_trace.records == ast_trace.records
        # The unwinding must close both open bodies (inner first).
        kinds = self.checkpoint_kinds(
            bc_trace, compile_program(source).checkpoint_map)
        assert kinds[-2:] == [CheckpointKind.BODY_END, CheckpointKind.BODY_END]


class TestLimits:
    def test_exec_budget_enforced(self):
        source = "int main() { int i = 0; while (1) { i++; } return i; }"
        with pytest.raises(ExecLimitExceeded):
            bc_run(source, max_steps=10_000)

    def test_step_counts_match_reference(self):
        source = """
        int g[16];
        int f(int n) { if (n <= 0) return 0; return n + f(n - 1); }
        int main() {
            int i;
            for (i = 0; i < 16; i++) { g[i] = f(i & 3); }
            return 0;
        }
        """
        bc_result, _ = bc_run(source)
        ast_result, _ = ast_run(source)
        assert bc_result.stats == ast_result.stats

    def test_call_depth_limit(self):
        source = "int f(int n) { return f(n + 1); } int main() { return f(0); }"
        with pytest.raises(MiniCRuntimeError, match="call depth"):
            bc_run(source)

    def test_deep_recursion_needs_no_python_recursion(self):
        # 400 simulated frames run iteratively on the VM's explicit stack.
        source = """
        int f(int n) { if (n == 0) return 0; return 1 + f(n - 1); }
        int main() { return f(400) == 400 ? 42 : 1; }
        """
        result, _ = bc_run(source)
        assert result.exit_code == 42


class TestEngineSelection:
    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="unknown engine"):
            EngineConfig(engine="jit")

    def test_default_engine_is_bytecode(self):
        compiled = compile_program("int main() { return 5; }")
        result = run_compiled(compiled)
        assert isinstance(result.machine, BytecodeVM)
        assert result.interpreter is result.machine  # legacy alias
        assert result.exit_code == 5

    def test_globals_init_runs_untraced(self):
        source = """
        int table[4] = { 1, 2, 3, 4 };
        char msg[6] = "hey";
        int main() { return table[2]; }
        """
        result, collector = bc_run(source)
        assert result.exit_code == 3
        # Only main's read is traced; global initialization is silent.
        assert len(collector.accesses()) == 1
