"""Structural IR verifier: every suite program passes, corrupted
programs are caught, and the engine hook refuses to run bad bytecode."""

from dataclasses import replace

import pytest

from repro.sim import bytecode as bc
from repro.sim.machine import (
    EngineConfig,
    compile_program,
    lower_compiled,
    run_compiled,
)
from repro.sim.verify import (
    IRVerificationError,
    verify_bytecode,
    verify_compiled,
    verify_function,
)
from repro.workloads.registry import ALL_WORKLOADS

SOURCE = """
int data[16];
int main() {
    int i;
    for (i = 0; i < 16; i++) { data[i] = i * 2; }
    return data[3];
}
"""


def _lowered(source: str = SOURCE):
    compiled = compile_program(source)
    return compiled, lower_compiled(compiled)


def _corrupt(fn: bc.BytecodeFunction, index: int,
             instruction: tuple) -> bc.BytecodeFunction:
    code = list(fn.code)
    code[index] = instruction
    return replace(fn, code=tuple(code))


def _find(fn: bc.BytecodeFunction, opcodes) -> int:
    for index, ins in enumerate(fn.code):
        if ins[0] in opcodes:
            return index
    raise AssertionError(f"no {opcodes} instruction in {fn.name}")


class TestSuitePrograms:
    @pytest.mark.parametrize("name", sorted(ALL_WORKLOADS))
    def test_every_lowered_and_fused_program_verifies(self, name):
        workload = ALL_WORKLOADS[name]
        compiled = compile_program(workload.source)
        stats = verify_compiled(compiled)
        assert stats.instructions > 0
        assert stats.functions >= 2  # main + globals-init
        # Fusion shrinks, never grows, the instruction count.
        assert stats.fused_instructions <= stats.instructions

    def test_fused_workload_uses_superinstructions(self):
        # The smoke target: a fused program must actually contain fused
        # opcodes, or the "fused" half of the verifier tests nothing.
        compiled = compile_program(ALL_WORKLOADS["jpeg"].source)
        fused = bc.fuse_program(lower_compiled(compiled))
        ops = {ins[0] for fn in fused.functions.values() for ins in fn.code}
        assert ops & {bc.OP_LDELEM_I, bc.OP_STELEM_I, bc.OP_BR}
        assert not verify_bytecode(fused, compiled.checkpoint_map,
                                   fused=True)


class TestCorruptedPrograms:
    def test_jump_target_out_of_bounds(self):
        compiled, lowered = _lowered()
        fn = lowered.functions["main"]
        index = _find(fn, {bc.OP_JMP, bc.OP_JZ, bc.OP_JNZ})
        ins = fn.code[index]
        pos = 1 if ins[0] == bc.OP_JMP else 2
        bad = _corrupt(fn, index,
                       ins[:pos] + (len(fn.code) + 7,) + ins[pos + 1:])
        findings = verify_function(bad, compiled.checkpoint_map,
                                   frozenset(lowered.functions), False)
        assert any("jump target" in f for f in findings)

    def test_register_slot_outside_frame(self):
        compiled, lowered = _lowered()
        fn = lowered.functions["main"]
        index = _find(fn, set(bc._WRITES))
        ins = fn.code[index]
        pos = bc._WRITES[ins[0]]
        bad = _corrupt(fn, index,
                       ins[:pos] + (fn.n_slots + 3,) + ins[pos + 1:])
        findings = verify_function(bad, compiled.checkpoint_map,
                                   frozenset(lowered.functions), False)
        assert any("outside frame" in f for f in findings)

    def test_superinstruction_rejected_in_unfused_code(self):
        compiled, lowered = _lowered()
        fused = bc.fuse_program(lowered)
        fn = fused.functions["main"]
        assert any(ins[0] in {bc.OP_LDELEM_I, bc.OP_STELEM_I, bc.OP_BR}
                   for ins in fn.code)
        findings = verify_function(fn, compiled.checkpoint_map,
                                   frozenset(fused.functions), fused=False)
        assert any("superinstruction" in f for f in findings)

    def test_unknown_checkpoint_id(self):
        compiled, lowered = _lowered()
        fn = lowered.functions["main"]
        index = _find(fn, {bc.OP_CKPT})
        ins = fn.code[index]
        bad = _corrupt(fn, index, (ins[0], 999_999, ins[2]))
        findings = verify_function(bad, compiled.checkpoint_map,
                                   frozenset(lowered.functions), False)
        assert any("not in map" in f for f in findings)

    def test_checkpoint_kind_mismatch(self):
        compiled, lowered = _lowered()
        fn = lowered.functions["main"]
        index = _find(fn, {bc.OP_CKPT})
        ins = fn.code[index]
        bad = _corrupt(fn, index, (ins[0], ins[1], (ins[2] + 1) % 3))
        findings = verify_function(bad, compiled.checkpoint_map,
                                   frozenset(lowered.functions), False)
        assert any("kind code" in f for f in findings)

    def test_invalid_synthetic_pc(self):
        compiled, lowered = _lowered()
        fn = lowered.functions["main"]
        index = _find(fn, {bc.OP_STORE_I})
        ins = fn.code[index]
        # Store pcs are congruent to 4 mod 8; a load-parity pc is corrupt.
        bad = _corrupt(fn, index, ins[:-1] + (ins[-1] - 4,))
        findings = verify_function(bad, compiled.checkpoint_map,
                                   frozenset(lowered.functions), False)
        assert any("synthetic pc" in f for f in findings)

    def test_globals_init_untraced_pc_allowed(self):
        source = "int seed[4] = {1, 2, 3, 4};\nint main() { return seed[0]; }"
        compiled, lowered = _lowered(source)
        assert any(ins[-1] == -1 for ins in lowered.globals_init.code
                   if ins[0] == bc.OP_STORE_I)
        assert not verify_bytecode(lowered, compiled.checkpoint_map)

    def test_call_to_unknown_function(self):
        source = "int f() { return 1; }\nint main() { return f(); }"
        compiled, lowered = _lowered(source)
        fn = lowered.functions["main"]
        index = _find(fn, {bc.OP_CALL})
        ins = fn.code[index]
        bad = _corrupt(fn, index, (ins[0], ins[1], "ghost", ins[3]))
        findings = verify_function(bad, compiled.checkpoint_map,
                                   frozenset(lowered.functions), False)
        assert any("unknown function" in f for f in findings)

    def test_error_reports_are_readable(self):
        compiled, lowered = _lowered()
        fn = lowered.functions["main"]
        index = _find(fn, {bc.OP_CKPT})
        ins = fn.code[index]
        functions = dict(lowered.functions)
        functions["main"] = _corrupt(fn, index, (ins[0], 999_999, ins[2]))
        broken = replace(lowered, functions=functions)
        with pytest.raises(IRVerificationError) as excinfo:
            findings = verify_bytecode(broken, compiled.checkpoint_map)
            raise IRVerificationError(findings)
        assert "main[" in str(excinfo.value)
        assert excinfo.value.findings


class TestEngineHook:
    def test_verify_ir_config_catches_corruption(self):
        compiled = compile_program(SOURCE)
        lowered = lower_compiled(compiled)
        fn = lowered.functions["main"]
        index = _find(fn, {bc.OP_CKPT})
        ins = fn.code[index]
        lowered.functions["main"] = _corrupt(
            fn, index, (ins[0], 999_999, ins[2]))
        with pytest.raises(IRVerificationError):
            run_compiled(compiled, config=EngineConfig(verify_ir=True))

    def test_verify_ir_memoized_per_program(self):
        compiled = compile_program(SOURCE)
        run_compiled(compiled, config=EngineConfig(verify_ir=True))
        assert compiled.ir_verified
        # A second run must not re-verify (the memo short-circuits).
        result = run_compiled(compiled, config=EngineConfig(verify_ir=True))
        assert result.exit_code == 6

    def test_env_var_enables_verification(self, monkeypatch):
        monkeypatch.setenv("REPRO_VERIFY_IR", "1")
        compiled = compile_program(SOURCE)
        run_compiled(compiled)
        assert compiled.ir_verified
