"""Fault paths of the simulated memory, unit-level and end-to-end.

``tests/sim/test_memory.py`` covers the happy paths; these tests pin
the failure behavior the guard-eliminated fast paths lean on: unmapped
pages read as zeros (pages are demand-created and never replaced),
multi-byte accesses straddling a page boundary stay coherent, negative
addresses fault, and runaway frames hit the simulated stack limit.
"""

import pytest

from repro.lang.errors import MemoryFault
from repro.sim.machine import EngineConfig, compile_program, run_compiled
from repro.sim.memory import (
    STACK_LIMIT,
    STACK_TOP,
    Memory,
    StackAllocator,
)


class TestUnmappedPages:
    def test_read_spanning_two_unmapped_pages_is_zero(self):
        memory = Memory()
        assert memory.read_bytes(0x1FF8, 16) == bytes(16)
        # Reading must not have materialized writable state.
        assert memory.read_int(0x2000, 4, signed=False) == 0

    def test_write_then_read_far_pages(self):
        memory = Memory()
        memory.write_int(0x7000_0000, 1234, 4)
        assert memory.read_int(0x7000_0000, 4, signed=True) == 1234
        assert memory.read_bytes(0x6FFF_F000, 8) == bytes(8)


class TestCrossPageAccess:
    @pytest.mark.parametrize("offset", [4093, 4094, 4095])
    def test_int_straddling_page_boundary(self, offset):
        memory = Memory()
        memory.write_int(offset, 0x11223344, 4)
        assert memory.read_int(offset, 4, signed=False) == 0x11223344

    def test_float_straddling_page_boundary(self):
        memory = Memory()
        memory.write_float(0x1FFC, 2.5, 8)
        assert memory.read_float(0x1FFC, 8) == 2.5

    def test_negative_sizes_and_addresses_fault(self):
        memory = Memory()
        with pytest.raises(MemoryFault):
            memory.read_bytes(-4, 4)
        with pytest.raises(MemoryFault):
            memory.write_bytes(-1, b"x")
        with pytest.raises(MemoryFault):
            memory.read_bytes(16, -2)


class TestStackLimit:
    def test_allocator_faults_past_limit(self):
        stack = StackAllocator()
        with pytest.raises(MemoryFault, match="stack overflow"):
            for _ in range(16):
                stack.push_frame()
                stack.allocate(1 << 20, 16)

    def test_limit_is_8_mib_below_top(self):
        assert STACK_LIMIT == 8 * 1024 * 1024
        stack = StackAllocator()
        stack.push_frame()
        addr = stack.allocate(16, 4)
        assert STACK_TOP - STACK_LIMIT <= addr < STACK_TOP

    @pytest.mark.parametrize("engine", ["bytecode", "ast"])
    def test_deep_recursion_overflows_simulated_stack(self, engine):
        # 64 KiB frames exhaust the 8 MiB stack limit well before the
        # interpreter's call-depth limit (512) can trip.
        compiled = compile_program("""
        int f(int n) {
            char buf[65536];
            buf[0] = (char)n;
            return f(n + 1) + buf[0];
        }
        int main(void) { return f(0); }
        """)
        with pytest.raises(MemoryFault, match="stack overflow"):
            run_compiled(compiled, config=EngineConfig(engine=engine))
