"""Unit tests for trace records, the text format, and pc helpers."""

import io

import pytest

from repro.sim.trace import (
    LIB_PC_BASE,
    USER_PC_BASE,
    Access,
    Checkpoint,
    CheckpointInfo,
    CheckpointKind,
    CheckpointMap,
    TraceCollector,
    TraceWriter,
    format_trace,
    is_library_pc,
    load_pc,
    node_id_of_pc,
    parse_trace,
    pc_is_store,
    store_pc,
)


def small_map():
    cmap = CheckpointMap()
    cmap.add(CheckpointInfo(10, CheckpointKind.LOOP_BEGIN, 100, "while"))
    cmap.add(CheckpointInfo(11, CheckpointKind.BODY_BEGIN, 100, "while"))
    cmap.add(CheckpointInfo(12, CheckpointKind.BODY_END, 100, "while"))
    return cmap


class TestPcHelpers:
    def test_load_store_distinct(self):
        assert load_pc(7) != store_pc(7)

    def test_node_id_roundtrip(self):
        assert node_id_of_pc(load_pc(123)) == 123
        assert node_id_of_pc(store_pc(123)) == 123

    def test_store_detection(self):
        assert pc_is_store(store_pc(9))
        assert not pc_is_store(load_pc(9))

    def test_library_range(self):
        assert is_library_pc(LIB_PC_BASE)
        assert is_library_pc(LIB_PC_BASE + 40)
        assert not is_library_pc(USER_PC_BASE)

    def test_node_id_of_library_pc_rejected(self):
        with pytest.raises(ValueError):
            node_id_of_pc(LIB_PC_BASE + 8)


class TestTextFormat:
    def test_paper_format(self):
        records = [
            Checkpoint(12, CheckpointKind.LOOP_BEGIN),
            Access(0x4002A0, 0x7FFF5934, 1, True),
            Access(0x4002A0, 0x7FFF5935, 1, False),
        ]
        text = format_trace(records)
        assert text.splitlines() == [
            "Checkpoint: 12",
            "Instr: 4002a0 addr: 7fff5934 wr",
            "Instr: 4002a0 addr: 7fff5935 rd",
        ]

    def test_parse_roundtrip(self):
        cmap = small_map()
        records = [
            Checkpoint(10, CheckpointKind.LOOP_BEGIN),
            Checkpoint(11, CheckpointKind.BODY_BEGIN),
            Access(0x400100, 0x10000000, 4, True),
            Checkpoint(12, CheckpointKind.BODY_END),
        ]
        text = format_trace(records)
        parsed = list(parse_trace(text, cmap))
        assert [type(r) for r in parsed] == [type(r) for r in records]
        assert parsed[0].kind is CheckpointKind.LOOP_BEGIN
        assert parsed[2].pc == 0x400100
        assert parsed[2].addr == 0x10000000
        assert parsed[2].is_write

    def test_parse_skips_blank_lines(self):
        parsed = list(parse_trace("\nCheckpoint: 10\n\n", small_map()))
        assert len(parsed) == 1

    def test_parse_malformed_line(self):
        with pytest.raises(ValueError):
            list(parse_trace("garbage", small_map()))

    def test_parse_malformed_access(self):
        with pytest.raises(ValueError):
            list(parse_trace("Instr: 400100 7fff0000 wr", small_map()))

    def test_writer_streams(self):
        buffer = io.StringIO()
        writer = TraceWriter(buffer)
        writer.emit(Access(0x400000, 0x1000, 4, False))
        assert buffer.getvalue() == "Instr: 400000 addr: 1000 rd\n"


class TestCheckpointMap:
    def test_kind_lookup(self):
        cmap = small_map()
        assert cmap.kind_of(11) is CheckpointKind.BODY_BEGIN

    def test_begin_id_mapping(self):
        cmap = small_map()
        assert cmap.begin_id_for(10) == 10
        assert cmap.begin_id_for(11) == 10
        assert cmap.begin_id_for(12) == 10
        assert cmap.begin_id_for(99) is None

    def test_duplicate_id_rejected(self):
        cmap = small_map()
        with pytest.raises(ValueError):
            cmap.add(CheckpointInfo(10, CheckpointKind.LOOP_BEGIN, 200, "for"))

    def test_loops(self):
        assert small_map().loops() == {100}

    def test_contains_len(self):
        cmap = small_map()
        assert 10 in cmap
        assert 42 not in cmap
        assert len(cmap) == 3


class TestCollector:
    def test_collects_and_partitions(self):
        collector = TraceCollector()
        collector.emit(Checkpoint(10, CheckpointKind.LOOP_BEGIN))
        collector.emit(Access(0x400000, 0x1000, 4, True))
        assert len(collector) == 2
        assert len(collector.accesses()) == 1
        assert len(collector.checkpoints()) == 1
