"""Tests for the parameterized input ensembles (sim/inputs.py)."""

import pytest

from repro.sim.inputs import DEFAULT_SEED, InputSpec, InputStream
from repro.sim.machine import EngineConfig, compile_program, run_compiled
from repro.sim.trace import TraceCollector

#: The legacy hard-coded generator, reproduced literally.
_MULT, _INC, _MASK = 1103515245, 12345, 0x7FFFFFFF


def legacy_samples(count, seed=DEFAULT_SEED):
    state = seed
    out = []
    for _ in range(count):
        state = (state * _MULT + _INC) & _MASK
        out.append((state >> 8) % 1024 - 512)
    return out


class TestInputSpec:
    def test_default_is_legacy_stream(self):
        stream = InputStream()
        assert [stream.next_sample() for _ in range(64)] == legacy_samples(64)

    def test_stream_continues_across_calls(self):
        # Two reads of 8 equal one read of 16 (one "file", read twice).
        stream = InputStream()
        first = [stream.next_sample() for _ in range(8)]
        second = [stream.next_sample() for _ in range(8)]
        assert first + second == legacy_samples(16)

    def test_seed_changes_uniform_stream(self):
        a = InputStream(InputSpec(seed=1))
        b = InputStream(InputSpec(seed=2))
        assert [a.next_sample() for _ in range(32)] != [
            b.next_sample() for _ in range(32)
        ]

    def test_constant(self):
        stream = InputStream(InputSpec(distribution="constant", amplitude=7))
        assert [stream.next_sample() for _ in range(5)] == [7] * 5

    def test_impulse_period(self):
        spec = InputSpec(distribution="impulse", amplitude=100, period=4)
        stream = InputStream(spec)
        assert [stream.next_sample() for _ in range(8)] == [
            100, 0, 0, 0, 100, 0, 0, 0,
        ]

    def test_ramp_spans_amplitude(self):
        spec = InputSpec(distribution="ramp", amplitude=100, period=5)
        stream = InputStream(spec)
        samples = [stream.next_sample() for _ in range(10)]
        assert samples[:5] == samples[5:]  # periodic
        assert min(samples) == -50 and max(samples) == 50

    def test_walk_is_bounded_and_seeded(self):
        spec = InputSpec(seed=7, distribution="walk", amplitude=64)
        samples = [InputStream(spec).next_sample() for _ in range(1)]
        stream = InputStream(spec)
        walk = [stream.next_sample() for _ in range(500)]
        assert walk[0] == samples[0]  # deterministic
        assert all(-32 <= value <= 32 for value in walk)
        assert len(set(walk)) > 1  # it moves

    def test_unknown_distribution_rejected(self):
        with pytest.raises(ValueError, match="unknown input distribution"):
            InputSpec(distribution="fractal")


READER = """
int buf[16];
int main() {
    int i;
    int acc = 0;
    read_samples(buf, 16);
    for (i = 0; i < 16; i++) { acc += buf[i]; }
    printf("sum %d\\n", acc);
    return 0;
}
"""


def run_reader(engine, spec=None):
    compiled = compile_program(READER)
    collector = TraceCollector()
    config = EngineConfig(engine=engine, input=spec or InputSpec())
    result = run_compiled(compiled, sinks=(collector,), config=config)
    return result, collector


class TestEngineThreading:
    @pytest.mark.parametrize("engine", ["ast", "bytecode"])
    def test_default_matches_legacy(self, engine):
        result, _ = run_reader(engine)
        assert result.exit_code == 0
        assert result.stdout == f"sum {sum(legacy_samples(16))}\n"

    @pytest.mark.parametrize("engine", ["ast", "bytecode"])
    def test_config_spec_reaches_builtin(self, engine):
        spec = InputSpec(distribution="constant", amplitude=3)
        result, _ = run_reader(engine, spec)
        assert result.stdout == "sum 48\n"

    def test_engines_agree_on_custom_spec(self):
        spec = InputSpec(seed=77, distribution="walk", amplitude=128)
        _, ast_trace = run_reader("ast", spec)
        _, bc_trace = run_reader("bytecode", spec)
        assert ast_trace.records == bc_trace.records

    def test_spec_changes_trace_values_not_shape(self):
        _, nominal = run_reader("bytecode")
        _, silent = run_reader(
            "bytecode", InputSpec(distribution="constant", amplitude=0))
        # Same access pattern (addresses/pcs), different stored values are
        # invisible to the address trace — but the simulated memory sums
        # differ, which the checksum store would expose via stdout if
        # printed. Here: identical record streams by construction.
        assert [type(r) for r in nominal] == [type(r) for r in silent]
        assert len(nominal) == len(silent)
