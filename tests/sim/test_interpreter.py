"""Unit tests for the MiniC interpreter (the simulated CPU)."""

import pytest

from repro.lang.errors import MiniCRuntimeError
from repro.sim.interpreter import ExecLimitExceeded
from repro.sim.machine import compile_program, run_and_trace, run_compiled
from repro.sim.trace import USER_PC_BASE, Access


def run_main(body: str, prelude: str = "") -> int:
    """Execute a program whose main returns the checked value."""
    compiled = compile_program(f"{prelude}\nint main() {{ {body} }}")
    return run_compiled(compiled).exit_code


class TestArithmetic:
    @pytest.mark.parametrize(
        "expr,expected",
        [
            ("1 + 2 * 3", 7),
            ("10 / 3", 3),
            ("-10 / 3", -3),   # C truncates toward zero
            ("10 % 3", 1),
            ("-10 % 3", -1),   # sign follows the dividend
            ("10 % -3", 1),
            ("1 << 5", 32),
            ("-8 >> 1", -4),
            ("5 & 3", 1),
            ("5 | 2", 7),
            ("5 ^ 1", 4),
            ("~0", -1),
            ("!5", 0),
            ("!0", 1),
            ("7 > 3", 1),
            ("3 >= 4", 0),
            ("2 == 2", 1),
            ("2 != 2", 0),
            ("1 ? 10 : 20", 10),
            ("0 ? 10 : 20", 20),
        ],
    )
    def test_int_expressions(self, expr, expected):
        assert run_main(f"return {expr};") == expected

    def test_int_overflow_wraps(self):
        assert run_main("int x = 2147483647; x = x + 1; return x < 0;") == 1

    def test_char_wraps(self):
        assert run_main("char c = 127; c = c + 1; return c;") == -128

    def test_unsigned_comparison(self):
        assert run_main(
            "unsigned int u = 0; u = u - 1; return u > 1000;"
        ) == 1

    def test_division_by_zero(self):
        with pytest.raises(MiniCRuntimeError):
            run_main("int z = 0; return 1 / z;")

    def test_modulo_by_zero(self):
        with pytest.raises(MiniCRuntimeError):
            run_main("int z = 0; return 1 % z;")

    def test_float_arithmetic(self):
        assert run_main("double d = 1.5; d = d * 4.0; return (int)d;") == 6

    def test_float_truncation_toward_zero(self):
        assert run_main("double d = -2.9; return (int)d;") == -2

    def test_int_to_float_division(self):
        assert run_main("double d = 7; d = d / 2.0; return (int)(d * 10.0);") == 35

    def test_short_circuit_and(self):
        # The right operand must not run (it would divide by zero).
        assert run_main("int z = 0; return 0 && (1 / z);") == 0

    def test_short_circuit_or(self):
        assert run_main("int z = 0; return 1 || (1 / z);") == 1


class TestVariablesAndControlFlow:
    def test_increment_semantics(self):
        assert run_main("int i = 5; int a = i++; return a * 100 + i;") == 506

    def test_pre_increment(self):
        assert run_main("int i = 5; int a = ++i; return a * 100 + i;") == 606

    def test_compound_assignment(self):
        assert run_main("int x = 10; x -= 3; x *= 2; x /= 7; return x;") == 2

    def test_for_loop_sum(self):
        assert run_main(
            "int s = 0; int i; for (i = 1; i <= 10; i++) s += i; return s;"
        ) == 55

    def test_while_loop(self):
        assert run_main("int n = 0; while (n < 7) n++; return n;") == 7

    def test_do_while_runs_once(self):
        assert run_main("int n = 10; do { n++; } while (n < 5); return n;") == 11

    def test_break(self):
        assert run_main(
            "int i; int s = 0; for (i = 0; i < 100; i++) { if (i == 5) break; s++; }"
            " return s;"
        ) == 5

    def test_continue(self):
        assert run_main(
            "int i; int s = 0; for (i = 0; i < 10; i++) { if (i % 2) continue; s++; }"
            " return s;"
        ) == 5

    def test_nested_loop_break_inner_only(self):
        assert run_main(
            "int i, j, c = 0;"
            "for (i = 0; i < 3; i++) for (j = 0; j < 10; j++) { if (j == 2) break; c++; }"
            "return c;"
        ) == 6

    def test_if_else_chain(self):
        assert run_main(
            "int x = 15; if (x < 10) return 1; else if (x < 20) return 2; else return 3;"
        ) == 2

    def test_uninitialized_local_is_zero(self):
        assert run_main("int x; return x;") == 0

    def test_exec_limit(self):
        compiled = compile_program("int main() { while (1) {} return 0; }")
        with pytest.raises(ExecLimitExceeded):
            run_compiled(compiled, max_steps=10_000)


class TestFunctions:
    def test_call_and_return(self):
        assert run_main("return add(2, 3);",
                        "int add(int a, int b) { return a + b; }") == 5

    def test_recursion(self):
        assert run_main("return fib(10);",
                        "int fib(int n) { if (n < 2) return n;"
                        " return fib(n-1) + fib(n-2); }") == 55

    def test_missing_return_yields_zero(self):
        assert run_main("return f();", "int f() { }") == 0

    def test_void_function(self):
        assert run_main("g(); return gv;",
                        "int gv; void g() { gv = 9; }") == 9

    def test_recursion_depth_limit(self):
        compiled = compile_program(
            "int f(int n) { return f(n + 1); } int main() { return f(0); }"
        )
        with pytest.raises(MiniCRuntimeError):
            run_compiled(compiled)

    def test_locals_fresh_per_call(self):
        assert run_main(
            "return f() + f();",
            "int f() { int a[2]; a[0] = a[0] + 1; return a[0]; }",
        ) == 2  # a[] is zero-initialized per activation

    def test_exit_builtin(self):
        assert run_main("exit(42); return 0;") == 42


class TestPointersAndArrays:
    def test_array_store_load(self):
        assert run_main("int a[4]; a[2] = 7; return a[2];") == 7

    def test_pointer_walk(self):
        assert run_main(
            "int a[4]; int *p = a; *p++ = 1; *p++ = 2; return a[0] * 10 + a[1];"
        ) == 12

    def test_pointer_arith_scaling(self):
        assert run_main("int a[4]; a[3] = 9; int *p = a; return *(p + 3);") == 9

    def test_pointer_difference(self):
        assert run_main("int a[10]; return (int)(&a[7] - &a[2]);") == 5

    def test_address_of_scalar(self):
        assert run_main("int x = 3; int *p = &x; *p = 8; return x;") == 8

    def test_2d_array(self):
        assert run_main(
            "int m[3][4]; int i, j;"
            "for (i = 0; i < 3; i++) for (j = 0; j < 4; j++) m[i][j] = 10*i + j;"
            "return m[2][3];"
        ) == 23

    def test_2d_row_major_layout(self):
        assert run_main(
            "int m[2][3]; m[1][0] = 42; int *flat = &m[0][0]; return flat[3];"
        ) == 42

    def test_array_decay_to_param(self):
        assert run_main(
            "int a[3]; a[1] = 5; return get(a, 1);",
            "int get(int *p, int i) { return p[i]; }",
        ) == 5

    def test_global_array_init_list(self):
        assert run_main("return t[0] + t[2];", "int t[3] = {10, 20, 30};") == 40

    def test_partial_init_list_zero_fills(self):
        assert run_main("return t[3];", "int t[4] = {1, 2};") == 0

    def test_local_array_init_list(self):
        assert run_main("int t[3] = {4, 5, 6}; return t[1];") == 5

    def test_char_array_string_init(self):
        assert run_main('char s[8] = "abc"; return s[0] + s[3];') == ord("a")

    def test_string_literal_deref(self):
        assert run_main('char *s = "xy"; return s[1];') == ord("y")

    def test_char_pointer_into_int_array_little_endian(self):
        assert run_main(
            "int a[1]; a[0] = 0x01020304; char *p = (char*)a; return *p;"
        ) == 4

    def test_global_pointer_to_global_array(self):
        assert run_main("*gp = 11; return g[0];",
                        "char g[4]; char *gp = g;") == 11

    def test_malloc(self):
        assert run_main(
            "int *p = (int*)malloc(8); p[0] = 3; p[1] = 4; return p[0] + p[1];"
        ) == 7


class TestStructs:
    PRELUDE = "struct point { int x; int y; char tag; };"

    def test_member_access(self):
        assert run_main(
            "struct point p; p.x = 3; p.y = 4; return p.x * 10 + p.y;",
            self.PRELUDE,
        ) == 34

    def test_arrow_access(self):
        assert run_main(
            "struct point p; struct point *q = &p; q->x = 5; return p.x;",
            self.PRELUDE,
        ) == 5

    def test_global_struct(self):
        assert run_main(
            "g.y = 7; return g.y;", self.PRELUDE + " struct point g;"
        ) == 7

    def test_struct_array_member(self):
        assert run_main(
            "struct box b; b.vals[2] = 6; return b.vals[2];",
            "struct box { int vals[4]; };",
        ) == 6

    def test_array_of_structs(self):
        assert run_main(
            "struct point a[3]; a[1].x = 8; return a[1].x;", self.PRELUDE
        ) == 8

    def test_sizeof_struct(self):
        # int x, int y, char tag -> 4 + 4 + 1, padded to 12.
        assert run_main("struct point p; return sizeof p;", self.PRELUDE) == 12


class TestSizeof:
    @pytest.mark.parametrize(
        "expr,expected",
        [
            ("sizeof(int)", 4),
            ("sizeof(char)", 1),
            ("sizeof(double)", 8),
            ("sizeof(long)", 8),
            ("sizeof(int*)", 4),
        ],
    )
    def test_sizeof_types(self, expr, expected):
        assert run_main(f"return {expr};") == expected

    def test_sizeof_array_expr(self):
        assert run_main("int a[10]; return sizeof a;") == 40

    def test_sizeof_does_not_evaluate(self):
        # The deref inside sizeof must not fault or trace.
        assert run_main("int *p; return sizeof *p;") == 4


class TestTraceGeneration:
    def test_register_locals_silent(self):
        _, collector, _ = run_and_trace(
            "int main() { int i, s = 0; for (i = 0; i < 5; i++) s += i; return s; }"
        )
        assert collector.accesses() == []

    def test_array_store_traced(self):
        _, collector, _ = run_and_trace(
            "int main() { int a[4]; a[1] = 5; return 0; }"
        )
        writes = [a for a in collector.accesses() if a.is_write]
        assert len(writes) == 1
        assert writes[0].size == 4

    def test_load_and_store_have_distinct_pcs(self):
        _, collector, _ = run_and_trace(
            "int g[2]; int main() { g[0] = g[0] + 1; return 0; }"
        )
        accesses = collector.accesses()
        reads = [a.pc for a in accesses if not a.is_write]
        writes = [a.pc for a in accesses if a.is_write]
        assert reads and writes
        assert set(reads).isdisjoint(writes)

    def test_compound_assign_one_load_one_store_same_addr(self):
        _, collector, _ = run_and_trace(
            "int g[2]; int main() { g[1] += 3; return 0; }"
        )
        accesses = collector.accesses()
        assert len(accesses) == 2
        assert accesses[0].addr == accesses[1].addr
        assert not accesses[0].is_write and accesses[1].is_write

    def test_global_scalar_traffic_traced(self):
        _, collector, _ = run_and_trace(
            "int g; int main() { g = 1; g = g + 1; return 0; }"
        )
        assert len(collector.accesses()) == 3  # store, load, store

    def test_stack_addresses_near_top(self):
        _, collector, _ = run_and_trace(
            "int main() { char q[100]; q[0] = 1; return 0; }"
        )
        (access,) = collector.accesses()
        assert 0x7FF00000 < access.addr < 0x80000000

    def test_user_pcs_in_user_range(self):
        _, collector, _ = run_and_trace(
            "int g[4]; int main() { g[0] = 1; return g[0]; }"
        )
        for access in collector.accesses():
            assert USER_PC_BASE <= access.pc < 0x500000

    def test_same_site_same_pc_across_iterations(self):
        _, collector, _ = run_and_trace(
            "int g[8]; int main() { int i; for (i = 0; i < 8; i++) g[i] = i;"
            " return 0; }"
        )
        pcs = {a.pc for a in collector.accesses() if a.is_write}
        assert len(pcs) == 1

    def test_global_initializers_not_traced(self):
        _, collector, _ = run_and_trace(
            "int t[4] = {1, 2, 3, 4}; int main() { return 0; }"
        )
        assert collector.accesses() == []

    def test_local_array_init_traced(self):
        _, collector, _ = run_and_trace(
            "int main() { int t[2] = {7, 8}; return 0; }"
        )
        writes = [a for a in collector.accesses() if a.is_write]
        assert len(writes) == 2

    def test_stdout_capture(self):
        result, _, _ = run_and_trace(
            'int main() { printf("v=%d!", 42); return 0; }'
        )
        assert result.stdout == "v=42!"

    def test_deterministic_trace(self):
        source = (
            "int g[16]; int main() { int i; srand(7);"
            " for (i = 0; i < 16; i++) g[i] = rand() % 100; return 0; }"
        )
        _, first, _ = run_and_trace(source)
        _, second, _ = run_and_trace(source)
        assert first.records == second.records
