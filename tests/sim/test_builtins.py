"""Unit tests for the builtin library ("system library")."""

import pytest

from repro.sim.machine import run_and_trace
from repro.sim.trace import LIB_PC_BASE, is_library_pc


def run(source):
    return run_and_trace(source)


def lib_accesses(collector):
    return [a for a in collector.accesses() if a.is_library]


class TestPrintf:
    def test_basic_formats(self):
        result, _, _ = run(
            'int main() { printf("%d %c %s %x", -5, 65, "ok", 255); return 0; }'
        )
        assert result.stdout == "-5 A ok ff"

    def test_float_format(self):
        result, _, _ = run('int main() { printf("%f", 1.5); return 0; }')
        assert result.stdout.startswith("1.5")

    def test_width_format(self):
        result, _, _ = run('int main() { printf("%04d", 7); return 0; }')
        assert result.stdout == "0007"

    def test_percent_escape(self):
        result, _, _ = run('int main() { printf("100%%"); return 0; }')
        assert result.stdout == "100%"

    def test_unsigned_format(self):
        result, _, _ = run('int main() { printf("%u", -1); return 0; }')
        assert result.stdout == str(2**32 - 1)

    def test_format_string_reads_are_library_traffic(self):
        _, collector, _ = run('int main() { printf("abc"); return 0; }')
        accesses = lib_accesses(collector)
        assert len(accesses) == 4  # 'a' 'b' 'c' NUL
        assert all(not a.is_write for a in accesses)

    def test_puts_appends_newline(self):
        result, _, _ = run('int main() { puts("hi"); return 0; }')
        assert result.stdout == "hi\n"

    def test_putchar(self):
        result, _, _ = run("int main() { putchar(88); return 0; }")
        assert result.stdout == "X"


class TestMemoryBuiltins:
    def test_memset(self):
        result, _, _ = run(
            "char b[8]; int main() { memset(b, 7, 8); return b[0] + b[7]; }"
        )
        assert result.exit_code == 14

    def test_memcpy(self):
        result, _, _ = run(
            "int a[4] = {1,2,3,4}; int b[4];"
            "int main() { memcpy(b, a, 16); return b[3]; }"
        )
        assert result.exit_code == 4

    def test_memcpy_traffic_is_library_tagged(self):
        _, collector, _ = run(
            "int a[8]; int b[8]; int main() { memcpy(b, a, 32); return 0; }"
        )
        accesses = lib_accesses(collector)
        assert len(accesses) == 16  # 8 word loads + 8 word stores
        assert all(a.pc >= LIB_PC_BASE for a in accesses)

    def test_calloc_zeroes(self):
        result, _, _ = run(
            "int main() { int *p = (int*)calloc(4, 4); return p[3]; }"
        )
        assert result.exit_code == 0

    def test_malloc_regions_disjoint(self):
        result, _, _ = run(
            "int main() { char *a = (char*)malloc(16); char *b = (char*)malloc(16);"
            " *a = 1; *b = 2; return *a + *b; }"
        )
        assert result.exit_code == 3

    def test_strlen(self):
        result, _, _ = run('int main() { return strlen("hello"); }')
        assert result.exit_code == 5

    def test_strcpy(self):
        result, _, _ = run(
            'char d[8]; int main() { strcpy(d, "ab"); return d[0] + d[2]; }'
        )
        assert result.exit_code == ord("a")

    def test_strcmp(self):
        result, _, _ = run('int main() { return strcmp("abc", "abd"); }')
        assert result.exit_code == -1


class TestMathBuiltins:
    @pytest.mark.parametrize(
        "expr,expected",
        [
            ("sqrt(16.0)", 4),
            ("fabs(-2.5) * 2.0", 5),
            ("pow(2.0, 10.0)", 1024),
            ("floor(3.7)", 3),
            ("ceil(3.2)", 4),
            ("cos(0.0)", 1),
            ("exp(0.0)", 1),
        ],
    )
    def test_values(self, expr, expected):
        result, _, _ = run(f"int main() {{ return (int)({expr}); }}")
        assert result.exit_code == expected

    def test_math_reads_coefficient_tables(self):
        # Real libm reads polynomial tables; our model reproduces that as
        # library loads (the paper's fft system-call traffic).
        _, collector, _ = run("int main() { double d = sin(1.0); return 0; }")
        accesses = lib_accesses(collector)
        assert len(accesses) == 10
        assert all(not a.is_write for a in accesses)

    def test_abs(self):
        result, _, _ = run("int main() { return abs(-7) + labs(-3); }")
        assert result.exit_code == 10


class TestRandAndInput:
    def test_rand_deterministic(self):
        source = "int main() { srand(1); return rand() % 1000; }"
        first, _, _ = run(source)
        second, _, _ = run(source)
        assert first.exit_code == second.exit_code

    def test_srand_changes_sequence(self):
        one, _, _ = run("int main() { srand(1); return rand() % 1000; }")
        two, _, _ = run("int main() { srand(999); return rand() % 1000; }")
        assert one.exit_code != two.exit_code

    def test_read_samples_fills_buffer(self):
        result, _, _ = run(
            "int b[64]; int main() { int i; int nonzero = 0;"
            " read_samples(b, 64);"
            " for (i = 0; i < 64; i++) if (b[i] != 0) nonzero++;"
            " return nonzero > 32; }"
        )
        assert result.exit_code == 1

    def test_read_samples_traffic_is_library(self):
        _, collector, _ = run(
            "int b[16]; int main() { read_samples(b, 16); return 0; }"
        )
        writes = [a for a in lib_accesses(collector) if a.is_write]
        assert len(writes) == 16

    def test_read_samples_values_bounded(self):
        result, _, _ = run(
            "int b[128]; int main() { int i; read_samples(b, 128);"
            " for (i = 0; i < 128; i++)"
            "   if (b[i] < -512 || b[i] > 511) return 1;"
            " return 0; }"
        )
        assert result.exit_code == 0

    def test_read_samples_deterministic_across_runs(self):
        source = "int b[8]; int main() { read_samples(b, 8); return b[5] & 255; }"
        first, _, _ = run(source)
        second, _, _ = run(source)
        assert first.exit_code == second.exit_code
