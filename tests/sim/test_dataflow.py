"""Unit tests for the generic dataflow framework (repro.sim.dataflow).

The framework is the foundation under three consumers — fusion liveness,
guard elimination in the specializer, and the strengthened IR verifier —
so these tests pin the analyses directly at the bytecode level:
solver fixpoints, liveness equivalence with the naive per-instruction
iteration, definite assignment, SCCP edge pruning, interval/access
facts, the static global layout replay and loop trip counts.
"""

import pytest

from repro.sim import bytecode as bc
from repro.sim import dataflow as df
from repro.sim.machine import compile_program, lower_compiled, run_compiled
from repro.workloads.registry import MIBENCH_WORKLOADS


def lower(source: str):
    return lower_compiled(compile_program(source))


LOOP_SRC = """
int a[10];
int main(void) {
    int i;
    for (i = 0; i < 10; i++) a[i] = i;
    return a[3];
}
"""


# ---------------------------------------------------------------------------
# Generic solver
# ---------------------------------------------------------------------------


class TestSolve:
    def test_forward_join_over_diamond(self):
        # 0 -> {1, 2} -> 3; node values accumulate their own index bit.
        succs = [[1, 2], [3], [3], []]
        inputs, outputs = df.solve(
            4, succs, forward=True, bottom=0, boundary=0,
            transfer=lambda n, v: v | (1 << n),
            join=lambda a, b: a | b)
        assert inputs[3] == (1 << 0) | (1 << 1) | (1 << 2)
        assert outputs[3] == inputs[3] | (1 << 3)

    def test_backward_transposes_edges(self):
        succs = [[1], [2], []]
        inputs, outputs = df.solve(
            3, succs, forward=False, bottom=0, boundary=1 << 9,
            transfer=lambda n, v: v | (1 << n),
            join=lambda a, b: a | b)
        # Boundary enters at the exit (node 2) and flows backwards.
        assert inputs[0] == (1 << 9) | (1 << 2) | (1 << 1)

    def test_must_analysis_intersects(self):
        # Node 3 joins paths through 1 (defines bit 0) and 2 (nothing).
        succs = [[1, 2], [3], [3], []]
        inputs, _ = df.solve(
            4, succs, forward=True, bottom=0b11, boundary=0,
            transfer=lambda n, v: v | (0b1 if n == 1 else 0),
            join=lambda a, b: a & b)
        assert inputs[3] == 0


# ---------------------------------------------------------------------------
# Liveness: block-structured solve == naive per-instruction iteration
# ---------------------------------------------------------------------------


def naive_liveness(code):
    n = len(code)
    succs = [df._succ_indices(code, i) for i in range(n)]
    use_kill = [df._use_kill(ins) for ins in code]
    live_in = [0] * n
    live_out = [0] * n
    changed = True
    while changed:
        changed = False
        for i in range(n - 1, -1, -1):
            out = 0
            for s in succs[i]:
                out |= live_in[s]
            use, wr = use_kill[i]
            new_in = use | (out & ~wr)
            if out != live_out[i] or new_in != live_in[i]:
                live_out[i], live_in[i] = out, new_in
                changed = True
    return live_out


class TestLiveness:
    @pytest.mark.parametrize("name", ["adpcm", "fft"])
    def test_matches_naive_iteration_on_workloads(self, name):
        program = lower(MIBENCH_WORKLOADS[name].source)
        for fn in program.functions.values():
            assert df.liveness(fn.code) == naive_liveness(fn.code)

    def test_empty_code(self):
        assert df.liveness(()) == []


# ---------------------------------------------------------------------------
# Definite assignment over hand-built IR
# ---------------------------------------------------------------------------


class TestDefiniteAssignment:
    def test_branch_skips_definition(self):
        # slot0 is a parameter; slot1 is defined only on the fallthrough
        # path, then read after the merge.
        code = (
            (bc.OP_JZ, 0, 2),
            (bc.OP_CONST, 1, 7),
            (bc.OP_ADD_I, 2, 1, 1, 0xFFFFFFFF, 0x7FFFFFFF),
            (bc.OP_RET0,),
        )
        fn = bc.BytecodeFunction(
            "f", code=code, n_slots=3,
            params=[bc.ParamSpec(slot=0, in_memory=False, ctype=None,
                                 conv=1, mask=0xFFFFFFFF,
                                 maxv=0x7FFFFFFF)])
        reads = df.maybe_uninitialized_reads(fn)
        assert (2, 1) in reads           # slot1 may bypass its CONST
        assert all(slot != 0 for _, slot in reads)  # params are defined

    def test_straight_line_is_clean(self):
        code = (
            (bc.OP_CONST, 0, 1),
            (bc.OP_MOV, 1, 0),
            (bc.OP_RET, 1),
        )
        fn = bc.BytecodeFunction("f", code=code, n_slots=2)
        assert df.maybe_uninitialized_reads(fn) == []


# ---------------------------------------------------------------------------
# Sparse conditional constant propagation
# ---------------------------------------------------------------------------


class TestConstants:
    def test_statically_dead_branch_is_unreached(self):
        program = lower("""
        int main(void) {
            int x = 3;
            if (x < 1) { return 7; }
            return 0;
        }
        """)
        facts = df.constants(program.functions["main"])
        assert any(not facts.reachable(b.index)
                   for b in facts.cfg.blocks)
        # ... and the pruned edge is absent from the executable set.
        reachable = {b.index for b in facts.cfg.blocks
                     if facts.reachable(b.index)}
        for src, dst in facts.executable_edges:
            assert src in reachable and dst in reachable

    def test_loop_body_is_reachable(self):
        # The loop condition is not statically decided, so every block
        # holding a store (the body) must stay reachable.
        program = lower(LOOP_SRC)
        fn = program.functions["main"]
        facts = df.constants(fn)
        for block in facts.cfg.blocks:
            ops = {fn.code[i][0]
                   for i in range(block.start, block.end)}
            if ops & {bc.OP_STORE_I, bc.OP_STELEM_I}:
                assert facts.reachable(block.index)


# ---------------------------------------------------------------------------
# Interval domain algebra
# ---------------------------------------------------------------------------


class TestAValAlgebra:
    def test_join_widens_bounds_and_meets_congruence(self):
        a = df._exact(4)
        b = df._exact(8)
        lo, hi, mod, rem = df.join_aval(a, b)
        assert (lo, hi) == (4, 8)
        assert mod == 4 and rem == 0     # gcd congruence survives

    def test_add_and_scale(self):
        stride = df.scale_aval((0, 9, 1, 0), 4)
        assert stride == (0, 36, 4, 0)
        based = df.add_aval(stride, df._exact(100))
        assert based == (100, 136, 4, 0)

    def test_wrap_keeps_in_domain_values(self):
        aval = (0, 100, 1, 0)
        assert df.wrap_aval(aval, 0xFFFFFFFF, 0x7FFFFFFF) == aval

    def test_refine_cmp_lt(self):
        refined = df.refine_cmp(bc.OP_LT, (0, 100, 1, 0),
                                df._exact(10), True)
        assert refined is not None
        assert refined[0][1] == 9        # a < 10 caps hi at 9


# ---------------------------------------------------------------------------
# Access facts, layout replay and trip counts on a real program
# ---------------------------------------------------------------------------


class TestProgramFacts:
    def test_affine_store_is_page_local(self):
        # The specializer analyzes the *fused* code, where the governing
        # branch (OP_BR) lets the interval analysis refine the induction
        # variable on the body edge.
        program = bc.fuse_program(lower(LOOP_SRC))
        layout = df.static_global_layout(program)
        fn = program.functions["main"]
        facts = df.access_facts(fn, layout)
        stores = [facts[i] for i, ins in enumerate(fn.code)
                  if i in facts and ins[0] in (bc.OP_STORE_I,
                                               bc.OP_STELEM_I)]
        assert stores, "expected at least one analyzed store"
        fact = stores[0]
        base = layout[0]
        assert (fact.lo, fact.hi) == (base, base + 36)
        assert fact.mod == 4 and fact.size == 4
        assert fact.page == base >> 12
        assert fact.no_cross

    def test_static_layout_matches_vm(self):
        compiled = compile_program(LOOP_SRC)
        program = lower_compiled(compiled)
        result = run_compiled(compiled)
        assert tuple(result.machine._global_addrs) == \
            df.static_global_layout(program)

    def test_loop_trip_count_bound(self):
        # Trip counts read the governing fused branch (OP_BR), so they
        # are computed over the fused twin like the specializer's facts.
        compiled = compile_program(LOOP_SRC)
        program = bc.fuse_program(lower_compiled(compiled))
        counts = df.loop_trip_counts(program.functions["main"],
                                     compiled.checkpoint_map)
        assert 10 in counts.values()

    def test_unbounded_loop_reports_none(self):
        compiled = compile_program("""
        int main(void) {
            int i, n = 0;
            for (i = 0; i != -1; i++) { n++; if (n > 3) break; }
            return n;
        }
        """)
        program = bc.fuse_program(lower_compiled(compiled))
        counts = df.loop_trip_counts(program.functions["main"],
                                     compiled.checkpoint_map)
        assert counts and all(v is None or v >= 4 for v in counts.values())
