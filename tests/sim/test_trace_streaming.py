"""Tests for the batched trace protocol and the streaming trace parser."""

import io

import pytest

from repro.sim.trace import (
    BODY_BEGIN_CODE,
    BODY_END_CODE,
    CODE_TO_KIND,
    KIND_TO_CODE,
    LOOP_BEGIN_CODE,
    Access,
    Checkpoint,
    CheckpointInfo,
    CheckpointKind,
    CheckpointMap,
    TraceCollector,
    TraceWriter,
    expand_block,
    format_trace,
    parse_trace,
)


def small_map():
    cmap = CheckpointMap()
    cmap.add(CheckpointInfo(10, CheckpointKind.LOOP_BEGIN, 100, "while"))
    cmap.add(CheckpointInfo(11, CheckpointKind.BODY_BEGIN, 100, "while"))
    cmap.add(CheckpointInfo(12, CheckpointKind.BODY_END, 100, "while"))
    return cmap


BLOCK_ACCESSES = [
    (0x400100, 0x10000000, 4, False),
    (0x400204, 0x10000004, 4, True),
]
BLOCK_CHECKPOINTS = [
    (0, 10, LOOP_BEGIN_CODE),
    (0, 11, BODY_BEGIN_CODE),
    (2, 12, BODY_END_CODE),  # trails every access of the block
]


class TestKindCodes:
    def test_roundtrip(self):
        for kind, code in KIND_TO_CODE.items():
            assert CODE_TO_KIND[code] is kind


class TestBlockExpansion:
    def test_interleaving_preserved(self):
        records = list(expand_block(BLOCK_ACCESSES, BLOCK_CHECKPOINTS))
        assert [type(r).__name__ for r in records] == [
            "Checkpoint", "Checkpoint", "Access", "Access", "Checkpoint",
        ]
        assert records[0] == Checkpoint(10, CheckpointKind.LOOP_BEGIN)
        assert records[2] == Access(0x400100, 0x10000000, 4, False)
        assert records[4] == Checkpoint(12, CheckpointKind.BODY_END)

    def test_collector_emit_block(self):
        collector = TraceCollector()
        collector.emit_block(BLOCK_ACCESSES, BLOCK_CHECKPOINTS)
        assert len(collector) == 5
        assert len(collector.accesses()) == 2
        assert len(collector.checkpoints()) == 3

    def test_writer_emit_block_matches_per_record_output(self):
        blocked, classic = io.StringIO(), io.StringIO()
        TraceWriter(blocked).emit_block(BLOCK_ACCESSES, BLOCK_CHECKPOINTS)
        writer = TraceWriter(classic)
        for record in expand_block(BLOCK_ACCESSES, BLOCK_CHECKPOINTS):
            writer.emit(record)
        assert blocked.getvalue() == classic.getvalue()

    def test_checkpoint_only_block(self):
        collector = TraceCollector()
        collector.emit_block([], [(0, 10, LOOP_BEGIN_CODE)])
        assert len(collector.checkpoints()) == 1


class TestStreamingParse:
    TEXT = (
        "Checkpoint: 10\n"
        "Checkpoint: 11\n"
        "Instr: 400100 addr: 10000000 wr\n"
        "Checkpoint: 12\n"
    )

    def test_accepts_file_object(self):
        records = list(parse_trace(io.StringIO(self.TEXT), small_map()))
        assert len(records) == 4
        assert records[2].is_write

    def test_accepts_line_iterator_without_materializing(self):
        def lines():
            yield "Checkpoint: 10\n"
            for index in range(1000):
                yield f"Instr: 400100 addr: {0x1000 + 4 * index:x} rd\n"

        count = 0
        for record in parse_trace(lines(), small_map()):
            count += 1
        assert count == 1001

    def test_string_and_stream_agree(self):
        from_text = list(parse_trace(self.TEXT, small_map()))
        from_stream = list(parse_trace(io.StringIO(self.TEXT), small_map()))
        assert from_text == from_stream

    def test_roundtrip_through_writer(self):
        records = list(expand_block(BLOCK_ACCESSES, BLOCK_CHECKPOINTS))
        parsed = list(parse_trace(format_trace(records), small_map()))
        assert [type(r) for r in parsed] == [type(r) for r in records]

    @pytest.mark.parametrize("line", [
        "garbage",
        "Instr: 400100 7fff0000 wr",
        "Instr: 400100 addr: 7fff0000",
        "Instr: 400100 addr: 7fff0000 xx",
        "Instr: nothex addr: 7fff0000 wr",
        "Instr: 400100 addr: nothex wr",
        "Checkpoint: notanumber",
    ])
    def test_malformed_lines_rejected_with_line_number(self, line):
        trace = "Checkpoint: 10\n" + line + "\n"
        with pytest.raises(ValueError, match="line 2"):
            list(parse_trace(trace, small_map()))

    def test_unknown_checkpoint_id_rejected(self):
        with pytest.raises(ValueError, match="unknown checkpoint id 99"):
            list(parse_trace("Checkpoint: 99", small_map()))


class TestCheckpointMapInvalidation:
    def test_add_invalidates_begin_cache(self):
        cmap = small_map()
        assert cmap.begin_id_for(11) == 10  # populates the cache
        cmap.add(CheckpointInfo(20, CheckpointKind.LOOP_BEGIN, 200, "for"))
        cmap.add(CheckpointInfo(21, CheckpointKind.BODY_BEGIN, 200, "for"))
        cmap.add(CheckpointInfo(22, CheckpointKind.BODY_END, 200, "for"))
        assert cmap.begin_id_for(21) == 20
        assert cmap.begin_id_for(11) == 10

    def test_same_length_mutation_visible(self):
        # The old len()-based heuristic missed mutations that keep the map
        # the same size; explicit invalidation in add() must not.
        cmap = CheckpointMap()
        cmap.add(CheckpointInfo(10, CheckpointKind.LOOP_BEGIN, 100, "for"))
        assert cmap.begin_id_for(10) == 10
        replacement = CheckpointInfo(10, CheckpointKind.LOOP_BEGIN, 300, "for")
        del cmap.infos[10]
        cmap.add(replacement)
        cmap.add(CheckpointInfo(11, CheckpointKind.BODY_BEGIN, 300, "for"))
        assert cmap.begin_id_for(11) == 10
