"""Guard elimination must be observationally invisible.

The interval analysis licenses the specializer to drop paged-dispatch
guards (page-pinned access, no-cross fast path); a wrong fact would
silently read or write the wrong page. These tests pin the safety
story: byte-identical traces/stdout/stats against the fully checked
specialization, the unfused dispatch loop and the AST reference
interpreter — with ``REPRO_CHECK_RANGES=1`` (set by conftest) asserting
every derived range at runtime on top.
"""

import pytest

from repro.foray.filters import FilterConfig
from repro.lang.errors import MiniCRuntimeError
from repro.sim import bytecode as bc
from repro.sim import dataflow as df
from repro.sim.machine import EngineConfig, compile_program, run_compiled
from repro.sim.specialize import get_specialization
from repro.sim.trace import TraceCollector, format_trace
from repro.workloads.figures import FIG1A, FIG9
from repro.workloads.registry import MIBENCH_WORKLOADS

CONFIGS = {
    "guard_elim": EngineConfig(engine="bytecode", fusion=True,
                               guard_elim=True),
    "checked": EngineConfig(engine="bytecode", fusion=True,
                            guard_elim=False),
    "unfused": EngineConfig(engine="bytecode", fusion=False),
    "ast": EngineConfig(engine="ast"),
}


def run_one(source: str, config: EngineConfig):
    compiled = compile_program(source)
    collector = TraceCollector()
    result = run_compiled(compiled, sinks=(collector,), config=config)
    return result, collector


def assert_observationally_equal(source: str):
    baseline_name, (baseline, baseline_trace) = None, (None, None)
    for name, config in CONFIGS.items():
        result, trace = run_one(source, config)
        if baseline is None:
            baseline_name, baseline, baseline_trace = name, result, trace
            continue
        label = f"{name} vs {baseline_name}"
        assert result.exit_code == baseline.exit_code, label
        assert result.stdout == baseline.stdout, label
        assert result.stats.steps == baseline.stats.steps, label
        assert result.stats.calls == baseline.stats.calls, label
        assert format_trace(trace.records) == \
            format_trace(baseline_trace.records), label


@pytest.mark.parametrize("name", ["adpcm", "mpeg2"])
def test_workload_parity_all_execution_modes(name):
    assert_observationally_equal(MIBENCH_WORKLOADS[name].source)


@pytest.mark.parametrize("workload", [FIG1A, FIG9],
                         ids=lambda w: w.name)
def test_figure_parity_all_execution_modes(workload):
    assert_observationally_equal(workload.source)


def test_cross_page_access_parity():
    # A pointer-cast store straddling the 4 KiB page boundary exercises
    # the one case guard elimination must never mispredict.
    assert_observationally_equal("""
    char buf[8192];
    int main(void) {
        int i;
        for (i = 0; i < 8192; i += 1021) {
            *(int *)&buf[i] = i * 3 + 7;
        }
        return *(int *)&buf[4094];
    }
    """)


class TestSpecializationMetadata:
    SRC = """
    int a[64];
    int main(void) {
        int i;
        for (i = 0; i < 64; i++) a[i] = 2 * i;
        return a[10];
    }
    """

    def _lowered(self):
        compiled = compile_program(self.SRC)
        from repro.sim.machine import lower_compiled
        return lower_compiled(compiled)

    def test_guard_elim_pins_pages_and_layout(self):
        program = self._lowered()
        spec = get_specialization(program, guard_elim=True)
        assert spec.layout == df.static_global_layout(program)
        assert spec.pages, "expected page-pinned accesses"
        checked = get_specialization(program, guard_elim=False)
        assert checked.pages == () and checked.layout == ()

    def test_specializations_cached_per_mode(self):
        program = self._lowered()
        assert get_specialization(program, guard_elim=True) is \
            get_specialization(program, guard_elim=True)
        assert get_specialization(program, guard_elim=True) is not \
            get_specialization(program, guard_elim=False)

    def test_bind_rejects_layout_mismatch(self):
        import dataclasses

        program = self._lowered()
        vm = bc.BytecodeVM(program)
        vm.run()  # lays out globals
        spec = get_specialization(program, guard_elim=True)
        wrong = dataclasses.replace(
            spec, layout=tuple(a + 4096 for a in spec.layout))
        with pytest.raises(MiniCRuntimeError, match="layout"):
            wrong.bind(vm)


def test_range_check_mode_is_separate_cache_key(monkeypatch):
    compiled = compile_program(TestSpecializationMetadata.SRC)
    from repro.sim.machine import lower_compiled
    program = lower_compiled(compiled)
    monkeypatch.setenv("REPRO_CHECK_RANGES", "0")
    plain = get_specialization(program, guard_elim=True)
    monkeypatch.setenv("REPRO_CHECK_RANGES", "1")
    checked = get_specialization(program, guard_elim=True)
    assert plain is not checked
    assert "interval fact violated" in checked.source
    assert "interval fact violated" not in plain.source
