"""Tests for checkpoint instrumentation and emitted checkpoint streams."""

from repro.instrument.checkpoints import FIRST_CHECKPOINT_ID, instrument
from repro.lang import ast_nodes as ast
from repro.lang.semantics import parse_and_analyze
from repro.sim.machine import run_and_trace
from repro.sim.trace import Checkpoint, CheckpointKind


def checkpoint_kinds(collector):
    return [(r.checkpoint_id, r.kind) for r in collector.records
            if isinstance(r, Checkpoint)]


class TestAnnotation:
    def test_every_loop_gets_three_ids(self):
        program = parse_and_analyze(
            "int main() { int i, j; for (i=0;i<2;i++) while (j<2) j++;"
            " do { i++; } while (i < 4); return 0; }"
        )
        cmap = instrument(program)
        loops = [n for n in ast.walk(program) if isinstance(n, ast.Loop)]
        assert len(loops) == 3
        assert all(lp.is_instrumented for lp in loops)
        assert len(cmap) == 9

    def test_ids_are_unique_and_sequential(self):
        program = parse_and_analyze(
            "int main() { int i, j; for (i=0;i<2;i++) for (j=0;j<2;j++) ; return 0; }"
        )
        cmap = instrument(program)
        ids = sorted(cmap.infos)
        assert ids == list(range(FIRST_CHECKPOINT_ID, FIRST_CHECKPOINT_ID + 6))

    def test_map_kind_metadata(self):
        program = parse_and_analyze(
            "int main() { int i; while (i < 2) i++; return 0; }"
        )
        cmap = instrument(program)
        kinds = {info.kind for info in cmap.infos.values()}
        assert kinds == {
            CheckpointKind.LOOP_BEGIN,
            CheckpointKind.BODY_BEGIN,
            CheckpointKind.BODY_END,
        }
        assert all(info.loop_kind == "while" for info in cmap.infos.values())

    def test_double_instrumentation_rejected(self):
        program = parse_and_analyze(
            "int main() { int i; while (i < 2) i++; return 0; }"
        )
        instrument(program)
        try:
            instrument(program)
        except ValueError:
            pass
        else:  # pragma: no cover
            raise AssertionError("expected ValueError")


class TestEmittedCheckpointStream:
    def test_for_loop_stream(self):
        _, collector, _ = run_and_trace(
            "int main() { int i; for (i = 0; i < 2; i++) { } return 0; }"
        )
        assert checkpoint_kinds(collector) == [
            (10, CheckpointKind.LOOP_BEGIN),
            (11, CheckpointKind.BODY_BEGIN),
            (12, CheckpointKind.BODY_END),
            (11, CheckpointKind.BODY_BEGIN),
            (12, CheckpointKind.BODY_END),
        ]

    def test_zero_iteration_loop_emits_only_begin(self):
        _, collector, _ = run_and_trace(
            "int main() { int i; for (i = 0; i < 0; i++) { } return 0; }"
        )
        assert checkpoint_kinds(collector) == [(10, CheckpointKind.LOOP_BEGIN)]

    def test_do_while_body_first(self):
        _, collector, _ = run_and_trace(
            "int main() { int i = 0; do { i++; } while (i < 2); return 0; }"
        )
        kinds = checkpoint_kinds(collector)
        assert kinds[0] == (10, CheckpointKind.LOOP_BEGIN)
        assert kinds.count((11, CheckpointKind.BODY_BEGIN)) == 2

    def test_break_still_closes_body(self):
        # The body-end checkpoint sits in a cleanup position, so even a
        # broken-out iteration closes its body and the stream stays
        # well-nested.
        _, collector, _ = run_and_trace(
            "int main() { int i; for (i = 0; i < 10; i++) { if (i == 1) break; }"
            " return 0; }"
        )
        kinds = checkpoint_kinds(collector)
        assert kinds.count((11, CheckpointKind.BODY_BEGIN)) == 2
        assert kinds.count((12, CheckpointKind.BODY_END)) == 2

    def test_continue_still_closes_body(self):
        _, collector, _ = run_and_trace(
            "int main() { int i; for (i = 0; i < 3; i++) { if (i == 1) continue; }"
            " return 0; }"
        )
        kinds = checkpoint_kinds(collector)
        assert kinds.count((11, CheckpointKind.BODY_BEGIN)) == 3
        assert kinds.count((12, CheckpointKind.BODY_END)) == 3

    def test_return_inside_loop_closes_bodies(self):
        _, collector, _ = run_and_trace(
            "int f() { int i, j; for (i = 0; i < 4; i++)"
            " for (j = 0; j < 4; j++) if (i + j == 2) return 1; return 0; }"
            "int main() { return f(); }"
        )
        kinds = checkpoint_kinds(collector)
        begins = sum(1 for _, k in kinds if k is CheckpointKind.BODY_BEGIN)
        ends = sum(1 for _, k in kinds if k is CheckpointKind.BODY_END)
        assert begins == ends

    def test_loop_in_function_emits_per_call(self):
        _, collector, _ = run_and_trace(
            "void f() { int i; for (i = 0; i < 1; i++) { } }"
            "int main() { f(); f(); return 0; }"
        )
        kinds = checkpoint_kinds(collector)
        assert kinds.count((10, CheckpointKind.LOOP_BEGIN)) == 2
