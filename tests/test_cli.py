"""Tests for the command-line interface."""

import re

import pytest

from repro.cli import main

DEMO = """
int g[64];
int main() {
    int i;
    for (i = 0; i < 64; i++) g[i] = i;
    return 0;
}
"""


@pytest.fixture()
def demo_file(tmp_path):
    path = tmp_path / "demo.c"
    path.write_text(DEMO)
    return str(path)


class TestExtract:
    def test_prints_model(self, demo_file, capsys):
        assert main(["extract", demo_file]) == 0
        out = capsys.readouterr().out
        assert "for (int" in out
        assert "1 references" in out

    def test_annotated_flag(self, demo_file, capsys):
        main(["extract", demo_file, "--annotated"])
        out = capsys.readouterr().out
        assert "CHECKPOINT(" in out

    def test_filter_flags(self, demo_file, capsys):
        main(["extract", demo_file, "--nexec", "1000"])
        out = capsys.readouterr().out
        assert "0 references" in out

    def test_hints_flag(self, tmp_path, capsys):
        path = tmp_path / "two.c"
        path.write_text("""
        int A[512]; int acc;
        int foo(int off) { int i; int r = 0;
            for (i = 0; i < 32; i++) r += A[i + off]; return r; }
        int main() { int x;
            for (x = 0; x < 10; x++) acc += foo(10 * x);
            for (x = 0; x < 10; x++) acc += foo(4 * x);
            return 0; }
        """)
        main(["extract", str(path), "--hints"])
        out = capsys.readouterr().out
        assert "hint:" in out


class TestFiguresAndSuite:
    def test_figures_command(self, capsys):
        assert main(["figures"]) == 0
        out = capsys.readouterr().out
        for name in ("fig1a", "fig4a", "fig7a", "fig9"):
            assert name in out

    def test_suite_subset(self, capsys):
        assert main(["suite", "adpcm"]) == 0
        out = capsys.readouterr().out
        assert "adpcm" in out
        assert "paper:loops" in out


REUSE_DEMO = """
int table[64]; int out[4096];
int main() { int rep, i;
    for (rep = 0; rep < 64; rep++)
        for (i = 0; i < 64; i++)
            out[64 * rep + i] = table[i];
    return 0; }
"""


class TestSpm:
    @pytest.fixture()
    def reuse_file(self, tmp_path):
        path = tmp_path / "reuse.c"
        path.write_text(REUSE_DEMO)
        return str(path)

    def test_spm_command(self, reuse_file, capsys):
        assert main(["spm", reuse_file, "--spm-bytes", "1024"]) == 0
        out = capsys.readouterr().out
        assert "SPM capacity: 1024" in out
        assert "dma_copy" in out
        assert "SPM capacity sweep (allocator: dp)" in out

    def test_spm_sweep_ladder_and_allocator(self, reuse_file, capsys):
        assert main(["spm", reuse_file, "--sweep", "512,2048",
                     "--allocator", "greedy"]) == 0
        out = capsys.readouterr().out
        assert "SPM capacity sweep (allocator: greedy)" in out
        assert "512" in out and "2048" in out
        assert "pareto" in out

    def test_spm_sweep_default_ladder(self, reuse_file, capsys):
        assert main(["spm", reuse_file, "--sweep"]) == 0
        out = capsys.readouterr().out
        assert "16384" in out  # largest default-ladder capacity

    def test_spm_invalid_ladder_rejected(self, reuse_file):
        with pytest.raises(SystemExit):
            main(["spm", reuse_file, "--sweep", "512,banana"])

    def test_suite_spm_flag(self, capsys):
        assert main(["suite", "adpcm", "--spm"]) == 0
        out = capsys.readouterr().out
        assert "SPM capacity sweep" in out
        assert "pareto" in out

    def test_unknown_allocator_rejected(self, reuse_file):
        with pytest.raises(SystemExit):
            main(["spm", reuse_file, "--allocator", "magic"])


class TestCache:
    @pytest.fixture(autouse=True)
    def _fresh_memory_caches(self):
        # The disk tier only sees L1 *misses*: drop artifacts memoized by
        # earlier in-process tests so these CLI runs exercise the store.
        from repro.pipeline import clear_caches

        clear_caches()
        yield
        clear_caches()

    def test_path_resolves_env_default(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", "/tmp/env-cache-dir")
        assert main(["cache", "path"]) == 0
        assert capsys.readouterr().out.strip() == "/tmp/env-cache-dir"

    def test_stats_then_clear(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "store")
        assert main(["suite", "adpcm", "--cache-dir", cache_dir]) == 0
        captured = capsys.readouterr()
        assert "cache[extraction]: 0 hits, 1 misses, 1 stored" in captured.err
        assert "cache[" not in captured.out  # counters stay off stdout

        assert main(["cache", "stats", "--cache-dir", cache_dir]) == 0
        out = capsys.readouterr().out
        assert "artifact store:" in out and "schema v" in out
        assert re.search(r"extraction\s+1\s+\d+\s+0\s+1\s+1", out)

        assert main(["cache", "clear", "--cache-dir", cache_dir]) == 0
        assert "cleared 2 entries" in capsys.readouterr().out
        main(["cache", "stats", "--cache-dir", cache_dir])
        assert re.search(r"total\s+0\s+0", capsys.readouterr().out)

    def test_suite_counters_report_warm_hits(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "store")
        assert main(["suite", "adpcm", "--cache-dir", cache_dir]) == 0
        capsys.readouterr()
        from repro.pipeline import clear_caches

        clear_caches()  # drop L1 so the rerun exercises the disk tier
        assert main(["suite", "adpcm", "--cache-dir", cache_dir]) == 0
        assert ("cache[extraction]: 1 hits, 0 misses, 0 stored"
                in capsys.readouterr().err)

    def test_no_disk_cache_prints_no_counters(self, capsys):
        assert main(["suite", "adpcm", "--no-disk-cache"]) == 0
        assert "cache[" not in capsys.readouterr().err

    def test_unknown_action_rejected(self):
        with pytest.raises(SystemExit):
            main(["cache", "frobnicate"])


class TestGen:
    def test_gen_smoke(self, capsys):
        assert main(["gen", "--seeds", "2", "--no-disk-cache"]) == 0
        out = capsys.readouterr().out
        assert "fuzz: profile=small programs=2 failures=0 errors=0" in out
        assert "parity" in out and "transfer" in out

    def test_gen_json_payload(self, capsys):
        import json

        assert main(["gen", "--seeds", "2", "--json",
                     "--no-disk-cache"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["command"] == "gen"
        assert payload["ok"] is True
        assert payload["total"] == 2
        assert [p["seed"] for p in payload["programs"]] == [0, 1]
        assert set(payload["check_counts"]) >= {"parity", "ir", "static"}

    def test_gen_seeded_bug_exits_nonzero_with_reproducer(self, capsys):
        assert main(["gen", "--seeds", "1", "--check", "seeded-bug",
                     "--no-disk-cache"]) == 1
        out = capsys.readouterr().out
        assert "FAIL gen:small:0 [seeded-bug]" in out
        assert "replay: repro gen --profile small --seed-start 0" in out
        assert "minimized reproducer" in out

    def test_gen_check_subset_and_errors(self, capsys):
        assert main(["gen", "--seeds", "1", "--check", "ir,lint",
                     "--no-disk-cache"]) == 0
        out = capsys.readouterr().out
        assert "static" not in out
        with pytest.raises(SystemExit, match="unknown generation profile"):
            main(["gen", "--seeds", "1", "--profile", "bogus"])
        with pytest.raises(SystemExit, match="unknown fuzz check"):
            main(["gen", "--seeds", "1", "--check", "nosuch"])

    def test_gen_warm_rerun_reports_fuzz_hits(self, tmp_path, capsys):
        from repro.pipeline import clear_caches

        cache_dir = str(tmp_path / "store")
        clear_caches()  # a prior test's L1 entry would skip the store
        assert main(["gen", "--seeds", "2", "--check", "ir,lint",
                     "--cache-dir", cache_dir]) == 0
        capsys.readouterr()
        clear_caches()  # drop L1 so the rerun exercises the disk tier
        assert main(["gen", "--seeds", "2", "--check", "ir,lint",
                     "--cache-dir", cache_dir]) == 0
        captured = capsys.readouterr()
        assert "cache[fuzz]: 2 hits, 0 misses, 0 stored" in captured.err
        assert "(cached: 2)" in captured.out


class TestParser:
    def test_missing_command_errors(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_command_errors(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])
