"""Tests for the command-line interface."""

import pytest

from repro.cli import main

DEMO = """
int g[64];
int main() {
    int i;
    for (i = 0; i < 64; i++) g[i] = i;
    return 0;
}
"""


@pytest.fixture()
def demo_file(tmp_path):
    path = tmp_path / "demo.c"
    path.write_text(DEMO)
    return str(path)


class TestExtract:
    def test_prints_model(self, demo_file, capsys):
        assert main(["extract", demo_file]) == 0
        out = capsys.readouterr().out
        assert "for (int" in out
        assert "1 references" in out

    def test_annotated_flag(self, demo_file, capsys):
        main(["extract", demo_file, "--annotated"])
        out = capsys.readouterr().out
        assert "CHECKPOINT(" in out

    def test_filter_flags(self, demo_file, capsys):
        main(["extract", demo_file, "--nexec", "1000"])
        out = capsys.readouterr().out
        assert "0 references" in out

    def test_hints_flag(self, tmp_path, capsys):
        path = tmp_path / "two.c"
        path.write_text("""
        int A[512]; int acc;
        int foo(int off) { int i; int r = 0;
            for (i = 0; i < 32; i++) r += A[i + off]; return r; }
        int main() { int x;
            for (x = 0; x < 10; x++) acc += foo(10 * x);
            for (x = 0; x < 10; x++) acc += foo(4 * x);
            return 0; }
        """)
        main(["extract", str(path), "--hints"])
        out = capsys.readouterr().out
        assert "hint:" in out


class TestFiguresAndSuite:
    def test_figures_command(self, capsys):
        assert main(["figures"]) == 0
        out = capsys.readouterr().out
        for name in ("fig1a", "fig4a", "fig7a", "fig9"):
            assert name in out

    def test_suite_subset(self, capsys):
        assert main(["suite", "adpcm"]) == 0
        out = capsys.readouterr().out
        assert "adpcm" in out
        assert "paper:loops" in out


REUSE_DEMO = """
int table[64]; int out[4096];
int main() { int rep, i;
    for (rep = 0; rep < 64; rep++)
        for (i = 0; i < 64; i++)
            out[64 * rep + i] = table[i];
    return 0; }
"""


class TestSpm:
    @pytest.fixture()
    def reuse_file(self, tmp_path):
        path = tmp_path / "reuse.c"
        path.write_text(REUSE_DEMO)
        return str(path)

    def test_spm_command(self, reuse_file, capsys):
        assert main(["spm", reuse_file, "--spm-bytes", "1024"]) == 0
        out = capsys.readouterr().out
        assert "SPM capacity: 1024" in out
        assert "dma_copy" in out
        assert "SPM capacity sweep (allocator: dp)" in out

    def test_spm_sweep_ladder_and_allocator(self, reuse_file, capsys):
        assert main(["spm", reuse_file, "--sweep", "512,2048",
                     "--allocator", "greedy"]) == 0
        out = capsys.readouterr().out
        assert "SPM capacity sweep (allocator: greedy)" in out
        assert "512" in out and "2048" in out
        assert "pareto" in out

    def test_spm_sweep_default_ladder(self, reuse_file, capsys):
        assert main(["spm", reuse_file, "--sweep"]) == 0
        out = capsys.readouterr().out
        assert "16384" in out  # largest default-ladder capacity

    def test_spm_invalid_ladder_rejected(self, reuse_file):
        with pytest.raises(SystemExit):
            main(["spm", reuse_file, "--sweep", "512,banana"])

    def test_suite_spm_flag(self, capsys):
        assert main(["suite", "adpcm", "--spm"]) == 0
        out = capsys.readouterr().out
        assert "SPM capacity sweep" in out
        assert "pareto" in out

    def test_unknown_allocator_rejected(self, reuse_file):
        with pytest.raises(SystemExit):
            main(["spm", reuse_file, "--allocator", "magic"])


class TestParser:
    def test_missing_command_errors(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_command_errors(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])
