"""Unit tests for census, coverage and report formatting."""

from repro.analysis.census import LoopCensus, count_lines, loop_census
from repro.analysis.coverage import ForayFormCoverage, MemoryBehavior
from repro.analysis.report import (
    format_table1,
    format_table2,
    format_table3,
    summarize_headline,
)


class TestCensus:
    def test_count_lines_ignores_blank(self):
        assert count_lines("a\n\n  \nb\n") == 2

    def test_loop_census_breakdown(self):
        census = loop_census(
            "x", "line\n", {1: "for", 2: "for", 3: "while", 4: "do"}
        )
        assert census.total_loops == 4
        assert census.for_loops == 2
        assert census.for_pct == 50.0
        assert census.while_pct == 25.0
        assert census.non_for_pct == 50.0

    def test_empty_census(self):
        census = loop_census("x", "", {})
        assert census.total_loops == 0
        assert census.for_pct == 0.0


class TestCoverageDataclasses:
    def test_table2_percentages(self):
        row = ForayFormCoverage("x", loops_in_model=10, refs_in_model=8,
                                loops_in_source_form=4, refs_in_source_form=2)
        assert row.loops_not_in_source_form_pct == 60.0
        assert row.refs_not_in_source_form_pct == 75.0
        assert row.improvement_ratio == 4.0

    def test_table2_infinite_ratio(self):
        row = ForayFormCoverage("x", 2, 1, 0, 0)
        assert row.improvement_ratio == float("inf")

    def test_table2_empty_model(self):
        row = ForayFormCoverage("x", 0, 0, 0, 0)
        assert row.loops_not_in_source_form_pct == 0.0
        assert row.improvement_ratio == 1.0

    def test_table3_percentages(self):
        row = MemoryBehavior(
            "x", total_references=100, total_accesses=1000, total_footprint=500,
            model_references=10, model_accesses=400, model_footprint=250,
            lib_references=20, lib_accesses=100, lib_footprint=50,
        )
        assert row.model_refs_pct == 10.0
        assert row.model_accesses_pct == 40.0
        assert row.model_footprint_pct == 50.0
        assert row.lib_accesses_pct == 10.0
        assert row.other_accesses_pct == 50.0


class TestReportFormatting:
    CENSUS = [LoopCensus("jpeg", 100, 20, 13, 6, 1)]
    COVERAGE = [ForayFormCoverage("jpeg", 10, 8, 6, 5)]
    BEHAVIOR = [MemoryBehavior("jpeg", 100, 1000, 500, 10, 400, 250, 20, 100, 50)]

    def test_table1_includes_paper_columns(self):
        text = format_table1(self.CENSUS)
        assert "jpeg" in text
        assert "paper:loops" in text
        assert "169" in text  # paper jpeg loop count

    def test_table1_without_paper(self):
        text = format_table1(self.CENSUS, with_paper=False)
        assert "paper" not in text

    def test_table2_ratio_column(self):
        text = format_table2(self.COVERAGE)
        assert "1.60" in text

    def test_table3_columns(self):
        text = format_table3(self.BEHAVIOR)
        assert "model:acc%" in text
        assert "40" in text

    def test_unknown_benchmark_dashes(self):
        text = format_table1([LoopCensus("mystery", 1, 1, 1, 0, 0)])
        assert "-" in text

    def test_headline_summary(self):
        text = summarize_headline(self.COVERAGE)
        assert "1.60x" in text
        assert "paper: ~2x" in text

    def test_headline_with_infinite_ratio(self):
        rows = [ForayFormCoverage("a", 2, 4, 0, 0),
                ForayFormCoverage("b", 2, 4, 2, 2)]
        text = summarize_headline(rows)
        assert "2.00x" in text or "3.00x" in text
