"""Cross-cutting property-based tests (hypothesis).

These tie the whole pipeline together: programs are *generated*, executed
on the simulator, and the extracted FORAY model is checked against ground
truth computed directly in Python.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.foray.extractor import extract_from_source
from repro.foray.filters import FilterConfig
from repro.sim.machine import run_and_trace

RELAXED = FilterConfig(nexec=1, nloc=1)


class TestInterpreterArithmetic:
    @given(
        a=st.integers(min_value=-1000, max_value=1000),
        b=st.integers(min_value=-1000, max_value=1000),
    )
    @settings(max_examples=60, deadline=None)
    def test_int_ops_match_c_semantics(self, a, b):
        source = f"""
        int main() {{
            int a = {a};
            int b = {b};
            int sum = a + b;
            int prod = a * b;
            int q = b != 0 ? a / b : 0;
            int r = b != 0 ? a % b : 0;
            return sum * 7 + prod * 3 + q * 2 + r;
        }}
        """
        result, _, _ = run_and_trace(source)

        def c_div(x, y):
            q = abs(x) // abs(y)
            return q if (x < 0) == (y < 0) else -q

        q = c_div(a, b) if b else 0
        r = a - q * b if b else 0
        expected = (a + b) * 7 + (a * b) * 3 + q * 2 + r
        expected = ((expected + 2**31) % 2**32) - 2**31  # int wrap
        assert result.exit_code == expected

    @given(st.lists(st.integers(min_value=-100, max_value=100),
                    min_size=1, max_size=12))
    @settings(max_examples=40, deadline=None)
    def test_array_sum_matches_python(self, values):
        items = ", ".join(str(v) for v in values)
        source = f"""
        int data[{len(values)}] = {{{items}}};
        int main() {{
            int i, total = 0;
            for (i = 0; i < {len(values)}; i++) total += data[i];
            return total;
        }}
        """
        result, _, _ = run_and_trace(source)
        assert result.exit_code == sum(values)


class TestEndToEndAffineRecovery:
    @given(
        stride=st.integers(min_value=1, max_value=8),
        trips=st.tuples(st.integers(min_value=2, max_value=6),
                        st.integers(min_value=3, max_value=8)),
    )
    @settings(max_examples=20, deadline=None)
    def test_generated_nest_recovered_exactly(self, stride, trips):
        outer_trip, inner_trip = trips
        row = 64  # elements per row
        source = f"""
        int g[{outer_trip * row}];
        int main() {{
            int i, j;
            for (i = 0; i < {outer_trip}; i++)
                for (j = 0; j < {inner_trip}; j++)
                    g[{row} * i + {stride} * j] = i + j;
            return 0;
        }}
        """
        model, _, _ = extract_from_source(source, RELAXED)
        stores = [r for r in model.references if r.writes > 0]
        assert len(stores) == 1
        (ref,) = stores
        assert ref.is_full
        assert ref.expression.used_coefficients() == (4 * stride, 4 * row)
        assert ref.exec_count == outer_trip * inner_trip

    @given(
        trip=st.integers(min_value=20, max_value=60),
        start=st.integers(min_value=0, max_value=32),
    )
    @settings(max_examples=20, deadline=None)
    def test_pointer_walk_equals_indexed_form(self, trip, start):
        """A pointer walk and an explicit indexed loop over the same data
        must produce the same affine expression (same coefficients and
        footprint), differing only in pc."""
        indexed = f"""
        char buf[256];
        int main() {{
            int i;
            for (i = 0; i < {trip}; i++) buf[{start} + i] = (char)i;
            return 0;
        }}
        """
        walking = f"""
        char buf[256];
        int main() {{
            char *p = buf + {start};
            int i;
            for (i = 0; i < {trip}; i++) *p++ = (char)i;
            return 0;
        }}
        """
        model_a, _, _ = extract_from_source(indexed, RELAXED)
        model_b, _, _ = extract_from_source(walking, RELAXED)
        ref_a = [r for r in model_a.references if r.writes][0]
        ref_b = [r for r in model_b.references if r.writes][0]
        assert ref_a.expression.used_coefficients() == \
            ref_b.expression.used_coefficients()
        assert ref_a.expression.const == ref_b.expression.const
        assert ref_a.footprint == ref_b.footprint


class TestModelInvariants:
    @given(
        trips=st.lists(st.integers(min_value=1, max_value=5),
                       min_size=1, max_size=3),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=25, deadline=None)
    def test_footprint_never_exceeds_exec_count(self, trips, seed):
        depth = len(trips)
        body = f"g[({seed % 7} * k) % 64] = k; k++;"
        loops_open = "".join(
            f"for (i{d} = 0; i{d} < {t}; i{d}++) {{" for d, t in enumerate(trips)
        )
        loops_close = "}" * depth
        decls = ", ".join(f"i{d}" for d in range(depth))
        source = f"""
        int g[64];
        int main() {{
            int {decls};
            int k = 0;
            {loops_open}
            {body}
            {loops_close}
            return 0;
        }}
        """
        model, _, _ = extract_from_source(source, RELAXED)
        for ref in model.unfiltered_references:
            assert ref.footprint <= ref.exec_count
            assert ref.reads + ref.writes == ref.exec_count
            assert 0 <= ref.expression.num_iterators <= ref.nest_depth

    @given(st.integers(min_value=2, max_value=30))
    @settings(max_examples=15, deadline=None)
    def test_trace_stats_account_for_all_accesses(self, trip):
        source = f"""
        int g[64];
        int main() {{
            int i;
            for (i = 0; i < {trip}; i++) g[i % 64] = i;
            memset(g, 0, 64);
            return 0;
        }}
        """
        model, result, _ = extract_from_source(source, RELAXED)
        stats = model.trace_stats
        assert stats.total_accesses == result.stats.accesses
        assert stats.user_accesses + stats.lib_accesses == stats.total_accesses
