"""Tests for the input-scenario matrix and the cross-input validation
pipeline: scenario declarations, the validate stage, the (workload x
scenario) fan-out, the artifact cache, the stability table and the CLI."""

import pytest

from repro.analysis.report import format_stability_table
from repro.pipeline import (
    PipelineConfig,
    PipelineContext,
    ValidationConfig,
    clear_caches,
    exploration_key,
    full_flow,
    run_stages,
    validate_suite,
    validate_workload,
    validation_cache,
)
from repro.sim.machine import compile_program
from repro.workloads.registry import MIBENCH_WORKLOADS, get_workload

QUICK_VALIDATION = ValidationConfig(enabled=True, max_scenarios=2)


@pytest.fixture(scope="session")
def matrix_results():
    """The full (workload x scenario) matrix, shared by every test."""
    return validate_suite(jobs=2)


class TestScenarioDeclarations:
    @pytest.mark.parametrize("name", sorted(MIBENCH_WORKLOADS))
    def test_at_least_three_scenarios(self, name):
        workload = MIBENCH_WORKLOADS[name]
        assert len(workload.scenarios) >= 3
        assert len(set(workload.scenario_names())) == len(workload.scenarios)

    @pytest.mark.parametrize("name", sorted(MIBENCH_WORKLOADS))
    def test_nominal_scenario_renders_legacy_source(self, name):
        workload = MIBENCH_WORKLOADS[name]
        assert workload.profile_scenario is workload.scenarios[0]
        assert workload.source_for(workload.scenarios[0]) == workload.source

    @pytest.mark.parametrize("name", sorted(MIBENCH_WORKLOADS))
    def test_scenarios_share_one_ast_skeleton(self, name):
        # Source parameters may only change literals: every scenario must
        # produce the same checkpoint map, or cross-scenario replay could
        # not match references by (loop path, pc).
        workload = MIBENCH_WORKLOADS[name]
        nominal = compile_program(workload.source).checkpoint_map
        for scenario in workload.scenarios[1:]:
            compiled = compile_program(workload.source_for(scenario))
            assert compiled.checkpoint_map == nominal, scenario.name

    def test_unknown_scenario_lists_known(self):
        workload = get_workload("adpcm")
        with pytest.raises(KeyError, match="nominal"):
            workload.scenario("symphony")


class TestMatrixResults:
    def test_covers_whole_suite(self, matrix_results):
        assert [r.workload for r in matrix_results] == list(MIBENCH_WORKLOADS)
        for result in matrix_results:
            assert result.scenario_count >= 3
            assert len(result.cross) == result.scenario_count - 1

    def test_full_references_self_validate_perfectly(self, matrix_results):
        for result in matrix_results:
            assert result.self_validation.full_accuracy == 1.0, result.workload
            assert result.self_validation.overall_accuracy == 1.0

    def test_cross_reports_cover_every_model_reference(self, matrix_results):
        for result in matrix_results:
            refs = len(result.self_validation.per_reference)
            assert refs >= 1
            for cell in result.cross:
                assert len(cell.report.per_reference) == refs
                assert cell.profile == result.profile
                assert cell.workload == result.workload

    def test_suite_models_transfer_across_inputs(self, matrix_results):
        # The operational answer to the paper's open question: the suite's
        # access patterns are input-independent, so every scenario replay
        # predicts essentially all exercised accesses.
        for result in matrix_results:
            assert result.min_accuracy >= 0.95, result.workload
            assert result.passes(threshold=0.95)

    def test_stability_table_renders(self, matrix_results):
        table = format_stability_table(matrix_results, threshold=0.5)
        for name in MIBENCH_WORKLOADS:
            assert name in table
        assert "worst ref" in table and "self-full%" in table
        assert "LOW" not in table


class TestMatrixFanOut:
    def test_parallel_matches_serial(self):
        names = ("adpcm", "fft")
        config = PipelineConfig(cache=False,
                                validation=ValidationConfig(enabled=True))
        serial = validate_suite(names, jobs=1, config=config)
        parallel = validate_suite(names, jobs=2, config=config)
        assert serial == parallel

    def test_scenario_truncation(self):
        config = PipelineConfig(
            validation=ValidationConfig(enabled=True, max_scenarios=2))
        result = validate_workload("adpcm", config=config)
        assert result.scenario_count == 2
        assert len(result.cross) == 1

    def test_explicit_scenario_subset_and_profile(self):
        config = PipelineConfig(validation=ValidationConfig(
            enabled=True, scenarios=("nominal", "silence"),
            profile="silence"))
        result = validate_workload("adpcm", config=config)
        assert result.profile == "silence"
        assert [cell.scenario for cell in result.cross] == ["nominal"]

    def test_workload_without_scenarios_rejected(self):
        with pytest.raises(ValueError, match="no scenario matrix"):
            validate_workload("fig1a")

    def test_undeclared_profile_rejected_cleanly(self):
        # 'silence' exists on adpcm but not on jpeg: the error must name
        # the workload instead of crashing with a raw KeyError.
        config = PipelineConfig(validation=ValidationConfig(
            enabled=True, profile="silence"))
        with pytest.raises(ValueError, match="jpeg.*silence"):
            validate_workload("jpeg", config=config)

    def test_scenarios_below_two_rejected(self):
        config = PipelineConfig(validation=ValidationConfig(
            enabled=True, max_scenarios=1))
        with pytest.raises(ValueError, match="max_scenarios must be >= 2"):
            validate_workload("adpcm", config=config)


class TestValidationCache:
    def test_replays_memoized(self):
        clear_caches()
        config = PipelineConfig(validation=ValidationConfig(
            enabled=True, max_scenarios=2))
        validate_workload("adpcm", config=config)
        misses = validation_cache.misses
        hits = validation_cache.hits
        validate_workload("adpcm", config=config)
        assert validation_cache.misses == misses
        assert validation_cache.hits > hits
        clear_caches()

    def test_cache_keyed_by_scenario_input(self):
        clear_caches()
        config = PipelineConfig(validation=ValidationConfig(enabled=True))
        validate_workload("adpcm", config=config)
        # Every matrix cell (self + 3 cross) entered the cache separately.
        assert len(validation_cache) == 4
        clear_caches()


class TestValidateStage:
    def test_stage_disabled_by_default(self):
        workload = get_workload("adpcm")
        ctx = PipelineContext(workload.source, PipelineConfig(),
                              name="adpcm")
        run_stages(ctx, upto="validate")
        assert ctx.validation is None

    def test_stage_populates_validation(self):
        workload = get_workload("adpcm")
        config = PipelineConfig(validation=QUICK_VALIDATION)
        ctx = PipelineContext(workload.source, config, name="adpcm")
        run_stages(ctx, upto="validate")
        assert ctx.validation is not None
        assert ctx.validation.workload == "adpcm"
        assert ctx.validation.self_validation.full_accuracy == 1.0

    def test_stage_skips_adhoc_sources(self):
        source = "int main() { return 0; }"
        config = PipelineConfig(validation=QUICK_VALIDATION)
        ctx = PipelineContext(source, config, name="<anonymous>")
        run_stages(ctx, upto="validate")
        assert ctx.validation is None

    def test_stage_skips_modified_source_under_registry_name(self):
        # A modified source run under a registry name must not be
        # silently "validated" against the pristine registry program.
        config = PipelineConfig(validation=QUICK_VALIDATION)
        ctx = PipelineContext("int main() { return 0; }", config,
                              name="adpcm")
        run_stages(ctx, upto="validate")
        assert ctx.validation is None

    def test_vacuous_cross_cell_fails_the_gate(self):
        from repro.foray.validate import (
            ScenarioValidation,
            ValidationReport,
            WorkloadValidation,
        )

        empty = ValidationReport()  # zero references, nothing scored
        result = WorkloadValidation(
            workload="demo", profile="nominal", scenario_count=2,
            self_validation=empty,
            cross=(ScenarioValidation("demo", "other", "nominal",
                                      "bytecode", empty),),
        )
        # overall_accuracy is vacuously 1.0, but the gate must fail.
        assert result.min_accuracy == 1.0
        assert not result.passes()

    def test_full_flow_carries_validation(self):
        workload = get_workload("adpcm")
        config = PipelineConfig(validation=QUICK_VALIDATION)
        flow = full_flow("adpcm", workload.source, config=config)
        assert flow.validation is not None
        assert flow.validation.passes()


class TestLadderNormalization:
    def test_exploration_key_canonicalizes_ladders(self):
        config = PipelineConfig()
        source = "int main() { return 0; }"
        scrambled = exploration_key(source, config, (4096, 256, 256, 1024),
                                    "dp", None)
        sorted_key = exploration_key(source, config, (256, 1024, 4096),
                                     "dp", None)
        assert scrambled == sorted_key
        other = exploration_key(source, config, (256, 1024), "dp", None)
        assert other != sorted_key

    def test_cached_exploration_shares_equivalent_ladders(self):
        from repro.pipeline import cached_exploration, exploration_cache
        from repro.workloads.registry import get_workload

        clear_caches()
        config = PipelineConfig()
        workload = get_workload("adpcm")
        from repro.pipeline import extract_foray_model

        model = extract_foray_model(workload.source, config=config).model
        first = cached_exploration(workload.source, config, model,
                                   capacities=(1024, 256))
        hits = exploration_cache.hits
        second = cached_exploration(workload.source, config, model,
                                    capacities=(256, 1024, 256))
        assert second is first  # one cache entry for equivalent ladders
        assert exploration_cache.hits > hits
        assert [p.capacity_bytes for p in first] == [256, 1024]
        clear_caches()


class TestCli:
    def test_validate_command(self, capsys):
        from repro.cli import main

        assert main(["validate", "adpcm", "--scenarios", "2"]) == 0
        out = capsys.readouterr().out
        assert "Cross-input stability" in out
        assert "adpcm" in out and "ok" in out

    def test_suite_validate_flag(self, capsys):
        from repro.cli import main

        assert main(["suite", "adpcm", "--validate", "--scenarios", "2",
                     "--jobs", "2"]) == 0
        out = capsys.readouterr().out
        assert "Cross-input stability" in out

    def test_threshold_gates_exit_code(self, capsys):
        from repro.cli import main

        # An impossible threshold must flip the exit code (and the
        # status column), without crashing the run.
        assert main(["validate", "adpcm", "--scenarios", "2",
                     "--threshold", "1.1"]) == 1
        assert "LOW" in capsys.readouterr().out

    def test_undeclared_profile_is_clean_cli_error(self):
        from repro.cli import main

        with pytest.raises(SystemExit, match="validate: .*silence"):
            main(["validate", "jpeg", "--profile", "silence"])

    def test_scenarios_one_is_clean_cli_error(self):
        from repro.cli import main

        with pytest.raises(SystemExit, match="max_scenarios must be >= 2"):
            main(["validate", "adpcm", "--scenarios", "1"])

    def test_ladder_rejects_zero_capacity(self):
        from repro.cli import _parse_ladder

        with pytest.raises(SystemExit, match="invalid capacity ladder"):
            _parse_ladder("0,1024")
        with pytest.raises(SystemExit, match="invalid capacity ladder"):
            _parse_ladder("-256")

    def test_ladder_normalized(self):
        from repro.cli import _parse_ladder

        assert _parse_ladder("4096,256,256,1024") == (256, 1024, 4096)
