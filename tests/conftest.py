"""Shared fixtures.

Running a workload takes seconds (it is a full simulated profile), so the
expensive artifacts — the six suite reports and the figure extractions —
are computed once per session and shared by every test that needs them.
"""

from __future__ import annotations

import os

import pytest

# Every simulated run in the test suite structurally verifies the lowered
# and fused bytecode first (memoized per compiled program, so the cost is
# one pass per program). See repro.sim.verify.
os.environ.setdefault("REPRO_VERIFY_IR", "1")
# ... and every specialized run asserts the interval analysis' derived
# address ranges at runtime, so a guard eliminated on a wrong fact fails
# loudly instead of silently touching the wrong page. See
# repro.sim.dataflow / repro.sim.specialize.
os.environ.setdefault("REPRO_CHECK_RANGES", "1")

from repro.foray.filters import FilterConfig
from repro.pipeline import WorkloadReport, extract_foray_model, run_workload
from repro.workloads.figures import FIG1A, FIG1B, FIG4A, FIG7A, FIG7B, FIG9
from repro.workloads.registry import MIBENCH_WORKLOADS

#: Relaxed filter used when a test wants to see every analyzable reference.
RELAXED = FilterConfig(nexec=1, nloc=1)


@pytest.fixture(autouse=True)
def _isolated_cache_dir(tmp_path, monkeypatch):
    """Point every CLI invocation's default disk artifact store at a
    per-test directory, so tests never touch (or depend on) the user's
    ``~/.cache/repro``. Library calls are unaffected: ``PipelineConfig``
    only uses a disk store when ``cache_dir`` is set explicitly."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "artifact-cache"))


@pytest.fixture(scope="session")
def suite_reports() -> dict[str, WorkloadReport]:
    """Phase I + baseline + metrics for every registered suite workload."""
    return {
        name: run_workload(name, workload.source)
        for name, workload in MIBENCH_WORKLOADS.items()
    }


def _extract(workload, filter_config=None):
    return extract_foray_model(workload.source, filter_config)


@pytest.fixture(scope="session")
def fig1a_extraction():
    return _extract(FIG1A)


@pytest.fixture(scope="session")
def fig1b_extraction():
    # The example runs only 16 iterations (paper Figure 2, bottom), below
    # the paper's Nexec=20 production threshold — relax for the test.
    return _extract(FIG1B, RELAXED)


@pytest.fixture(scope="session")
def fig4a_extraction():
    return _extract(FIG4A, RELAXED)


@pytest.fixture(scope="session")
def fig7a_extraction():
    return _extract(FIG7A, RELAXED)


@pytest.fixture(scope="session")
def fig7b_extraction():
    return _extract(FIG7B, RELAXED)


@pytest.fixture(scope="session")
def fig9_extraction():
    return _extract(FIG9)
