"""The cache-hierarchy evaluation matrix: engine parity, caching, CLI."""

import json

import pytest

import repro.pipeline as pipeline
from repro.analysis.report import format_hier_table
from repro.cachesim.model import CacheConfig
from repro.cli import main
from repro.pipeline import (
    HierarchyConfig,
    PipelineConfig,
    SpmConfig,
    clear_caches,
    full_flow,
    hier_suite,
    hierarchy_for_source,
)
from repro.workloads.registry import MIBENCH_WORKLOADS

SMALL_CACHE = CacheConfig(line_bytes=16, sets=8, ways=2)


@pytest.fixture(autouse=True)
def fresh_hierarchy_cache():
    """Hierarchy cells must not leak across tests (the extraction and
    compile caches may — they are engine-keyed and deterministic)."""
    pipeline.hierarchy_cache.clear()
    yield
    pipeline.hierarchy_cache.clear()


class TestEngineParity:
    @pytest.mark.parametrize("name", sorted(MIBENCH_WORKLOADS))
    def test_hierarchy_report_parity(self, name):
        """Both engines must produce the identical HierarchyReport for
        every suite workload (the traces are byte-identical, so every
        cache counter — and thus every derived energy — must match)."""
        workload = MIBENCH_WORKLOADS[name]
        reports = {}
        for engine in ("ast", "bytecode"):
            config = PipelineConfig(engine=engine)
            reports[engine] = hierarchy_for_source(
                name, workload.source, config, SMALL_CACHE
            )
        assert reports["bytecode"] == reports["ast"]
        assert (reports["bytecode"].fingerprint()
                == reports["ast"].fingerprint())


class TestMatrixCaching:
    def _counting_run_compiled(self, monkeypatch):
        real = pipeline.run_compiled
        calls = []

        def wrapper(*args, **kwargs):
            calls.append(1)
            return real(*args, **kwargs)

        monkeypatch.setattr(pipeline, "run_compiled", wrapper)
        return calls

    def test_warm_matrix_performs_zero_simulations(self, tmp_path,
                                                   monkeypatch):
        calls = self._counting_run_compiled(monkeypatch)
        config = PipelineConfig(
            cache_dir=str(tmp_path / "store"),
            hierarchy=HierarchyConfig(enabled=True, cache=SMALL_CACHE),
        )
        cold = hier_suite(("adpcm", "gsm"), config=config)
        cold_calls = len(calls)
        assert cold_calls > 0

        # Drop every in-memory cache: the rerun may only be served from
        # the disk store — and must simulate nothing at all.
        clear_caches()
        warm = hier_suite(("adpcm", "gsm"), config=config)
        assert len(calls) == cold_calls
        assert [r.fingerprint() for r in warm] == \
            [r.fingerprint() for r in cold]
        assert warm == cold

    def test_cache_off_recomputes(self, monkeypatch):
        calls = self._counting_run_compiled(monkeypatch)
        config = PipelineConfig(
            cache=False,
            hierarchy=HierarchyConfig(enabled=True, cache=SMALL_CACHE),
        )
        hier_suite(("adpcm",), config=config)
        first = len(calls)
        hier_suite(("adpcm",), config=config)
        assert len(calls) > first

    def test_scenario_and_config_axes_multiply(self):
        sweep = (CacheConfig(line_bytes=16, sets=4, ways=1),)
        config = PipelineConfig(hierarchy=HierarchyConfig(
            enabled=True, cache=SMALL_CACHE, sweep=sweep, max_scenarios=2,
        ))
        cells = hier_suite(("adpcm",), config=config)
        assert len(cells) == 4  # 2 scenarios x 2 cache configs
        assert {c.scenario for c in cells} == \
            set(MIBENCH_WORKLOADS["adpcm"].scenario_names()[:2])
        assert {c.cache_config for c in cells} == {SMALL_CACHE, sweep[0]}

    def test_configs_deduplicate(self):
        hierarchy = HierarchyConfig(cache=SMALL_CACHE,
                                    sweep=(SMALL_CACHE, CacheConfig()))
        assert hierarchy.configs() == (SMALL_CACHE, CacheConfig())

    def test_sweep_shares_one_engine_run(self, monkeypatch):
        """A cold N-config sweep must cost one extraction run plus one
        sink run — never one simulation per swept configuration."""
        calls = self._counting_run_compiled(monkeypatch)
        sweep = (CacheConfig(line_bytes=16, sets=4, ways=1),
                 CacheConfig(line_bytes=32, sets=16, ways=2))
        config = PipelineConfig(
            cache=False,  # force everything cold, bypass shared memos
            hierarchy=HierarchyConfig(enabled=True, cache=SMALL_CACHE,
                                      sweep=sweep),
        )
        cells = hier_suite(("adpcm",), config=config)
        assert len(cells) == 3
        assert len(calls) == 2

    def test_stage_and_suite_share_warm_entries(self, tmp_path,
                                                monkeypatch):
        """full_flow's hierarchy stage and hier_suite must land the
        nominal cell on the same store entry (same scenario label), so
        either entry point warms the other."""
        calls = self._counting_run_compiled(monkeypatch)
        config = PipelineConfig(
            cache_dir=str(tmp_path / "store"),
            hierarchy=HierarchyConfig(enabled=True, cache=SMALL_CACHE),
        )
        workload = MIBENCH_WORKLOADS["gsm"]
        flow = full_flow("gsm", workload.source, config=config)
        assert flow.hierarchy[0].scenario == "nominal"
        stage_calls = len(calls)

        clear_caches()  # disk store only from here on
        warm = hier_suite(("gsm",), config=config)
        assert len(calls) == stage_calls  # zero new simulations
        assert warm == list(flow.hierarchy)

    def test_serial_vs_parallel_results_identical(self, tmp_path):
        config = PipelineConfig(
            cache_dir=str(tmp_path / "store"),
            hierarchy=HierarchyConfig(enabled=True, cache=SMALL_CACHE),
        )
        serial = hier_suite(("adpcm", "gsm"), jobs=1, config=config)
        clear_caches()
        parallel = hier_suite(("adpcm", "gsm"), jobs=2, config=config)
        assert serial == parallel


class TestHierarchyStage:
    def test_full_flow_attaches_reports_when_enabled(self):
        workload = MIBENCH_WORKLOADS["gsm"]
        config = PipelineConfig(hierarchy=HierarchyConfig(
            enabled=True, cache=SMALL_CACHE,
        ))
        flow = full_flow("gsm", workload.source, config=config)
        assert flow.hierarchy is not None and len(flow.hierarchy) == 1
        report = flow.hierarchy[0]
        assert report.cache_config == SMALL_CACHE
        # The stage reuses the optimize stage's allocation verbatim.
        assert report.spm_buffer_bytes == flow.allocation.used_bytes
        assert report.spm_bytes == flow.allocation.capacity_bytes

    def test_full_flow_default_stays_dark(self):
        workload = MIBENCH_WORKLOADS["adpcm"]
        flow = full_flow("adpcm", workload.source)
        assert flow.hierarchy is None

    def test_stage_honours_spm_bytes_override(self):
        workload = MIBENCH_WORKLOADS["gsm"]
        config = PipelineConfig(
            spm=SpmConfig(spm_bytes=4096),
            hierarchy=HierarchyConfig(enabled=True, cache=SMALL_CACHE),
        )
        flow = full_flow("gsm", workload.source, spm_bytes=512,
                         config=config)
        assert flow.hierarchy[0].spm_bytes == 512


class TestHierCli:
    def test_hier_prints_comparison_table(self, capsys):
        assert main(["hier", "adpcm", "--sets", "8", "--line", "16"]) == 0
        out = capsys.readouterr().out
        assert "Memory-hierarchy comparison" in out
        assert "adpcm" in out and "spm+cache nJ" in out

    def test_hier_json_is_machine_readable(self, capsys):
        assert main(["hier", "adpcm", "--sets", "8", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["command"] == "hier"
        (cell,) = payload["cells"]
        assert cell["benchmark"] == "adpcm"
        assert cell["cache_config"] == "8x2x32"
        assert cell["cache"]["levels"][0]["reads"] > 0

    def test_suite_hier_appends_table(self, capsys):
        assert main(["suite", "adpcm", "--hier", "--sets", "8"]) == 0
        out = capsys.readouterr().out
        assert "benchmark  lines" in out  # Table I still leads
        assert "Memory-hierarchy comparison" in out

    def test_suite_json_with_hier_section(self, capsys):
        assert main(["suite", "adpcm", "--hier", "--sets", "8",
                     "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["command"] == "suite"
        assert [row["benchmark"] for row in payload["table1"]] == ["adpcm"]
        assert payload["hierarchy"][0]["benchmark"] == "adpcm"

    def test_suite_scenarios_widens_hier_matrix(self, capsys):
        assert main(["suite", "adpcm", "--hier", "--sets", "8",
                     "--scenarios", "2", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert [cell["scenario"] for cell in payload["hierarchy"]] == \
            list(MIBENCH_WORKLOADS["adpcm"].scenario_names()[:2])

    def test_validate_json(self, capsys):
        code = main(["validate", "adpcm", "--scenarios", "2", "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert payload["command"] == "validate"
        assert payload["workloads"][0]["benchmark"] == "adpcm"
        assert code == (0 if payload["passes"] else 1)

    def test_bad_cache_spec_exits_cleanly(self):
        with pytest.raises(SystemExit, match="hier:"):
            main(["hier", "adpcm", "--l2", "not-a-spec"])
        with pytest.raises(SystemExit, match="hier:"):
            main(["hier", "adpcm", "--sweep", "64x2"])
        with pytest.raises(SystemExit, match="hier:"):
            main(["hier", "adpcm", "--ways", "0"])

    def test_unknown_workload_exits_cleanly(self):
        with pytest.raises(SystemExit, match="hier:"):
            main(["hier", "nonesuch"])

    def test_suite_tables_survive_late_gate_errors(self, capsys):
        """Regression: a declaration error in the appended matrices must
        not discard the already-computed (and printed) suite tables."""
        with pytest.raises(SystemExit, match="validate:"):
            main(["suite", "adpcm", "--validate", "--profile", "bogus"])
        out = capsys.readouterr().out
        assert "benchmark  lines" in out  # Table I made it to stdout

    def test_scenarios_must_be_positive(self):
        with pytest.raises(SystemExit, match="scenarios"):
            main(["hier", "adpcm", "--scenarios", "0"])
        with pytest.raises(ValueError, match="max_scenarios"):
            HierarchyConfig(max_scenarios=0)

    def test_bad_hier_specs_fail_loudly_even_without_hier(self):
        """Flags must never be silently swallowed: a garbage cache spec
        on `suite` errors even when --hier itself is absent."""
        with pytest.raises(SystemExit, match="hier:"):
            main(["suite", "adpcm", "--hier-sweep", "bogus"])
        with pytest.raises(SystemExit, match="hier:"):
            main(["suite", "adpcm", "--l2", "bogus"])


class TestHierTableRendering:
    def test_win_marking_and_columns(self):
        config = PipelineConfig(hierarchy=HierarchyConfig(
            enabled=True, cache=SMALL_CACHE,
        ))
        reports = hier_suite(("gsm",), config=config)
        text = format_hier_table(reports)
        assert "spm=4096B" in text and "allocator: dp" in text
        row = text.splitlines()[-1]
        assert row.rstrip().endswith("*")  # gsm: SPM+cache wins
