"""Tests for the staged pipeline: registry, config, caching, parallelism."""

import pytest

from repro.pipeline import (
    PipelineConfig,
    PipelineContext,
    clear_caches,
    compile_cache,
    extract_foray_model,
    extraction_cache,
    run_stages,
    run_suite,
    run_workload,
    stage_names,
)

SOURCE = """
int table[64];
int out[256];
int main() {
    int rep, i;
    for (i = 0; i < 64; i++) { table[i] = i; }
    for (rep = 0; rep < 4; rep++) {
        for (i = 0; i < 64; i++) { out[64 * rep + i] = table[i] + rep; }
    }
    return 0;
}
"""


@pytest.fixture(autouse=True)
def fresh_caches():
    clear_caches()
    yield
    clear_caches()


class TestStageRegistry:
    def test_stage_order(self):
        assert stage_names() == (
            "compile", "instrument", "simulate", "extract", "analyze",
            "optimize",
        )

    def test_run_stages_stops_at_requested_stage(self):
        ctx = PipelineContext(SOURCE, PipelineConfig())
        run_stages(ctx, upto="instrument")
        assert ctx.compiled is not None and ctx.compiled.is_instrumented
        assert ctx.extraction is None and ctx.report is None

    def test_unknown_stage_rejected(self):
        with pytest.raises(KeyError, match="unknown stage"):
            run_stages(PipelineContext(SOURCE, PipelineConfig()), upto="ship")

    def test_full_run_populates_all_artifacts(self):
        ctx = PipelineContext(SOURCE, PipelineConfig(), name="demo")
        run_stages(ctx, upto="optimize")
        assert ctx.report is not None and ctx.report.name == "demo"
        assert ctx.flow is not None
        assert ctx.flow.report is ctx.report


class TestArtifactCache:
    def test_extraction_cached_by_content(self):
        extract_foray_model(SOURCE)
        misses = extraction_cache.misses
        first = extract_foray_model(SOURCE)
        second = extract_foray_model(SOURCE)
        assert second is first  # memoized artifact
        assert extraction_cache.hits >= 2
        assert extraction_cache.misses == misses

    def test_cache_key_includes_run_configuration(self):
        default = extract_foray_model(SOURCE)
        other_engine = extract_foray_model(
            SOURCE, config=PipelineConfig(engine="ast"))
        assert other_engine is not default
        assert other_engine.model == default.model  # engine parity

    def test_no_cache_bypasses(self):
        config = PipelineConfig(cache=False)
        first = extract_foray_model(SOURCE, config=config)
        second = extract_foray_model(SOURCE, config=config)
        assert second is not first
        assert len(extraction_cache) == 0 and len(compile_cache) == 0

    def test_compile_cache_shared_across_filter_configs(self):
        from repro.foray.filters import FilterConfig

        first = extract_foray_model(SOURCE)
        strict = extract_foray_model(SOURCE, FilterConfig(nexec=10_000))
        assert strict.compiled is first.compiled  # one compiled artifact
        assert len(strict.model.references) < len(first.model.references)


class TestParallelSuite:
    def test_parallel_matches_serial(self):
        names = ("adpcm", "susan")
        config = PipelineConfig(cache=False)
        serial = run_suite(names, config=config)
        parallel = run_suite(names, jobs=2, config=config)
        assert [r.name for r in parallel] == [r.name for r in serial]
        for left, right in zip(serial, parallel):
            assert left.census == right.census
            assert left.table2 == right.table2
            assert left.table3 == right.table3
            assert left.model == right.model

    def test_jobs_capped_by_workload_count(self):
        reports = run_suite(("adpcm",), jobs=8,
                            config=PipelineConfig(cache=False))
        assert [r.name for r in reports] == ["adpcm"]


class TestEngineThroughPipeline:
    def test_ast_engine_selectable(self):
        from repro.sim.interpreter import Interpreter

        report = run_workload("demo", SOURCE,
                              config=PipelineConfig(engine="ast"))
        assert isinstance(report.extraction.run_result.machine, Interpreter)

    def test_engines_agree_on_report_metrics(self):
        bc = run_workload("demo", SOURCE)
        ast = run_workload("demo", SOURCE, config=PipelineConfig(engine="ast"))
        assert bc.table2 == ast.table2
        assert bc.table3 == ast.table3
        assert bc.census == ast.census


class TestCliFlags:
    def test_suite_flags_accepted(self, capsys):
        from repro.cli import main

        assert main(["suite", "adpcm", "--engine", "ast", "--jobs", "1",
                     "--no-cache"]) == 0
        out = capsys.readouterr().out
        assert "adpcm" in out

    def test_extract_engine_flag(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "demo.c"
        path.write_text(SOURCE)
        assert main(["extract", str(path), "--engine", "bytecode"]) == 0
        assert "references" in capsys.readouterr().out
