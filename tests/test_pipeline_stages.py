"""Tests for the staged pipeline: registry, config, caching, parallelism."""

import pytest

from repro.pipeline import (
    ArtifactCache,
    PipelineConfig,
    PipelineContext,
    SpmConfig,
    clear_caches,
    compile_cache,
    exploration_cache,
    extract_foray_model,
    extraction_cache,
    full_flow,
    run_stages,
    run_suite,
    run_workload,
    stage_names,
)
from repro.spm.energy import EnergyModel

SOURCE = """
int table[64];
int out[256];
int main() {
    int rep, i;
    for (i = 0; i < 64; i++) { table[i] = i; }
    for (rep = 0; rep < 4; rep++) {
        for (i = 0; i < 64; i++) { out[64 * rep + i] = table[i] + rep; }
    }
    return 0;
}
"""


@pytest.fixture(autouse=True)
def fresh_caches():
    clear_caches()
    yield
    clear_caches()


class TestStageRegistry:
    def test_stage_order(self):
        assert stage_names() == (
            "compile", "instrument", "simulate", "extract", "analyze",
            "analyze-static", "validate", "optimize", "hierarchy",
        )

    def test_run_stages_stops_at_requested_stage(self):
        ctx = PipelineContext(SOURCE, PipelineConfig())
        run_stages(ctx, upto="instrument")
        assert ctx.compiled is not None and ctx.compiled.is_instrumented
        assert ctx.extraction is None and ctx.report is None

    def test_unknown_stage_rejected(self):
        with pytest.raises(KeyError, match="unknown stage"):
            run_stages(PipelineContext(SOURCE, PipelineConfig()), upto="ship")

    def test_full_run_populates_all_artifacts(self):
        ctx = PipelineContext(SOURCE, PipelineConfig(), name="demo")
        run_stages(ctx, upto="optimize")
        assert ctx.report is not None and ctx.report.name == "demo"
        assert ctx.flow is not None
        assert ctx.flow.report is ctx.report


class TestArtifactCache:
    def test_extraction_cached_by_content(self):
        extract_foray_model(SOURCE)
        misses = extraction_cache.misses
        first = extract_foray_model(SOURCE)
        second = extract_foray_model(SOURCE)
        assert second is first  # memoized artifact
        assert extraction_cache.hits >= 2
        assert extraction_cache.misses == misses

    def test_cache_key_includes_run_configuration(self):
        default = extract_foray_model(SOURCE)
        other_engine = extract_foray_model(
            SOURCE, config=PipelineConfig(engine="ast"))
        assert other_engine is not default
        assert other_engine.model == default.model  # engine parity

    def test_no_cache_bypasses(self):
        config = PipelineConfig(cache=False)
        first = extract_foray_model(SOURCE, config=config)
        second = extract_foray_model(SOURCE, config=config)
        assert second is not first
        assert len(extraction_cache) == 0 and len(compile_cache) == 0

    def test_compile_cache_shared_across_filter_configs(self):
        from repro.foray.filters import FilterConfig

        first = extract_foray_model(SOURCE)
        strict = extract_foray_model(SOURCE, FilterConfig(nexec=10_000))
        assert strict.compiled is first.compiled  # one compiled artifact
        assert len(strict.model.references) < len(first.model.references)


class TestArtifactCacheLru:
    def test_hit_refreshes_recency(self):
        # Regression: get() used to leave recency untouched, so the
        # "LRU" cache evicted in FIFO order under mixed hit/miss loads.
        cache = ArtifactCache("t", max_entries=2)
        cache.put("a", "A")
        cache.put("b", "B")
        assert cache.get("a") == "A"  # refreshes a
        cache.put("c", "C")           # must evict b, the true LRU
        assert cache.get("a") == "A"
        assert cache.get("b") is None
        assert cache.get("c") == "C"

    def test_overwrite_refreshes_recency(self):
        cache = ArtifactCache("t", max_entries=2)
        cache.put("a", "A")
        cache.put("b", "B")
        cache.put("a", "A2")  # refresh by overwrite
        cache.put("c", "C")
        assert cache.get("a") == "A2"
        assert cache.get("b") is None

    def test_capacity_still_bounded(self):
        cache = ArtifactCache("t", max_entries=3)
        for index in range(10):
            cache.put(str(index), index)
        assert len(cache) == 3


class TestSpmThroughPipeline:
    def test_config_capacity_and_policy(self):
        config = PipelineConfig(
            spm=SpmConfig(spm_bytes=1024, allocator="greedy"))
        flow = full_flow("demo", SOURCE, config=config)
        assert flow.allocation.capacity_bytes == 1024
        assert flow.allocation.policy == "greedy"
        assert flow.graph is not None and flow.graph.node_count >= 1
        assert flow.exploration is None  # sweep not requested

    def test_spm_bytes_argument_overrides_config(self):
        config = PipelineConfig(spm=SpmConfig(spm_bytes=1024))
        flow = full_flow("demo", SOURCE, spm_bytes=256, config=config)
        assert flow.allocation.capacity_bytes == 256

    def test_sweep_enters_artifact_cache(self):
        ladder = (256, 1024, 4096, 16384)
        config = PipelineConfig(
            spm=SpmConfig(sweep=True, capacities=ladder))
        flow = full_flow("demo", SOURCE, config=config)
        assert flow.exploration is not None
        assert [p.capacity_bytes for p in flow.exploration] == list(ladder)
        hits = exploration_cache.hits
        again = full_flow("demo", SOURCE, config=config)
        assert again.exploration is flow.exploration  # memoized artifact
        assert exploration_cache.hits > hits

    def test_sweep_cache_keyed_by_policy(self):
        ladder = (256, 1024)
        dp = full_flow("demo", SOURCE, config=PipelineConfig(
            spm=SpmConfig(sweep=True, capacities=ladder)))
        greedy = full_flow("demo", SOURCE, config=PipelineConfig(
            spm=SpmConfig(sweep=True, capacities=ladder,
                          allocator="greedy")))
        assert dp.exploration is not greedy.exploration
        assert {p.policy for p in greedy.exploration} == {"greedy"}

    def test_energy_override_scales_benefit(self):
        pricey = EnergyModel(main_read_nj=50.0, main_write_nj=50.0)
        base = full_flow("demo", SOURCE, config=PipelineConfig())
        boosted = full_flow("demo", SOURCE, config=PipelineConfig(
            spm=SpmConfig(energy=pricey)))
        assert boosted.energy_model is pricey
        assert (boosted.allocation.total_benefit_nj
                > base.allocation.total_benefit_nj)

    def test_sweep_suite_parallel_matches_serial(self):
        from repro.spm.explore import sweep_suite

        names = ("adpcm", "mpeg2")
        ladder = (256, 1024, 4096, 16384)
        config = PipelineConfig(cache=False)
        serial = sweep_suite(names, ladder, jobs=1, config=config)
        parallel = sweep_suite(names, ladder, jobs=2, config=config)
        assert serial == parallel
        for name in names:
            assert [p.capacity_bytes for p in serial[name]] == list(ladder)

    def test_sweep_suite_honours_config_energy(self):
        # Regression: sweeps were computed with the default energy model
        # but cached under the config's custom one, poisoning the cache.
        from repro.spm.explore import sweep_suite

        pricey = EnergyModel(main_read_nj=100.0, main_write_nj=120.0)
        config = PipelineConfig(spm=SpmConfig(energy=pricey, sweep=True))
        boosted = sweep_suite(("mpeg2",), (4096,), config=config)
        plain = sweep_suite(("mpeg2",), (4096,), config=PipelineConfig())
        assert (boosted["mpeg2"][0].benefit_nj
                > plain["mpeg2"][0].benefit_nj)
        # A full_flow with the same config must agree with the sweep.
        from repro.workloads.registry import get_workload

        flow = full_flow("mpeg2", get_workload("mpeg2").source,
                         config=config)
        sweep_at_4096 = [p for p in flow.exploration
                         if p.capacity_bytes == 4096]
        assert sweep_at_4096
        assert (sweep_at_4096[0].benefit_nj
                == pytest.approx(boosted["mpeg2"][0].benefit_nj))


class TestParallelSuite:
    def test_parallel_matches_serial(self):
        names = ("adpcm", "susan")
        config = PipelineConfig(cache=False)
        serial = run_suite(names, config=config)
        parallel = run_suite(names, jobs=2, config=config)
        assert [r.name for r in parallel] == [r.name for r in serial]
        for left, right in zip(serial, parallel):
            assert left.census == right.census
            assert left.table2 == right.table2
            assert left.table3 == right.table3
            assert left.model == right.model

    def test_jobs_capped_by_workload_count(self):
        reports = run_suite(("adpcm",), jobs=8,
                            config=PipelineConfig(cache=False))
        assert [r.name for r in reports] == ["adpcm"]


class TestEngineThroughPipeline:
    def test_ast_engine_selectable(self):
        from repro.sim.interpreter import Interpreter

        report = run_workload("demo", SOURCE,
                              config=PipelineConfig(engine="ast"))
        assert isinstance(report.extraction.run_result.machine, Interpreter)

    def test_engines_agree_on_report_metrics(self):
        bc = run_workload("demo", SOURCE)
        ast = run_workload("demo", SOURCE, config=PipelineConfig(engine="ast"))
        assert bc.table2 == ast.table2
        assert bc.table3 == ast.table3
        assert bc.census == ast.census


class TestCliFlags:
    def test_suite_flags_accepted(self, capsys):
        from repro.cli import main

        assert main(["suite", "adpcm", "--engine", "ast", "--jobs", "1",
                     "--no-cache"]) == 0
        out = capsys.readouterr().out
        assert "adpcm" in out

    def test_extract_engine_flag(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "demo.c"
        path.write_text(SOURCE)
        assert main(["extract", str(path), "--engine", "bytecode"]) == 0
        assert "references" in capsys.readouterr().out
