"""Tests for the top-level pipeline API (Phases I and II)."""

import pytest

from repro.foray.filters import FilterConfig
from repro.pipeline import extract_foray_model, full_flow, run_workload
from repro.spm.energy import EnergyModel
from repro.workloads.registry import get_workload

REUSE_SOURCE = """
int table[256];
int out[8192];
int main() {
    int rep, i;
    for (i = 0; i < 256; i++) { table[i] = i * 3; }
    for (rep = 0; rep < 32; rep++) {
        for (i = 0; i < 256; i++) {
            out[256 * rep + i] = table[i] + rep;
        }
    }
    return 0;
}
"""


class TestExtractionAPI:
    def test_extraction_result_fields(self):
        result = extract_foray_model(REUSE_SOURCE)
        assert result.model.reference_count >= 2
        assert result.run_result.exit_code == 0
        assert result.compiled.is_instrumented
        assert "for (int" in result.foray_source

    def test_custom_filter_respected(self):
        strict = extract_foray_model(
            REUSE_SOURCE, FilterConfig(nexec=10_000, nloc=1)
        )
        assert len(strict.model.references) < len(
            extract_foray_model(REUSE_SOURCE).model.references
        )

    def test_max_steps_forwarded(self):
        from repro.sim.interpreter import ExecLimitExceeded

        with pytest.raises(ExecLimitExceeded):
            extract_foray_model(REUSE_SOURCE, max_steps=100)


class TestWorkloadReport:
    def test_report_components(self):
        report = run_workload("demo", REUSE_SOURCE)
        assert report.name == "demo"
        assert report.census.total_loops == 3
        assert report.table2.refs_in_model == report.model.reference_count
        assert report.table3.total_accesses > 0

    def test_workload_registry_roundtrip(self):
        workload = get_workload("adpcm")
        report = run_workload(workload.name, workload.source)
        assert report.table2.refs_in_model == 1

    def test_unknown_workload(self):
        with pytest.raises(KeyError):
            get_workload("doom")


class TestFullFlow:
    def test_flow_produces_allocation_and_transform(self):
        flow = full_flow("demo", REUSE_SOURCE, spm_bytes=2048)
        assert flow.allocation.capacity_bytes == 2048
        assert flow.allocation.buffer_count >= 1
        assert flow.energy_saving_nj > 0
        assert "dma_copy" in flow.transformed_source

    def test_flow_respects_energy_model(self):
        generous = full_flow(
            "demo", REUSE_SOURCE, spm_bytes=2048,
            energy_model=EnergyModel(main_read_nj=100.0, main_write_nj=100.0),
        )
        default = full_flow("demo", REUSE_SOURCE, spm_bytes=2048)
        assert generous.energy_saving_nj > default.energy_saving_nj

    def test_tiny_spm_yields_no_buffers(self):
        flow = full_flow("demo", REUSE_SOURCE, spm_bytes=8)
        assert flow.allocation.buffer_count == 0
        assert flow.energy_saving_nj == 0

    def test_spm_value_of_foray_gen(self):
        # The motivating end-to-end claim: with the FORAY model extracted
        # from a *pointer-walking* program, the SPM phase still finds the
        # reuse that static analysis could not even see.
        pointer_source = """
        int table[256];
        int out[8192];
        int main() {
            int rep;
            for (rep = 0; rep < 32; rep++) {
                int *tp = table;
                int *op = out + 256 * rep;
                int n = 0;
                while (n < 256) {
                    *op++ = *tp++ + rep;
                    n++;
                }
            }
            return 0;
        }
        """
        flow = full_flow("ptr", pointer_source, spm_bytes=2048)
        # Static analysis sees nothing...
        assert flow.report.table2.refs_in_source_form == 0
        # ...but the flow still finds a profitable buffer.
        assert flow.allocation.buffer_count >= 1
        assert flow.energy_saving_nj > 0
