"""Cache-model correctness against hand-computed oracles.

The miss-count tests name the classic miss classes they exercise
(compulsory / conflict / capacity) and assert *exact* event and traffic
counts for tiny synthetic access sequences, so any change to the
replacement, allocation or write policies shows up as a concrete number.
"""

import pytest

from repro.cachesim.model import (
    CacheConfig,
    CacheHierarchy,
    hierarchy_energy,
    parse_cache_spec,
)
from repro.spm.energy import EnergyModel


def run_accesses(config, accesses):
    """Drive a fresh hierarchy; returns the flushed CacheSimResult."""
    hierarchy = CacheHierarchy(config)
    reads = writes = 0
    for addr, size, is_write in accesses:
        if is_write:
            writes += 1
        else:
            reads += 1
        hierarchy.access(addr, size, is_write)
    hierarchy.flush()
    return hierarchy.result(reads, writes)


def rd(addr, size=4):
    return (addr, size, False)


def wr(addr, size=4):
    return (addr, size, True)


class TestConfigValidation:
    def test_line_must_be_power_of_two_word_multiple(self):
        with pytest.raises(ValueError, match="line_bytes"):
            CacheConfig(line_bytes=24)
        with pytest.raises(ValueError, match="line_bytes"):
            CacheConfig(line_bytes=2)

    def test_sets_and_ways_must_be_positive(self):
        with pytest.raises(ValueError, match="sets"):
            CacheConfig(sets=0)
        with pytest.raises(ValueError, match="ways"):
            CacheConfig(ways=0)

    def test_at_most_two_levels(self):
        l3 = CacheConfig()
        l2 = CacheConfig(sets=256, l2=l3)
        with pytest.raises(ValueError, match="two cache levels"):
            CacheConfig(l2=l2)

    def test_l2_line_must_cover_l1_line(self):
        with pytest.raises(ValueError, match="L2 line size"):
            CacheConfig(line_bytes=64, l2=CacheConfig(line_bytes=32))

    def test_size_bytes(self):
        assert CacheConfig(line_bytes=32, sets=64, ways=2).size_bytes == 4096


class TestSpecSyntax:
    @pytest.mark.parametrize("spec", [
        "64x2x32", "16x1x16wt", "64x2x32+l2=256x4x64",
        "32x4x16wt+l2=128x8x64wt",
    ])
    def test_round_trip(self, spec):
        assert parse_cache_spec(spec).spec() == spec

    def test_wb_suffix_is_default(self):
        assert parse_cache_spec("64x2x32wb") == CacheConfig()

    @pytest.mark.parametrize("bad", [
        "64x2", "axbxc", "64x2x32+l3=1x1x16", "64x2x32+l2=", "x", "",
    ])
    def test_malformed_rejected(self, bad):
        with pytest.raises(ValueError):
            parse_cache_spec(bad)

    def test_geometry_errors_surface_through_parse(self):
        with pytest.raises(ValueError, match="ways"):
            parse_cache_spec("64x0x32")


class TestMissOracle:
    def test_compulsory_and_conflict_direct_mapped(self):
        # Direct-mapped, 2 sets of 16B lines (32B total). Lines 0 and 2
        # both map to set 0 and evict each other (conflict); line 0's
        # first touch is compulsory.
        config = CacheConfig(line_bytes=16, sets=2, ways=1)
        result = run_accesses(config, [
            rd(0x00),   # line 0: compulsory miss
            rd(0x04),   # line 0: hit
            rd(0x20),   # line 2 -> set 0: compulsory miss, evicts line 0
            rd(0x00),   # line 0: conflict miss, evicts line 2
        ])
        l1 = result.l1
        assert (l1.reads, l1.read_misses) == (4, 3)
        assert (l1.fills, l1.evictions, l1.writebacks) == (3, 2, 0)
        # Each fill reads one 16B line = 4 words from main; reads dirty
        # nothing, so the flush moves nothing.
        assert result.main_read_words == 12
        assert result.main_write_words == 0

    def test_capacity_fully_associative(self):
        # Fully associative, 2 ways of 16B lines: the 3-line working set
        # does not fit, so re-touching line 0 is a capacity miss (LRU
        # evicted it when line 2 came in).
        config = CacheConfig(line_bytes=16, sets=1, ways=2)
        result = run_accesses(config, [
            rd(0x00),   # compulsory
            rd(0x10),   # compulsory
            rd(0x20),   # compulsory, evicts line 0 (LRU)
            rd(0x00),   # capacity miss, evicts line 1
        ])
        l1 = result.l1
        assert (l1.reads, l1.read_misses) == (4, 4)
        assert (l1.fills, l1.evictions) == (4, 2)

    def test_lru_recency_is_updated_on_hit(self):
        # A,B,A,C with 2 ways: the hit on A must make B the LRU victim,
        # so C evicts B and the later A still hits.
        config = CacheConfig(line_bytes=16, sets=1, ways=2)
        a, b, c = 0x00, 0x10, 0x20
        result = run_accesses(config, [
            rd(a), rd(b), rd(a), rd(c), rd(a), rd(b),
        ])
        l1 = result.l1
        # misses: a, b, c (evicts b), b (evicts c) — a never re-misses.
        assert (l1.reads, l1.read_misses) == (6, 4)
        assert l1.evictions == 2


class TestWritePolicies:
    def test_write_back_dirty_eviction_and_flush(self):
        config = CacheConfig(line_bytes=16, sets=2, ways=1)
        result = run_accesses(config, [
            wr(0x00),   # write-allocate miss: fill + dirty
            rd(0x20),   # conflict: evicts dirty line 0 -> write-back
            wr(0x24),   # write hit on line 2: dirty
        ])
        l1 = result.l1
        assert (l1.writes, l1.write_misses) == (2, 1)
        assert (l1.fills, l1.writebacks) == (2, 2)  # eviction + final flush
        # Traffic: 2 fills in, 1 eviction + 1 flush write-back out.
        assert result.main_read_words == 8
        assert result.main_write_words == 8

    def test_flush_is_idempotent(self):
        config = CacheConfig(line_bytes=16, sets=2, ways=1)
        hierarchy = CacheHierarchy(config)
        hierarchy.access(0x00, 4, True)
        hierarchy.flush()
        hierarchy.flush()
        assert hierarchy.l1.writebacks == 1
        assert hierarchy.main.write_words == 4

    def test_write_through_no_allocate(self):
        config = CacheConfig(line_bytes=16, sets=2, ways=1,
                             write_back=False)
        result = run_accesses(config, [
            wr(0x00),   # write miss: no fill, word goes straight to main
            rd(0x00),   # read miss: fill
            wr(0x04),   # write hit: word still written through
        ])
        l1 = result.l1
        assert (l1.writes, l1.write_misses) == (2, 1)
        assert l1.fills == 1
        assert l1.writebacks == 0          # WT lines are never dirty
        assert l1.through_write_words == 2
        assert result.main_read_words == 4   # one line fill
        assert result.main_write_words == 2  # two written-through words

    def test_line_crossing_access_touches_both_lines(self):
        config = CacheConfig(line_bytes=16, sets=2, ways=1)
        result = run_accesses(config, [rd(0x0E, size=4)])
        l1 = result.l1
        assert (l1.reads, l1.read_misses, l1.fills) == (2, 2, 2)


class TestTwoLevels:
    def test_l1_miss_served_by_l2_line(self):
        # L1: 16B lines; L2: 32B lines. Two adjacent L1 lines share one
        # L2 line, so the second L1 miss hits in L2 and main memory is
        # read exactly once (one 32B L2 line = 8 words).
        config = CacheConfig(line_bytes=16, sets=2, ways=1,
                             l2=CacheConfig(line_bytes=32, sets=4, ways=2))
        result = run_accesses(config, [rd(0x00), rd(0x10)])
        l1, l2 = result.levels
        assert (l1.read_misses, l1.fills) == (2, 2)
        assert (l2.reads, l2.read_misses, l2.fills) == (2, 1, 1)
        assert result.main_read_words == 8

    def test_l1_writeback_lands_in_l2_then_main_on_flush(self):
        config = CacheConfig(line_bytes=16, sets=1, ways=1,
                             l2=CacheConfig(line_bytes=16, sets=4, ways=2))
        result = run_accesses(config, [
            wr(0x00),   # dirty line 0 in L1 (fill came via L2)
            rd(0x10),   # evicts dirty line 0 -> write-back dirties L2
        ])
        l1, l2 = result.levels
        # L1: line 0's eviction is its only write-back (line 1 is clean);
        # the dirty data then sits in L2 until the final flush pushes it
        # to main. Both fills missed L2, so main served 2 lines of reads.
        assert (l1.fills, l1.writebacks) == (2, 1)
        assert (l2.fills, l2.writebacks) == (2, 1)
        assert (l2.reads, l2.writes) == (2, 1)
        assert result.main_read_words == 8
        assert result.main_write_words == 4


class TestEnergyAccounting:
    def test_single_level_energy_formula(self):
        energy = EnergyModel()
        config = CacheConfig(line_bytes=16, sets=2, ways=1)
        result = run_accesses(config, [rd(0x00), rd(0x04), wr(0x20)])
        l1 = result.l1
        line_words = 4
        expected = energy.cache_energy(l1.reads, l1.writes)
        expected += l1.fills * line_words * (energy.main_read_nj
                                             + energy.cache_write_nj)
        expected += l1.writebacks * line_words * (energy.cache_read_nj
                                                  + energy.main_write_nj)
        assert hierarchy_energy(result, energy) == pytest.approx(expected)

    def test_more_misses_cost_more_energy(self):
        energy = EnergyModel()
        thrash = CacheConfig(line_bytes=16, sets=1, ways=1)
        roomy = CacheConfig(line_bytes=16, sets=8, ways=2)
        pattern = [rd(0x00), rd(0x20), rd(0x00), rd(0x20)]
        assert (hierarchy_energy(run_accesses(thrash, pattern), energy)
                > hierarchy_energy(run_accesses(roomy, pattern), energy))
