"""CacheSink correctness: batched-vs-replay parity and SPM bypass."""

import pytest

from repro.cachesim.model import CacheConfig, CacheHierarchy
from repro.cachesim.sink import (
    CacheSink,
    allocation_intervals,
    merge_intervals,
)
from repro.pipeline import extract_foray_model
from repro.sim.machine import EngineConfig, compile_program, run_compiled
from repro.sim.trace import TraceCollector
from repro.spm.allocator import allocate_graph
from repro.spm.graph import ReuseGraph, reference_interval
from repro.workloads.registry import MIBENCH_WORKLOADS

TWO_ARRAYS = """
int a[64];
int b[64];
int main() {
    int i, r, total = 0;
    for (r = 0; r < 4; r++) {
        for (i = 0; i < 64; i++) {
            a[i] = i + r;
            total += b[i] + a[i];
        }
    }
    return total & 255;
}
"""


class TestIntervalHelpers:
    def test_merge_sorts_and_coalesces(self):
        assert merge_intervals([(30, 40), (0, 10), (8, 20)]) == \
            ((0, 20), (30, 40))

    def test_merge_drops_empty_intervals(self):
        assert merge_intervals([(5, 5), (10, 4)]) == ()

    def test_adjacent_intervals_fuse(self):
        assert merge_intervals([(0, 10), (10, 20)]) == ((0, 20),)

    def test_allocation_intervals_cover_selected_references(self):
        model = extract_foray_model(TWO_ARRAYS).model
        graph = ReuseGraph.from_model(model)
        allocation = allocate_graph(graph, 1 << 20)  # room for everything
        intervals = allocation_intervals(allocation)
        assert intervals  # something profitable was selected
        for node in allocation.nodes:
            for ref in node.references:
                lo, hi = reference_interval(ref)
                assert any(start <= lo and hi <= end
                           for start, end in intervals)


def _run_with_cache_sink(source, engine="bytecode", intervals=()):
    compiled = compile_program(source)
    sink = CacheSink(CacheHierarchy(CacheConfig(sets=8)), intervals)
    collector = TraceCollector()
    run_compiled(compiled, sinks=(sink, collector),
                 config=EngineConfig(engine=engine))
    return sink.finish(), collector


class TestStreamingParity:
    @pytest.mark.parametrize("name", ["adpcm", "gsm"])
    def test_sink_matches_offline_replay(self, name):
        """Attaching the sink to a live engine must tally exactly what a
        record-by-record replay of the collected trace tallies."""
        source = MIBENCH_WORKLOADS[name].source
        online, collector = _run_with_cache_sink(source)
        offline_sink = CacheSink(CacheHierarchy(CacheConfig(sets=8)))
        for record in collector:
            offline_sink.emit(record)
        assert offline_sink.finish() == online

    def test_hybrid_sink_matches_offline_replay(self):
        model = extract_foray_model(TWO_ARRAYS).model
        graph = ReuseGraph.from_model(model)
        intervals = allocation_intervals(allocate_graph(graph, 4096))
        online, collector = _run_with_cache_sink(TWO_ARRAYS,
                                                 intervals=intervals)
        offline_sink = CacheSink(CacheHierarchy(CacheConfig(sets=8)),
                                 intervals)
        for record in collector:
            offline_sink.emit(record)
        assert offline_sink.finish() == online

    def test_finish_is_idempotent(self):
        """A second finish() must return the memoized snapshot — not
        re-flush (which would inflate write-back counters)."""
        compiled = compile_program(TWO_ARRAYS)
        sink = CacheSink(CacheHierarchy(CacheConfig(sets=8)))
        run_compiled(compiled, sinks=(sink,))
        first = sink.finish()
        assert sink.finish() is first
        assert sink.finish().l1.writebacks == first.l1.writebacks


class TestSpmBypass:
    def test_interval_accesses_bypass_the_cache(self):
        pure, _ = _run_with_cache_sink(TWO_ARRAYS)
        model = extract_foray_model(TWO_ARRAYS).model
        graph = ReuseGraph.from_model(model)
        allocation = allocate_graph(graph, 1 << 20)
        intervals = allocation_intervals(allocation)
        hybrid, _ = _run_with_cache_sink(TWO_ARRAYS, intervals=intervals)

        # Same trace either way: the split moves accesses to the SPM,
        # it never invents or drops any.
        assert (hybrid.reads + hybrid.writes + hybrid.spm_accesses
                == pure.reads + pure.writes)
        assert hybrid.spm_accesses > 0
        assert hybrid.accesses < pure.accesses
        # Fewer cached accesses can only shrink the cache's traffic.
        assert hybrid.main_words <= pure.main_words

    def test_no_intervals_means_no_spm_traffic(self):
        pure, _ = _run_with_cache_sink(TWO_ARRAYS)
        assert pure.spm_accesses == 0

    def test_flat_allocation_still_pays_its_transfers(self):
        """Regression: a legacy flat allocate() allocation (no graph
        nodes) gets the cache bypass, so it must charge the same DMA
        fill/write-back volumes — SPM contents are never free."""
        from repro.cachesim.report import build_hierarchy_report
        from repro.spm.allocator import allocate
        from repro.spm.candidates import enumerate_candidates
        from repro.spm.energy import EnergyModel

        model = extract_foray_model(TWO_ARRAYS).model
        energy = EnergyModel()
        flat = allocate(enumerate_candidates(model, energy), 1 << 20)
        assert flat.selected and not flat.nodes
        intervals = allocation_intervals(flat)
        assert intervals
        hybrid, _ = _run_with_cache_sink(TWO_ARRAYS, intervals=intervals)
        pure, _ = _run_with_cache_sink(TWO_ARRAYS)
        report = build_hierarchy_report(
            "two-arrays", "-", CacheConfig(sets=8), flat, pure, hybrid,
            energy,
        )
        expected = sum(
            energy.fill_energy(c.level.fills * c.level.footprint_words)
            + (energy.writeback_energy(
                   c.level.fills * c.level.footprint_words)
               if c.reference.writes else 0.0)
            for c in flat.selected
        )
        assert report.spm_transfer_nj == pytest.approx(expected)
        assert report.spm_transfer_nj > 0

    def test_interval_membership_is_half_open(self):
        sink = CacheSink(CacheHierarchy(CacheConfig()),
                         ((100, 200),))
        sink.emit_block([(0, 99, 4, False), (0, 100, 4, False),
                         (0, 199, 4, False), (0, 200, 4, False)], [])
        assert (sink.spm_reads, sink.reads) == (2, 2)
