"""Unit tests for Algorithm 2 (loop tree reconstruction).

These tests drive the builder with synthetic checkpoint streams so the
tricky disambiguation cases (nested vs sequential, zero-iteration loops,
re-entry, missing body-ends after break) are pinned independently of the
simulator.
"""

import pytest

from repro.foray.looptree import LoopTreeBuilder
from repro.sim.trace import (
    Checkpoint,
    CheckpointInfo,
    CheckpointKind,
    CheckpointMap,
)

B, S, E = (CheckpointKind.LOOP_BEGIN, CheckpointKind.BODY_BEGIN,
           CheckpointKind.BODY_END)


def make_map(num_loops: int, kind: str = "for") -> CheckpointMap:
    cmap = CheckpointMap()
    for loop in range(num_loops):
        base = 10 + 3 * loop
        cmap.add(CheckpointInfo(base, B, 100 + loop, kind))
        cmap.add(CheckpointInfo(base + 1, S, 100 + loop, kind))
        cmap.add(CheckpointInfo(base + 2, E, 100 + loop, kind))
    return cmap


def build(cmap, events):
    builder = LoopTreeBuilder(cmap)
    for checkpoint_id, kind in events:
        builder.on_checkpoint(Checkpoint(checkpoint_id, kind))
    return builder


class TestStructure:
    def test_single_loop_two_iterations(self):
        builder = build(make_map(1), [
            (10, B), (11, S), (12, E), (11, S), (12, E),
        ])
        root = builder.finish()
        (node,) = root.children.values()
        assert node.begin_id == 10
        assert node.max_trip == 2
        assert node.min_trip == 2
        assert node.entries == 1
        assert node.total_iterations == 2

    def test_nested_loops(self):
        builder = build(make_map(2), [
            (10, B), (11, S),
            (13, B), (14, S), (15, E),
            (12, E),
        ])
        root = builder.finish()
        outer = root.children[10]
        assert list(outer.children) == [13]
        assert outer.children[13].depth == 2

    def test_sequential_loops_are_siblings(self):
        builder = build(make_map(2), [
            (10, B), (11, S), (12, E),
            (13, B), (14, S), (15, E),
        ])
        root = builder.finish()
        assert set(root.children) == {10, 13}
        assert root.children[13].depth == 1

    def test_sequential_inside_outer(self):
        cmap = make_map(3)
        builder = build(cmap, [
            (10, B), (11, S),
            (13, B), (14, S), (15, E),
            (16, B), (17, S), (18, E),
            (12, E),
        ])
        root = builder.finish()
        outer = root.children[10]
        assert set(outer.children) == {13, 16}

    def test_zero_iteration_loop(self):
        builder = build(make_map(2), [
            (10, B),                # never iterates
            (13, B), (14, S), (15, E),
        ])
        root = builder.finish()
        assert set(root.children) == {10, 13}
        assert root.children[10].max_trip == 0

    def test_reentry_same_node(self):
        # The same loop entered twice (e.g. a function called twice from
        # the same context) maps to ONE node with two entries.
        builder = build(make_map(1), [
            (10, B), (11, S), (12, E),
            (10, B), (11, S), (12, E), (11, S), (12, E),
        ])
        root = builder.finish()
        (node,) = root.children.values()
        assert node.entries == 2
        assert node.min_trip == 1
        assert node.max_trip == 2

    def test_inner_loop_reentered_per_outer_iteration(self):
        builder = build(make_map(2), [
            (10, B),
            (11, S), (13, B), (14, S), (15, E), (12, E),
            (11, S), (13, B), (14, S), (15, E), (12, E),
        ])
        root = builder.finish()
        inner = root.children[10].children[13]
        assert inner.entries == 2
        assert inner.total_iterations == 2

    def test_break_with_cleanup_body_end(self):
        # Our annotator closes the body on break, so the stream stays
        # well-nested and the next loop is correctly a sibling.
        builder = build(make_map(2), [
            (10, B), (11, S), (12, E), (11, S), (12, E),  # second iter broke
            (13, B), (14, S), (15, E),
        ])
        root = builder.finish()
        assert set(root.children) == {10, 13}

    def test_missing_body_end_misnests(self):
        # Documented limitation of three-kind checkpoint streams: if a
        # body-end is genuinely missing, a following loop-begin cannot be
        # distinguished from a nested loop.
        builder = build(make_map(2), [
            (10, B), (11, S),  # body left open
            (13, B), (14, S), (15, E),
        ])
        root = builder.finish()
        assert set(root.children) == {10}
        assert set(root.children[10].children) == {13}

    def test_same_loop_different_contexts_distinct_nodes(self):
        # Loop 13 under loop 10 vs at top level: two nodes (inlining).
        builder = build(make_map(2), [
            (10, B), (11, S), (13, B), (14, S), (15, E), (12, E),
            (13, B), (14, S), (15, E),
        ])
        root = builder.finish()
        nested = root.children[10].children[13]
        top = root.children[13]
        assert nested.uid != top.uid
        assert nested.ast_node_id == top.ast_node_id


class TestIterators:
    def test_iterator_values_track_body_begins(self):
        cmap = make_map(2)
        builder = LoopTreeBuilder(cmap)
        seen = []
        events = [
            (10, B), (11, S),
            (13, B), (14, S), (15, E), (14, S), (15, E),
            (12, E),
            (11, S),
            (13, B), (14, S),
        ]
        for checkpoint_id, kind in events:
            builder.on_checkpoint(Checkpoint(checkpoint_id, kind))
            seen.append(builder.current_iterators())
        # After the last body-begin of loop 13 under outer iteration 1:
        assert seen[-1] == (0, 1)  # innermost first

    def test_depth_tracks_stack(self):
        builder = build(make_map(2), [(10, B), (11, S), (13, B), (14, S)])
        assert builder.depth == 2

    def test_unknown_checkpoint_rejected(self):
        builder = LoopTreeBuilder(make_map(1))
        with pytest.raises(ValueError):
            builder.on_checkpoint(Checkpoint(99, S))

    def test_kind_recorded_from_map(self):
        builder = build(make_map(1, kind="do"), [(10, B), (11, S), (12, E)])
        (node,) = builder.finish().children.values()
        assert node.kind == "do"

    def test_path_from_root(self):
        builder = build(make_map(2), [(10, B), (11, S), (13, B), (14, S)])
        path = builder.current.path_from_root()
        assert [n.begin_id for n in path] == [10, 13]
