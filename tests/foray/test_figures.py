"""Reproduction tests for the paper's figure examples (Figures 1, 2, 4, 7, 9).

These pin the published outcomes: the FORAY models of Figure 2, the
Figure 4(d) coefficients (1 and 103), the partial affine expressions of
Figure 7, and the duplication hint of Figure 9.
"""

from repro.foray.emitter import emit_model
from repro.foray.hints import inlining_hints


class TestFigure1A:
    """jpeg last_bitpos walk -> paper Figure 2 (top): coefficients 4, 256."""

    def test_model_shape(self, fig1a_extraction):
        (ref,) = fig1a_extraction.model.references
        assert ref.expression.used_coefficients() == (4, 256)
        assert [loop.max_trip for loop in ref.loop_path] == [3, 64]
        assert ref.is_full

    def test_both_loops_are_for(self, fig1a_extraction):
        (ref,) = fig1a_extraction.model.references
        assert {loop.kind for loop in ref.loop_path} == {"for"}

    def test_emission_matches_paper_structure(self, fig1a_extraction):
        text = emit_model(fig1a_extraction.model, include_comments=False)
        (ref,) = fig1a_extraction.model.references
        outer, inner = ref.loop_path
        assert f"for (int {outer.name} = 0; {outer.name} < 3" in text
        assert f"for (int {inner.name} = 0; {inner.name} < 64" in text
        assert f"4*{inner.name}+256*{outer.name}" in text


class TestFigure1B:
    """while+for rowsperchunk loop -> paper Figure 2 (bottom): a single
    16-iteration level with coefficient 4 and a 1-trip outer loop."""

    def test_model_shape(self, fig1b_extraction):
        (ref,) = fig1b_extraction.model.references
        trips = [loop.max_trip for loop in ref.loop_path]
        assert trips == [1, 16]
        assert ref.expression.used_coefficients()[0] == 4
        assert ref.exec_count == 16

    def test_outer_is_while(self, fig1b_extraction):
        (ref,) = fig1b_extraction.model.references
        assert ref.loop_path[0].kind == "while"


class TestFigure4:
    """The end-to-end example: A4002a0[2147440948 + 1*i15 + 103*i12]."""

    def _ref(self, fig4a_extraction):
        refs = fig4a_extraction.model.references
        assert len(refs) == 1
        return refs[0]

    def test_coefficients(self, fig4a_extraction):
        ref = self._ref(fig4a_extraction)
        assert ref.expression.used_coefficients() == (1, 103)

    def test_trip_counts(self, fig4a_extraction):
        ref = self._ref(fig4a_extraction)
        assert [loop.max_trip for loop in ref.loop_path] == [2, 3]

    def test_six_writes(self, fig4a_extraction):
        ref = self._ref(fig4a_extraction)
        assert ref.exec_count == 6
        assert ref.writes == 6
        assert ref.footprint == 6

    def test_full_expression(self, fig4a_extraction):
        assert self._ref(fig4a_extraction).is_full

    def test_index_text_shape(self, fig4a_extraction):
        ref = self._ref(fig4a_extraction)
        inner = ref.loop_path[-1].name
        outer = ref.loop_path[0].name
        assert ref.index_text().endswith(f"1*{inner}+103*{outer}")

    def test_base_is_stack_address(self, fig4a_extraction):
        ref = self._ref(fig4a_extraction)
        assert 0x7FF00000 < ref.expression.const < 0x80000000


class TestFigure7A:
    """Reallocated local array: partial affine over foo's own loops."""

    def test_partial_references_found(self, fig7a_extraction):
        partial = [r for r in fig7a_extraction.model.references
                   if not r.is_full and r.nest_depth >= 4]
        assert partial

    def test_inner_coefficients_recovered(self, fig7a_extraction):
        partial = [r for r in fig7a_extraction.model.references
                   if not r.is_full and r.nest_depth >= 4]
        for ref in partial:
            used = ref.expression.used_coefficients()
            # Innermost j has stride 4, i has stride 40 (paper's A[j+10i]).
            assert used[0] == 4
            if len(used) >= 2:
                assert used[1] == 40

    def test_m_smaller_than_nest(self, fig7a_extraction):
        partial = [r for r in fig7a_extraction.model.references
                   if not r.is_full and r.nest_depth >= 4]
        for ref in partial:
            assert ref.expression.num_iterators < ref.nest_depth


class TestFigure7B:
    """Data-dependent offset: partial over exactly foo's two loops."""

    def test_partial_over_inner_two(self, fig7b_extraction):
        refs = [r for r in fig7b_extraction.model.references
                if r.nest_depth == 3]
        assert refs
        for ref in refs:
            assert not ref.is_full
            assert ref.expression.num_iterators == 2
            assert ref.expression.used_coefficients() == (4, 40)

    def test_lines_table_itself_full(self, fig7b_extraction):
        # lines[x] is a perfectly affine read under the x loop.
        small = [r for r in fig7b_extraction.model.unfiltered_references
                 if r.nest_depth == 1 and r.exec_count == 10]
        assert any(r.is_full for r in small)


class TestFigure9:
    def test_two_contexts_with_different_patterns(self, fig9_extraction):
        model = fig9_extraction.model
        assert len(model.references) == 2
        coeff_sets = {r.expression.used_coefficients() for r in model.references}
        assert coeff_sets == {(4, 40), (4, 8)}

    def test_hint_generated(self, fig9_extraction):
        hints = inlining_hints(fig9_extraction.model,
                               fig9_extraction.compiled.program)
        (hint,) = hints
        assert hint.patterns_differ
        assert hint.function_name == "foo"

    def test_references_fully_affine(self, fig9_extraction):
        assert all(r.is_full for r in fig9_extraction.model.references)
