"""Tests for model validation / cross-input prediction accuracy."""

from repro.foray.extractor import ForayExtractor
from repro.foray.filters import FilterConfig
from repro.foray.validate import validate_model
from repro.sim.machine import compile_program, run_compiled
from repro.sim.trace import TraceCollector

RELAXED = FilterConfig(nexec=1, nloc=1)


def profile(source, filter_config=None):
    compiled = compile_program(source)
    collector = TraceCollector()
    extractor = ForayExtractor(compiled.checkpoint_map, filter_config)
    run_compiled(compiled, sinks=(collector, extractor))
    return extractor.finish(), collector, compiled


AFFINE = """
int g[128];
int main() {
    int i, j;
    for (i = 0; i < 4; i++)
        for (j = 0; j < 32; j++)
            g[32 * i + j] = i + j;
    return 0;
}
"""


class TestSelfValidation:
    def test_full_model_predicts_its_own_trace(self):
        model, collector, compiled = profile(AFFINE)
        report = validate_model(model, collector.records, compiled.checkpoint_map)
        assert report.overall_accuracy == 1.0
        assert report.total_checked == 128
        assert report.unexercised == 0

    def test_partial_model_predicts_within_contexts(self):
        source = """
        int A[4096];
        int lines[8] = {0, 900, 140, 2100, 350, 2800, 490, 3500};
        int acc;
        int foo(int off) { int i; int r = 0;
            for (i = 0; i < 64; i++) r += A[i + off]; return r; }
        int main() { int x; for (x = 0; x < 8; x++) acc += foo(lines[x]);
            return 0; }
        """
        model, collector, compiled = profile(source)
        assert model.partial_references()
        report = validate_model(model, collector.records, compiled.checkpoint_map)
        # Each context re-anchors once; everything else must be predicted.
        assert report.overall_accuracy == 1.0

    def test_summary_text(self):
        model, collector, compiled = profile(AFFINE)
        report = validate_model(model, collector.records, compiled.checkpoint_map)
        assert "128/128" in report.summary()


class TestCrossInputValidation:
    """The paper's future-work question: does the model transfer across
    profiling inputs? For data-independent access patterns it must."""

    TEMPLATE = """
    int g[256];
    int main() {{
        int i;
        for (i = 0; i < 256; i++) g[i] = i * {scale};
        return 0;
    }}
    """

    def test_model_transfers_when_pattern_is_data_independent(self):
        model_a, _, _ = profile(self.TEMPLATE.format(scale=3))
        _, collector_b, compiled_b = profile(self.TEMPLATE.format(scale=9))
        report = validate_model(model_a, collector_b.records,
                                compiled_b.checkpoint_map)
        assert report.overall_accuracy == 1.0

    def test_data_dependent_model_fails_to_transfer(self):
        source_a = """
        int g[256]; int n = 200;
        int main() { int i; for (i = 0; i < n; i++) g[i] = i; return 0; }
        """
        source_b = """
        int g[256]; int n = 200;
        int main() { int i; for (i = 0; i < n; i++) g[i + 7] = i; return 0; }
        """
        model_a, _, _ = profile(source_a)
        _, collector_b, compiled_b = profile(source_b)
        report = validate_model(model_a, collector_b.records,
                                compiled_b.checkpoint_map)
        # The base shifted: a full expression from run A mispredicts run B.
        assert report.overall_accuracy < 0.5

    def test_unexercised_references_counted(self):
        model_a, _, _ = profile(AFFINE)
        # Replay an empty trace.
        _, _, compiled = profile(AFFINE)
        report = validate_model(model_a, [], compiled.checkpoint_map)
        assert report.unexercised == len(model_a.references)
        assert report.overall_accuracy == 1.0  # vacuous

    def test_library_accesses_ignored(self):
        source = """
        int a[64]; int b[64];
        int main() { int i; for (i = 0; i < 64; i++) a[i] = i;
            memcpy(b, a, 256); return 0; }
        """
        model, collector, compiled = profile(source)
        report = validate_model(model, collector.records, compiled.checkpoint_map)
        assert report.total_checked == 64  # only the user store
