"""Tests for model validation / cross-input prediction accuracy."""

from repro.foray.extractor import ForayExtractor
from repro.foray.filters import FilterConfig
from repro.foray.model import (
    AffineExpression,
    ForayLoop,
    ForayModel,
    ForayReference,
)
from repro.foray.validate import ValidationSink, validate_model
from repro.sim.machine import compile_program, run_compiled
from repro.sim.trace import (
    Access,
    Checkpoint,
    CheckpointInfo,
    CheckpointKind,
    CheckpointMap,
    TraceCollector,
)

RELAXED = FilterConfig(nexec=1, nloc=1)


def profile(source, filter_config=None):
    compiled = compile_program(source)
    collector = TraceCollector()
    extractor = ForayExtractor(compiled.checkpoint_map, filter_config)
    run_compiled(compiled, sinks=(collector, extractor))
    return extractor.finish(), collector, compiled


AFFINE = """
int g[128];
int main() {
    int i, j;
    for (i = 0; i < 4; i++)
        for (j = 0; j < 32; j++)
            g[32 * i + j] = i + j;
    return 0;
}
"""


class TestSelfValidation:
    def test_full_model_predicts_its_own_trace(self):
        model, collector, compiled = profile(AFFINE)
        report = validate_model(model, collector.records, compiled.checkpoint_map)
        assert report.overall_accuracy == 1.0
        assert report.total_checked == 128
        assert report.unexercised == 0

    def test_partial_model_predicts_within_contexts(self):
        source = """
        int A[4096];
        int lines[8] = {0, 900, 140, 2100, 350, 2800, 490, 3500};
        int acc;
        int foo(int off) { int i; int r = 0;
            for (i = 0; i < 64; i++) r += A[i + off]; return r; }
        int main() { int x; for (x = 0; x < 8; x++) acc += foo(lines[x]);
            return 0; }
        """
        model, collector, compiled = profile(source)
        assert model.partial_references()
        report = validate_model(model, collector.records, compiled.checkpoint_map)
        # Each context re-anchors once; everything else must be predicted.
        assert report.overall_accuracy == 1.0

    def test_summary_text(self):
        model, collector, compiled = profile(AFFINE)
        report = validate_model(model, collector.records, compiled.checkpoint_map)
        assert "128/128" in report.summary()


class TestCrossInputValidation:
    """The paper's future-work question: does the model transfer across
    profiling inputs? For data-independent access patterns it must."""

    TEMPLATE = """
    int g[256];
    int main() {{
        int i;
        for (i = 0; i < 256; i++) g[i] = i * {scale};
        return 0;
    }}
    """

    def test_model_transfers_when_pattern_is_data_independent(self):
        model_a, _, _ = profile(self.TEMPLATE.format(scale=3))
        _, collector_b, compiled_b = profile(self.TEMPLATE.format(scale=9))
        report = validate_model(model_a, collector_b.records,
                                compiled_b.checkpoint_map)
        assert report.overall_accuracy == 1.0

    def test_data_dependent_model_fails_to_transfer(self):
        source_a = """
        int g[256]; int n = 200;
        int main() { int i; for (i = 0; i < n; i++) g[i] = i; return 0; }
        """
        source_b = """
        int g[256]; int n = 200;
        int main() { int i; for (i = 0; i < n; i++) g[i + 7] = i; return 0; }
        """
        model_a, _, _ = profile(source_a)
        _, collector_b, compiled_b = profile(source_b)
        report = validate_model(model_a, collector_b.records,
                                compiled_b.checkpoint_map)
        # The base shifted: a full expression from run A mispredicts run B.
        assert report.overall_accuracy < 0.5

    def test_unexercised_references_counted(self):
        model_a, _, _ = profile(AFFINE)
        # Replay an empty trace.
        _, _, compiled = profile(AFFINE)
        report = validate_model(model_a, [], compiled.checkpoint_map)
        assert report.unexercised == len(model_a.references)
        assert report.overall_accuracy == 1.0  # vacuous: nothing scored
        # Regression: an unexercised reference demonstrated nothing, so
        # its per-reference accuracy must read 0.0, not a vacuous 1.0.
        assert all(v.accuracy == 0.0 for v in report.per_reference)
        assert not any(v.exercised for v in report.per_reference)
        assert report.unexercised_share == 1.0
        assert "100% of references" in report.summary()

    def test_library_accesses_ignored(self):
        source = """
        int a[64]; int b[64];
        int main() { int i; for (i = 0; i < 64; i++) a[i] = i;
            memcpy(b, a, 256); return 0; }
        """
        model, collector, compiled = profile(source)
        report = validate_model(model, collector.records, compiled.checkpoint_map)
        assert report.total_checked == 64  # only the user store


def _one_loop_map() -> CheckpointMap:
    cmap = CheckpointMap()
    cmap.add(CheckpointInfo(1, CheckpointKind.LOOP_BEGIN, 10, "for"))
    cmap.add(CheckpointInfo(2, CheckpointKind.BODY_BEGIN, 10, "for"))
    cmap.add(CheckpointInfo(3, CheckpointKind.BODY_END, 10, "for"))
    return cmap


def _one_loop_trace(pc, addrs):
    records = [Checkpoint(1, CheckpointKind.LOOP_BEGIN)]
    for addr in addrs:
        records.append(Checkpoint(2, CheckpointKind.BODY_BEGIN))
        records.append(Access(pc, addr, 4, True))
        records.append(Checkpoint(3, CheckpointKind.BODY_END))
    return records


class TestShallowTraceRegression:
    """A replayed nest shallower than the expression must score
    mispredictions, not zip-truncate into garbage matches."""

    PC = 0x400008

    def _deep_model(self):
        loop = ForayLoop(begin_id=1, kind="for", depth=1, max_trip=4,
                         min_trip=4, entries=1, total_iterations=4)
        # The expression claims two iterators, but the reference sits
        # under a single loop in the replayed trace.
        expression = AffineExpression(const=1000, coefficients=(4, 64),
                                      num_iterators=2)
        reference = ForayReference(pc=self.PC, loop_path=(loop,),
                                   expression=expression, exec_count=4,
                                   footprint=16, reads=0, writes=4)
        return ForayModel(references=[reference])

    def test_shallow_iterators_score_as_mispredictions(self):
        model = self._deep_model()
        # addr == const: the old zip-truncating code "predicted" the
        # first access (4*0 == 0) even though the second iterator is
        # missing entirely.
        records = _one_loop_trace(self.PC, [1000, 1004, 1008, 1012])
        report = validate_model(model, records, _one_loop_map())
        validation = report.per_reference[0]
        assert validation.checked == 4
        assert validation.predicted == 0
        assert validation.accuracy == 0.0
        assert report.unexercised == 0  # exercised, just unpredictable

    def test_matching_depth_still_scores_normally(self):
        loop = ForayLoop(begin_id=1, kind="for", depth=1, max_trip=4,
                         min_trip=4, entries=1, total_iterations=4)
        expression = AffineExpression(const=1000, coefficients=(4,),
                                      num_iterators=1)
        reference = ForayReference(pc=self.PC, loop_path=(loop,),
                                   expression=expression, exec_count=4,
                                   footprint=16, reads=0, writes=4)
        model = ForayModel(references=[reference])
        records = _one_loop_trace(self.PC, [1000, 1004, 1008, 1012])
        report = validate_model(model, records, _one_loop_map())
        assert report.overall_accuracy == 1.0


class TestValidationSinkProtocol:
    """The streaming sink must agree with the offline record replay on
    both protocol entry points."""

    def test_emit_block_matches_emit(self):
        model, collector, compiled = profile(AFFINE)
        offline = validate_model(model, collector.records,
                                 compiled.checkpoint_map)

        # Re-run the program with the sink attached live (batched path).
        sink = ValidationSink(model, compiled.checkpoint_map)
        run_compiled(compiled, sinks=(sink,))
        online = sink.finish()
        assert online.total_checked == offline.total_checked
        assert online.total_predicted == offline.total_predicted
        assert online.unexercised == offline.unexercised
        assert [
            (v.reference.pc, v.checked, v.predicted)
            for v in online.per_reference
        ] == [
            (v.reference.pc, v.checked, v.predicted)
            for v in offline.per_reference
        ]

    def test_full_accuracy_restricted_to_full_references(self):
        model, collector, compiled = profile(AFFINE)
        report = validate_model(model, collector.records,
                                compiled.checkpoint_map)
        assert model.full_references()
        assert report.full_accuracy == 1.0
        worst = report.worst_reference()
        assert worst is not None and worst.accuracy == 1.0
