"""Unit tests for the step-4 purge heuristic."""

from repro.foray.filters import PAPER_NEXEC, PAPER_NLOC, FilterConfig
from repro.foray.model import AffineExpression, ForayReference


def make_ref(exec_count=100, footprint=100, coefficients=(4,), num_iterators=None):
    num = len(coefficients) if num_iterators is None else num_iterators
    return ForayReference(
        pc=0x400000,
        loop_path=(),
        expression=AffineExpression(0x1000, tuple(coefficients), num),
        exec_count=exec_count,
        footprint=footprint,
        reads=exec_count,
        writes=0,
    )


class TestPaperDefaults:
    def test_paper_constants(self):
        config = FilterConfig()
        assert config.nexec == PAPER_NEXEC == 20
        assert config.nloc == PAPER_NLOC == 10

    def test_keeps_typical_reference(self):
        assert FilterConfig().keep(make_ref())

    def test_exec_threshold_inclusive(self):
        config = FilterConfig()
        assert config.keep(make_ref(exec_count=20))
        assert not config.keep(make_ref(exec_count=19))

    def test_footprint_threshold_inclusive(self):
        config = FilterConfig()
        assert config.keep(make_ref(footprint=10))
        assert not config.keep(make_ref(footprint=9))

    def test_requires_an_iterator(self):
        config = FilterConfig()
        assert not config.keep(make_ref(coefficients=(0,)))
        assert not config.keep(make_ref(coefficients=(None,)))

    def test_partial_with_inner_iterator_kept(self):
        # M=1 of a 2-deep nest: the used part still includes an iterator.
        ref = make_ref(coefficients=(4, 80), num_iterators=1)
        assert FilterConfig().keep(ref)

    def test_partial_with_all_zero_used_coeffs_dropped(self):
        ref = make_ref(coefficients=(0, 80), num_iterators=1)
        assert not FilterConfig().keep(ref)


class TestConfigurability:
    def test_relaxed_keeps_small(self):
        config = FilterConfig(nexec=1, nloc=1)
        assert config.keep(make_ref(exec_count=2, footprint=2))

    def test_iterator_requirement_can_be_disabled(self):
        config = FilterConfig(require_iterator=False)
        assert config.keep(make_ref(coefficients=(0,)))

    def test_apply_preserves_order(self):
        refs = [make_ref(exec_count=100), make_ref(exec_count=5),
                make_ref(exec_count=200)]
        kept = FilterConfig().apply(refs)
        assert kept == [refs[0], refs[2]]

    def test_stricter_filter_is_subset(self):
        refs = [make_ref(exec_count=e, footprint=f)
                for e in (5, 25, 100) for f in (5, 15, 50)]
        loose = set(map(id, FilterConfig(nexec=10, nloc=10).apply(refs)))
        strict = set(map(id, FilterConfig(nexec=50, nloc=20).apply(refs)))
        assert strict <= loose
