"""Unit tests for the FORAY model dataclasses."""

from repro.foray.model import (
    AffineExpression,
    ForayLoop,
    ForayModel,
    ForayReference,
)


def loop(begin_id, trip, uid=None, kind="for"):
    return ForayLoop(begin_id=begin_id, kind=kind, depth=1, max_trip=trip,
                     min_trip=trip, entries=1, total_iterations=trip,
                     uid=uid or begin_id)


def ref(pc=0x400100, coefficients=(4, 128), num_iterators=None, loops=None,
        mispredictions=0, exec_count=100, footprint=50):
    num = len(coefficients) if num_iterators is None else num_iterators
    path = loops if loops is not None else (loop(10, 4), loop(13, 32))
    return ForayReference(
        pc=pc, loop_path=path,
        expression=AffineExpression(1000, tuple(coefficients), num),
        exec_count=exec_count, footprint=footprint, reads=exec_count,
        writes=0, mispredictions=mispredictions,
    )


class TestAffineExpression:
    def test_evaluate(self):
        expr = AffineExpression(100, (4, 64), 2)
        assert expr.evaluate((0, 0)) == 100
        assert expr.evaluate((3, 2)) == 100 + 12 + 128

    def test_unknown_coefficient_treated_as_zero(self):
        expr = AffineExpression(100, (4, None), 2)
        assert expr.used_coefficients() == (4, 0)
        assert expr.evaluate((1, 5)) == 104

    def test_is_full(self):
        assert AffineExpression(0, (1, 2), 2).is_full
        assert not AffineExpression(0, (1, 2), 1).is_full

    def test_includes_iterator(self):
        assert AffineExpression(0, (4,), 1).includes_iterator()
        assert not AffineExpression(0, (0,), 1).includes_iterator()
        assert not AffineExpression(0, (0, 7), 1).includes_iterator()

    def test_format_paper_style(self):
        expr = AffineExpression(2147440948, (1, 103), 2)
        assert expr.format(("i15", "i12")) == "2147440948+1*i15+103*i12"

    def test_format_partial_shows_used_only(self):
        expr = AffineExpression(500, (8, 99), 1)
        assert expr.format(("a",)) == "500+8*a"


class TestForayLoop:
    def test_name(self):
        assert loop(15, 3).name == "i15"

    def test_constant_trip(self):
        assert loop(10, 4).has_constant_trip
        varying = ForayLoop(10, "for", 1, 5, 2, 3, 12, uid=1)
        assert not varying.has_constant_trip


class TestForayReference:
    def test_array_name(self):
        assert ref(pc=0x4002A0).array_name == "A4002a0"

    def test_is_full_requires_no_mispredictions(self):
        assert ref().is_full
        assert not ref(mispredictions=1).is_full
        assert not ref(num_iterators=1).is_full

    def test_effective_loops_partial(self):
        reference = ref(num_iterators=1)
        assert [lp.begin_id for lp in reference.effective_loops] == [13]

    def test_effective_loops_full(self):
        assert len(ref().effective_loops) == 2

    def test_index_text_names_loops(self):
        text = ref().index_text()
        assert "4*i13" in text and "128*i10" in text


class TestForayModel:
    def test_partition_and_queries(self):
        full = ref()
        partial = ref(pc=0x400200, num_iterators=1, mispredictions=2)
        model = ForayModel(references=[full, partial],
                           loops=list(full.loop_path))
        assert model.reference_count == 2
        assert model.loop_count == 2
        assert model.full_references() == [full]
        assert model.partial_references() == [partial]
        assert len(model.references_in_loop(13)) == 2
        assert model.references_in_loop(99) == []
