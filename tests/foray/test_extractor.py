"""Integration tests for the FORAY-GEN extractor (Algorithm 1)."""

from repro.foray.extractor import (
    ForayExtractor,
    extract_from_records,
    extract_from_source,
)
from repro.foray.filters import FilterConfig
from repro.sim.machine import compile_program, run_compiled
from repro.sim.trace import TraceCollector, format_trace, parse_trace

RELAXED = FilterConfig(nexec=1, nloc=1)


def extract(source, filter_config=None):
    model, _, _ = extract_from_source(source, filter_config)
    return model


class TestEndToEnd:
    def test_simple_affine_loop(self):
        model = extract(
            "int g[64]; int main() { int i; for (i = 0; i < 64; i++) g[i] = i;"
            " return 0; }"
        )
        (ref,) = model.references
        assert ref.expression.used_coefficients() == (4,)
        assert ref.exec_count == 64
        assert ref.footprint == 64
        assert ref.is_full

    def test_two_level_nest(self):
        model = extract(
            "int g[16][16]; int main() { int i, j;"
            " for (i = 0; i < 16; i++) for (j = 0; j < 16; j++) g[i][j] = 1;"
            " return 0; }"
        )
        (ref,) = model.references
        assert ref.expression.used_coefficients() == (4, 64)
        assert len(ref.loop_path) == 2

    def test_pointer_walk_recovered(self):
        # The headline capability: a while loop + pointer walk becomes a
        # clean affine reference.
        model = extract(
            "char buf[256]; int main() { char *p = buf; int n = 0;"
            " while (n < 200) { *p++ = (char)n; n++; } return 0; }"
        )
        (ref,) = model.references
        assert ref.expression.used_coefficients() == (1,)
        assert ref.loop_path[0].kind == "while"

    def test_irregular_reference_excluded(self):
        model = extract(
            "int t[64]; int perm[64]; int main() { int i;"
            " for (i = 0; i < 64; i++) perm[i] = (i * 29 + 7) % 64;"
            " for (i = 0; i < 64; i++) t[perm[i]] = i;"
            " return 0; }"
        )
        names = {ref.pc for ref in model.references}
        # perm[i] store, perm[i] load are affine; t[perm[i]] is not.
        assert len(names) == 2

    def test_scalar_global_filtered_by_nloc(self):
        model = extract(
            "int acc; int g[64]; int main() { int i;"
            " for (i = 0; i < 64; i++) acc += g[i]; return 0; }"
        )
        # g[i] read survives; acc load/store footprint 1 is purged.
        assert len(model.references) == 1

    def test_small_loop_filtered_by_nexec(self):
        model = extract(
            "int g[64]; int main() { int i; for (i = 0; i < 5; i++) g[i] = i;"
            " return 0; }"
        )
        assert model.references == []
        assert len(model.unfiltered_references) >= 1

    def test_loops_counted_from_iterator_bearing_refs(self):
        model = extract(
            "int g[8]; int main() { int i; for (i = 0; i < 8; i++) g[i] = i;"
            " return 0; }"
        )
        # The reference is purged (footprint 8 < 10) but proved the loop
        # reconstructible: the loop still counts for Table II.
        assert model.references == []
        assert len(model.loops) == 1

    def test_access_outside_loops_has_depth_zero(self):
        model = extract("int g[4]; int main() { g[2] = 1; return 0; }", RELAXED)
        (ref,) = model.unfiltered_references
        assert ref.nest_depth == 0
        assert model.references == []  # no iterator -> never in the model

    def test_library_accesses_not_modelled(self):
        model = extract(
            "int a[32]; int b[32]; int main() { int i;"
            " for (i = 0; i < 16; i++) memcpy(b, a, 128); return 0; }",
            RELAXED,
        )
        assert model.references == []
        stats = model.trace_stats
        assert stats.lib_accesses == 16 * 64
        assert len(stats.lib_refs) == 2  # memcpy load + store sites

    def test_captured_totals(self):
        model = extract(
            "int g[64]; int main() { int i; for (i = 0; i < 64; i++) g[i] = i;"
            " return 0; }"
        )
        assert model.captured_accesses == 64
        assert model.captured_footprint == 64

    def test_same_function_two_contexts_two_references(self):
        model = extract(
            "int g[128];"
            "void fill(int base) { int i; for (i = 0; i < 32; i++)"
            "  g[base + i] = i; }"
            "int main() { int x;"
            " for (x = 0; x < 4; x++) fill(x);"
            " for (x = 0; x < 4; x++) fill(2 * x);"
            " return 0; }"
        )
        assert len(model.references) == 2
        assert len({ref.pc for ref in model.references}) == 1


class TestStreamingEquivalence:
    SOURCE = """
    int g[40];
    int h[40];
    int main() {
        int i, j;
        for (i = 0; i < 10; i++) {
            for (j = 0; j < 40; j++) {
                g[j] = h[j] + i;
            }
        }
        return 0;
    }
    """

    def _models(self):
        compiled = compile_program(self.SOURCE)
        collector = TraceCollector()
        online = ForayExtractor(compiled.checkpoint_map)
        run_compiled(compiled, sinks=(collector, online))
        online_model = online.finish()

        # Offline: write the paper text format, parse it back, re-analyze.
        text = format_trace(collector.records)
        offline_model = extract_from_records(
            parse_trace(text, compiled.checkpoint_map), compiled.checkpoint_map
        )
        return online_model, offline_model

    def test_online_equals_offline_reference_sets(self):
        online, offline = self._models()
        def key(model):
            return sorted(
                (r.pc, r.expression.const, r.expression.used_coefficients(),
                 r.exec_count, r.footprint)
                for r in model.references
            )
        assert key(online) == key(offline)

    def test_online_equals_offline_loops(self):
        online, offline = self._models()
        def loops(model):
            return sorted((lp.begin_id, lp.max_trip, lp.entries)
                          for lp in model.loops)
        assert loops(online) == loops(offline)

    def test_online_equals_offline_stats(self):
        online, offline = self._models()
        assert (online.trace_stats.total_accesses
                == offline.trace_stats.total_accesses)
        assert online.trace_stats.user_refs == offline.trace_stats.user_refs

    def test_finish_is_idempotent(self):
        compiled = compile_program(self.SOURCE)
        extractor = ForayExtractor(compiled.checkpoint_map)
        run_compiled(compiled, sinks=(extractor,))
        assert extractor.finish() is extractor.finish()


class TestExecutedLoops:
    def test_static_loop_counted_once_across_contexts(self):
        source = (
            "int g[64];"
            "void f() { int i; for (i = 0; i < 8; i++) g[i] = i; }"
            "int main() { int x; for (x = 0; x < 3; x++) f(); f(); return 0; }"
        )
        compiled = compile_program(source)
        extractor = ForayExtractor(compiled.checkpoint_map)
        run_compiled(compiled, sinks=(extractor,))
        extractor.finish()
        executed = extractor.executed_loops()
        assert len(executed) == 2  # the for in f() and the for in main
        assert sorted(executed.values()) == ["for", "for"]

    def test_unexecuted_loop_not_counted(self):
        source = (
            "int g[64];"
            "int main() { int i; if (0) { for (i = 0; i < 8; i++) g[i] = 1; }"
            " return 0; }"
        )
        compiled = compile_program(source)
        extractor = ForayExtractor(compiled.checkpoint_map)
        run_compiled(compiled, sinks=(extractor,))
        assert extractor.executed_loops() == {}
