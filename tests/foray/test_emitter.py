"""Tests for FORAY-model C emission (paper Figures 2 / 4d style)."""

from repro.foray.emitter import emit_model
from repro.foray.extractor import extract_from_source
from repro.foray.filters import FilterConfig
from repro.lang.parser import parse

RELAXED = FilterConfig(nexec=1, nloc=1)


def emit(source, filter_config=None, **kwargs):
    model, _, _ = extract_from_source(source, filter_config)
    return model, emit_model(model, **kwargs)


SIMPLE = (
    "int g[64]; int main() { int i; for (i = 0; i < 64; i++) g[i] = i;"
    " return 0; }"
)


class TestEmission:
    def test_paper_shape(self):
        model, text = emit(SIMPLE)
        (ref,) = model.references
        assert f"for (int {ref.loop_path[0].name} = 0;" in text
        assert f"{ref.array_name}[" in text
        assert "extern char" in text

    def test_array_named_after_pc(self):
        model, text = emit(SIMPLE)
        (ref,) = model.references
        assert ref.array_name == f"A{ref.pc:x}"
        assert ref.array_name in text

    def test_index_expression_order_inner_first(self):
        # Paper prints const + C_inner*i_inner + C_outer*i_outer.
        model, text = emit(
            "int g[16][16]; int main() { int i, j;"
            " for (i = 0; i < 16; i++) for (j = 0; j < 16; j++) g[i][j] = 1;"
            " return 0; }"
        )
        (ref,) = model.references
        inner = ref.loop_path[-1].name
        outer = ref.loop_path[0].name
        body = ref.index_text()
        assert body.index(f"4*{inner}") < body.index(f"64*{outer}")

    def test_shared_nest_grouped(self):
        model, text = emit(
            "int a[64]; int b[64]; int main() { int i;"
            " for (i = 0; i < 64; i++) { a[i] = b[i]; } return 0; }"
        )
        assert len(model.references) == 2
        # One loop header serves both references.
        assert text.count("for (int") == 1

    def test_partial_reference_annotated(self):
        model, text = emit(
            """
            int A[4096];
            int lines[8] = {0, 900, 140, 2100, 350, 2800, 490, 3500};
            int acc;
            int foo(int off) { int i; int r = 0;
                for (i = 0; i < 64; i++) r += A[i + off]; return r; }
            int main() { int x; for (x = 0; x < 8; x++) acc += foo(lines[x]);
                return 0; }
            """
        )
        partial = [r for r in model.references if not r.is_full]
        assert partial
        assert "partial" in text

    def test_partial_emitted_under_inner_loops_only(self):
        model, text = emit(
            """
            int A[4096];
            int lines[8] = {0, 900, 140, 2100, 350, 2800, 490, 3500};
            int acc;
            int foo(int off) { int i; int r = 0;
                for (i = 0; i < 64; i++) r += A[i + off]; return r; }
            int main() { int x; for (x = 0; x < 8; x++) acc += foo(lines[x]);
                return 0; }
            """
        )
        partial = [r for r in model.references if not r.is_full][0]
        assert len(partial.effective_loops) == partial.expression.num_iterators
        assert len(partial.effective_loops) < partial.nest_depth

    def test_comments_can_be_disabled(self):
        _, text = emit(SIMPLE, include_comments=False)
        assert "/*" not in text

    def test_extern_decls_can_be_disabled(self):
        _, text = emit(SIMPLE, include_extern_decls=False)
        assert "extern" not in text

    def test_empty_model(self):
        model, text = emit("int main() { return 0; }")
        assert model.references == []
        assert text == ""

    def test_emitted_loops_are_parseable_c(self):
        # With externs on and comments off, the emitted model must parse
        # as MiniC wrapped in a function (the paper calls it "a C program").
        model, text = emit(SIMPLE, include_comments=False,
                           include_extern_decls=False)
        (ref,) = model.references
        wrapped = (
            f"int {ref.array_name}[4096];\n"
            f"int main() {{\n{text}\nreturn 0;\n}}"
        )
        parse(wrapped)  # must not raise

    def test_original_loop_kind_noted(self):
        _, text = emit(
            "char buf[256]; int main() { char *p = buf; int n = 0;"
            " while (n < 200) { *p++ = 1; n++; } return 0; }"
        )
        assert "originally a while loop" in text
