"""Unit tests for Algorithm 3 (the online affine solver), including the
paper's worked Figure 4 example and hypothesis property tests."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.foray.affine import ReferenceSolver


def feed_nest(solver, trips, address_fn, writes=False):
    """Execute a perfect nest (trips outer->inner) calling address_fn with
    iterator values (innermost first)."""
    depth = len(trips)

    def rec(level, outer):
        if level == depth:
            iterators = tuple(reversed(outer))
            solver.observe(address_fn(iterators), iterators, writes)
            return
        for value in range(trips[level]):
            rec(level + 1, outer + [value])

    rec(0, [])


class TestPaperFigure4:
    """The exact access sequence of the paper's Figure 4(c)."""

    ADDRESSES = [0x7FFF5934, 0x7FFF5935, 0x7FFF5936,
                 0x7FFF599B, 0x7FFF599C, 0x7FFF599D]

    def solve(self):
        solver = ReferenceSolver(pc=0x4002A0, nest_depth=2)
        index = 0
        for outer in range(2):
            for inner in range(3):
                solver.observe(self.ADDRESSES[index], (inner, outer), True)
                index += 1
        return solver

    def test_coefficients_match_paper(self):
        solver = self.solve()
        # Paper Figure 4(d): A4002a0[2147440948 + 1*i15 + 103*i12]
        assert solver.coefficients == [1, 103]

    def test_const_is_first_address(self):
        assert self.solve().const_first == 0x7FFF5934  # 2147440948

    def test_expression_is_full(self):
        solver = self.solve()
        assert solver.is_full
        assert solver.num_iterators == 2
        assert solver.mispredictions == 0

    def test_predicts_every_address(self):
        solver = self.solve()
        expr = solver.expression()
        index = 0
        for outer in range(2):
            for inner in range(3):
                assert expr.evaluate((inner, outer)) == self.ADDRESSES[index]
                index += 1

    def test_counters(self):
        solver = self.solve()
        assert solver.exec_count == 6
        assert solver.footprint == 6
        assert solver.writes == 6 and solver.reads == 0


class TestFullAffine:
    def test_single_loop_stride(self):
        solver = ReferenceSolver(0x400000, 1)
        feed_nest(solver, [10], lambda it: 1000 + 4 * it[0])
        assert solver.coefficients == [4]
        assert solver.is_full

    def test_negative_coefficient(self):
        solver = ReferenceSolver(0x400000, 1)
        feed_nest(solver, [8], lambda it: 5000 - 2 * it[0])
        assert solver.coefficients == [-2]
        assert solver.is_full

    def test_three_level_nest(self):
        solver = ReferenceSolver(0x400000, 3)
        feed_nest(
            solver, [2, 3, 4],
            lambda it: 7000 + 1 * it[0] + 16 * it[1] + 64 * it[2],
        )
        assert solver.coefficients == [1, 16, 64]
        assert solver.is_full

    def test_zero_coefficient_iterator(self):
        # Same address for every outer iteration: C_outer = 0.
        solver = ReferenceSolver(0x400000, 2)
        feed_nest(solver, [3, 5], lambda it: 800 + 4 * it[0])
        assert solver.coefficients == [4, 0]
        assert solver.is_full

    def test_constant_reference_stays_unknown(self):
        # A single-iteration loop never lets the solver see the iterator
        # change, so the coefficient stays UNKNOWN (reported as 0).
        solver = ReferenceSolver(0x400000, 1)
        feed_nest(solver, [1], lambda it: 1234)
        assert solver.coefficients == [None]
        assert not solver.expression().includes_iterator()

    def test_scalar_location(self):
        solver = ReferenceSolver(0x400000, 1)
        feed_nest(solver, [50], lambda it: 42)
        assert solver.coefficients == [0]
        assert solver.footprint == 1


class TestPartialAffine:
    def test_constant_jump_demotes_outer(self):
        # Inner stride 4; the base jumps unpredictably per outer iteration
        # (paper Figure 7): M must drop below the nest depth.
        bases = [0, 7000, 1300, 20000]
        solver = ReferenceSolver(0x400000, 2)
        feed_nest(solver, [4, 6],
                  lambda it: bases[it[1]] + 4 * it[0])
        assert not solver.is_full
        assert solver.num_iterators == 1
        assert solver.coefficients[0] == 4

    def test_all_changed_misprediction_keeps_inner(self):
        # Mispredictions where every iterator changed leave S all-zero, so
        # M = N - 1 (paper step 6 formula).
        bases = [100, 900, 300]
        solver = ReferenceSolver(0x400000, 2)
        feed_nest(solver, [3, 5], lambda it: bases[it[1]] + 8 * it[0])
        assert solver.num_iterators == 1
        assert solver.mispredictions >= 1

    def test_three_level_partial_keeps_two(self):
        # addr affine in the two innermost loops; outermost jumps wildly.
        bases = [0, 5000, 1100, 40000]
        solver = ReferenceSolver(0x400000, 3)
        feed_nest(
            solver, [4, 3, 5],
            lambda it: bases[it[2]] + 1 * it[0] + 10 * it[1],
        )
        assert solver.num_iterators == 2
        assert solver.coefficients[0] == 1
        assert solver.coefficients[1] == 10

    def test_non_analyzable_when_two_unknowns_change(self):
        # First and second observation differ in BOTH iterators while both
        # coefficients are unknown (H > 1): step 4 gives up.
        solver = ReferenceSolver(0x400000, 2)
        solver.observe(100, (0, 0), False)
        solver.observe(200, (1, 1), False)
        assert solver.non_analyzable

    def test_non_analyzable_still_counts(self):
        solver = ReferenceSolver(0x400000, 2)
        solver.observe(100, (0, 0), False)
        solver.observe(200, (1, 1), False)
        solver.observe(300, (2, 2), True)
        assert solver.exec_count == 3
        assert solver.footprint == 3

    def test_irregular_single_loop_drops_to_zero_iterators(self):
        # A permutation-gather: every prediction misses while the iterator
        # changed, S stays 0, and M collapses to 0 (paper formula).
        table = [5, 2, 7, 1, 9, 0, 4, 3]
        solver = ReferenceSolver(0x400000, 1)
        feed_nest(solver, [8], lambda it: 1000 + 4 * table[it[0]])
        assert solver.num_iterators == 0

    def test_non_integer_stride_demoted(self):
        # Address advances by 1 every two iterations: the coefficient is
        # fractional, which the solver must not silently accept.
        solver = ReferenceSolver(0x400000, 1)
        feed_nest(solver, [12], lambda it: 600 + it[0] // 2)
        assert solver.num_iterators == 0


class TestProperties:
    @given(
        const=st.integers(min_value=0, max_value=2**31),
        coeffs=st.lists(st.integers(min_value=-64, max_value=64),
                        min_size=1, max_size=3),
        data=st.data(),
    )
    @settings(max_examples=60, deadline=None)
    def test_recovers_any_planted_affine_function(self, const, coeffs, data):
        """Algorithm 3 must exactly recover every truly affine reference
        whose iterators each change alone at least once (trips >= 2)."""
        trips = [
            data.draw(st.integers(min_value=2, max_value=4))
            for _ in coeffs
        ]
        solver = ReferenceSolver(0x400000, len(coeffs))
        feed_nest(
            solver, trips[::-1],
            lambda it: const + sum(c * v for c, v in zip(coeffs, it)),
        )
        assert solver.is_full
        assert solver.coefficients == coeffs
        assert solver.const_first == const

    @given(
        coeff=st.integers(min_value=1, max_value=32),
        trips=st.tuples(st.integers(min_value=2, max_value=4),
                        st.integers(min_value=2, max_value=4)),
        jumps=st.lists(st.integers(min_value=0, max_value=10_000),
                       min_size=4, max_size=4),
    )
    @settings(max_examples=40, deadline=None)
    def test_partial_never_reports_full_when_bases_jump(self, coeff, trips, jumps):
        """If the constant term genuinely jumps between outer iterations,
        the solver must not claim a full affine expression."""
        inner_trip, outer_trip = trips
        bases = [jumps[i % len(jumps)] * 13 + i for i in range(outer_trip)]
        distinct = len(set(
            bases[o + 1] - bases[o] for o in range(outer_trip - 1)
        ))
        solver = ReferenceSolver(0x400000, 2)
        feed_nest(solver, [outer_trip, inner_trip],
                  lambda it: bases[it[1]] + coeff * it[0])
        if distinct > 1:  # truly unpredictable outer stride
            assert not solver.is_full
            # The inner behaviour must still be captured.
            assert solver.coefficients[0] == coeff

    @given(st.lists(st.integers(min_value=0, max_value=255),
                    min_size=2, max_size=40))
    @settings(max_examples=40, deadline=None)
    def test_footprint_and_exec_count_invariants(self, addresses):
        solver = ReferenceSolver(0x400000, 1)
        for index, addr in enumerate(addresses):
            solver.observe(addr, (index,), False)
        assert solver.exec_count == len(addresses)
        assert solver.footprint == len(set(addresses))
