"""Tests for inter-function inlining/duplication hints (paper Figure 9)."""

from repro.foray.extractor import extract_from_source
from repro.foray.hints import function_of_node, inlining_hints
from repro.sim.trace import node_id_of_pc


def get_hints(source, **kwargs):
    model, _, compiled = extract_from_source(source)
    return inlining_hints(model, compiled.program, **kwargs), model, compiled


TWO_SITES = """
int A[1024];
int consume;
int foo(int offset) {
    int ret = 0;
    int i;
    for (i = 0; i < 32; i++) {
        ret += A[i + offset];
    }
    return ret;
}
int main() {
    int x, y, tmp = 0;
    for (x = 0; x < 10; x++) { tmp += foo(10 * x); }
    for (y = 0; y < 20; y++) { tmp += foo(2 * y); }
    consume = tmp;
    return 0;
}
"""


class TestHints:
    def test_two_contexts_detected(self):
        hints, model, _ = get_hints(TWO_SITES)
        (hint,) = hints
        assert hint.context_count == 2
        assert hint.patterns_differ

    def test_function_named(self):
        hints, _, _ = get_hints(TWO_SITES)
        assert hints[0].function_name == "foo"

    def test_describe_mentions_duplication(self):
        hints, _, _ = get_hints(TWO_SITES)
        assert "duplicating" in hints[0].describe()

    def test_identical_patterns_no_duplication_advice(self):
        source = TWO_SITES.replace("foo(10 * x)", "foo(4 * x)").replace(
            "foo(2 * y)", "foo(4 * y)").replace("y < 20", "y < 10")
        hints, _, _ = get_hints(source)
        (hint,) = hints
        assert not hint.patterns_differ
        assert "single optimized version" in hint.describe()

    def test_single_context_no_hint(self):
        source = """
        int A[256]; int consume;
        int main() { int i, t = 0;
            for (i = 0; i < 64; i++) t += A[i];
            consume = t; return 0; }
        """
        hints, _, _ = get_hints(source)
        assert hints == []

    def test_function_of_node_resolves(self):
        hints, model, compiled = get_hints(TWO_SITES)
        pc = hints[0].pc
        assert function_of_node(compiled.program, node_id_of_pc(pc)) == "foo"

    def test_function_of_node_unknown(self):
        _, _, compiled = get_hints(TWO_SITES)
        assert function_of_node(compiled.program, 10**9) is None

    def test_filtered_out_contexts_still_hint(self):
        # One call site runs the loop only 4 times (purged by Nexec), but
        # the hint is about the function, not one context.
        source = """
        int A[1024]; int consume;
        int foo(int offset) { int i; int r = 0;
            for (i = 0; i < 32; i++) r += A[i + offset]; return r; }
        int main() { int x, tmp = 0;
            for (x = 0; x < 10; x++) tmp += foo(8 * x);
            tmp += foo(500);
            consume = tmp; return 0; }
        """
        hints_all, _, _ = get_hints(source)
        assert hints_all and hints_all[0].context_count == 2
