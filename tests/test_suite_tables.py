"""Integration tests: the mini-MiBench suite must reproduce the *shape* of
the paper's Tables I-III (see EXPERIMENTS.md for the full comparison).

These assertions are deliberately about ordering, signs and coarse bands —
not absolute values, which depend on workload scale by construction.
"""

import pytest

from repro.analysis.paper_data import BENCHMARK_NAMES

pytestmark = pytest.mark.usefixtures("suite_reports")


class TestSuiteRuns:
    def test_all_benchmarks_present(self, suite_reports):
        # The paper's six, then the MediaBench-style mpeg2 addition.
        assert tuple(suite_reports) == (*BENCHMARK_NAMES, "mpeg2")

    def test_all_programs_terminate_cleanly(self, suite_reports):
        for report in suite_reports.values():
            assert report.extraction.run_result.exit_code == 0

    def test_all_programs_produce_output(self, suite_reports):
        for name, report in suite_reports.items():
            assert name in report.extraction.run_result.stdout

    def test_every_model_nonempty(self, suite_reports):
        for report in suite_reports.values():
            assert report.model.reference_count >= 1


class TestTable1Shape:
    def test_adpcm_exact_loop_structure(self, suite_reports):
        census = suite_reports["adpcm"].census
        assert census.total_loops == 2
        assert census.for_loops == 1
        assert census.while_loops == 1

    def test_fft_all_for_loops(self, suite_reports):
        census = suite_reports["fft"].census
        assert census.for_pct == 100.0

    def test_lame_has_do_loops(self, suite_reports):
        assert suite_reports["lame"].census.do_loops >= 1

    def test_jpeg_has_significant_while_share(self, suite_reports):
        census = suite_reports["jpeg"].census
        assert census.while_pct >= 15.0

    def test_for_loops_dominate_everywhere_but_adpcm(self, suite_reports):
        for name, report in suite_reports.items():
            if name != "adpcm":
                assert report.census.for_pct > 50.0

    def test_average_non_for_share_substantial(self, suite_reports):
        # Paper: 23% of loops on average are not for loops.
        shares = [r.census.non_for_pct for r in suite_reports.values()]
        assert 10.0 <= sum(shares) / len(shares) <= 40.0

    def test_jpeg_lame_loop_rich(self, suite_reports):
        # jpeg and lame are the loop-rich benchmarks in the paper (169 and
        # 479); in the scaled suite they must be the top two.
        counts = {n: r.census.total_loops for n, r in suite_reports.items()}
        top_two = sorted(counts, key=counts.get, reverse=True)[:2]
        assert set(top_two) == {"jpeg", "lame"}


class TestTable2Shape:
    def test_fft_fully_in_source_form(self, suite_reports):
        row = suite_reports["fft"].table2
        assert row.loops_not_in_source_form_pct == 0.0
        assert row.refs_not_in_source_form_pct == 0.0

    def test_adpcm_fully_hidden_from_static(self, suite_reports):
        row = suite_reports["adpcm"].table2
        assert row.loops_not_in_source_form_pct == 100.0
        assert row.refs_not_in_source_form_pct == 100.0

    def test_adpcm_minimal_model(self, suite_reports):
        row = suite_reports["adpcm"].table2
        assert row.loops_in_model == 2
        assert row.refs_in_model == 1

    def test_gsm_most_hidden_references(self, suite_reports):
        # gsm has the highest refs-not-in-form share of the non-total rows
        # in the paper (74%).
        rows = {n: r.table2.refs_not_in_source_form_pct
                for n, r in suite_reports.items() if n != "adpcm"}
        assert max(rows, key=rows.get) == "gsm"

    def test_susan_loops_mostly_hidden(self, suite_reports):
        assert suite_reports["susan"].table2.loops_not_in_source_form_pct >= 50.0

    def test_jpeg_lame_middle_band(self, suite_reports):
        for name in ("jpeg", "lame"):
            row = suite_reports[name].table2
            assert 20.0 <= row.refs_not_in_source_form_pct <= 60.0
            assert 20.0 <= row.loops_not_in_source_form_pct <= 60.0

    def test_headline_improvement_at_least_forty_percent(self, suite_reports):
        # The paper reports ~2x on average; require a substantial gain.
        rows = [r.table2 for r in suite_reports.values()]
        total_model = sum(r.refs_in_model for r in rows)
        total_static = sum(r.refs_in_source_form for r in rows)
        assert total_model / total_static >= 1.3

    def test_mean_per_benchmark_improvement_near_paper(self, suite_reports):
        ratios = [
            r.table2.improvement_ratio
            for r in suite_reports.values()
            if r.table2.improvement_ratio != float("inf")
        ]
        mean = sum(ratios) / len(ratios)
        assert 1.5 <= mean <= 5.0  # paper: ~2x

    def test_model_never_smaller_than_static(self, suite_reports):
        for report in suite_reports.values():
            row = report.table2
            assert row.refs_in_model >= row.refs_in_source_form
            assert row.loops_in_model >= row.loops_in_source_form


class TestTable3Shape:
    def test_model_refs_minority_of_total(self, suite_reports):
        # Paper: few % of references suffice (ours is higher because the
        # programs are small, but still a minority).
        for report in suite_reports.values():
            assert report.table3.model_refs_pct < 90.0

    def test_model_accesses_substantial(self, suite_reports):
        # Paper average: 29% of accesses captured.
        shares = [r.table3.model_accesses_pct for r in suite_reports.values()]
        assert sum(shares) / len(shares) >= 25.0

    def test_fft_library_dominated(self, suite_reports):
        row = suite_reports["fft"].table3
        assert row.lib_accesses_pct > 40.0
        assert row.lib_accesses_pct > row.model_accesses_pct

    def test_adpcm_library_negligible_references(self, suite_reports):
        row = suite_reports["adpcm"].table3
        assert row.model_accesses_pct >= 20.0

    def test_gsm_small_model_footprint_share(self, suite_reports):
        # Paper gsm: heavy reuse of small windows (5% footprint).
        row = suite_reports["gsm"].table3
        assert row.model_footprint_pct <= 40.0

    def test_lame_footprint_share_near_paper(self, suite_reports):
        # Paper: 26%.
        row = suite_reports["lame"].table3
        assert 10.0 <= row.model_footprint_pct <= 50.0

    def test_totals_consistent(self, suite_reports):
        for report in suite_reports.values():
            row = report.table3
            assert row.model_accesses <= row.total_accesses
            assert row.lib_accesses <= row.total_accesses
            assert row.model_footprint <= row.total_footprint
            assert row.model_references <= row.total_references


class TestDeterminism:
    def test_rerun_is_identical(self, suite_reports):
        from repro.pipeline import run_workload
        from repro.workloads.registry import get_workload

        again = run_workload("adpcm", get_workload("adpcm").source)
        before = suite_reports["adpcm"]
        assert again.table2 == before.table2
        assert again.census == before.census
        assert again.table3 == before.table3
