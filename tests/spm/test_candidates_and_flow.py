"""Tests for buffer candidates, energy model, transform and exploration."""

import pytest

from repro.foray.extractor import extract_from_source
from repro.spm.allocator import allocate
from repro.spm.candidates import (
    candidate_benefit,
    candidates_for_reference,
    enumerate_candidates,
)
from repro.spm.energy import EnergyModel
from repro.spm.explore import (
    best_allocation,
    explore,
    model_baseline_energy,
)
from repro.spm.reuse import reuse_levels
from repro.spm.transform import transform_model

REUSE_SOURCE = """
int table[64];
int out[4096];
int main() {
    int rep, i;
    for (rep = 0; rep < 64; rep++) {
        for (i = 0; i < 64; i++) {
            out[64 * rep + i] = table[i] * 3;
        }
    }
    return 0;
}
"""


@pytest.fixture(scope="module")
def reuse_model():
    model, _, _ = extract_from_source(REUSE_SOURCE)
    return model


class TestEnergyModel:
    def test_spm_cheaper_than_main(self):
        energy = EnergyModel()
        assert energy.spm_energy(100, 0) < energy.main_energy(100, 0)

    def test_fill_costs_both_sides(self):
        energy = EnergyModel()
        assert energy.fill_energy(10) == pytest.approx(
            10 * (energy.main_read_nj + energy.spm_write_nj)
        )

    def test_writeback(self):
        energy = EnergyModel()
        assert energy.writeback_energy(4) > 0


class TestCandidates:
    def test_reused_table_has_profitable_candidate(self, reuse_model):
        table_refs = [r for r in reuse_model.references
                      if r.footprint == 64 and r.reads > 0
                      and r.expression.used_coefficients()[1] == 0]
        assert table_refs
        candidates = candidates_for_reference(table_refs[0], EnergyModel())
        assert candidates
        assert max(c.benefit_nj for c in candidates) > 0

    def test_streaming_write_not_profitable(self, reuse_model):
        # out[] is written once per element: staging it through the SPM
        # costs more transfers than it saves.
        out_refs = [r for r in reuse_model.references if r.writes > 0]
        assert out_refs
        for ref in out_refs:
            for level in reuse_levels(ref):
                if level.reuse_factor <= 1.0:
                    assert candidate_benefit(ref, level, EnergyModel()) < 0

    def test_enumerate_covers_model(self, reuse_model):
        candidates = enumerate_candidates(reuse_model)
        refs_with_candidates = {id(c.reference) for c in candidates}
        assert refs_with_candidates  # at least the reused table

    def test_benefit_scales_with_main_energy(self, reuse_model):
        cheap = EnergyModel(main_read_nj=1.0, main_write_nj=1.0)
        pricey = EnergyModel(main_read_nj=50.0, main_write_nj=50.0)
        ref = max(reuse_model.references, key=lambda r: r.reads)
        best_cheap = max((candidate_benefit(ref, lv, cheap)
                          for lv in reuse_levels(ref)), default=0)
        best_pricey = max((candidate_benefit(ref, lv, pricey)
                           for lv in reuse_levels(ref)), default=0)
        assert best_pricey > best_cheap


class TestTransform:
    def test_transform_text_structure(self, reuse_model):
        allocation = best_allocation(reuse_model, 4096)
        text = transform_model(allocation)
        assert "SPM capacity: 4096" in text
        for candidate in allocation.selected:
            assert candidate.name in text
            assert "dma_copy" in text

    def test_writeback_only_for_written_refs(self, reuse_model):
        allocation = best_allocation(reuse_model, 4096)
        text = transform_model(allocation)
        if all(c.reference.writes == 0 for c in allocation.selected):
            assert "write back" not in text

    def test_empty_allocation(self):
        text = transform_model(allocate([], 128))
        assert "0 buffers" in text


class TestExploration:
    def test_savings_monotone_in_capacity(self, reuse_model):
        points = explore(reuse_model, capacities=(64, 256, 1024, 4096))
        benefits = [p.benefit_nj for p in points]
        assert benefits == sorted(benefits)

    def test_saving_fraction_bounded(self, reuse_model):
        for point in explore(reuse_model):
            assert 0.0 <= point.saving_fraction <= 1.0

    def test_used_bytes_within_capacity(self, reuse_model):
        for point in explore(reuse_model):
            assert point.used_bytes <= point.capacity_bytes

    def test_baseline_positive(self, reuse_model):
        assert model_baseline_energy(reuse_model, EnergyModel()) > 0

    def test_large_capacity_captures_reuse(self, reuse_model):
        point = explore(reuse_model, capacities=(16384,))[0]
        assert point.buffer_count >= 1
        assert point.benefit_nj > 0
