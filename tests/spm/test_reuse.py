"""Unit tests for the DRDU-style reuse analysis."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.foray.model import AffineExpression, ForayLoop, ForayReference
from repro.spm.reuse import inner_footprint, reuse_levels


def make_loop(begin_id, trip, entries=1, uid=None):
    return ForayLoop(
        begin_id=begin_id, kind="for", depth=1, max_trip=trip, min_trip=trip,
        entries=entries, total_iterations=trip * entries,
        uid=uid if uid is not None else begin_id,
    )


def make_ref(coefficients, trips, entries=None, exec_count=None, writes=0):
    """Build a reference with loops outer->inner and coeffs inner-first."""
    entries = entries or [1] * len(trips)
    loops = tuple(
        make_loop(10 + 3 * i, trip, entry, uid=50 + i)
        for i, (trip, entry) in enumerate(zip(trips, entries))
    )
    total = exec_count
    if total is None:
        total = 1
        for trip in trips:
            total *= trip
    return ForayReference(
        pc=0x400100,
        loop_path=loops,
        expression=AffineExpression(0x1000, tuple(coefficients), len(coefficients)),
        exec_count=total,
        footprint=1,
        reads=total - writes,
        writes=writes,
        access_size=4,
    )


class TestInnerFootprint:
    def test_unit_stride(self):
        assert inner_footprint((4,), (10,)) == (10, False)

    def test_two_level_dense(self):
        # c1=4, T1=10; c2=40, T2=5 -> 50 distinct word addresses.
        assert inner_footprint((4, 40), (10, 5)) == (50, False)

    def test_overlapping_windows(self):
        # a[i + j] style: i<8, j<8 -> 15 distinct cells.
        assert inner_footprint((1, 1), (8, 8)) == (15, False)

    def test_zero_coefficient(self):
        assert inner_footprint((0,), (100,)) == (1, False)

    def test_single_iteration_loops(self):
        assert inner_footprint((4, 8), (1, 1)) == (1, False)

    def test_estimate_beyond_limit(self):
        count, approximate = inner_footprint((1, 1000), (1000, 1000))
        assert approximate
        assert count >= 1000

    def test_estimate_upper_bound_sane(self):
        count, _ = inner_footprint((4, 4000), (1000, 1000))
        # Stride gcd 4 over the reachable span.
        span = 4 * 999 + 4000 * 999
        assert count <= span // 4 + 1

    @given(
        coeffs=st.lists(st.integers(min_value=-16, max_value=16),
                        min_size=1, max_size=2),
        trips=st.lists(st.integers(min_value=1, max_value=6),
                       min_size=1, max_size=2),
    )
    @settings(max_examples=50, deadline=None)
    def test_exact_matches_brute_force(self, coeffs, trips):
        size = min(len(coeffs), len(trips))
        coeffs, trips = tuple(coeffs[:size]), tuple(trips[:size])
        count, approximate = inner_footprint(coeffs, trips)
        if not approximate:
            values = {0}
            for c, t in zip(coeffs, trips):
                values = {v + c * x for v in values for x in range(t)}
            assert count == len(values)


class TestReuseLevels:
    def test_levels_per_split(self):
        ref = make_ref((4, 0), trips=(5, 10), entries=[1, 5])
        levels = reuse_levels(ref)
        assert [lv.level for lv in levels] == [1, 2]

    def test_reuse_detected_for_zero_outer_coefficient(self):
        # Same 10-element window re-read 5 times: level-1 reuse factor 1,
        # level-2 footprint still 10 -> reuse factor 5.
        ref = make_ref((4, 0), trips=(5, 10), entries=[1, 5])
        levels = reuse_levels(ref)
        assert levels[1].footprint_words == 10
        assert levels[1].reuse_factor == 5.0

    def test_no_reuse_for_disjoint_rows(self):
        ref = make_ref((4, 40), trips=(5, 10), entries=[1, 5])
        levels = reuse_levels(ref)
        assert levels[1].footprint_words == 50
        assert levels[1].reuse_factor == 1.0

    def test_fills_follow_entries(self):
        ref = make_ref((4,), trips=(8,), entries=[12])
        (level,) = reuse_levels(ref)
        assert level.fills == 12

    def test_partial_reference_uses_effective_loops_only(self):
        # 3-deep nest but M=1: only the innermost loop is analyzable.
        loops = tuple(make_loop(10 + 3 * i, t, uid=60 + i)
                      for i, t in enumerate((4, 5, 6)))
        ref = ForayReference(
            pc=0x400100, loop_path=loops,
            expression=AffineExpression(0, (4, 0, 0), 1),
            exec_count=120, footprint=6, reads=120, writes=0, access_size=4,
        )
        levels = reuse_levels(ref)
        assert len(levels) == 1
