"""Unit tests for the SPM buffer allocator (multiple-choice knapsack)."""

import itertools

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.foray.model import AffineExpression, ForayReference
from repro.spm.allocator import AllocatorPolicy, allocate
from repro.spm.candidates import BufferCandidate
from repro.spm.reuse import ReuseLevel


def make_candidate(ref_key, size_bytes, benefit, level=1):
    reference = ForayReference(
        pc=0x400000 + 8 * ref_key,
        loop_path=(),
        expression=AffineExpression(0, (4,), 1),
        exec_count=100,
        footprint=size_bytes // 4,
        reads=100,
        writes=0,
    )
    reuse = ReuseLevel(level, size_bytes // 4, 1, 100.0, 1.0, False)
    return BufferCandidate(reference, reuse, size_bytes, benefit)


def brute_force(candidates, capacity):
    """Optimal benefit by exhaustive search (<= 1 candidate per ref)."""
    groups = {}
    for candidate in candidates:
        groups.setdefault(id(candidate.reference), []).append(candidate)
    best = 0.0
    group_lists = [[None, *options] for options in groups.values()]
    for combo in itertools.product(*group_lists):
        chosen = [c for c in combo if c is not None]
        if sum(c.size_bytes for c in chosen) <= capacity:
            best = max(best, sum(c.benefit_nj for c in chosen))
    return best


class TestAllocator:
    def test_fits_all_when_capacity_ample(self):
        candidates = [make_candidate(i, 100, 50.0) for i in range(4)]
        allocation = allocate(candidates, 4096)
        assert allocation.buffer_count == 4
        assert allocation.total_benefit_nj == 200.0

    def test_respects_capacity(self):
        candidates = [make_candidate(i, 1000, 10.0) for i in range(4)]
        allocation = allocate(candidates, 2048)
        assert allocation.used_bytes <= 2048
        assert allocation.buffer_count == 2

    def test_prefers_higher_benefit(self):
        candidates = [
            make_candidate(0, 1000, 10.0),
            make_candidate(1, 1000, 99.0),
        ]
        allocation = allocate(candidates, 1024)
        assert allocation.buffer_count == 1
        assert allocation.selected[0].benefit_nj == 99.0

    def test_one_level_per_reference(self):
        base = make_candidate(0, 400, 10.0)
        alt = BufferCandidate(base.reference,
                              ReuseLevel(2, 200, 1, 100.0, 2.0, False),
                              800, 25.0)
        allocation = allocate([base, alt], 4096)
        assert allocation.buffer_count == 1
        assert allocation.selected[0].benefit_nj == 25.0

    def test_knapsack_tradeoff(self):
        # One big buffer (60) vs two small (40 + 35 = 75): DP must pick
        # the pair.
        candidates = [
            make_candidate(0, 1000, 60.0),
            make_candidate(1, 500, 40.0),
            make_candidate(2, 500, 35.0),
        ]
        allocation = allocate(candidates, 1000)
        assert allocation.total_benefit_nj == 75.0

    def test_zero_capacity(self):
        allocation = allocate([make_candidate(0, 100, 10.0)], 0)
        assert allocation.buffer_count == 0
        assert allocation.total_benefit_nj == 0.0

    def test_oversized_candidate_skipped(self):
        allocation = allocate([make_candidate(0, 10_000, 99.0)], 1024)
        assert allocation.buffer_count == 0

    @given(
        sizes=st.lists(
            st.integers(min_value=1, max_value=100).map(lambda g: 4 * g),
            min_size=1, max_size=5,
        ),
        benefits=st.lists(st.floats(min_value=1, max_value=100),
                          min_size=5, max_size=5),
        capacity=st.integers(min_value=0, max_value=200).map(lambda g: 4 * g),
    )
    @settings(max_examples=40, deadline=None)
    def test_matches_brute_force(self, sizes, benefits, capacity):
        # Sizes and capacity are granule-aligned, so the DP is exact.
        candidates = [
            make_candidate(i, size, round(benefit, 2))
            for i, (size, benefit) in enumerate(zip(sizes, benefits))
        ]
        allocation = allocate(candidates, capacity)
        expected = brute_force(candidates, capacity)
        assert abs(allocation.total_benefit_nj - expected) < 1e-6
        assert allocation.used_bytes <= capacity


class TestPolicies:
    def crowding_candidates(self):
        """One big medium-value buffer vs. two small high-density ones."""
        return [
            make_candidate(0, 1000, 90.0),  # density 0.09
            make_candidate(1, 500, 60.0),   # density 0.12
            make_candidate(2, 500, 55.0),   # density 0.11
        ]

    def test_greedy_ranks_by_density(self):
        allocation = allocate(self.crowding_candidates(), 1000,
                              AllocatorPolicy.GREEDY)
        assert allocation.total_benefit_nj == 115.0
        assert allocation.policy == "greedy"

    def test_legacy_greedy_ranks_by_raw_benefit(self):
        # The historical ordering lets the big buffer crowd out the pair.
        allocation = allocate(self.crowding_candidates(), 1000,
                              AllocatorPolicy.GREEDY_BENEFIT)
        assert allocation.total_benefit_nj == 90.0
        assert allocation.policy == "greedy-benefit"

    def test_dp_dominates_both_greedies(self):
        candidates = self.crowding_candidates()
        dp = allocate(candidates, 1000)  # default policy
        assert dp.policy == "dp"
        for policy in (AllocatorPolicy.GREEDY,
                       AllocatorPolicy.GREEDY_BENEFIT):
            other = allocate(candidates, 1000, policy)
            assert dp.total_benefit_nj >= other.total_benefit_nj

    def test_greedy_respects_group_exclusivity(self):
        base = make_candidate(0, 400, 10.0)
        alt = BufferCandidate(base.reference,
                              ReuseLevel(2, 200, 1, 100.0, 2.0, False),
                              800, 25.0)
        for policy in AllocatorPolicy:
            allocation = allocate([base, alt], 4096, policy)
            assert allocation.buffer_count == 1

    def test_policy_accepts_plain_strings(self):
        allocation = allocate(self.crowding_candidates(), 1000, "greedy")
        assert allocation.policy == "greedy"

    def test_greedy_charges_granule_aligned_capacity(self):
        # Two 6-byte buffers round up to 8 bytes each: only one fits in
        # 12 bytes, exactly as the DP would account it.
        candidates = [make_candidate(0, 6, 10.0), make_candidate(1, 6, 9.0)]
        allocation = allocate(candidates, 12, AllocatorPolicy.GREEDY)
        assert allocation.buffer_count == 1

    @given(
        sizes=st.lists(
            st.integers(min_value=1, max_value=100).map(lambda g: 4 * g),
            min_size=1, max_size=5,
        ),
        benefits=st.lists(st.floats(min_value=1, max_value=100),
                          min_size=5, max_size=5),
        capacity=st.integers(min_value=0, max_value=200).map(lambda g: 4 * g),
    )
    @settings(max_examples=40, deadline=None)
    def test_dp_never_loses_to_greedy(self, sizes, benefits, capacity):
        candidates = [
            make_candidate(i, size, round(benefit, 2))
            for i, (size, benefit) in enumerate(zip(sizes, benefits))
        ]
        dp = allocate(candidates, capacity)
        for policy in (AllocatorPolicy.GREEDY,
                       AllocatorPolicy.GREEDY_BENEFIT):
            other = allocate(candidates, capacity, policy)
            assert dp.total_benefit_nj >= other.total_benefit_nj - 1e-9
