"""End-to-end round trip: compile the SPM-transformed MiniC replay back
through the pipeline and verify the main-memory traffic actually drops by
exactly the allocation's predicted transfer volume — on both engines.

Replay arrays live in the global segment (= main memory); SPM buffers are
emitted as stack locals, so the count of traced accesses in the global
address range *is* the main-memory traffic.
"""

import pytest

from repro.foray.extractor import extract_from_source
from repro.sim.machine import EngineConfig, compile_program, run_compiled
from repro.sim.memory import GLOBAL_BASE, HEAP_BASE
from repro.spm.allocator import allocate_graph
from repro.spm.graph import ReuseGraph
from repro.spm.transform import (
    emit_replay_source,
    emit_transformed_source,
    replay_buffer_eligible,
)

# A re-read table (read-only reuse) plus a streaming output.
READ_REUSE_SOURCE = """
int table[64];
int out[4096];
int main() {
    int rep, i;
    for (rep = 0; rep < 64; rep++) {
        for (i = 0; i < 64; i++) {
            out[64 * rep + i] = table[i] * 3;
        }
    }
    return 0;
}
"""

# A histogram updated in place: its load and store extract as two
# references sharing one window, so the allocation buffers them as one
# *shared* node (fill AND write-back paid once).
WRITEBACK_SOURCE = """
int hist[64];
int data[4096];
int main() {
    int rep, i;
    for (rep = 0; rep < 64; rep++) {
        for (i = 0; i < 64; i++) {
            hist[i] = hist[i] + data[64 * rep + i];
        }
    }
    return 0;
}
"""


class GlobalRangeCounter:
    """Trace sink counting accesses in the global (main-memory) segment."""

    def __init__(self):
        self.count = 0

    def emit_block(self, accesses, checkpoints):
        for _pc, addr, _size, _is_write in accesses:
            if GLOBAL_BASE <= addr < HEAP_BASE:
                self.count += 1

    def emit(self, record):  # pragma: no cover - block protocol is used
        addr = getattr(record, "addr", None)
        if addr is not None and GLOBAL_BASE <= addr < HEAP_BASE:
            self.count += 1


def run_counting(source: str, engine: str):
    compiled = compile_program(source)
    counter = GlobalRangeCounter()
    result = run_compiled(compiled, sinks=(counter,),
                          config=EngineConfig(engine=engine))
    return counter.count, result


@pytest.mark.parametrize("engine", ["bytecode", "ast"])
@pytest.mark.parametrize("source", [READ_REUSE_SOURCE, WRITEBACK_SOURCE],
                         ids=["read-reuse", "writeback"])
def test_roundtrip_traffic_drop_matches_prediction(source, engine):
    model, _, _ = extract_from_source(source)
    graph = ReuseGraph.from_model(model)
    allocation = allocate_graph(graph, 4096)
    assert allocation.buffer_count >= 1

    baseline_source = emit_replay_source(model)
    transformed = emit_transformed_source(allocation, model)
    assert transformed.buffered, "allocation must rewrite at least one ref"

    baseline_count, baseline_run = run_counting(baseline_source, engine)
    transformed_count, transformed_run = run_counting(transformed.source,
                                                      engine)

    # The rewrite must not change program semantics.
    assert transformed_run.exit_code == baseline_run.exit_code
    assert transformed_run.stdout == baseline_run.stdout

    drop = baseline_count - transformed_count
    assert drop == transformed.predicted_drop
    assert drop > 0


@pytest.mark.parametrize("engine", ["bytecode", "ast"])
def test_shared_writeback_buffer_fills_once(engine):
    """The hist load+store share one buffer: main memory keeps exactly one
    fill and one write-back of the 64-word window — no more, no fewer."""
    model, _, _ = extract_from_source(WRITEBACK_SOURCE)
    graph = ReuseGraph.from_model(model)
    allocation = allocate_graph(graph, 4096)
    transformed = emit_transformed_source(allocation, model)

    shared = [plan for plan in transformed.buffered if len(plan.members) > 1]
    assert shared, "hist load+store must share one buffer"
    plan = shared[0]
    assert plan.fill_words == 64
    assert plan.writeback_words == 64
    assert plan.served_accesses == 8192  # 4096 loads + 4096 stores

    baseline_count, _ = run_counting(emit_replay_source(model), engine)
    transformed_count, _ = run_counting(transformed.source, engine)
    assert baseline_count - transformed_count == transformed.predicted_drop


@pytest.mark.parametrize("engine", ["bytecode", "ast"])
def test_guarded_reference_not_buffered(engine):
    """A conditionally-executed reference profiles fewer accesses than the
    rectangular replay nest would execute, so predicted_drop would be
    wrong for it — eligibility must reject it, keeping the measured drop
    equal to the prediction (regression for a confirmed 2x mismatch)."""
    source = """
    int table[64];
    int out[4096];
    int main() {
        int rep, i;
        for (rep = 0; rep < 64; rep++) {
            for (i = 0; i < 64; i++) {
                if (i <= rep) {
                    out[64 * rep + i] = table[i] * 3;
                }
            }
        }
        return 0;
    }
    """
    model, _, _ = extract_from_source(source)
    guarded = [ref for ref in model.references
               if ref.reads and not ref.writes]
    assert guarded
    assert all(ref.exec_count < 64 * 64 for ref in guarded)

    graph = ReuseGraph.from_model(model)
    allocation = allocate_graph(graph, 4096)
    transformed = emit_transformed_source(allocation, model)
    buffered_pcs = {candidate.reference.pc
                    for plan in transformed.buffered
                    for _index, candidate in plan.members}
    assert buffered_pcs.isdisjoint(ref.pc for ref in guarded)

    baseline_count, _ = run_counting(emit_replay_source(model), engine)
    transformed_count, _ = run_counting(transformed.source, engine)
    assert baseline_count - transformed_count == transformed.predicted_drop


def test_replay_eligibility_rejects_sparse_windows():
    """A non-dense inner window cannot be emitted as a dense fill loop."""
    source = """
    int table[256];
    int out[4096];
    int main() {
        int rep, i;
        for (rep = 0; rep < 64; rep++) {
            for (i = 0; i < 64; i++) {
                out[64 * rep + i] = table[4 * i];
            }
        }
        return 0;
    }
    """
    model, _, _ = extract_from_source(source)
    graph = ReuseGraph.from_model(model)
    sparse_nodes = [node for node in graph.nodes
                    if node.members[0].reference.reads
                    and not node.members[0].reference.writes]
    assert sparse_nodes
    member = sparse_nodes[0].members[0]
    assert not replay_buffer_eligible(member.reference, member)
    # And the transformed emission must leave the sparse window untouched
    # rather than emit an incorrect dense fill.
    allocation = allocate_graph(graph, 1 << 20)
    transformed = emit_transformed_source(allocation, model)
    sparse_pcs = {member.reference.pc}
    for plan in transformed.buffered:
        for _index, candidate in plan.members:
            assert candidate.reference.pc not in sparse_pcs
