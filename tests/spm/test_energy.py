"""EnergyModel field validation and the cache-energy extension.

Regression: a malformed energy override (negative cost, NaN from a bad
CLI parse) used to flow silently into every benefit computation and
produce nonsense tables; construction now fails loudly instead.
"""

import math

import pytest

from repro.spm.energy import EnergyModel


class TestValidation:
    def test_default_model_is_valid(self):
        model = EnergyModel()
        assert model.spm_read_nj < model.cache_read_nj < model.main_read_nj

    @pytest.mark.parametrize("field", [
        "spm_read_nj", "spm_write_nj", "cache_read_nj", "cache_write_nj",
        "main_read_nj", "main_write_nj",
    ])
    def test_negative_energy_rejected(self, field):
        with pytest.raises(ValueError, match=field):
            EnergyModel(**{field: -0.1})

    @pytest.mark.parametrize("bad", [float("nan"), float("inf"),
                                     float("-inf")])
    def test_non_finite_energy_rejected(self, bad):
        with pytest.raises(ValueError, match="finite"):
            EnergyModel(main_read_nj=bad)

    def test_non_numeric_energy_rejected(self):
        with pytest.raises(ValueError, match="must be a number"):
            EnergyModel(spm_write_nj="0.2")
        with pytest.raises(ValueError, match="must be a number"):
            EnergyModel(spm_write_nj=True)

    def test_zero_energy_is_allowed(self):
        # A free memory is a legitimate modelling choice (ablations).
        assert EnergyModel(spm_read_nj=0.0).spm_energy(10, 0) == 0.0


class TestCacheEnergy:
    def test_cache_energy_linear_in_accesses(self):
        model = EnergyModel(cache_read_nj=2.0, cache_write_nj=3.0)
        assert model.cache_energy(5, 4) == pytest.approx(22.0)

    def test_existing_helpers_unchanged(self):
        model = EnergyModel()
        assert model.main_energy(1, 1) == pytest.approx(
            model.main_read_nj + model.main_write_nj)
        assert model.fill_energy(2) == pytest.approx(
            2 * (model.main_read_nj + model.spm_write_nj))
        assert model.writeback_energy(2) == pytest.approx(
            2 * (model.spm_read_nj + model.main_write_nj))
        assert math.isfinite(model.cache_energy(0, 0))
