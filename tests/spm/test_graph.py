"""Tests for the reuse-graph IR and the allocator policies over it."""

import pytest

from repro.foray.extractor import extract_from_source
from repro.spm.allocator import AllocatorPolicy, allocate, allocate_graph
from repro.spm.candidates import enumerate_candidates
from repro.spm.explore import explore, pareto_frontier
from repro.spm.graph import ReuseGraph, reference_interval
from repro.workloads.registry import workload_names

#: The acceptance ladder: >= 4 capacities spanning the embedded range.
LADDER = (256, 1024, 4096, 16384)

# Two loop nests of identical shape both re-reading the same table: the
# two table references (distinct pcs) share one window -> one shared node.
SHARED_WINDOW_SOURCE = """
int table[64];
int outa[2048];
int outb[2048];
int main() {
    int rep, i;
    for (rep = 0; rep < 32; rep++) {
        for (i = 0; i < 64; i++) {
            outa[64 * rep + i] = table[i] + 1;
        }
    }
    for (rep = 0; rep < 32; rep++) {
        for (i = 0; i < 64; i++) {
            outb[64 * rep + i] = table[i] * 2;
        }
    }
    return 0;
}
"""

# The same array read through two *different* windows (unit stride vs.
# stride 2): same exclusivity group, distinct nodes, sharing edge.
SPLIT_WINDOW_SOURCE = """
int table[64];
int outa[2048];
int outb[1024];
int main() {
    int rep, i;
    for (rep = 0; rep < 32; rep++) {
        for (i = 0; i < 64; i++) {
            outa[64 * rep + i] = table[i] + 1;
        }
    }
    for (rep = 0; rep < 32; rep++) {
        for (i = 0; i < 32; i++) {
            outb[32 * rep + i] = table[2 * i] * 3;
        }
    }
    return 0;
}
"""


def model_of(source):
    model, _, _ = extract_from_source(source)
    return model


class TestReferenceInterval:
    def test_interval_covers_footprint(self):
        model = model_of(SHARED_WINDOW_SOURCE)
        for ref in model.references:
            lo, hi = reference_interval(ref)
            assert hi - lo >= ref.access_size
            # The footprint cannot exceed the interval's address count.
            assert ref.footprint <= hi - lo


class TestSharedWindows:
    def test_identical_windows_collapse_into_shared_node(self):
        graph = ReuseGraph.from_model(model_of(SHARED_WINDOW_SOURCE))
        shared = [node for node in graph.nodes if node.is_shared]
        assert shared, "identical table windows must merge"
        assert any(len(node.members) == 2 for node in shared)

    def test_shared_node_pays_fill_once(self):
        model = model_of(SHARED_WINDOW_SOURCE)
        graph = ReuseGraph.from_model(model)
        shared = max((n for n in graph.nodes if n.is_shared),
                     key=lambda n: n.benefit_nj)
        # Merged benefit beats the sum of what the flat allocator could
        # get for the same two references (which pays two fills).
        flat = allocate(enumerate_candidates(model), shared.size_bytes * 2)
        member_pcs = {ref.pc for ref in shared.references}
        flat_benefit = sum(c.benefit_nj for c in flat.selected
                           if c.reference.pc in member_pcs)
        assert shared.benefit_nj > flat_benefit - 1e-9

    def test_containment_edges_link_levels(self):
        graph = ReuseGraph.from_model(model_of(SHARED_WINDOW_SOURCE))
        kinds = {edge.kind for edge in graph.edges}
        assert "containment" in kinds
        for edge in graph.edges_of_kind("containment"):
            src = graph.nodes[edge.src]
            dst = graph.nodes[edge.dst]
            assert src.level.level < dst.level.level
            assert src.group_id == dst.group_id


class TestSameArrayExclusivity:
    def test_distinct_windows_share_group_with_sharing_edge(self):
        graph = ReuseGraph.from_model(model_of(SPLIT_WINDOW_SOURCE))
        sharing = graph.edges_of_kind("sharing")
        assert sharing
        for edge in sharing:
            assert (graph.nodes[edge.src].group_id
                    == graph.nodes[edge.dst].group_id)

    def test_one_buffer_per_array(self):
        model = model_of(SPLIT_WINDOW_SOURCE)
        graph = ReuseGraph.from_model(model)
        allocation = allocate_graph(graph, 1 << 20)  # ample capacity
        groups_used = [node.group_id for node in allocation.nodes]
        assert len(groups_used) == len(set(groups_used))
        # The flat per-reference allocator would buffer the table twice.
        flat = allocate(enumerate_candidates(model), 1 << 20)
        assert flat.buffer_count > allocation.buffer_count

    def test_describe_mentions_groups(self):
        graph = ReuseGraph.from_model(model_of(SPLIT_WINDOW_SOURCE))
        text = graph.describe()
        assert "exclusive groups" in text
        assert f"{graph.node_count} nodes" in text


class TestPolicyDominance:
    """Acceptance: the exact DP dominates both greedy rankings on every
    registered workload at every capacity of the ladder."""

    @pytest.mark.parametrize("name", workload_names())
    def test_dp_dominates_greedies(self, suite_reports, name):
        graph = ReuseGraph.from_model(suite_reports[name].model)
        for capacity in LADDER:
            dp = allocate_graph(graph, capacity, AllocatorPolicy.DP)
            for policy in (AllocatorPolicy.GREEDY,
                           AllocatorPolicy.GREEDY_BENEFIT):
                other = allocate_graph(graph, capacity, policy)
                assert (dp.total_benefit_nj
                        >= other.total_benefit_nj - 1e-9), (
                    f"{name}: {policy.value} beat the DP at {capacity} B"
                )

    @pytest.mark.parametrize("name", workload_names())
    def test_explore_frontier_nondecreasing(self, suite_reports, name):
        points = explore(suite_reports[name].model, LADDER)
        assert len(points) >= 4
        benefits = [point.benefit_nj for point in points]
        assert benefits == sorted(benefits)
        for point in points:
            assert point.used_bytes <= point.capacity_bytes
            assert 0.0 <= point.saving_fraction <= 1.0


class TestParetoFrontier:
    def test_frontier_strictly_increasing(self):
        model = model_of(SPLIT_WINDOW_SOURCE)
        points = explore(model, (64, 128, 256, 512, 1024, 4096))
        frontier = pareto_frontier(points)
        assert frontier
        benefits = [point.benefit_nj for point in frontier]
        assert all(b2 > b1 for b1, b2 in zip(benefits, benefits[1:]))

    def test_zero_saving_points_dominated(self):
        model = model_of(SPLIT_WINDOW_SOURCE)
        points = explore(model, (4, 8))  # too small for any buffer
        assert all(point.benefit_nj == 0 for point in points)
        assert pareto_frontier(points) == []
