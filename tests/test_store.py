"""Tests for the disk-backed artifact store and its pipeline tiering.

Covers the store's integrity guarantees (atomic entries, corruption and
schema-version fallback), the L1-memory/L2-disk tiering of all four
pipeline caches (warm runs must not simulate), cross-process sharing
through real subprocesses, and the satellite regressions (explicit
``jobs=1``, ``max_entries`` validation, energy-model key normalization).
"""

import os
import re
import subprocess
import sys
from pathlib import Path

import pytest

from repro import store as store_mod
from repro.pipeline import (
    ArtifactCache,
    PipelineConfig,
    SpmConfig,
    cached_exploration,
    clear_caches,
    exploration_cache,
    exploration_key,
    extract_foray_model,
    full_flow,
    run_suite,
    store_for,
    validate_suite,
    validate_workload,
)
from repro.spm.energy import EnergyModel
from repro.store import ArtifactStore, default_cache_dir

REPO_ROOT = Path(__file__).resolve().parents[1]

SOURCE = """
int table[64];
int out[256];
int main() {
    int rep, i;
    for (i = 0; i < 64; i++) { table[i] = i; }
    for (rep = 0; rep < 4; rep++) {
        for (i = 0; i < 64; i++) { out[64 * rep + i] = table[i] + rep; }
    }
    return 0;
}
"""


@pytest.fixture(autouse=True)
def fresh_caches():
    clear_caches()
    yield
    clear_caches()


def _disk_config(tmp_path, **overrides) -> PipelineConfig:
    return PipelineConfig(cache_dir=str(tmp_path / "store"), **overrides)


def _boom(*_args, **_kwargs):
    raise AssertionError("simulated on a warm run: disk tier not consulted")


# ---------------------------------------------------------------------------
# Store unit behavior
# ---------------------------------------------------------------------------


class TestArtifactStore:
    def test_roundtrip_and_counters(self, tmp_path):
        store = ArtifactStore(tmp_path / "s")
        assert store.get("extraction", "ab" * 32) is None  # miss
        assert store.put("extraction", "ab" * 32, {"x": (1, 2)}) is True
        assert store.get("extraction", "ab" * 32) == {"x": (1, 2)}
        assert store.session_counters()["extraction"] == {
            "hits": 1, "misses": 1, "stores": 1,
        }

    def test_unpicklable_artifact_is_skipped(self, tmp_path):
        store = ArtifactStore(tmp_path / "s")
        assert store.put("compile", "ff" * 32, lambda: None) is False
        assert store.get("compile", "ff" * 32) is None

    def _entry_file(self, store: ArtifactStore) -> Path:
        files = list(store.path.glob("v*/*/*/*.art"))
        assert len(files) == 1
        return files[0]

    def test_corrupted_entry_reads_as_miss(self, tmp_path):
        store = ArtifactStore(tmp_path / "s")
        store.put("extraction", "cd" * 32, [1, 2, 3])
        entry = self._entry_file(store)
        blob = entry.read_bytes()
        entry.write_bytes(blob[:-4] + b"\xde\xad\xbe\xef")
        assert store.get("extraction", "cd" * 32) is None
        assert not entry.exists()  # bad entry unlinked for the re-put

    def test_truncated_entry_reads_as_miss(self, tmp_path):
        store = ArtifactStore(tmp_path / "s")
        store.put("extraction", "cd" * 32, [1, 2, 3])
        entry = self._entry_file(store)
        entry.write_bytes(entry.read_bytes()[:10])
        assert store.get("extraction", "cd" * 32) is None

    def test_schema_version_bump_reads_as_miss(self, tmp_path, monkeypatch):
        store = ArtifactStore(tmp_path / "s")
        store.put("extraction", "ee" * 32, "artifact")
        monkeypatch.setattr(store_mod, "SCHEMA_VERSION",
                            store_mod.SCHEMA_VERSION + 1)
        assert store.get("extraction", "ee" * 32) is None
        # ...and the recompute republishes under the new schema.
        store.put("extraction", "ee" * 32, "artifact-v2")
        assert store.get("extraction", "ee" * 32) == "artifact-v2"

    def test_clear_and_entry_stats(self, tmp_path):
        store = ArtifactStore(tmp_path / "s")
        store.put("compile", "aa" * 32, "a")
        store.put("extraction", "bb" * 32, "b")
        stats = store.entry_stats()
        assert stats["compile"][0] == 1 and stats["extraction"][0] == 1
        assert stats["compile"][1] > 0
        assert store.clear() == 2
        assert store.entry_stats()["compile"] == (0, 0)

    def test_clear_leaves_foreign_files_alone(self, tmp_path):
        # --cache-dir may point at a directory that holds other content;
        # clear() must only remove store-owned subtrees.
        root = tmp_path / "s"
        store = ArtifactStore(root)
        store.put("compile", "aa" * 32, "a")
        store.persist_counters()
        precious = root / "notes.txt"
        precious.write_text("keep me")
        assert store.clear() == 1
        assert precious.read_text() == "keep me"
        assert not list(root.glob("v*-*"))
        assert not (root / "stats").exists()

    def test_code_fingerprint_change_reads_as_miss(self, tmp_path,
                                                   monkeypatch):
        store = ArtifactStore(tmp_path / "s")
        store.put("extraction", "ab" * 32, "artifact")
        assert store.get("extraction", "ab" * 32) == "artifact"
        # A different package-source fingerprint (i.e. edited code) must
        # land in a disjoint subtree: no stale artifacts, no thrash.
        monkeypatch.setattr(store_mod, "_CODE_FINGERPRINT", "f" * 64)
        assert store.get("extraction", "ab" * 32) is None
        store.put("extraction", "ab" * 32, "recomputed")
        assert store.get("extraction", "ab" * 32) == "recomputed"
        monkeypatch.setattr(store_mod, "_CODE_FINGERPRINT", None)
        assert store.get("extraction", "ab" * 32) == "artifact"

    def test_root_created_private(self, tmp_path):
        store = ArtifactStore(tmp_path / "fresh")
        store.put("compile", "aa" * 32, "a")
        assert (store.path.stat().st_mode & 0o777) == 0o700

    def test_stats_compaction_preserves_totals(self, tmp_path,
                                               monkeypatch):
        import json

        store = ArtifactStore(tmp_path / "s")
        stats_dir = store.path / "stats"
        stats_dir.mkdir(parents=True)
        for index in range(5):  # dead-pid tallies from past invocations
            (stats_dir / f"999{900 + index}-abcd.json").write_text(
                json.dumps({"extraction": {"hits": 2, "misses": 1,
                                           "stores": 1}})
            )
        monkeypatch.setattr(store_mod, "_STATS_COMPACT_THRESHOLD", 0)
        store.get("extraction", "ab" * 32)  # one live miss
        store.persist_counters()
        totals = store.aggregate_counters()["extraction"]
        assert totals == {"hits": 10, "misses": 6, "stores": 5}
        files = sorted(p.name for p in stats_dir.glob("*.json"))
        assert len(files) == 2  # one compacted roll-up + our live tally
        assert files[0].startswith("0-")

    def test_persisted_counters_aggregate(self, tmp_path):
        store = ArtifactStore(tmp_path / "s")
        store.put("compile", "aa" * 32, "a")
        store.get("compile", "aa" * 32)
        store.persist_counters()
        other = ArtifactStore(tmp_path / "s")  # same dir, "other process"
        other.get("compile", "aa" * 32)
        other.persist_counters()
        totals = store.aggregate_counters()["compile"]
        assert totals["hits"] == 2 and totals["stores"] == 1

    def test_default_cache_dir_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", "/tmp/somewhere-else")
        assert default_cache_dir() == "/tmp/somewhere-else"


# ---------------------------------------------------------------------------
# Pipeline tiering: warm runs must not recompute
# ---------------------------------------------------------------------------


class TestTieredPipeline:
    def test_warm_extraction_performs_no_simulation(self, tmp_path,
                                                    monkeypatch):
        config = _disk_config(tmp_path)
        first = extract_foray_model(SOURCE, config=config)
        clear_caches()  # a "fresh process": only the disk tier remains
        monkeypatch.setattr("repro.pipeline.run_compiled", _boom)
        second = extract_foray_model(SOURCE, config=config)
        assert second.model == first.model
        counters = store_for(config).session_counters()
        assert counters["extraction"]["hits"] >= 1

    def test_warm_sweep_skips_exploration(self, tmp_path, monkeypatch):
        ladder = (256, 1024, 4096)
        config = _disk_config(
            tmp_path, spm=SpmConfig(sweep=True, capacities=ladder))
        flow = full_flow("demo", SOURCE, config=config)
        clear_caches()
        monkeypatch.setattr("repro.pipeline.run_compiled", _boom)
        monkeypatch.setattr("repro.pipeline.explore", _boom)
        warm = full_flow("demo", SOURCE, config=config)
        assert warm.exploration == flow.exploration
        assert [p.capacity_bytes for p in warm.exploration] == list(ladder)

    def test_warm_validation_matrix_is_incremental(self, tmp_path,
                                                   monkeypatch):
        config = _disk_config(tmp_path)
        cold = validate_workload("adpcm", config=config)
        clear_caches()
        monkeypatch.setattr("repro.pipeline.run_compiled", _boom)
        warm = validate_workload("adpcm", config=config)
        assert warm.self_validation.fingerprint() == \
            cold.self_validation.fingerprint()
        assert [c.report.fingerprint() for c in warm.cross] == \
            [c.report.fingerprint() for c in cold.cross]

    def test_corrupted_entries_fall_back_to_recompute(self, tmp_path):
        config = _disk_config(tmp_path)
        first = extract_foray_model(SOURCE, config=config)
        store = store_for(config)
        for entry in store.path.glob("v*/extraction/*/*.art"):
            entry.write_bytes(b"not an artifact")
        clear_caches()
        second = extract_foray_model(SOURCE, config=config)  # recomputed
        assert second.model == first.model
        assert store.session_counters()["extraction"]["misses"] >= 1

    def test_cache_false_disables_disk_tier(self, tmp_path):
        config = _disk_config(tmp_path, cache=False)
        assert store_for(config) is None
        extract_foray_model(SOURCE, config=config)
        assert not (tmp_path / "store").exists()


class TestTraceProtocolKeying:
    """Fusion and trace-block settings are part of the producing engine's
    identity: artifacts warmed under one protocol must never be served to
    a run configured for another."""

    def test_extraction_key_covers_fusion_and_trace_block(self):
        from repro.pipeline import _extraction_key

        base = PipelineConfig()
        assert _extraction_key(SOURCE, base) == \
            _extraction_key(SOURCE, PipelineConfig())
        assert _extraction_key(SOURCE, base) != \
            _extraction_key(SOURCE, PipelineConfig(fusion=False))
        assert _extraction_key(SOURCE, base) != \
            _extraction_key(SOURCE, PipelineConfig(trace_block=1024))
        assert _extraction_key(SOURCE, PipelineConfig(fusion=False)) != \
            _extraction_key(SOURCE, PipelineConfig(trace_block=1024))

    def test_warm_fused_artifact_not_served_unfused(self, tmp_path,
                                                    monkeypatch):
        config = _disk_config(tmp_path)  # fusion=True default
        extract_foray_model(SOURCE, config=config)
        clear_caches()
        monkeypatch.setattr("repro.pipeline.run_compiled", _boom)
        # Same protocol: served warm, no simulation.
        extract_foray_model(SOURCE, config=_disk_config(tmp_path))
        # Different protocol: must resimulate (and here hit the tripwire).
        with pytest.raises(AssertionError, match="warm run"):
            extract_foray_model(
                SOURCE, config=_disk_config(tmp_path, fusion=False))
        with pytest.raises(AssertionError, match="warm run"):
            extract_foray_model(
                SOURCE, config=_disk_config(tmp_path, trace_block=1024))


# ---------------------------------------------------------------------------
# Satellite regressions
# ---------------------------------------------------------------------------


class _CapturedJobs(Exception):
    pass


def _capture_fan_out(_tasks, _worker, jobs):
    raise _CapturedJobs(jobs)


class TestExplicitJobsWins:
    @pytest.fixture(autouse=True)
    def _patched(self, monkeypatch):
        monkeypatch.setattr("repro.pipeline._fan_out", _capture_fan_out)

    def _jobs_used(self, call):
        with pytest.raises(_CapturedJobs) as excinfo:
            call()
        return excinfo.value.args[0]

    def test_run_suite_explicit_serial_beats_config(self):
        # Regression: an explicit jobs=1 used to be silently overridden
        # by config.jobs, so a caller could not force a serial run.
        config = PipelineConfig(jobs=4)
        assert self._jobs_used(
            lambda: run_suite(("adpcm",), jobs=1, config=config)) == 1
        assert self._jobs_used(
            lambda: run_suite(("adpcm",), config=config)) == 4
        assert self._jobs_used(
            lambda: run_suite(("adpcm",), jobs=2, config=config)) == 2

    def test_validate_suite_explicit_serial_beats_config(self):
        config = PipelineConfig(jobs=4)
        assert self._jobs_used(
            lambda: validate_suite(("adpcm",), jobs=1, config=config)) == 1
        assert self._jobs_used(
            lambda: validate_suite(("adpcm",), config=config)) == 4


class TestArtifactCacheBounds:
    @pytest.mark.parametrize("bad", [0, -1, -64])
    def test_nonpositive_max_entries_rejected(self, bad):
        # Regression: put() on a max_entries<=0 cache died with
        # StopIteration while evicting from an empty dict.
        with pytest.raises(ValueError, match="max_entries must be positive"):
            ArtifactCache("t", max_entries=bad)

    def test_single_entry_cache_works(self):
        cache = ArtifactCache("t", max_entries=1)
        cache.put("a", "A")
        cache.put("b", "B")
        assert len(cache) == 1
        assert cache.get("b") == "B"
        assert cache.get("a") is None


class TestEnergyKeyNormalization:
    def test_none_and_explicit_default_share_one_entry(self):
        config = PipelineConfig()
        model = extract_foray_model(SOURCE, config=config).model
        cached_exploration(SOURCE, config, model, energy=None)
        assert len(exploration_cache) == 1
        hits = exploration_cache.hits
        cached_exploration(SOURCE, config, model, energy=EnergyModel())
        assert len(exploration_cache) == 1  # no duplicate entry
        assert exploration_cache.hits == hits + 1

    def test_keys_resolve_through_the_config(self):
        config = PipelineConfig()
        assert exploration_key(SOURCE, config, (256,), "dp", None) == \
            exploration_key(SOURCE, config, (256,), "dp", EnergyModel())
        pricey = EnergyModel(main_read_nj=50.0)
        custom = PipelineConfig(spm=SpmConfig(energy=pricey))
        assert exploration_key(SOURCE, custom, (256,), "dp", None) == \
            exploration_key(SOURCE, custom, (256,), "dp", pricey)
        # Distinct energies must still key distinct sweeps.
        assert exploration_key(SOURCE, custom, (256,), "dp", None) != \
            exploration_key(SOURCE, config, (256,), "dp", None)


# ---------------------------------------------------------------------------
# Cross-process sharing (real subprocesses)
# ---------------------------------------------------------------------------


def _repro(*args: str) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src + (os.pathsep + existing if existing else "")
    proc = subprocess.run(
        [sys.executable, "-m", "repro", *args],
        capture_output=True, text=True, env=env, cwd=REPO_ROOT,
    )
    assert proc.returncode == 0, proc.stderr
    return proc


def _counters(stderr: str, namespace: str) -> tuple[int, int, int]:
    match = re.search(
        rf"cache\[{namespace}\]: (\d+) hits, (\d+) misses, (\d+) stored",
        stderr,
    )
    assert match, f"no {namespace} counters in: {stderr!r}"
    hits, misses, stored = map(int, match.groups())
    return hits, misses, stored


class TestCrossProcess:
    def test_two_processes_share_one_cache_dir(self, tmp_path):
        cache_dir = str(tmp_path / "shared")
        cold = _repro("suite", "adpcm", "--cache-dir", cache_dir)
        warm = _repro("suite", "adpcm", "--cache-dir", cache_dir)
        assert cold.stdout == warm.stdout
        assert _counters(cold.stderr, "extraction") == (0, 1, 1)
        assert _counters(warm.stderr, "extraction") == (1, 0, 0)

    def test_fan_out_workers_populate_the_store(self, tmp_path):
        cache_dir = str(tmp_path / "shared")
        cold = _repro("suite", "adpcm", "gsm", "--cache-dir", cache_dir,
                      "--jobs", "2")
        assert _counters(cold.stderr, "extraction") == (0, 2, 2)
        warm = _repro("suite", "adpcm", "gsm", "--cache-dir", cache_dir)
        # Zero simulations on the warm run: every extraction is a hit.
        assert _counters(warm.stderr, "extraction") == (2, 0, 0)
        assert cold.stdout == warm.stdout

    @pytest.mark.parametrize("engine", ["bytecode", "ast"])
    def test_reports_identical_with_disk_cache_on_and_off(self, tmp_path,
                                                          engine):
        cache_dir = str(tmp_path / "shared")
        on_cold = _repro("suite", "adpcm", "--engine", engine,
                         "--cache-dir", cache_dir)
        on_warm = _repro("suite", "adpcm", "--engine", engine,
                         "--cache-dir", cache_dir)
        off = _repro("suite", "adpcm", "--engine", engine, "--no-disk-cache")
        assert on_cold.stdout == off.stdout
        assert on_warm.stdout == off.stdout
        assert "cache[" not in off.stderr  # no disk tier, no counters
