"""The differential fuzzing harness: battery, seeded bug, shrink,
store-backed warm reruns."""

from __future__ import annotations

import pytest

from repro.gen import build_ir, generate_program, get_profile
from repro.gen.fuzz import (
    FUZZ_CHECKS,
    SEEDED_BUG_CHECK,
    fuzz_program,
    run_fuzz,
)
from repro.gen.shrink import shrink_ir
from repro.pipeline import PipelineConfig, clear_caches


@pytest.fixture(autouse=True)
def _fresh_caches():
    clear_caches()
    yield
    clear_caches()


class TestBattery:
    def test_sample_seeds_pass_every_check(self):
        report = run_fuzz("small", seeds=3, config=PipelineConfig())
        assert report.ok, [
            (o.spec, o.failing_check or o.error) for o in report.outcomes
        ]
        assert report.total == 3
        counts = report.check_counts()
        assert set(counts) == set(FUZZ_CHECKS)
        # Every check either passed or skipped with a reason — a fail
        # anywhere is a real differential finding.
        for name, tally in counts.items():
            assert tally["fail"] == 0, name
        for outcome in report.outcomes:
            for check in outcome.checks:
                if check.status == "skip":
                    assert check.detail, (outcome.spec, check.name)

    def test_unknown_check_rejected(self):
        with pytest.raises(ValueError, match="unknown fuzz check"):
            fuzz_program("small", 0, checks=("nosuch",))
        with pytest.raises(KeyError, match="unknown generation profile"):
            run_fuzz("nosuch", seeds=1)

    def test_transfer_statistic_recorded(self):
        report = run_fuzz("small", seeds=4, config=PipelineConfig())
        stats = report.transfer_stats()
        assert stats is not None
        measured, lowest, mean = stats
        assert 1 <= measured <= 4
        assert 0.0 <= lowest <= mean <= 1.0


class TestSeededBug:
    """Satellite 3: the harness must catch a planted divergence, shrink
    it, and replay the shrink deterministically from the seed alone."""

    def test_seeded_bug_is_caught_and_shrunk(self):
        outcome = fuzz_program("small", 0, checks=(SEEDED_BUG_CHECK,),
                               config=PipelineConfig())
        assert outcome.status == "fail"
        assert outcome.failing_check == SEEDED_BUG_CHECK
        assert "mismatch detected" in [
            c for c in outcome.checks if c.name == SEEDED_BUG_CHECK
        ][0].detail
        # The shrinker minimized the reproducer...
        assert outcome.shrunk_source
        assert 0 < outcome.shrunk_lines < outcome.source_lines
        # ... and the minimized program still carries the replay header.
        assert "seed=0" in outcome.shrunk_source.splitlines()[0]

    def test_shrink_replays_deterministically(self):
        first = fuzz_program("small", 0, checks=(SEEDED_BUG_CHECK,),
                             config=PipelineConfig())
        clear_caches()
        second = fuzz_program("small", 0, checks=(SEEDED_BUG_CHECK,),
                              config=PipelineConfig())
        assert first.shrunk_source == second.shrunk_source
        assert not second.cached

    def test_healthy_program_skips_seeded_bug_cleanly(self):
        # A program whose model is empty after the purge has nothing to
        # corrupt: the check must skip with a reason, not pass silently.
        report = run_fuzz("small", seeds=8, checks=(SEEDED_BUG_CHECK,),
                          shrink=False, config=PipelineConfig())
        statuses = {c.status for o in report.outcomes for c in o.checks}
        assert statuses <= {"fail", "skip"}


class TestShrinker:
    def test_shrink_reaches_fixpoint_on_trivial_predicate(self):
        ir = build_ir(0, get_profile("small"))
        result = shrink_ir(ir, lambda rendered: True)
        # Everything deletable is deleted; what remains is the fixed
        # scaffolding (frame loop, checksum print).
        assert not ir.main
        assert result.deleted > 0
        assert result.attempts >= result.deleted
        assert "gen checksum" in result.source

    def test_rejected_deletions_restore_the_program(self):
        ir = build_ir(1, get_profile("small"))
        baseline = generate_program(1).workload.source
        result = shrink_ir(ir, lambda rendered: False)
        assert result.deleted == 0
        assert result.source == baseline


class TestWarmRerun:
    """Satellite 6: outcomes persist in the ``fuzz`` store namespace and
    warm reruns skip satisfied cells."""

    def test_disk_store_roundtrip(self, tmp_path):
        config = PipelineConfig(cache_dir=str(tmp_path / "store"))
        cold = run_fuzz("small", seeds=2, config=config)
        assert cold.ok
        assert not any(o.cached for o in cold.outcomes)
        clear_caches()  # drop the in-process tier; disk must serve
        warm = run_fuzz("small", seeds=2, config=config)
        assert warm.ok
        assert all(o.cached for o in warm.outcomes)

    def test_key_covers_checks_and_shrink(self, tmp_path):
        config = PipelineConfig(cache_dir=str(tmp_path / "store"))
        run_fuzz("small", seeds=1, checks=("ir",), config=config)
        clear_caches()
        other = run_fuzz("small", seeds=1, checks=("ir", "lint"),
                         config=config)
        assert not any(o.cached for o in other.outcomes)

    def test_no_cache_bypasses_the_store(self, tmp_path):
        config = PipelineConfig(cache=False,
                                cache_dir=str(tmp_path / "store"))
        run_fuzz("small", seeds=1, config=config)
        clear_caches()
        again = run_fuzz("small", seeds=1, config=config)
        assert not any(o.cached for o in again.outcomes)
