"""Registry resolution of generated workloads and the satellite-2
error-message contract (near-miss suggestions, never a bare KeyError)."""

from __future__ import annotations

import pytest

from repro.workloads.registry import (
    ALL_WORKLOADS,
    find_workload,
    get_workload,
)


class TestGenNamespace:
    def test_gen_spec_resolves_and_memoizes(self):
        workload = get_workload("gen:small:42")
        assert workload.name == "gen:small:42"
        assert len(workload.scenarios) >= 2
        assert get_workload("gen:small:42") is workload

    def test_gen_names_never_shadow_the_suite(self):
        assert not any(name.startswith("gen:") for name in ALL_WORKLOADS)

    def test_find_workload(self):
        assert find_workload("adpcm") is ALL_WORKLOADS["adpcm"]
        assert find_workload("gen:small:7") is not None
        assert find_workload("no-such-workload") is None


class TestHelpfulErrors:
    def test_near_miss_suggestion(self):
        with pytest.raises(KeyError, match="did you mean adpcm"):
            get_workload("adpcmm")

    def test_unknown_name_lists_known_and_gen_usage(self):
        with pytest.raises(KeyError) as excinfo:
            get_workload("no-such-workload")
        message = excinfo.value.args[0]
        assert "adpcm" in message
        assert "gen:<profile>:<seed>" in message

    def test_malformed_gen_spec(self):
        with pytest.raises(KeyError, match="gen:<profile>:<seed>"):
            get_workload("gen:small")

    def test_unknown_gen_profile_message_is_clean(self):
        with pytest.raises(KeyError) as excinfo:
            get_workload("gen:smal:3")
        message = excinfo.value.args[0]
        assert message.startswith("unknown generation profile")
        assert "small" in message
        # Re-wrapping must not stack quoting (a bare KeyError reprs its
        # payload, so a sloppy wrap shows \'smal\' inside double quotes).
        assert "\\'" not in message
