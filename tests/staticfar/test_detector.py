"""Unit tests for the static FORAY-form baseline."""

import pytest

from repro.lang import ast_nodes as ast
from repro.lang.semantics import parse_and_analyze
from repro.staticfar.detector import affine_terms, detect


def analyze(source):
    program = parse_and_analyze(source)
    return program, detect(program)


def loops_of(program):
    return [n for n in ast.walk(program) if isinstance(n, ast.Loop)]


class TestCanonicalLoops:
    def test_basic_canonical(self):
        program, result = analyze(
            "int main() { int i; for (i = 0; i < 10; i++) { } return 0; }"
        )
        (loop,) = loops_of(program)
        info = result.canonical_loops[loop.node_id]
        assert (info.start, info.bound, info.step) == (0, 10, 1)
        assert info.trip_count == 10

    def test_decl_init_canonical(self):
        program, result = analyze(
            "int main() { for (int i = 0; i < 5; i++) { } return 0; }"
        )
        assert len(result.canonical_loops) == 1

    def test_downward_canonical(self):
        program, result = analyze(
            "int main() { int i; for (i = 40; i > 37; i--) { } return 0; }"
        )
        (info,) = result.canonical_loops.values()
        assert info.trip_count == 3

    def test_le_and_ge_bounds(self):
        program, result = analyze(
            "int main() { int i, j; for (i = 1; i <= 10; i++) { }"
            " for (j = 10; j >= 1; j--) { } return 0; }"
        )
        trips = sorted(info.trip_count for info in result.canonical_loops.values())
        assert trips == [10, 10]

    def test_step_amount(self):
        program, result = analyze(
            "int main() { int i; for (i = 0; i < 10; i += 3) { } return 0; }"
        )
        (info,) = result.canonical_loops.values()
        assert info.step == 3
        assert info.trip_count == 4

    def test_i_equals_i_plus_const_step(self):
        program, result = analyze(
            "int main() { int i; for (i = 0; i < 6; i = i + 2) { } return 0; }"
        )
        assert len(result.canonical_loops) == 1

    @pytest.mark.parametrize(
        "header",
        [
            "for (i = 0; i < n; i++)",        # variable bound
            "for (i = n; i < 10; i++)",       # variable start
            "for (i = 0; i < 10; i += n)",    # variable step
            "for (i = 0; i != 10; i++)",      # unsupported comparison
            "for (i = 0; i < 10; n++)",       # steps the wrong variable
            "for (i = 0; ; i++)",             # missing condition
        ],
    )
    def test_non_canonical_headers(self, header):
        program, result = analyze(
            f"int main() {{ int i; int n = 10; {header} {{ break; }} return 0; }}"
        )
        assert result.canonical_loops == {}

    def test_while_never_canonical(self):
        program, result = analyze(
            "int main() { int i = 0; while (i < 10) i++; return 0; }"
        )
        assert result.canonical_loops == {}
        assert len(result.non_canonical_loops) == 1

    def test_do_never_canonical(self):
        program, result = analyze(
            "int main() { int i = 0; do { i++; } while (i < 10); return 0; }"
        )
        assert len(result.non_canonical_loops) == 1

    def test_iterator_modified_in_body(self):
        program, result = analyze(
            "int main() { int i; for (i = 0; i < 10; i++) { i += 1; } return 0; }"
        )
        assert result.canonical_loops == {}

    def test_break_disqualifies(self):
        program, result = analyze(
            "int main() { int i; for (i = 0; i < 10; i++) { if (i == 3) break; }"
            " return 0; }"
        )
        assert result.canonical_loops == {}

    def test_break_in_nested_loop_does_not_disqualify_outer(self):
        program, result = analyze(
            "int main() { int i, j; for (i = 0; i < 10; i++)"
            " { for (j = 0; j < 10; j++) { if (j) break; } } return 0; }"
        )
        outer = loops_of(program)[0]
        assert outer.node_id in result.canonical_loops

    def test_struct_member_bound_non_canonical(self):
        program, result = analyze(
            "struct c { int n; }; struct c cfg;"
            "int main() { int i; for (i = 0; i < cfg.n; i++) { } return 0; }"
        )
        assert result.canonical_loops == {}

    def test_loop_counts(self):
        program, result = analyze(
            "int main() { int i, j; for (i = 0; i < 2; i++) { }"
            " while (j < 2) j++; return 0; }"
        )
        assert result.loop_count == 2


class TestAffineTerms:
    def _env(self):
        program = parse_and_analyze(
            "int a[100]; int main() { int i, j, n;"
            " for (i = 0; i < 10; i++) for (j = 0; j < 10; j++) a[i+j] = n;"
            " return 0; }"
        )
        result = detect(program)
        iterators = {info.iterator for info in result.canonical_loops.values()}
        symbols = {s.name: s for s in iterators}
        return program, symbols, iterators

    def _index_expr(self, text):
        program = parse_and_analyze(
            "int a[1000]; int main() { int i, j, n;"
            " for (i = 0; i < 10; i++) for (j = 0; j < 10; j++)"
            f" a[{text}] = n; return 0; }}"
        )
        index_nodes = [n for n in ast.walk(program) if isinstance(n, ast.Index)]
        result = detect(program)
        iterators = {info.iterator for info in result.canonical_loops.values()}
        return index_nodes[0].index, iterators

    @pytest.mark.parametrize(
        "text,const,by_name",
        [
            ("5", 5, {}),
            ("i", 0, {"i": 1}),
            ("i + j", 0, {"i": 1, "j": 1}),
            ("10 * i + j", 0, {"i": 10, "j": 1}),
            ("j + 10 * i + 7", 7, {"i": 10, "j": 1}),
            ("i * 4", 0, {"i": 4}),
            ("-i + 20", 20, {"i": -1}),
            ("2 * (i + 3)", 6, {"i": 2}),
            ("i - j", 0, {"i": 1, "j": -1}),
        ],
    )
    def test_affine_decompositions(self, text, const, by_name):
        expr, iterators = self._index_expr(text)
        terms = affine_terms(expr, iterators)
        assert terms is not None
        assert terms.get(None, 0) == const
        named = {sym.name: c for sym, c in terms.items()
                 if sym is not None and c != 0}
        assert named == by_name

    @pytest.mark.parametrize("text", ["n", "i * j", "i + n", "i * i", "a[0]"])
    def test_non_affine_rejected(self, text):
        expr, iterators = self._index_expr(text)
        assert affine_terms(expr, iterators) is None


class TestReferenceClassification:
    def test_affine_array_ref_analyzable(self):
        program, result = analyze(
            "int a[100]; int main() { int i; for (i = 0; i < 10; i++) a[i] = i;"
            " return 0; }"
        )
        assert len(result.analyzable_refs) == 1

    def test_multidim_analyzable(self):
        program, result = analyze(
            "int m[10][10]; int main() { int i, j;"
            " for (i = 0; i < 10; i++) for (j = 0; j < 10; j++) m[i][j] = 0;"
            " return 0; }"
        )
        assert len(result.analyzable_refs) == 1

    def test_pointer_deref_rejected(self):
        program, result = analyze(
            "int a[100]; int main() { int i; int *p = a;"
            " for (i = 0; i < 10; i++) *p++ = i; return 0; }"
        )
        assert result.analyzable_refs == set()
        assert result.rejected_refs

    def test_pointer_param_subscript_rejected(self):
        program, result = analyze(
            "void f(int *p) { int i; for (i = 0; i < 10; i++) p[i] = i; }"
            "int a[100]; int main() { f(a); return 0; }"
        )
        assert result.analyzable_refs == set()

    def test_data_dependent_index_rejected(self):
        program, result = analyze(
            "int a[100]; int t[100]; int main() { int i;"
            " for (i = 0; i < 10; i++) a[t[i]] = i; return 0; }"
        )
        # t[i] is analyzable; a[t[i]] is not.
        assert len(result.analyzable_refs) == 1
        assert len(result.rejected_refs) == 1

    def test_ref_under_if_rejected(self):
        program, result = analyze(
            "int a[100]; int main() { int i; for (i = 0; i < 10; i++)"
            " { if (i % 2) a[i] = 1; } return 0; }"
        )
        assert result.analyzable_refs == set()

    def test_ref_under_non_canonical_iterator_rejected(self):
        program, result = analyze(
            "int a[100]; int n = 10; int main() { int i;"
            " for (i = 0; i < n; i++) a[i] = 1; return 0; }"
        )
        assert result.analyzable_refs == set()

    def test_inner_nest_analyzable_under_irregular_outer(self):
        # Static SPM tools analyze nests locally: a literal-bound inner
        # nest is visible even inside a while loop.
        program, result = analyze(
            "int a[64]; int main() { int go = 3; int i;"
            " while (go > 0) { for (i = 0; i < 64; i++) a[i] = i; go--; }"
            " return 0; }"
        )
        assert len(result.analyzable_refs) == 1

    def test_struct_member_ref_rejected(self):
        program, result = analyze(
            "struct s { int v[8]; }; struct s g;"
            "int main() { int i; for (i = 0; i < 8; i++) g.v[i] = i; return 0; }"
        )
        # The base resolves to a member access, not a plain array symbol.
        assert result.analyzable_refs == set()

    def test_global_scalar_not_a_ref_candidate(self):
        program, result = analyze(
            "int g; int main() { g = 5; return g; }"
        )
        assert result.analyzable_refs == set()
        assert result.rejected_refs == set()

    def test_constant_index_outside_loop_analyzable(self):
        program, result = analyze("int a[4]; int main() { a[2] = 1; return 0; }")
        assert len(result.analyzable_refs) == 1

class TestEdgeCaseLoops:
    """Degenerate canonical headers: zero trips, negative steps, escape
    routes the canonical classifier must reject outright rather than
    mis-model. Regressions for the static analyzer's differential oracle."""

    def test_trip_count_zero_refs_rejected(self):
        # The loop header is perfectly canonical — trip count 0 — but its
        # body never runs, so any reference inside it must be rejected
        # rather than modeled with a zero execution count.
        program, result = analyze(
            "int a[4]; int main() { int i;"
            " for (i = 0; i < 0; i++) a[i] = 1; return 0; }"
        )
        (loop,) = loops_of(program)
        assert result.canonical_loops[loop.node_id].trip_count == 0
        assert result.analyzable_refs == set()
        assert result.rejected_refs

    def test_trip_count_zero_downward(self):
        program, result = analyze(
            "int a[4]; int main() { int i;"
            " for (i = 0; i > 4; i--) a[i] = 1; return 0; }"
        )
        (info,) = result.canonical_loops.values()
        assert info.trip_count == 0
        assert result.analyzable_refs == set()

    def test_negative_step_trip_counts(self):
        program, result = analyze(
            "int main() { int i, j; for (i = 9; i > 0; i -= 2) { }"
            " for (j = 10; j >= 2; j -= 4) { } return 0; }"
        )
        trips = sorted(info.trip_count for info in result.canonical_loops.values())
        assert trips == [3, 5]  # j: 10,6,2; i: 9,7,5,3,1

    def test_negative_step_with_upward_bound_not_canonical(self):
        # i-- against i < 10 never terminates by the header alone.
        program, result = analyze(
            "int main() { int i; for (i = 0; i < 10; i--) { } return 0; }"
        )
        assert result.canonical_loops == {}

    def test_negative_step_ref_analyzable(self):
        program, result = analyze(
            "int a[10]; int main() { int i;"
            " for (i = 9; i >= 0; i--) a[i] = i; return 0; }"
        )
        assert len(result.analyzable_refs) == 1

    def test_return_in_body_disqualifies(self):
        program, result = analyze(
            "int a[8]; int main() { int i; for (i = 0; i < 8; i++)"
            " { if (a[i]) return 1; } return 0; }"
        )
        assert result.canonical_loops == {}

    def test_exit_capable_callee_disqualifies(self):
        # The may-exit fixpoint must see through the call chain: main's
        # loop calls f, f calls g, g may call exit().
        program, result = analyze(
            "void g(int x) { if (x) exit(1); }"
            "void f(int x) { g(x); }"
            "int main() { int i; for (i = 0; i < 8; i++) f(i); return 0; }"
        )
        assert result.canonical_loops == {}

    def test_pure_call_chain_stays_canonical(self):
        program, result = analyze(
            "int g(int x) { return x + 1; }"
            "int f(int x) { return g(x); }"
            "int main() { int i, s; for (i = 0; i < 8; i++) s = f(i);"
            " return s; }"
        )
        assert len(result.canonical_loops) == 1

    def test_in_memory_iterator_rejected(self):
        # A global (memory-resident) iterator can be aliased by stores the
        # header cannot see; only register-resident locals qualify.
        program, result = analyze(
            "int k; int a[10]; int main() {"
            " for (k = 0; k < 10; k++) a[k] = k; return 0; }"
        )
        assert result.canonical_loops == {}
