"""The full static-vs-dynamic differential matrix.

Every registered workload runs against every scenario input; the static
model must agree exactly with the dynamic extraction on every FORAY-form
reference, refuse (never mis-model) everything else, and reproduce the
dynamic model's SPM allocation over the shared references. A smaller
cross-engine slice repeats the check against the AST interpreter so the
oracle verdict is engine-independent.
"""

import pytest

from repro.pipeline import PipelineConfig, static_suite, static_workload
from repro.staticfar.model import REFUSAL_REASONS
from repro.staticfar.oracle import CONTEXTUAL_REASONS
from repro.workloads.registry import MIBENCH_WORKLOADS, get_workload

#: Coverage floors per workload (fraction of dynamic references the static
#: model reproduces exactly, nominal input). The point of Table II is that
#: coverage is partial — these pin the floor without freezing the decimals.
EXPECTED_COVERAGE = {
    "jpeg": 0.10,
    "lame": 0.30,
    "susan": 0.30,
    "fft": 0.90,
    "gsm": 0.10,
    "adpcm": 0.0,  # fully data/control-dependent: everything refused
    "mpeg2": 0.10,
}


@pytest.fixture(scope="module")
def matrix():
    """Every (workload x scenario) oracle cell, computed once."""
    reports = static_suite()
    return reports


class TestFullMatrix:
    def test_matrix_covers_every_workload_and_scenario(self, matrix):
        cells = {(r.name, r.scenario) for r in matrix}
        for name, workload in MIBENCH_WORKLOADS.items():
            scenarios = workload.scenario_names() or ["-"]
            for scenario in scenarios:
                assert (name, scenario) in cells
        assert len(cells) == len(matrix)  # no duplicate cells

    def test_every_cell_agrees(self, matrix):
        bad = [f"{r.name}/{r.scenario}: " + "; ".join(r.oracle.diff_lines())
               for r in matrix if not r.ok]
        assert not bad, "\n".join(bad)

    def test_no_silent_gaps_or_phantoms(self, matrix):
        for report in matrix:
            assert not report.oracle.unexplained
            assert not report.oracle.phantoms
            assert not report.oracle.mismatches
            assert not report.oracle.allocation_diffs

    def test_refusal_reasons_are_stable_strings(self, matrix):
        for report in matrix:
            assert set(report.static.refusal_histogram) <= set(REFUSAL_REASONS)

    def test_foray_gap_is_contextual_only(self, matrix):
        # A detector-analyzable reference the static model refuses is only
        # acceptable for whole-program context reasons (the paper's static
        # gap); a non-contextual refusal would be a modeling bug and shows
        # up as a detector conflict.
        for report in matrix:
            assert not report.oracle.detector_conflicts
            for _node_id, reason in report.oracle.foray_gap:
                assert reason in CONTEXTUAL_REASONS

    def test_coverage_floors(self, matrix):
        worst: dict[str, float] = {}
        for report in matrix:
            coverage = report.oracle.coverage
            worst[report.name] = min(worst.get(report.name, 1.0), coverage)
        for name, floor in EXPECTED_COVERAGE.items():
            assert worst[name] >= floor, (name, worst[name])

    def test_adpcm_refuses_rather_than_mismodels(self, matrix):
        # The known all-non-FORAY workload: zero coverage must come from
        # explicit refusals, never from wrong models slipping through.
        cells = [r for r in matrix if r.name == "adpcm"]
        assert cells
        for report in cells:
            assert report.oracle.matched == 0
            assert report.static.refused_count > 0
            assert report.ok  # all gaps explained, nothing mis-modeled

    def test_partially_covered_workloads_match_nontrivially(self, matrix):
        # jpeg and fft both have real static coverage: the oracle must be
        # comparing actual matched references, not vacuously passing.
        for name in ("jpeg", "fft"):
            nominal = [r for r in matrix if r.name == name]
            assert any(r.oracle.matched > 0 for r in nominal)


class TestCrossEngine:
    @pytest.mark.parametrize("name", sorted(MIBENCH_WORKLOADS))
    def test_oracle_verdict_identical_on_ast_engine(self, name):
        workload = get_workload(name)
        bytecode = static_workload(name, workload.source,
                                   config=PipelineConfig(cache=False))
        ast = static_workload(name, workload.source,
                              config=PipelineConfig(cache=False,
                                                    engine="ast"))
        assert bytecode.ok and ast.ok
        assert ast.oracle.matched == bytecode.oracle.matched
        assert ast.oracle.dynamic_total == bytecode.oracle.dynamic_total
        assert ast.oracle.foray_gap == bytecode.oracle.foray_gap
