"""Differential tests for the compile-time FORAY analyzer.

Every test extracts the dynamic model by simulation, computes the static
model from the AST alone, and pushes both through the oracle: matched
references must agree exactly (coefficients, counts, footprints, loop
paths), every unmatched dynamic reference must carry an explicit refusal,
and the static model must contain no phantom references.
"""

import pytest

from repro.foray.extractor import extract_from_source
from repro.foray.filters import FilterConfig
from repro.pipeline import PipelineConfig, clear_caches, full_flow
from repro.staticfar.analyze import analyze_static
from repro.staticfar.detector import detect
from repro.staticfar.model import REFUSAL_REASONS
from repro.staticfar.oracle import compare_models
from repro.workloads.registry import ALL_WORKLOADS

RELAXED = FilterConfig(nexec=1, nloc=1)


def differential(source, filter_config=RELAXED):
    """Extract dynamically, analyze statically, run the oracle."""
    dynamic, _result, compiled = extract_from_source(source, filter_config)
    detector = detect(compiled.program)
    static = analyze_static(compiled.program, filter_config,
                            detector_result=detector)
    report = compare_models(dynamic, static, detector=detector)
    assert report.ok, "\n".join(report.diff_lines())
    return dynamic, static, report


class TestAffineLoops:
    def test_flat_loops_match_exactly(self):
        source = """
        int A[100]; int B[100];
        int main() {
            int i; int s; s = 0;
            for (i = 0; i < 100; i++) { A[i] = i * 2; }
            for (i = 0; i < 50; i++) { s = s + A[2 * i]; B[i] = s; }
            return s;
        }
        """
        dynamic, static, report = differential(source)
        assert report.matched == report.dynamic_total > 0
        assert not static.refusals
        assert static.model_complete and static.stats_exact

    def test_nested_loops_calls_and_trailing_refs(self):
        source = """
        int A[8][16]; int acc[16];
        void fill(int base) {
            int y; int x;
            for (y = 0; y < 8; y++) {
                for (x = 0; x < 16; x++) { A[y][x] = base + y * 16 + x; }
                acc[y] = A[y][0];
            }
        }
        int main() {
            int k;
            fill(7);
            for (k = 0; k < 16; k++) { acc[0] = acc[0] + A[3][k]; }
            return acc[0];
        }
        """
        dynamic, static, report = differential(source)
        assert report.matched == report.dynamic_total
        assert static.fast_path_ok

    def test_local_arrays_and_param_affine_propagation(self):
        # The callee's frame address must be reproduced by the stack
        # simulation, and the loop-dependent parameter `br` must flow
        # into the callee's access functions as an affine term.
        source = """
        int out[64];
        void dct(int br, int bc) {
            int workspace[8]; int i;
            for (i = 0; i < 8; i++) { workspace[i] = i + br; }
            for (i = 0; i < 8; i++) { out[8 * br + i] = workspace[i] + bc; }
        }
        int main() {
            int b;
            for (b = 0; b < 4; b++) { dct(b, b + 1); }
            dct(5, 0);
            return out[0];
        }
        """
        dynamic, static, report = differential(source)
        assert report.matched == report.dynamic_total

    def test_structs_compound_assign_incdec_and_edge_trips(self):
        source = """
        int A[40]; int tab[10] = {3, 1, 4, 1, 5, 9, 2, 6, 5, 3}; int g;
        struct Pt { int x; int y; };
        struct Pt pts[5];
        int main() {
            int i; int j; int once;
            for (once = 0; once < 1; once++) { A[once] = 9; }
            for (i = 0; i < 0; i++) { A[i] = 1; }
            for (i = 9; i >= 0; i--) { A[i] = tab[i]; }
            for (i = 0; i < 5; i++) {
                pts[i].x = i;
                pts[i].y = A[i] + g;
                g = g + pts[i].x;
                A[i] += 2;
                A[i + 1]++;
            }
            for (i = 0; i < 3; i++) {
                for (j = 0; j < 1; j++) { A[i + j] = A[i + j] * 2; }
            }
            return g;
        }
        """
        dynamic, static, report = differential(source)
        assert report.matched == report.dynamic_total
        # trip-0 loop bodies never execute: no reference on either side.
        assert static.model_complete

    def test_negative_step_reference_modeled_exactly(self):
        source = """
        int A[10]; int g;
        int main() {
            int i;
            for (i = 9; i >= 0; i--) { A[i] = i; }
            for (i = 9; i > 0; i -= 2) { g = g + A[i]; }
            return g;
        }
        """
        dynamic, static, report = differential(source)
        assert report.matched == report.dynamic_total
        downward = [ref for ref in static.unfiltered_references
                    if ref.loop_path and ref.loop_path[-1].max_trip == 5]
        assert downward  # the stride -2 loop runs 5 times: 9,7,5,3,1

    def test_triangular_loops_strides_and_do_while(self):
        source = """
        int A[100]; int g;
        void maybe_quit(int x) { if (x > 1000) { exit(1); } }
        int sum3(int a, int b, int c) { return a + b + c; }
        int main() {
            int i; int j; int k;
            for (i = 0; i < 6; i++) {
                for (j = i; j < 6; j++) { A[6 * i + j] = i + j; }
            }
            for (i = 0; i < 10; i += 3) {
                A[i] = sum3(A[i + 1], A[i + 2], i);
            }
            maybe_quit(g);
            for (k = 9; k > 0; k -= 2) { g = g + A[k]; }
            do { g++; } while (g < 0);
            return g;
        }
        """
        differential(source)


class TestRefusals:
    def test_non_affine_and_control_dependent_refs_refused(self):
        source = """
        int A[50]; int idx[50]; int g;
        int pick(int k) {
            if (k > 3) { return A[k]; }
            return k;
        }
        int main() {
            int i; int n; n = 0;
            while (n < 10) { A[n] = n; n++; }
            for (i = 0; i < 20; i++) {
                if (i % 2 == 0) { g = g + A[i]; }
                A[idx[i]] = i;
                g = (i > 5) ? A[0] : A[1];
                if (i > 3 && A[i] > 0) { g++; }
            }
            g = g + pick(7);
            for (i = 0; i < 4; i++) { g = g + pick(i); }
            return g;
        }
        """
        dynamic, static, report = differential(source)
        reasons = set(static.refusal_histogram)
        assert reasons <= set(REFUSAL_REASONS)
        assert "non-affine-index" in reasons     # A[idx[i]]
        assert "non-canonical-loop" in reasons   # the while body
        assert "control-dependent" in reasons    # refs under if/ternary
        assert not static.model_complete

    def test_recursion_and_stack_refusals(self):
        source = """
        int A[30]; int g;
        int fib(int n) {
            if (n < 2) { return n; }
            return fib(n - 1) + fib(n - 2);
        }
        void leaf() {
            char msg[8] = "hi";
            int t[4] = {1, 2, 3, 4};
            int i;
            for (i = 0; i < 4; i++) { g = g + t[i] + msg[0]; }
        }
        int main() {
            int i;
            for (i = 0; i < 10; i++) {
                int scratch[4];
                scratch[0] = i;
                A[i] = scratch[0];
            }
            for (i = 0; i < 10; i++) {
                if (A[i] > 5) { break; }
                g = g + A[i];
            }
            leaf();
            g = g + fib(6);
            return g;
        }
        """
        dynamic, static, report = differential(source)
        reasons = set(static.refusal_histogram)
        assert "recursion" in reasons
        assert "stack-allocated" in reasons      # loop-local scratch[]
        assert "non-canonical-loop" in reasons   # the break loop

    def test_every_dynamic_gap_is_an_explicit_refusal(self):
        # The no-silent-gaps half of the oracle contract on a program
        # mixing modelable and unmodelable references.
        source = """
        int A[20]; int B[20]; int g;
        int main() {
            int i; int n;
            for (i = 0; i < 20; i++) { A[i] = i; }
            n = 0;
            while (n < 5) { B[n] = A[n]; n++; }
            return g;
        }
        """
        dynamic, static, report = differential(source)
        assert not report.unexplained
        assert 0 < report.matched < report.dynamic_total


class TestStaticFastPath:
    @pytest.fixture(autouse=True)
    def fresh_caches(self):
        clear_caches()
        yield
        clear_caches()

    def test_fully_static_program_skips_simulation(self):
        source = ALL_WORKLOADS["fig9"].source
        config = PipelineConfig(cache=False, static_fast_path=True)
        flow = full_flow("fig9", source, config=config)
        run_result = flow.report.extraction.run_result
        assert run_result.stats.steps == 0
        assert run_result.stats.accesses == 0
        assert run_result.machine is None  # no engine was ever built

    def test_fast_path_artifacts_identical_to_simulation(self):
        source = ALL_WORKLOADS["fig9"].source
        slow = full_flow("fig9", source, config=PipelineConfig(cache=False))
        fast = full_flow("fig9", source, config=PipelineConfig(
            cache=False, static_fast_path=True))
        assert fast.report.model == slow.report.model
        assert fast.report.extraction.foray_source == \
            slow.report.extraction.foray_source
        assert fast.transformed_source == slow.transformed_source
        assert fast.report.census == slow.report.census
        assert fast.report.table2 == slow.report.table2
        assert fast.report.table3 == slow.report.table3
        assert fast.allocation.selected == slow.allocation.selected
        assert fast.allocation.total_benefit_nj == \
            pytest.approx(slow.allocation.total_benefit_nj)

    def test_partially_static_program_falls_back(self):
        # adpcm prints results (stats-inexact) and models nothing
        # statically: the fast path must simulate as usual.
        source = ALL_WORKLOADS["adpcm"].source
        config = PipelineConfig(cache=False, static_fast_path=True)
        flow = full_flow("adpcm", source, config=config)
        run_result = flow.report.extraction.run_result
        assert run_result.stats.steps > 0
        no_fast = full_flow("adpcm", source,
                            config=PipelineConfig(cache=False))
        assert flow.report.model == no_fast.report.model
