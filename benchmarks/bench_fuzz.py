"""Throughput of the seeded generator and the differential fuzzing
harness.

Two rates are recorded: raw generation (build + render, programs/sec)
and the full differential battery (generation plus every check,
programs/sec, serial and fanned out). The battery must also come back
clean — a failing check here is a real finding, not a benchmark
artifact. Set ``FUZZ_BENCH_QUICK=1`` (the CI smoke step does) to trim
seed counts and skip the fan-out comparison.
"""

from __future__ import annotations

import os
import time

import pytest

from benchmarks.conftest import write_result
from repro.analysis.report import format_fuzz_summary
from repro.gen import generate_program
from repro.gen.fuzz import run_fuzz
from repro.pipeline import PipelineConfig, clear_caches

QUICK = os.environ.get("FUZZ_BENCH_QUICK") not in (None, "", "0")

GEN_SEEDS = 20 if QUICK else 200
FUZZ_SEEDS = 5 if QUICK else 30


def test_generation_throughput(benchmark, results_dir):
    """Raw build + render rate over a fresh seed range per round.

    Wall-clock is measured directly (``--benchmark-disable`` leaves
    ``benchmark.stats`` unset); the benchmark fixture drives execution
    so the run still lands in the comparison table when enabled.
    """
    state = {"next": 0, "elapsed": []}

    def generate_batch():
        start_seed = state["next"]
        state["next"] += GEN_SEEDS
        started = time.perf_counter()
        for seed in range(start_seed, start_seed + GEN_SEEDS):
            generate_program(seed)
        state["elapsed"].append(time.perf_counter() - started)

    benchmark.pedantic(generate_batch, rounds=3, iterations=1)
    rate = GEN_SEEDS / (sum(state["elapsed"]) / len(state["elapsed"]))
    benchmark.extra_info["programs_per_sec"] = round(rate, 1)
    write_result(
        results_dir, "fuzz_generation_rate.txt",
        f"generation: {GEN_SEEDS} programs/round, "
        f"{rate:.1f} programs/sec (small profile)",
    )


def test_fuzz_battery_throughput(benchmark, results_dir):
    """Full differential battery, serial, uncached — and clean."""
    config = PipelineConfig(cache=False)

    def fuzz_batch():
        clear_caches()
        started = time.perf_counter()
        report = run_fuzz("small", seeds=FUZZ_SEEDS, config=config)
        return report, time.perf_counter() - started

    report, elapsed = benchmark.pedantic(fuzz_batch, rounds=1, iterations=1)
    assert report.ok, [
        (o.spec, o.failing_check or o.error) for o in report.outcomes
    ]
    rate = FUZZ_SEEDS / elapsed
    benchmark.extra_info["programs_per_sec"] = round(rate, 2)
    write_result(
        results_dir, "fuzz_battery_rate.txt",
        format_fuzz_summary(report)
        + f"\nbattery: {rate:.2f} programs/sec serial (uncached)",
    )


def test_fuzz_fan_out_wallclock(results_dir):
    """The process-pool fan-out must beat the serial battery wall-clock
    (skipped on 1-CPU hosts, where it cannot)."""
    if QUICK:
        pytest.skip("quick mode: wall-clock comparison skipped")
    config = PipelineConfig(cache=False)
    clear_caches()
    start = time.perf_counter()
    serial = run_fuzz("small", seeds=FUZZ_SEEDS, jobs=1, config=config)
    serial_time = time.perf_counter() - start

    cpus = os.cpu_count() or 1
    jobs = min(4, cpus)
    clear_caches()
    start = time.perf_counter()
    parallel = run_fuzz("small", seeds=FUZZ_SEEDS, jobs=jobs, config=config)
    parallel_time = time.perf_counter() - start

    assert parallel.outcomes == serial.outcomes  # fan-out changes nothing
    write_result(
        results_dir, "fuzz_parallel_wallclock.txt",
        f"fuzz battery ({FUZZ_SEEDS} programs) serial: {serial_time:.2f}s, "
        f"jobs={jobs}: {parallel_time:.2f}s "
        f"({serial_time / parallel_time:.2f}x) on {cpus} CPU(s)",
    )
    if cpus == 1:
        pytest.skip("single-CPU host: parallel fan-out cannot beat serial")
    assert parallel_time < serial_time, (
        f"parallel fuzzing ({parallel_time:.2f}s) did not beat serial "
        f"({serial_time:.2f}s) with jobs={jobs}"
    )
