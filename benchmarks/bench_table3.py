"""Table III — memory behaviour of the FORAY models.

Regenerates the reference/access/footprint coverage split (FORAY model vs
system library vs other) for all six benchmarks.
"""

import pytest

from benchmarks.conftest import write_result
from repro.analysis.coverage import table3_behavior
from repro.analysis.report import format_table3
from repro.workloads.registry import workload_names


@pytest.mark.parametrize("name", workload_names())
def test_behavior_split(benchmark, suite_reports, name):
    report = suite_reports[name]
    row = benchmark(table3_behavior, name, report.model)
    assert row.total_accesses > 0
    benchmark.extra_info["model_acc_pct"] = round(row.model_accesses_pct)
    benchmark.extra_info["lib_acc_pct"] = round(row.lib_accesses_pct)


def test_emit_table3(suite_reports, results_dir, benchmark):
    rows = [report.table3 for report in suite_reports.values()]
    text = benchmark(format_table3, rows)
    write_result(results_dir, "table3.txt", text)

    by_name = {row.name: row for row in rows}
    # Paper anchors: fft is library-dominated; the model captures a large
    # minority of accesses on average.
    assert by_name["fft"].lib_accesses_pct > by_name["fft"].model_accesses_pct
    average = sum(row.model_accesses_pct for row in rows) / len(rows)
    assert average >= 25.0
