"""Shared fixtures for the benchmark harness.

Workload profiling is the expensive step (seconds per benchmark), so the
suite reports are computed once per session and reused by every table
bench. Each bench also writes its regenerated table into
``benchmarks/results/`` so the paper comparison survives output capture.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.pipeline import WorkloadReport, run_workload
from repro.workloads.registry import MIBENCH_WORKLOADS

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def suite_reports() -> dict[str, WorkloadReport]:
    return {
        name: run_workload(name, workload.source)
        for name, workload in MIBENCH_WORKLOADS.items()
    }


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def write_result(results_dir: pathlib.Path, name: str, text: str) -> None:
    (results_dir / name).write_text(text + "\n")
    print()
    print(text)
