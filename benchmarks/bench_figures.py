"""Figures 1/2, 4, 7 and 9 — the paper's worked examples.

Each bench extracts the FORAY model of one figure program, checks the
published outcome, and records the emitted model text.
"""

import pytest

from benchmarks.conftest import write_result
from repro.foray.emitter import emit_model
from repro.foray.filters import FilterConfig
from repro.foray.hints import inlining_hints
from repro.pipeline import extract_foray_model
from repro.workloads.figures import FIG1A, FIG1B, FIG4A, FIG7A, FIG7B, FIG9

RELAXED = FilterConfig(nexec=1, nloc=1)


def extract(benchmark, workload, filter_config=None):
    return benchmark.pedantic(
        extract_foray_model, args=(workload.source, filter_config),
        rounds=1, iterations=1,
    )


def test_fig1a_jpeg_pointer_walk(benchmark, results_dir):
    result = extract(benchmark, FIG1A)
    (ref,) = result.model.references
    assert ref.expression.used_coefficients() == (4, 256)  # Figure 2 top
    write_result(results_dir, "fig2_top.txt", emit_model(result.model))


def test_fig1b_rowsperchunk(benchmark, results_dir):
    result = extract(benchmark, FIG1B, RELAXED)
    (ref,) = result.model.references
    assert [loop.max_trip for loop in ref.loop_path] == [1, 16]  # Figure 2 bottom
    write_result(results_dir, "fig2_bottom.txt", emit_model(result.model))


def test_fig4_end_to_end(benchmark, results_dir):
    result = extract(benchmark, FIG4A, RELAXED)
    (ref,) = result.model.references
    assert ref.expression.used_coefficients() == (1, 103)  # Figure 4d
    assert ref.exec_count == 6
    write_result(results_dir, "fig4d.txt", emit_model(result.model))


@pytest.mark.parametrize("workload", [FIG7A, FIG7B], ids=["fig7a", "fig7b"])
def test_fig7_partial_affine(benchmark, results_dir, workload):
    result = extract(benchmark, workload, RELAXED)
    partial = result.model.partial_references()
    assert partial, "Figure 7 must produce partial affine expressions"
    for ref in partial:
        assert ref.expression.num_iterators < ref.nest_depth
    write_result(results_dir, f"{workload.name}.txt", emit_model(result.model))


def test_fig9_inlining_hint(benchmark, results_dir):
    result = extract(benchmark, FIG9)
    hints = inlining_hints(result.model, result.compiled.program)
    (hint,) = hints
    assert hint.patterns_differ
    write_result(results_dir, "fig9_hint.txt", hint.describe())
