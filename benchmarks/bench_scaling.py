"""The paper's complexity claim — and the staged engine's scaling story.

Section 4: "the computational complexity ... is linear with respect to the
number of profiled instructions" and the analysis can run during profiling
without storing the trace. These benches feed synthetic traces of growing
length through the extractor and check that per-record cost stays flat and
that analysis state does not grow with trace length.

The second half benchmarks the staged execution engine itself:

* bytecode vs AST engine on simulated steps/sec (largest suite workload);
* serial vs multiprocess ``run_suite`` wall-clock (skipped on 1-CPU hosts,
  where fan-out cannot beat serial by construction).
"""

import json
import os
import socket
import time

import pytest

from benchmarks.conftest import RESULTS_DIR, write_result
from repro.cachesim.model import CacheConfig, CacheHierarchy
from repro.cachesim.sink import CacheSink
from repro.foray.extractor import ForayExtractor
from repro.pipeline import PipelineConfig, clear_caches, run_suite
from repro.sim.bytecode import fusion_stats
from repro.sim.machine import (
    EngineConfig,
    compile_program,
    lower_compiled,
    run_compiled,
)
from repro.sim.trace import (
    Access,
    Checkpoint,
    CheckpointInfo,
    CheckpointKind,
    CheckpointMap,
)
from repro.workloads.registry import MIBENCH_WORKLOADS

B, S, E = (CheckpointKind.LOOP_BEGIN, CheckpointKind.BODY_BEGIN,
           CheckpointKind.BODY_END)


def make_map() -> CheckpointMap:
    cmap = CheckpointMap()
    for offset, kind in enumerate((B, S, E)):
        cmap.add(CheckpointInfo(10 + offset, kind, 100, "for"))
    return cmap


def synthetic_trace(iterations: int):
    """One loop with `iterations` iterations, two accesses each."""
    yield Checkpoint(10, B)
    for index in range(iterations):
        yield Checkpoint(11, S)
        yield Access(0x400100, 0x10000000 + 4 * index, 4, False)
        yield Access(0x400204, 0x20000000 + 8 * index, 8, True)
        yield Checkpoint(12, E)


def run_extractor(iterations: int) -> ForayExtractor:
    extractor = ForayExtractor(make_map())
    extractor.consume(synthetic_trace(iterations))
    return extractor


@pytest.mark.parametrize("iterations", [1_000, 4_000, 16_000])
def test_throughput(benchmark, iterations):
    """Records/second should be flat across trace lengths (linear time)."""
    extractor = benchmark.pedantic(
        run_extractor, args=(iterations,), rounds=3, iterations=1
    )
    model = extractor.finish()
    assert len(model.references) == 2
    benchmark.extra_info["records"] = 4 * iterations + 1


def test_constant_analysis_state(results_dir, benchmark):
    """Excluding footprint bookkeeping, analysis state must not grow with
    the trace: one loop node and one solver per reference, regardless of
    length. (The paper's constant-space claim; footprints are kept here
    only to report Table III.)"""

    def state_size(iterations):
        extractor = run_extractor(iterations)
        root = extractor.loop_tree_root
        nodes = sum(1 for _ in root.iter_subtree())
        solvers = sum(len(node.references) for node in root.iter_subtree())
        return nodes, solvers

    small = state_size(500)
    large = benchmark.pedantic(state_size, args=(8_000,), rounds=1, iterations=1)
    assert small == large == (2, 2)
    write_result(
        results_dir, "scaling.txt",
        f"analysis state (nodes, solvers): {small} at 500 iters, "
        f"{large} at 8000 iters (constant)",
    )


def test_streaming_needs_no_trace_storage(benchmark):
    """The extractor must work as a pure sink over a generator — no list
    of records is ever materialized."""
    def run():
        extractor = ForayExtractor(make_map())
        for record in synthetic_trace(2_000):
            extractor.emit(record)
        return extractor.finish()

    model = benchmark.pedantic(run, rounds=3, iterations=1)
    assert model.references[0].exec_count == 2_000


# ---------------------------------------------------------------------------
# Staged execution engine
# ---------------------------------------------------------------------------


SCALING_QUICK = os.environ.get("SCALING_BENCH_QUICK") == "1"
#: Committed ratio baseline (host-independent): the CI gate fails when a
#: measured speedup ratio regresses by more than 20% against it.
RATIO_BASELINE = RESULTS_DIR.parent / "BENCH_baseline.json"
#: Tolerated fraction of a baseline figure (1 - the 20% gate).
TOLERANCE = 0.8
#: The workload the hard gates apply to (the ISSUE's reference point).
GATED = "jpeg"


def _time_engine(compiled, config: EngineConfig,
                 rounds: int) -> tuple[float, int]:
    """Best-of-N wall time and the step count of one simulated run."""
    best = float("inf")
    steps = 0
    for _ in range(rounds):
        start = time.perf_counter()
        result = run_compiled(compiled, config=config)
        best = min(best, time.perf_counter() - start)
        steps = result.stats.steps
    return best, steps


def _bench_names() -> tuple[str, ...]:
    if SCALING_QUICK:
        return (GATED, "adpcm")
    return tuple(MIBENCH_WORKLOADS)


def _measure_workloads() -> dict:
    """steps/sec for every engine tier plus static fusion coverage.

    The bytecode engine is timed three ways — fused with interval-analysis
    guard elimination (the default), fused with every memory access fully
    checked (``guard_elim=False``), and unfused — so ``BENCH_steps.json``
    records what the dataflow framework is worth on the hot path."""
    rounds = 2 if SCALING_QUICK else 3
    out = {}
    for name in _bench_names():
        compiled = compile_program(MIBENCH_WORKLOADS[name].source)
        bp = lower_compiled(compiled)  # exclude lowering from timings
        stats = fusion_stats(bp)
        fused_t, steps = _time_engine(
            compiled, EngineConfig(engine="bytecode"), rounds)
        noguard_t, noguard_steps = _time_engine(
            compiled, EngineConfig(engine="bytecode", guard_elim=False),
            rounds)
        unfused_t, unfused_steps = _time_engine(
            compiled, EngineConfig(engine="bytecode", fusion=False), rounds)
        # The AST oracle is an order of magnitude slower; one round is
        # plenty for a best-of comparison that only sanity-checks it.
        ast_t, ast_steps = _time_engine(
            compiled, EngineConfig(engine="ast"), 1 if SCALING_QUICK else 2)
        assert steps == noguard_steps == unfused_steps == ast_steps, (
            f"engines disagree on simulated steps for {name}")
        out[name] = {
            "steps": steps,
            "ast_sps": steps / ast_t,
            "unfused_sps": steps / unfused_t,
            "noguard_sps": steps / noguard_t,
            "fused_sps": steps / fused_t,
            "fused_over_unfused": unfused_t / fused_t,
            "fused_over_ast": ast_t / fused_t,
            "guard_elim_over_checked": noguard_t / fused_t,
            "memory_fused_share": stats["memory_fused_share"],
            "instructions_before": stats["instructions_before"],
            "instructions_after": stats["instructions_after"],
        }
    return out


class _BlockTupleSink:
    """The legacy sink protocol: ``emit_block`` tuples, no columnar
    entry point — what every sink spoke before the columnar blocks."""

    def __init__(self, inner):
        self._inner = inner

    def emit_block(self, accesses, checkpoints):
        self._inner.emit_block(accesses, checkpoints)

    def emit(self, record):
        self._inner.emit(record)


def _measure_sink_path() -> dict:
    """The sink-bound hierarchy-matrix path: a live cache co-simulation,
    columnar protocol + fused VM versus tuple protocol + plain VM."""
    compiled = compile_program(MIBENCH_WORKLOADS[GATED].source)
    lower_compiled(compiled)
    rounds = 2 if SCALING_QUICK else 3
    fast_t = slow_t = float("inf")
    steps = accesses = 0
    for _ in range(rounds):
        sink = CacheSink(CacheHierarchy(CacheConfig()))
        start = time.perf_counter()
        result = run_compiled(compiled, sinks=(sink,),
                              config=EngineConfig(engine="bytecode"))
        fast_t = min(fast_t, time.perf_counter() - start)
        steps = result.stats.steps
        accesses = sink.finish().accesses
    for _ in range(rounds):
        sink = _BlockTupleSink(CacheSink(CacheHierarchy(CacheConfig())))
        start = time.perf_counter()
        run_compiled(compiled, sinks=(sink,),
                     config=EngineConfig(engine="bytecode", fusion=False))
        slow_t = min(slow_t, time.perf_counter() - start)
    return {
        "workload": GATED,
        "accesses": accesses,
        "columnar_fused_sps": steps / fast_t,
        "columnar_aps": accesses / fast_t,
        "tuple_unfused_sps": steps / slow_t,
        "tuple_aps": accesses / slow_t,
        "columnar_over_tuple": slow_t / fast_t,
    }


def _check_ratio_baseline(bench: dict) -> list[str]:
    """Gate measured speedup ratios against the committed baseline."""
    if not RATIO_BASELINE.exists():
        return []  # nothing committed yet: the host gate still applies
    baseline = json.loads(RATIO_BASELINE.read_text())
    failures = []
    for key, path in (
        ("fused_over_unfused", ("workloads", GATED, "fused_over_unfused")),
        ("sink_columnar_over_tuple", ("sink", "columnar_over_tuple")),
    ):
        recorded = baseline.get(key)
        if recorded is None:
            continue
        current = bench
        for part in path:
            current = current[part]
        if current < TOLERANCE * recorded:
            failures.append(
                f"{key}: {current:.2f}x is more than 20% below the "
                f"committed baseline {recorded:.2f}x")
    return failures


def _check_host_baseline(bench: dict) -> tuple[str, list[str]]:
    """Per-host absolute steps/sec baseline: recorded on first run,
    ratcheted upward, gated at 20% below the record thereafter."""
    host = socket.gethostname() or "unknown"
    path = RESULTS_DIR / f"engine_baseline_{host}.json"
    fused = bench["workloads"][GATED]["fused_sps"]
    ast = bench["workloads"][GATED]["ast_sps"]
    if not path.exists():
        path.write_text(json.dumps(
            {"host": host, "workload": GATED, "fused_sps": fused,
             "ast_sps": ast}, indent=2) + "\n")
        # First run on this host: no absolute record yet, so fall back
        # to the engine-tier floor (the old hard-coded assert).
        if fused < 2.0 * ast:
            return host, [f"bytecode engine only {fused / ast:.2f}x the "
                          f"AST engine on {GATED}"]
        return host, []
    recorded = json.loads(path.read_text())
    failures = []
    if fused < TOLERANCE * recorded["fused_sps"]:
        failures.append(
            f"fused steps/sec on {GATED} ({fused:,.0f}) is more than 20% "
            f"below this host's record ({recorded['fused_sps']:,.0f})")
    elif fused > recorded["fused_sps"]:
        recorded.update(fused_sps=fused, ast_sps=ast)
        path.write_text(json.dumps(recorded, indent=2) + "\n")
    return host, failures


def test_engine_steps_json(results_dir):
    """Measure every engine tier plus the sink-bound hierarchy path,
    publish ``BENCH_steps.json``, and gate against both the committed
    ratio baseline and this host's recorded absolute baseline."""
    workloads = _measure_workloads()
    sink = _measure_sink_path()
    bench = {
        "quick": SCALING_QUICK,
        "gated_workload": GATED,
        "workloads": workloads,
        "sink": sink,
    }
    host, host_failures = _check_host_baseline(bench)
    bench["host"] = host
    (results_dir / "BENCH_steps.json").write_text(
        json.dumps(bench, indent=2, sort_keys=True) + "\n")

    lines = [
        f"{name:8s} steps={m['steps']:>9} "
        f"ast={m['ast_sps']:>10.0f} unfused={m['unfused_sps']:>10.0f} "
        f"checked={m['noguard_sps']:>10.0f} "
        f"fused={m['fused_sps']:>10.0f} sps "
        f"({m['fused_over_unfused']:.2f}x over unfused, "
        f"{m['guard_elim_over_checked']:.2f}x over checked, "
        f"{m['fused_over_ast']:.2f}x over ast, "
        f"{m['memory_fused_share']:.0%} mem ops fused)"
        for name, m in workloads.items()
    ]
    lines.append(
        f"sink     {sink['accesses']} accesses: "
        f"columnar+fused {sink['columnar_aps']:,.0f} aps vs "
        f"tuple+unfused {sink['tuple_aps']:,.0f} aps "
        f"({sink['columnar_over_tuple']:.2f}x)")
    write_result(results_dir, "engine_speedup.txt", "\n".join(lines))

    failures = _check_ratio_baseline(bench) + host_failures
    assert not failures, "; ".join(failures)


def test_parallel_suite_speedup(results_dir):
    """run_suite(jobs=N) must beat the serial suite wall-clock (requires
    more than one CPU; fan-out cannot win on a single core)."""
    config = PipelineConfig(cache=False)
    clear_caches()
    start = time.perf_counter()
    serial = run_suite(config=config)
    serial_time = time.perf_counter() - start

    cpus = os.cpu_count() or 1
    jobs = min(4, cpus)
    start = time.perf_counter()
    parallel = run_suite(jobs=jobs, config=config)
    parallel_time = time.perf_counter() - start

    assert [r.name for r in parallel] == [r.name for r in serial]
    for left, right in zip(serial, parallel):
        assert left.table2 == right.table2 and left.table3 == right.table3

    write_result(
        results_dir, "parallel_suite.txt",
        f"suite serial: {serial_time:.2f}s, jobs={jobs}: {parallel_time:.2f}s "
        f"({serial_time / parallel_time:.2f}x) on {cpus} CPU(s)",
    )
    if cpus == 1:
        pytest.skip("single-CPU host: parallel fan-out cannot beat serial")
    assert parallel_time < serial_time, (
        f"parallel suite ({parallel_time:.2f}s) did not beat serial "
        f"({serial_time:.2f}s) with jobs={jobs}"
    )
