"""The paper's complexity claim: single-pass, linear-time, constant-space.

Section 4: "the computational complexity ... is linear with respect to the
number of profiled instructions" and the analysis can run during profiling
without storing the trace. These benches feed synthetic traces of growing
length through the extractor and check that per-record cost stays flat and
that analysis state does not grow with trace length.
"""

import pytest

from benchmarks.conftest import write_result
from repro.foray.extractor import ForayExtractor
from repro.sim.trace import (
    Access,
    Checkpoint,
    CheckpointInfo,
    CheckpointKind,
    CheckpointMap,
)

B, S, E = (CheckpointKind.LOOP_BEGIN, CheckpointKind.BODY_BEGIN,
           CheckpointKind.BODY_END)


def make_map() -> CheckpointMap:
    cmap = CheckpointMap()
    for offset, kind in enumerate((B, S, E)):
        cmap.add(CheckpointInfo(10 + offset, kind, 100, "for"))
    return cmap


def synthetic_trace(iterations: int):
    """One loop with `iterations` iterations, two accesses each."""
    yield Checkpoint(10, B)
    for index in range(iterations):
        yield Checkpoint(11, S)
        yield Access(0x400100, 0x10000000 + 4 * index, 4, False)
        yield Access(0x400204, 0x20000000 + 8 * index, 8, True)
        yield Checkpoint(12, E)


def run_extractor(iterations: int) -> ForayExtractor:
    extractor = ForayExtractor(make_map())
    extractor.consume(synthetic_trace(iterations))
    return extractor


@pytest.mark.parametrize("iterations", [1_000, 4_000, 16_000])
def test_throughput(benchmark, iterations):
    """Records/second should be flat across trace lengths (linear time)."""
    extractor = benchmark.pedantic(
        run_extractor, args=(iterations,), rounds=3, iterations=1
    )
    model = extractor.finish()
    assert len(model.references) == 2
    benchmark.extra_info["records"] = 4 * iterations + 1


def test_constant_analysis_state(results_dir, benchmark):
    """Excluding footprint bookkeeping, analysis state must not grow with
    the trace: one loop node and one solver per reference, regardless of
    length. (The paper's constant-space claim; footprints are kept here
    only to report Table III.)"""

    def state_size(iterations):
        extractor = run_extractor(iterations)
        root = extractor.loop_tree_root
        nodes = sum(1 for _ in root.iter_subtree())
        solvers = sum(len(node.references) for node in root.iter_subtree())
        return nodes, solvers

    small = state_size(500)
    large = benchmark.pedantic(state_size, args=(8_000,), rounds=1, iterations=1)
    assert small == large == (2, 2)
    write_result(
        results_dir, "scaling.txt",
        f"analysis state (nodes, solvers): {small} at 500 iters, "
        f"{large} at 8000 iters (constant)",
    )


def test_streaming_needs_no_trace_storage(benchmark):
    """The extractor must work as a pure sink over a generator — no list
    of records is ever materialized."""
    def run():
        extractor = ForayExtractor(make_map())
        for record in synthetic_trace(2_000):
            extractor.emit(record)
        return extractor.finish()

    model = benchmark.pedantic(run, rounds=3, iterations=1)
    assert model.references[0].exec_count == 2_000
