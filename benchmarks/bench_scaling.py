"""The paper's complexity claim — and the staged engine's scaling story.

Section 4: "the computational complexity ... is linear with respect to the
number of profiled instructions" and the analysis can run during profiling
without storing the trace. These benches feed synthetic traces of growing
length through the extractor and check that per-record cost stays flat and
that analysis state does not grow with trace length.

The second half benchmarks the staged execution engine itself:

* bytecode vs AST engine on simulated steps/sec (largest suite workload);
* serial vs multiprocess ``run_suite`` wall-clock (skipped on 1-CPU hosts,
  where fan-out cannot beat serial by construction).
"""

import os
import time

import pytest

from benchmarks.conftest import write_result
from repro.foray.extractor import ForayExtractor
from repro.pipeline import PipelineConfig, clear_caches, run_suite
from repro.sim.machine import (
    EngineConfig,
    compile_program,
    lower_compiled,
    run_compiled,
)
from repro.sim.trace import (
    Access,
    Checkpoint,
    CheckpointInfo,
    CheckpointKind,
    CheckpointMap,
)
from repro.workloads.registry import MIBENCH_WORKLOADS

B, S, E = (CheckpointKind.LOOP_BEGIN, CheckpointKind.BODY_BEGIN,
           CheckpointKind.BODY_END)


def make_map() -> CheckpointMap:
    cmap = CheckpointMap()
    for offset, kind in enumerate((B, S, E)):
        cmap.add(CheckpointInfo(10 + offset, kind, 100, "for"))
    return cmap


def synthetic_trace(iterations: int):
    """One loop with `iterations` iterations, two accesses each."""
    yield Checkpoint(10, B)
    for index in range(iterations):
        yield Checkpoint(11, S)
        yield Access(0x400100, 0x10000000 + 4 * index, 4, False)
        yield Access(0x400204, 0x20000000 + 8 * index, 8, True)
        yield Checkpoint(12, E)


def run_extractor(iterations: int) -> ForayExtractor:
    extractor = ForayExtractor(make_map())
    extractor.consume(synthetic_trace(iterations))
    return extractor


@pytest.mark.parametrize("iterations", [1_000, 4_000, 16_000])
def test_throughput(benchmark, iterations):
    """Records/second should be flat across trace lengths (linear time)."""
    extractor = benchmark.pedantic(
        run_extractor, args=(iterations,), rounds=3, iterations=1
    )
    model = extractor.finish()
    assert len(model.references) == 2
    benchmark.extra_info["records"] = 4 * iterations + 1


def test_constant_analysis_state(results_dir, benchmark):
    """Excluding footprint bookkeeping, analysis state must not grow with
    the trace: one loop node and one solver per reference, regardless of
    length. (The paper's constant-space claim; footprints are kept here
    only to report Table III.)"""

    def state_size(iterations):
        extractor = run_extractor(iterations)
        root = extractor.loop_tree_root
        nodes = sum(1 for _ in root.iter_subtree())
        solvers = sum(len(node.references) for node in root.iter_subtree())
        return nodes, solvers

    small = state_size(500)
    large = benchmark.pedantic(state_size, args=(8_000,), rounds=1, iterations=1)
    assert small == large == (2, 2)
    write_result(
        results_dir, "scaling.txt",
        f"analysis state (nodes, solvers): {small} at 500 iters, "
        f"{large} at 8000 iters (constant)",
    )


def test_streaming_needs_no_trace_storage(benchmark):
    """The extractor must work as a pure sink over a generator — no list
    of records is ever materialized."""
    def run():
        extractor = ForayExtractor(make_map())
        for record in synthetic_trace(2_000):
            extractor.emit(record)
        return extractor.finish()

    model = benchmark.pedantic(run, rounds=3, iterations=1)
    assert model.references[0].exec_count == 2_000


# ---------------------------------------------------------------------------
# Staged execution engine
# ---------------------------------------------------------------------------


def _time_engine(compiled, engine: str, rounds: int = 3) -> tuple[float, int]:
    """Best-of-N wall time and the step count of one simulated run."""
    best = float("inf")
    steps = 0
    for _ in range(rounds):
        start = time.perf_counter()
        result = run_compiled(compiled, config=EngineConfig(engine=engine))
        best = min(best, time.perf_counter() - start)
        steps = result.stats.steps
    return best, steps


def test_bytecode_engine_speedup(results_dir):
    """The bytecode engine must simulate the largest suite workload at
    >= 2x the AST engine's steps/sec (lowering excluded — it is compiled
    once and cached)."""
    compiled_by_name = {
        name: compile_program(workload.source)
        for name, workload in MIBENCH_WORKLOADS.items()
    }
    for compiled in compiled_by_name.values():
        lower_compiled(compiled)  # exclude lowering from the timings

    # "Largest" by simulated work, measured on the fast engine.
    sizes = {
        name: run_compiled(c, config=EngineConfig(engine="bytecode")).stats.steps
        for name, c in compiled_by_name.items()
    }
    largest = max(sizes, key=sizes.get)

    lines = []
    speedups = {}
    for name, compiled in compiled_by_name.items():
        # Same rounds for both engines: best-of-N on one side only would
        # bias the asserted ratio.
        ast_time, steps = _time_engine(compiled, "ast", rounds=2)
        bc_time, bc_steps = _time_engine(compiled, "bytecode", rounds=2)
        assert steps == bc_steps, "engines disagree on simulated steps"
        speedups[name] = ast_time / bc_time
        lines.append(
            f"{name:8s} steps={steps:>9} ast={steps / ast_time:>10.0f} sps "
            f"bytecode={steps / bc_time:>10.0f} sps "
            f"speedup={speedups[name]:.2f}x"
            + ("  <- largest" if name == largest else "")
        )
    write_result(results_dir, "engine_speedup.txt", "\n".join(lines))
    assert speedups[largest] >= 2.0, (
        f"bytecode engine only {speedups[largest]:.2f}x faster than the AST "
        f"engine on {largest}"
    )


def test_parallel_suite_speedup(results_dir):
    """run_suite(jobs=N) must beat the serial suite wall-clock (requires
    more than one CPU; fan-out cannot win on a single core)."""
    config = PipelineConfig(cache=False)
    clear_caches()
    start = time.perf_counter()
    serial = run_suite(config=config)
    serial_time = time.perf_counter() - start

    cpus = os.cpu_count() or 1
    jobs = min(4, cpus)
    start = time.perf_counter()
    parallel = run_suite(jobs=jobs, config=config)
    parallel_time = time.perf_counter() - start

    assert [r.name for r in parallel] == [r.name for r in serial]
    for left, right in zip(serial, parallel):
        assert left.table2 == right.table2 and left.table3 == right.table3

    write_result(
        results_dir, "parallel_suite.txt",
        f"suite serial: {serial_time:.2f}s, jobs={jobs}: {parallel_time:.2f}s "
        f"({serial_time / parallel_time:.2f}x) on {cpus} CPU(s)",
    )
    if cpus == 1:
        pytest.skip("single-CPU host: parallel fan-out cannot beat serial")
    assert parallel_time < serial_time, (
        f"parallel suite ({parallel_time:.2f}s) did not beat serial "
        f"({serial_time:.2f}s) with jobs={jobs}"
    )
