"""End-to-end value of FORAY-GEN for SPM optimization (Phase II).

The paper's motivation: doubling the analyzable references widens the
reach of SPM optimization. This bench quantifies that on the mini-MiBench
suite by running the same reuse-analysis + knapsack allocation twice per
benchmark:

* **with FORAY-GEN** — over the full extracted model;
* **static only** — restricted to the references the static baseline
  could already see in the source.

The energy saved by the extra (FORAY-GEN-only) references is the payoff
the paper argues for. A capacity sweep per benchmark is also recorded.
"""

import pytest

from benchmarks.conftest import write_result
from repro.sim.trace import node_id_of_pc
from repro.spm.allocator import allocate
from repro.spm.candidates import enumerate_candidates
from repro.spm.energy import EnergyModel
from repro.spm.explore import explore
from repro.workloads.registry import workload_names

SPM_BYTES = 4096


def split_allocations(report, capacity=SPM_BYTES):
    energy = EnergyModel()
    candidates = enumerate_candidates(report.model, energy)
    static_ok = {
        ref.pc
        for ref in report.model.references
        if report.static_result.is_analyzable_ref(node_id_of_pc(ref.pc))
    }
    static_candidates = [c for c in candidates if c.reference.pc in static_ok]
    return (
        allocate(candidates, capacity),
        allocate(static_candidates, capacity),
    )


@pytest.mark.parametrize("name", workload_names())
def test_foray_vs_static_spm_benefit(benchmark, suite_reports, name):
    report = suite_reports[name]
    with_foray, static_only = benchmark.pedantic(
        split_allocations, args=(report,), rounds=1, iterations=1
    )
    # FORAY-GEN can only widen the optimization space.
    assert with_foray.total_benefit_nj >= static_only.total_benefit_nj - 1e-9
    benchmark.extra_info["saved_nj_foray"] = round(with_foray.total_benefit_nj)
    benchmark.extra_info["saved_nj_static"] = round(static_only.total_benefit_nj)


def test_emit_spm_comparison(suite_reports, results_dir, benchmark):
    def build():
        lines = [
            f"SPM ({SPM_BYTES} B) energy saving: FORAY-GEN model vs "
            "static-only references",
            f"{'benchmark':>10} {'foray nJ':>12} {'static nJ':>12} {'gain':>8}",
        ]
        total_foray = total_static = 0.0
        for name, report in suite_reports.items():
            with_foray, static_only = split_allocations(report)
            total_foray += with_foray.total_benefit_nj
            total_static += static_only.total_benefit_nj
            gain = (
                with_foray.total_benefit_nj
                / max(1e-9, static_only.total_benefit_nj)
            )
            gain_text = f"{gain:.2f}x" if static_only.total_benefit_nj else "inf"
            lines.append(
                f"{name:>10} {with_foray.total_benefit_nj:>12.0f} "
                f"{static_only.total_benefit_nj:>12.0f} {gain_text:>8}"
            )
        lines.append(
            f"{'TOTAL':>10} {total_foray:>12.0f} {total_static:>12.0f}"
        )
        return "\n".join(lines), total_foray, total_static

    text, total_foray, total_static = benchmark.pedantic(
        build, rounds=1, iterations=1
    )
    write_result(results_dir, "spm_benefit.txt", text)
    # The suite-wide benefit with FORAY-GEN must exceed static-only.
    assert total_foray > total_static


@pytest.mark.parametrize("name", ["gsm", "lame"])
def test_capacity_sweep(benchmark, suite_reports, results_dir, name):
    """Design-space exploration (Figure 3, Phase II step 3) per workload."""
    model = suite_reports[name].model
    points = benchmark.pedantic(explore, args=(model,), rounds=1, iterations=1)
    benefits = [p.benefit_nj for p in points]
    assert benefits == sorted(benefits)  # monotone in capacity
    lines = [f"{name} SPM capacity sweep",
             f"{'bytes':>8} {'buffers':>8} {'saved nJ':>12} {'saving':>8}"]
    for p in points:
        lines.append(
            f"{p.capacity_bytes:>8} {p.buffer_count:>8} "
            f"{p.benefit_nj:>12.0f} {p.saving_fraction:>7.1%}"
        )
    write_result(results_dir, f"spm_sweep_{name}.txt", "\n".join(lines))
