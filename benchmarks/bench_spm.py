"""End-to-end value of FORAY-GEN for SPM optimization (Phase II).

The paper's motivation: doubling the analyzable references widens the
reach of SPM optimization. This bench quantifies that on the mini-MiBench
suite by running the same reuse-analysis + knapsack allocation twice per
benchmark:

* **with FORAY-GEN** — over the full extracted model;
* **static only** — restricted to the references the static baseline
  could already see in the source.

The energy saved by the extra (FORAY-GEN-only) references is the payoff
the paper argues for. A capacity sweep per benchmark is also recorded,
plus two Phase II quality/performance benches:

* **DP vs. greedy** — the exact allocator's saving vs. both greedy
  rankings over the whole capacity ladder (the DP must dominate);
* **parallel sweep** — serial vs. multiprocess ``sweep_suite`` wall-clock
  (the win assertion is skipped on 1-CPU hosts).

Set ``SPM_BENCH_QUICK=1`` (the CI smoke step does) to trim the workload
set and the ladder and skip the wall-clock comparison.
"""

import os
import time

import pytest

from benchmarks.conftest import write_result
from repro.pipeline import PipelineConfig, clear_caches
from repro.sim.trace import node_id_of_pc
from repro.spm.allocator import AllocatorPolicy, allocate, allocate_graph
from repro.spm.candidates import enumerate_candidates
from repro.spm.energy import EnergyModel
from repro.spm.explore import DEFAULT_CAPACITIES, explore, sweep_suite
from repro.spm.graph import ReuseGraph
from repro.workloads.registry import workload_names

SPM_BYTES = 4096

QUICK = os.environ.get("SPM_BENCH_QUICK") not in (None, "", "0")
LADDER = (512, 2048, 8192, 16384) if QUICK else DEFAULT_CAPACITIES


def bench_names() -> tuple[str, ...]:
    return ("jpeg", "mpeg2") if QUICK else workload_names()


def split_allocations(report, capacity=SPM_BYTES):
    energy = EnergyModel()
    candidates = enumerate_candidates(report.model, energy)
    static_ok = {
        ref.pc
        for ref in report.model.references
        if report.static_result.is_analyzable_ref(node_id_of_pc(ref.pc))
    }
    static_candidates = [c for c in candidates if c.reference.pc in static_ok]
    return (
        allocate(candidates, capacity),
        allocate(static_candidates, capacity),
    )


@pytest.mark.parametrize("name", workload_names())
def test_foray_vs_static_spm_benefit(benchmark, suite_reports, name):
    report = suite_reports[name]
    with_foray, static_only = benchmark.pedantic(
        split_allocations, args=(report,), rounds=1, iterations=1
    )
    # FORAY-GEN can only widen the optimization space.
    assert with_foray.total_benefit_nj >= static_only.total_benefit_nj - 1e-9
    benchmark.extra_info["saved_nj_foray"] = round(with_foray.total_benefit_nj)
    benchmark.extra_info["saved_nj_static"] = round(static_only.total_benefit_nj)


def test_emit_spm_comparison(suite_reports, results_dir, benchmark):
    def build():
        lines = [
            f"SPM ({SPM_BYTES} B) energy saving: FORAY-GEN model vs "
            "static-only references",
            f"{'benchmark':>10} {'foray nJ':>12} {'static nJ':>12} {'gain':>8}",
        ]
        total_foray = total_static = 0.0
        for name, report in suite_reports.items():
            with_foray, static_only = split_allocations(report)
            total_foray += with_foray.total_benefit_nj
            total_static += static_only.total_benefit_nj
            gain = (
                with_foray.total_benefit_nj
                / max(1e-9, static_only.total_benefit_nj)
            )
            gain_text = f"{gain:.2f}x" if static_only.total_benefit_nj else "inf"
            lines.append(
                f"{name:>10} {with_foray.total_benefit_nj:>12.0f} "
                f"{static_only.total_benefit_nj:>12.0f} {gain_text:>8}"
            )
        lines.append(
            f"{'TOTAL':>10} {total_foray:>12.0f} {total_static:>12.0f}"
        )
        return "\n".join(lines), total_foray, total_static

    text, total_foray, total_static = benchmark.pedantic(
        build, rounds=1, iterations=1
    )
    write_result(results_dir, "spm_benefit.txt", text)
    # The suite-wide benefit with FORAY-GEN must exceed static-only.
    assert total_foray > total_static


@pytest.mark.parametrize("name", ["gsm", "lame"])
def test_capacity_sweep(benchmark, suite_reports, results_dir, name):
    """Design-space exploration (Figure 3, Phase II step 3) per workload."""
    model = suite_reports[name].model
    points = benchmark.pedantic(explore, args=(model,), rounds=1, iterations=1)
    benefits = [p.benefit_nj for p in points]
    assert benefits == sorted(benefits)  # monotone in capacity
    lines = [f"{name} SPM capacity sweep",
             f"{'bytes':>8} {'buffers':>8} {'saved nJ':>12} {'saving':>8}"]
    for p in points:
        lines.append(
            f"{p.capacity_bytes:>8} {p.buffer_count:>8} "
            f"{p.benefit_nj:>12.0f} {p.saving_fraction:>7.1%}"
        )
    write_result(results_dir, f"spm_sweep_{name}.txt", "\n".join(lines))


# ---------------------------------------------------------------------------
# Allocator quality: exact DP vs. the greedy rankings
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("name", bench_names())
def test_dp_vs_greedy_quality(benchmark, suite_reports, name):
    """The exact DP must match or beat both greedy rankings at every
    capacity of the ladder; the quality gap is recorded."""
    graph = ReuseGraph.from_model(suite_reports[name].model)

    def run():
        rows = []
        for capacity in LADDER:
            dp = allocate_graph(graph, capacity, AllocatorPolicy.DP)
            greedy = allocate_graph(graph, capacity, AllocatorPolicy.GREEDY)
            legacy = allocate_graph(graph, capacity,
                                    AllocatorPolicy.GREEDY_BENEFIT)
            rows.append((capacity, dp, greedy, legacy))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    worst_greedy = worst_legacy = 1.0
    for capacity, dp, greedy, legacy in rows:
        assert dp.total_benefit_nj >= greedy.total_benefit_nj - 1e-9
        assert dp.total_benefit_nj >= legacy.total_benefit_nj - 1e-9
        if dp.total_benefit_nj > 0:
            worst_greedy = min(
                worst_greedy, greedy.total_benefit_nj / dp.total_benefit_nj)
            worst_legacy = min(
                worst_legacy, legacy.total_benefit_nj / dp.total_benefit_nj)
    benchmark.extra_info["greedy_vs_dp_worst"] = round(worst_greedy, 4)
    benchmark.extra_info["legacy_vs_dp_worst"] = round(worst_legacy, 4)


def test_emit_dp_vs_greedy_table(suite_reports, results_dir, benchmark):
    """Record the suite-wide allocator quality comparison."""

    def build():
        lines = [
            "Allocator quality at each SPM capacity: saved nJ "
            "(DP / greedy-density / greedy-benefit)",
            f"{'benchmark':>10} {'bytes':>7} {'dp nJ':>10} "
            f"{'greedy nJ':>10} {'legacy nJ':>10}",
        ]
        totals = {policy: 0.0 for policy in AllocatorPolicy}
        for name in bench_names():
            graph = ReuseGraph.from_model(suite_reports[name].model)
            for capacity in LADDER:
                row = {
                    policy: allocate_graph(graph, capacity,
                                           policy).total_benefit_nj
                    for policy in AllocatorPolicy
                }
                for policy, value in row.items():
                    totals[policy] += value
                lines.append(
                    f"{name:>10} {capacity:>7} "
                    f"{row[AllocatorPolicy.DP]:>10.0f} "
                    f"{row[AllocatorPolicy.GREEDY]:>10.0f} "
                    f"{row[AllocatorPolicy.GREEDY_BENEFIT]:>10.0f}"
                )
        lines.append(
            f"{'TOTAL':>10} {'':>7} {totals[AllocatorPolicy.DP]:>10.0f} "
            f"{totals[AllocatorPolicy.GREEDY]:>10.0f} "
            f"{totals[AllocatorPolicy.GREEDY_BENEFIT]:>10.0f}"
        )
        return "\n".join(lines), totals

    text, totals = benchmark.pedantic(build, rounds=1, iterations=1)
    write_result(results_dir, "spm_allocator_quality.txt", text)
    assert totals[AllocatorPolicy.DP] >= totals[AllocatorPolicy.GREEDY] - 1e-6
    assert (totals[AllocatorPolicy.DP]
            >= totals[AllocatorPolicy.GREEDY_BENEFIT] - 1e-6)


# ---------------------------------------------------------------------------
# Parallel capacity sweep: serial vs. multiprocess wall-clock
# ---------------------------------------------------------------------------


def test_parallel_sweep_wallclock(results_dir):
    """``sweep_suite(jobs=N)`` must beat the serial sweep wall-clock
    (requires more than one CPU; fan-out cannot win on a single core)."""
    if QUICK:
        pytest.skip("quick mode: wall-clock comparison skipped")
    config = PipelineConfig(cache=False)
    clear_caches()
    start = time.perf_counter()
    serial = sweep_suite(capacities=LADDER, jobs=1, config=config)
    serial_time = time.perf_counter() - start

    cpus = os.cpu_count() or 1
    jobs = min(4, cpus)
    clear_caches()
    start = time.perf_counter()
    parallel = sweep_suite(capacities=LADDER, jobs=jobs, config=config)
    parallel_time = time.perf_counter() - start

    assert parallel == serial  # same frontiers regardless of fan-out
    write_result(
        results_dir, "spm_parallel_sweep.txt",
        f"capacity sweep ({len(LADDER)} capacities x {len(serial)} "
        f"workloads) serial: {serial_time:.2f}s, jobs={jobs}: "
        f"{parallel_time:.2f}s ({serial_time / parallel_time:.2f}x) "
        f"on {cpus} CPU(s)",
    )
    if cpus == 1:
        pytest.skip("single-CPU host: parallel fan-out cannot beat serial")
    assert parallel_time < serial_time, (
        f"parallel sweep ({parallel_time:.2f}s) did not beat serial "
        f"({serial_time:.2f}s) with jobs={jobs}"
    )
