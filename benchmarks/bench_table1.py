"""Table I — benchmark complexity and loop distribution.

Regenerates the paper's Table I rows (lines of code, executed loops,
for/while/do breakdown) for the six mini-MiBench workloads, and times the
full Phase-I profiling pipeline per benchmark (annotate + simulate +
analyze in one streaming pass).
"""

import pytest

from benchmarks.conftest import write_result
from repro.analysis.report import format_table1
from repro.pipeline import run_workload
from repro.workloads.registry import MIBENCH_WORKLOADS, workload_names


@pytest.mark.parametrize("name", workload_names())
def test_profile_pipeline(benchmark, name):
    """Time the full annotate->profile->analyze pipeline per benchmark."""
    workload = MIBENCH_WORKLOADS[name]
    report = benchmark.pedantic(
        run_workload, args=(name, workload.source), rounds=1, iterations=1
    )
    census = report.census
    assert census.total_loops > 0
    benchmark.extra_info["loops"] = census.total_loops
    benchmark.extra_info["for_pct"] = round(census.for_pct)
    benchmark.extra_info["accesses"] = report.table3.total_accesses


def test_emit_table1(suite_reports, results_dir, benchmark):
    """Render Table I (timed: formatting only) and record it."""
    rows = [report.census for report in suite_reports.values()]
    text = benchmark(format_table1, rows)
    write_result(results_dir, "table1.txt", text)
    assert "adpcm" in text
