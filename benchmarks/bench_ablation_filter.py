"""Ablation: sensitivity of the model to the step-4 purge thresholds.

The paper fixes Nexec=20 and Nloc=10 "to leave only references that may
benefit from being placed in the scratch pad memory". This bench sweeps
both thresholds over the jpeg workload and records how the model size
responds — showing the paper's operating point sits on the flat part of
the curve (robust), not on a cliff.
"""

import pytest

from benchmarks.conftest import write_result
from repro.foray.filters import FilterConfig

NEXEC_SWEEP = (1, 5, 10, 20, 50, 200, 1000)
NLOC_SWEEP = (1, 2, 5, 10, 20, 64, 256)


def refilter(model, config):
    return config.apply(model.unfiltered_references)


@pytest.mark.parametrize("nexec", NEXEC_SWEEP)
def test_nexec_sweep(benchmark, suite_reports, nexec):
    model = suite_reports["jpeg"].model
    kept = benchmark(refilter, model, FilterConfig(nexec=nexec, nloc=1))
    benchmark.extra_info["kept"] = len(kept)
    assert len(kept) <= len(model.unfiltered_references)


@pytest.mark.parametrize("nloc", NLOC_SWEEP)
def test_nloc_sweep(benchmark, suite_reports, nloc):
    model = suite_reports["jpeg"].model
    kept = benchmark(refilter, model, FilterConfig(nexec=1, nloc=nloc))
    benchmark.extra_info["kept"] = len(kept)


def test_emit_ablation_table(suite_reports, results_dir, benchmark):
    model = suite_reports["jpeg"].model

    def build():
        lines = ["jpeg step-4 filter ablation (kept references)",
                 f"{'nexec':>6} {'nloc':>6} {'kept':>6}"]
        for nexec in NEXEC_SWEEP:
            for nloc in NLOC_SWEEP:
                kept = refilter(model, FilterConfig(nexec=nexec, nloc=nloc))
                lines.append(f"{nexec:>6} {nloc:>6} {len(kept):>6}")
        return "\n".join(lines)

    text = benchmark.pedantic(build, rounds=1, iterations=1)
    write_result(results_dir, "ablation_filter.txt", text)

    # Monotonicity: stricter thresholds never keep more references.
    paper = len(refilter(model, FilterConfig()))
    relaxed = len(refilter(model, FilterConfig(nexec=1, nloc=1)))
    strict = len(refilter(model, FilterConfig(nexec=1000, nloc=256)))
    assert strict <= paper <= relaxed

    # Robustness claim: halving/doubling the paper thresholds moves the
    # model size by at most a few references.
    half = len(refilter(model, FilterConfig(nexec=10, nloc=5)))
    double = len(refilter(model, FilterConfig(nexec=40, nloc=20)))
    assert abs(half - paper) <= 6
    assert abs(double - paper) <= 6
