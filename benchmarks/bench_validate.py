"""Cross-input model stability over the scenario matrix.

The paper's stated open question is how dependent an extracted FORAY
model is on the profiling input. This bench answers it at suite scale:
for every workload the model is extracted on the profile scenario and
replayed against every other declared input scenario, scoring per-
reference prediction accuracy. Two invariants are asserted:

* **self-validation** — full references replayed against their own
  profiling trace must score 100% (the extractor's definition of "full");
* **serial/parallel parity** — the ``(workload x scenario)`` matrix
  fanned out over worker processes must produce the identical reports.

The serial-vs-parallel matrix wall-clock is recorded (the win assertion
is skipped on 1-CPU hosts). Set ``VALIDATE_BENCH_QUICK=1`` (the CI smoke
step does) to trim the workload set and skip the wall-clock comparison.
"""

import os
import time

import pytest

from benchmarks.conftest import write_result
from repro.analysis.report import format_stability_table
from repro.pipeline import PipelineConfig, clear_caches, validate_suite
from repro.workloads.registry import workload_names

QUICK = os.environ.get("VALIDATE_BENCH_QUICK") not in (None, "", "0")


def bench_names() -> tuple[str, ...]:
    return ("adpcm", "fft") if QUICK else workload_names()


@pytest.fixture(scope="module")
def matrix_results():
    return validate_suite(bench_names(), jobs=1)


@pytest.mark.parametrize("name", bench_names())
def test_model_stability(benchmark, matrix_results, name):
    """Per-workload stability: full references must self-validate at
    100%, and the cross-input accuracy band is recorded."""
    result = next(r for r in matrix_results if r.workload == name)

    def summarize():
        return (result.self_validation.full_accuracy, result.min_accuracy,
                result.mean_accuracy, result.max_unexercised)

    self_full, lo, mean, unexercised = benchmark.pedantic(
        summarize, rounds=1, iterations=1
    )
    assert self_full == 1.0
    assert 0.0 <= lo <= mean <= 1.0
    benchmark.extra_info["min_accuracy"] = round(lo, 4)
    benchmark.extra_info["mean_accuracy"] = round(mean, 4)
    benchmark.extra_info["max_unexercised"] = unexercised


def test_emit_stability_table(matrix_results, results_dir, benchmark):
    """Record the suite-wide stability table."""
    text = benchmark.pedantic(
        format_stability_table, args=(matrix_results,), rounds=1, iterations=1
    )
    write_result(results_dir, "validate_stability.txt", text)
    assert all(r.passes() for r in matrix_results)


def test_parallel_matrix_wallclock(results_dir):
    """``validate_suite(jobs=N)`` must beat the serial matrix wall-clock
    (requires more than one CPU; fan-out cannot win on a single core)."""
    if QUICK:
        pytest.skip("quick mode: wall-clock comparison skipped")
    config = PipelineConfig(cache=False)
    clear_caches()
    start = time.perf_counter()
    serial = validate_suite(jobs=1, config=config)
    serial_time = time.perf_counter() - start

    cpus = os.cpu_count() or 1
    jobs = min(4, cpus)
    clear_caches()
    start = time.perf_counter()
    parallel = validate_suite(jobs=jobs, config=config)
    parallel_time = time.perf_counter() - start

    assert parallel == serial  # same matrix regardless of fan-out
    cells = sum(r.scenario_count for r in serial)
    write_result(
        results_dir, "validate_parallel_matrix.txt",
        f"validation matrix ({cells} workload x scenario cells) "
        f"serial: {serial_time:.2f}s, jobs={jobs}: {parallel_time:.2f}s "
        f"({serial_time / parallel_time:.2f}x) on {cpus} CPU(s)",
    )
    if cpus == 1:
        pytest.skip("single-CPU host: parallel fan-out cannot beat serial")
    assert parallel_time < serial_time, (
        f"parallel matrix ({parallel_time:.2f}s) did not beat serial "
        f"({serial_time:.2f}s) with jobs={jobs}"
    )
