"""Cold-vs-warm suite wall-clock through the disk artifact store.

The paper's pitch is that profile-based model extraction is a one-time
cost amortized over many optimization runs. The disk-backed
:class:`~repro.store.ArtifactStore` makes that hold across process
boundaries, so these benches measure the amortization directly with real
CLI subprocesses sharing one cache directory:

* a **cold** suite run against an empty store (profiles everything and
  publishes the artifacts), then
* a **warm** rerun (every extraction served from disk — zero simulations,
  asserted via the stderr cache counters), which must produce
  byte-identical tables.

``CACHE_BENCH_QUICK=1`` restricts the suite to two workloads for CI
smoke runs.
"""

import os
import re
import subprocess
import sys
import time
from pathlib import Path

from benchmarks.conftest import write_result

QUICK = os.environ.get("CACHE_BENCH_QUICK") == "1"
NAMES: tuple[str, ...] = ("adpcm", "gsm") if QUICK else ()
REPO_ROOT = Path(__file__).resolve().parents[1]


def _run_suite(cache_dir, *extra: str):
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src + (os.pathsep + existing if existing else "")
    start = time.perf_counter()
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "suite", *NAMES,
         "--cache-dir", str(cache_dir), *extra],
        capture_output=True, text=True, env=env, cwd=REPO_ROOT,
    )
    elapsed = time.perf_counter() - start
    assert proc.returncode == 0, proc.stderr
    return proc, elapsed


def _extraction_counters(stderr: str) -> tuple[int, int]:
    match = re.search(r"cache\[extraction\]: (\d+) hits, (\d+) misses",
                      stderr)
    assert match, f"no extraction counters in: {stderr!r}"
    return int(match.group(1)), int(match.group(2))


def test_cold_vs_warm_suite(results_dir, tmp_path):
    from repro.workloads.registry import workload_names

    expected = len(NAMES) if NAMES else len(workload_names())
    cache_dir = tmp_path / "cache"

    cold, cold_time = _run_suite(cache_dir)
    warm, warm_time = _run_suite(cache_dir)

    # The amortization claim, checked exactly: the warm rerun simulates
    # nothing (every extraction is a disk hit) and reports are
    # byte-identical to the cold run.
    assert cold.stdout == warm.stdout
    hits, misses = _extraction_counters(warm.stderr)
    assert (hits, misses) == (expected, 0)

    ratio = cold_time / warm_time
    write_result(
        results_dir, "cache_warmup.txt",
        f"suite cold: {cold_time:.2f}s, warm: {warm_time:.2f}s "
        f"({ratio:.1f}x) over {expected} workload(s)"
        + (" [quick]" if QUICK else ""),
    )
    assert warm_time < cold_time, (
        f"warm suite ({warm_time:.2f}s) did not beat cold ({cold_time:.2f}s)"
    )


def test_warm_parallel_profiles_feed_serial_rerun(results_dir, tmp_path):
    """Fan-out workers and later invocations share one store: a parallel
    cold run populates it, and a serial warm rerun simulates nothing."""
    from repro.workloads.registry import workload_names

    expected = len(NAMES) if NAMES else len(workload_names())
    cache_dir = tmp_path / "cache"

    cold, cold_time = _run_suite(cache_dir, "--jobs", "2")
    warm, warm_time = _run_suite(cache_dir)

    assert cold.stdout == warm.stdout
    hits, misses = _extraction_counters(warm.stderr)
    assert (hits, misses) == (expected, 0)
    write_result(
        results_dir, "cache_warmup_parallel.txt",
        f"suite cold (jobs=2): {cold_time:.2f}s, warm serial: "
        f"{warm_time:.2f}s over {expected} workload(s)"
        + (" [quick]" if QUICK else ""),
    )
