"""Cache co-simulation benchmarks: sink throughput and matrix scaling.

Two claims are measured:

* the streaming :class:`~repro.cachesim.sink.CacheSink` keeps up with
  the engines — simulated cache **accesses/sec** over a live run, with
  zero trace materialization (the sink rides the batched protocol); and
* the hierarchy matrix scales over the shared fan-out machinery —
  **serial vs parallel** wall-clock of a cold ``hier_suite`` run (the
  speedup assertion is skipped on single-CPU hosts, like
  ``bench_scaling``).

``HIER_BENCH_QUICK=1`` restricts both to a two-workload subset for CI
smoke runs.
"""

import os
import time

from benchmarks.conftest import write_result

from repro.cachesim.model import CacheConfig, CacheHierarchy
from repro.cachesim.sink import CacheSink
from repro.pipeline import (
    HierarchyConfig,
    PipelineConfig,
    clear_caches,
    hier_suite,
)
from repro.sim.machine import compile_program, run_compiled
from repro.workloads.registry import MIBENCH_WORKLOADS, workload_names

QUICK = os.environ.get("HIER_BENCH_QUICK") == "1"
NAMES: tuple[str, ...] = ("adpcm", "gsm") if QUICK else tuple(workload_names())
#: Cache-config axis of the benchmarked matrix (kept small: the point is
#: the fan-out, not an exhaustive sweep).
SWEEP = (CacheConfig(line_bytes=16, sets=16, ways=1),)


def test_streaming_sink_throughput(results_dir):
    """Accesses/sec through the cache sink on a live engine run."""
    name = "gsm" if not QUICK else "adpcm"
    compiled = compile_program(MIBENCH_WORKLOADS[name].source)
    sink = CacheSink(CacheHierarchy(CacheConfig()))
    start = time.perf_counter()
    run_compiled(compiled, sinks=(sink,))
    elapsed = time.perf_counter() - start
    result = sink.finish()
    accesses = result.accesses
    rate = accesses / elapsed
    write_result(
        results_dir, "hier_throughput.txt",
        f"cache sink ({name}): {accesses} accesses in {elapsed:.2f}s "
        f"= {rate:,.0f} accesses/sec, L1 miss {result.l1_miss_rate:.1%}"
        + (" [quick]" if QUICK else ""),
    )
    assert accesses > 0
    # Generous floor: streaming simulation must not be orders of
    # magnitude off the engines' own pace.
    assert rate > 10_000, f"cache sink too slow: {rate:,.0f} accesses/sec"


def test_serial_vs_parallel_matrix(results_dir, tmp_path):
    """Cold hierarchy-matrix wall-clock, 1 worker vs CPU-count workers."""
    def run(jobs, cache_dir):
        clear_caches()
        config = PipelineConfig(
            cache_dir=str(cache_dir),
            hierarchy=HierarchyConfig(enabled=True, sweep=SWEEP),
        )
        start = time.perf_counter()
        cells = hier_suite(NAMES, jobs=jobs, config=config)
        return cells, time.perf_counter() - start

    serial_cells, serial_time = run(1, tmp_path / "serial")
    parallel_cells, parallel_time = run(0, tmp_path / "parallel")

    assert serial_cells == parallel_cells
    cpus = os.cpu_count() or 1
    ratio = serial_time / parallel_time if parallel_time else float("inf")
    write_result(
        results_dir, "hier_matrix_scaling.txt",
        f"hier matrix ({len(serial_cells)} cells over {len(NAMES)} "
        f"workloads): serial {serial_time:.2f}s, parallel ({cpus} cpus) "
        f"{parallel_time:.2f}s ({ratio:.1f}x)"
        + (" [quick]" if QUICK else ""),
    )
    if cpus >= 2 and not QUICK:
        assert parallel_time < serial_time, (
            f"parallel matrix ({parallel_time:.2f}s) did not beat serial "
            f"({serial_time:.2f}s) on a {cpus}-cpu host"
        )


def test_warm_matrix_is_free(results_dir, tmp_path):
    """A warm rerun of the same matrix must be served entirely from the
    artifact store — the amortization the subsystem promises."""
    config = PipelineConfig(
        cache_dir=str(tmp_path / "store"),
        hierarchy=HierarchyConfig(enabled=True),
    )
    clear_caches()
    start = time.perf_counter()
    cold = hier_suite(NAMES, config=config)
    cold_time = time.perf_counter() - start

    clear_caches()  # memory gone; only the disk store remains
    start = time.perf_counter()
    warm = hier_suite(NAMES, config=config)
    warm_time = time.perf_counter() - start

    assert warm == cold
    ratio = cold_time / warm_time if warm_time else float("inf")
    write_result(
        results_dir, "hier_warm_rerun.txt",
        f"hier matrix cold: {cold_time:.2f}s, warm: {warm_time:.2f}s "
        f"({ratio:.1f}x) over {len(cold)} cells"
        + (" [quick]" if QUICK else ""),
    )
    assert warm_time < cold_time
