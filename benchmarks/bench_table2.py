"""Table II — loops and references converted into FORAY form.

Regenerates the paper's Table II (model loop/reference counts and the
share not in source FORAY form) plus the headline "2x more analyzable
references" metric. The timed portion is the static baseline + coverage
join, which is the part a compiler would re-run per build.
"""

import pytest

from benchmarks.conftest import write_result
from repro.analysis.coverage import table2_coverage
from repro.analysis.report import format_table2, summarize_headline
from repro.staticfar.detector import detect
from repro.workloads.registry import workload_names


@pytest.mark.parametrize("name", workload_names())
def test_static_baseline_and_join(benchmark, suite_reports, name):
    report = suite_reports[name]
    program = report.extraction.compiled.program

    def run():
        static_result = detect(program)
        return table2_coverage(name, report.model, static_result)

    row = benchmark(run)
    assert row.refs_in_model >= row.refs_in_source_form
    benchmark.extra_info["refs_not_in_form_pct"] = round(
        row.refs_not_in_source_form_pct
    )


def test_emit_table2_and_headline(suite_reports, results_dir, benchmark):
    rows = [report.table2 for report in suite_reports.values()]
    text = benchmark(format_table2, rows)
    headline = summarize_headline(rows)
    write_result(results_dir, "table2.txt", text + "\n\n" + headline)

    # The paper's qualitative anchors must hold.
    by_name = {row.name: row for row in rows}
    assert by_name["fft"].refs_not_in_source_form_pct == 0.0
    assert by_name["adpcm"].refs_not_in_source_form_pct == 100.0
    total_model = sum(row.refs_in_model for row in rows)
    total_static = sum(row.refs_in_source_form for row in rows)
    assert total_model / max(1, total_static) > 1.3
