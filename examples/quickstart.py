"""Quickstart: extract a FORAY model from the paper's Figure 4 example.

Runs the complete Phase I pipeline on the exact program of the paper's
Figure 4(a) — a `while` loop with a strided pointer walk — and prints:

1. the annotated source (Figure 4b),
2. the head of the profiling trace (Figure 4c),
3. the extracted FORAY model (Figure 4d), whose index expression should
   read ``... + 1*i_for + 103*i_while`` exactly as published.

Run:  python examples/quickstart.py
"""

from repro.foray.emitter import emit_model
from repro.foray.extractor import ForayExtractor
from repro.foray.filters import FilterConfig
from repro.lang.printer import to_source
from repro.sim.machine import compile_program, run_compiled
from repro.sim.trace import TraceCollector, format_trace

SOURCE = """
int main() {
    char q[10000];
    char *ptr = q;
    int i, t1 = 98;
    while (t1 < 100) {
        t1++;
        ptr += 100;
        for (i = 40; i > 37; i--) {
            *ptr++ = i * i % 256;
        }
    }
    return 0;
}
"""


def main() -> None:
    compiled = compile_program(SOURCE)

    print("=== Annotated program (paper Figure 4b) ===")
    print(to_source(compiled.program))

    # Attach both a trace collector (to show the raw trace) and the
    # FORAY-GEN extractor (running online, as the paper recommends).
    collector = TraceCollector()
    extractor = ForayExtractor(
        compiled.checkpoint_map,
        # The example makes only 6 accesses; relax the production filter.
        FilterConfig(nexec=1, nloc=1),
    )
    run_compiled(compiled, sinks=(collector, extractor))

    print("=== Profiling trace (paper Figure 4c) ===")
    print(format_trace(collector.records))

    model = extractor.finish()
    print("=== FORAY model (paper Figure 4d) ===")
    print(emit_model(model))

    (ref,) = model.references
    coefficients = ref.expression.used_coefficients()
    print(f"recovered coefficients: {coefficients}  (paper: (1, 103))")
    assert coefficients == (1, 103)


if __name__ == "__main__":
    main()
