"""The complete design flow of the paper's Figure 3 (Phases I + II).

Takes a pointer-walking legacy program that static SPM analysis cannot
touch at all, extracts its FORAY model, runs the reuse analysis and buffer
allocation for a range of scratch-pad sizes, and prints the transformed
FORAY-model code a designer would back-annotate (Phase III, manual in the
paper).

Run:  python examples/spm_flow.py
"""

from repro.pipeline import PipelineConfig, SpmConfig, full_flow
from repro.spm.explore import pareto_frontier

# A legacy-style kernel: a filter table re-read for every output row,
# accessed exclusively through walking pointers inside while loops.
SOURCE = """
int taps[128];
int samples[4096];
int output[4096];
int main() {
    int row = 0;
    read_samples(samples, 4096);
    while (row < 32) {
        int *op = output + 128 * row;
        int n = 0;
        while (n < 128) {
            int *tp = taps;
            int *sp = samples + 128 * row;
            int acc = 0;
            int k = 0;
            while (k < 16) {
                acc += *tp++ * *sp++;
                k++;
            }
            *op++ = acc / 16;
            n++;
        }
        row++;
    }
    return 0;
}
"""


def main() -> None:
    config = PipelineConfig(spm=SpmConfig(spm_bytes=2048, sweep=True))
    flow = full_flow("fir", SOURCE, config=config)
    report = flow.report

    print("=== Phase I: FORAY-GEN ===")
    print(f"model references: {report.model.reference_count} "
          f"(statically analyzable: {report.table2.refs_in_source_form})")
    print(report.extraction.foray_source)

    print("=== Phase II: design space exploration ===")
    print(flow.graph.describe())
    print()
    frontier = {p.capacity_bytes for p in pareto_frontier(flow.exploration)}
    print(f"{'SPM bytes':>10} {'buffers':>8} {'used':>6} {'saved nJ':>12} "
          f"{'saving':>8}  pareto")
    for point in flow.exploration:
        marker = "*" if point.capacity_bytes in frontier else ""
        print(
            f"{point.capacity_bytes:>10} {point.buffer_count:>8} "
            f"{point.used_bytes:>6} {point.benefit_nj:>12.0f} "
            f"{point.saving_fraction:>7.1%}  {marker}"
        )

    print()
    print("=== Phase II output: transformed FORAY model (2 KiB SPM) ===")
    print(flow.transformed_source)
    print("Phase III (manual in the paper): back-annotate the buffers above "
          "into the legacy source.")


if __name__ == "__main__":
    main()
