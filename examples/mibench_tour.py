"""Run the full mini-MiBench evaluation and print the paper's three tables.

This regenerates the data behind Tables I, II and III side by side with
the paper's published numbers (absolute counts differ — the workloads are
scaled-down counterparts; see EXPERIMENTS.md).

Run:  python examples/mibench_tour.py           (all six benchmarks, ~30 s)
      python examples/mibench_tour.py adpcm fft (a subset)
"""

import sys

from repro.analysis.report import (
    format_table1,
    format_table2,
    format_table3,
    summarize_headline,
)
from repro.pipeline import run_suite


def main() -> None:
    names = tuple(sys.argv[1:]) or None
    reports = run_suite(names)

    print("=== Table I: benchmark complexity and loop distribution ===")
    print(format_table1([r.census for r in reports]))
    print()
    print("=== Table II: loops and references converted into FORAY form ===")
    print(format_table2([r.table2 for r in reports]))
    print()
    print("=== Table III: memory behaviour of the FORAY models ===")
    print(format_table3([r.table3 for r in reports]))
    print()
    print("=== Headline ===")
    print(summarize_headline([r.table2 for r in reports]))


if __name__ == "__main__":
    main()
