"""Partial affine expressions (paper Figure 7).

Two programs whose access addresses cannot be described by one affine
function:

* ``fig7a`` — a local array reallocated at varying stack depths, so the
  base address changes between calls;
* ``fig7b`` — a global array indexed through a data-dependent offset
  parameter.

In both cases FORAY-GEN recovers a *partial* affine expression: the inner
loop iterators are captured exactly while the constant term is marked as
context-dependent — which still lets an SPM optimizer buffer the data
reused inside the function.

Run:  python examples/partial_affine.py
"""

from repro.foray.emitter import emit_model
from repro.foray.filters import FilterConfig
from repro.pipeline import extract_foray_model
from repro.workloads.figures import FIG7A, FIG7B


def show(workload) -> None:
    print(f"=== {workload.name}: {workload.description} ===")
    result = extract_foray_model(workload.source, FilterConfig(nexec=1, nloc=1))
    model = result.model

    for ref in model.references:
        expr = ref.expression
        kind = "full" if ref.is_full else "partial"
        print(
            f"  {ref.array_name}: nest depth {ref.nest_depth}, "
            f"M={expr.num_iterators} ({kind}), "
            f"index = {ref.index_text()}"
            + ("" if ref.is_full else "   /* const varies with outer context */")
        )
    partial = model.partial_references()
    print(f"  -> {len(partial)} partial of {len(model.references)} references")
    print()
    print(emit_model(model))
    print()


def main() -> None:
    show(FIG7A)
    show(FIG7B)


if __name__ == "__main__":
    main()
