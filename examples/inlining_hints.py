"""Function-duplication hints (paper Figure 9 / Section 4).

The FORAY model has no function hierarchy — a loop reached through two
call sites appears as two separate loop nests. When the access patterns of
those contexts differ, FORAY-GEN suggests duplicating the function so each
call site can be optimized separately.

Run:  python examples/inlining_hints.py
"""

from repro.foray.hints import inlining_hints
from repro.pipeline import extract_foray_model
from repro.workloads.figures import FIG9


def main() -> None:
    print(FIG9.source)
    result = extract_foray_model(FIG9.source)
    model = result.model

    print("=== Model references (one per dynamic context) ===")
    for ref in model.references:
        loops = " > ".join(loop.name for loop in ref.loop_path)
        print(f"  {ref.array_name} under [{loops}]: {ref.index_text()}")

    print()
    print("=== Inlining hints ===")
    for hint in inlining_hints(model, result.compiled.program):
        print("  " + hint.describe())


if __name__ == "__main__":
    main()
