"""mini-mpeg2 — scaled-down counterpart of MediaBench ``mpeg2`` (decoder).

MediaBench's mpeg2dec is the canonical motion-compensation workload: the
reference frame is read through half-pel interpolation windows whose
offsets come from per-macroblock motion vectors, and a small shared
residual block is re-added to every 8x8 block — the classic scratch-pad
reuse pattern this repo's Phase II exists to exploit.

Reproduced shapes:

* a BMP-style reference-frame load (``while`` row loop wrapping a
  pointer-walk ``for`` loop, as in the paper's Figure 1 bottom);
* macroblock loops bounded by runtime sequence parameters
  (``seq.mb_w``/``seq.mb_h``), invisible to static FORAY-form analysis;
* half-pel motion compensation whose reference-frame reads are affine in
  the 16x16 block iterators but shift with the motion vector each call —
  dynamically analyzable, constant-term adjusted (partial) references;
* a shared 8x8 residual block re-read for all four luma blocks of every
  macroblock — the high-reuse SPM buffer candidate;
* a frame SAD pass driven by a ``do`` row loop (not canonical in source).
"""

from __future__ import annotations

import string

from repro.workloads.base import InputScenario, Workload, scenario_params

SOURCE_TEMPLATE = """
/* mini-mpeg2: one 48x32 P-frame decode: MC + residual add + frame SAD. */

struct seq_params {
    int width;
    int height;
    int mb_w;
    int mb_h;
};

struct seq_params seq;

char ref_frame[3072];   /* 64-byte row stride, 48 rows */
char cur_frame[3072];
int  residual[64];      /* shared 8x8 residual block (IDCT output) */
int  mvx[8];
int  mvy[8];
int  sad_total;
int  mb_count;

void make_reference() {
    /* Reference-frame load: a while row loop wrapping a pointer walk. */
    int row = 0;
    int i;
    char *p = ref_frame;
    while (row < 48) {
        for (i = 0; i < 64; i++) {
            *p++ = (char)((row * ${row_k} + i * ${col_k}) % 200);
        }
        row++;
    }
}

void make_residual() {
    int i;
    for (i = 0; i < 64; i++) {
        residual[i] = (i % 8) - 4;
    }
}

void estimate_motion() {
    /* Runtime-bounded macroblock loop: invisible to static analysis.
       Vectors stay in {0,1} so interpolation windows remain in frame. */
    int mb;
    for (mb = 0; mb < seq.mb_w * seq.mb_h; mb++) {
        mvx[mb] = mb % ${mv_mod};
        mvy[mb] = (mb / seq.mb_w) % ${mv_mod};
    }
}

void compensate(int mbr, int mbc) {
    /* Half-pel horizontal interpolation over one 16x16 macroblock: two
       reference-frame reads per pixel, offset by the motion vector. */
    int y, x;
    int mb = seq.mb_w * mbr + mbc;
    int dx = mvx[mb];
    int dy = mvy[mb];
    for (y = 0; y < 16; y++) {
        for (x = 0; x < 16; x++) {
            int base = 64 * (16 * mbr + y + dy) + 16 * mbc + x + dx;
            cur_frame[64 * (16 * mbr + y) + 16 * mbc + x] =
                (char)((ref_frame[base] + ref_frame[base + 1]) / 2);
        }
    }
}

void add_residual(int mbr, int mbc) {
    /* All four 8x8 blocks of the macroblock share one residual block:
       64 words re-read four times per macroblock (the SPM candidate). */
    int b, u, v;
    for (b = 0; b < 4; b++) {
        int by = 16 * mbr + 8 * (b / 2);
        int bx = 16 * mbc + 8 * (b % 2);
        for (u = 0; u < 8; u++) {
            for (v = 0; v < 8; v++) {
                int pix = cur_frame[64 * (by + u) + bx + v]
                          + residual[8 * u + v];
                if (pix < 0) {
                    pix = 0;
                }
                if (pix > 199) {
                    pix = 199;
                }
                cur_frame[64 * (by + u) + bx + v] = (char)pix;
            }
        }
    }
}

int frame_sad() {
    /* Frame SAD: a do row loop (legacy style, not canonical in source). */
    int row = 0;
    int col;
    int sad = 0;
    do {
        for (col = 0; col < 48; col++) {
            int d = cur_frame[64 * row + col] - ref_frame[64 * row + col];
            sad += d < 0 ? -d : d;
        }
        row++;
    } while (row < 32);
    return sad;
}

int main() {
    int mbr, mbc;
    seq.width = 48;
    seq.height = 32;
    seq.mb_w = 3;
    seq.mb_h = 2;

    make_reference();
    make_residual();
    estimate_motion();
    for (mbr = 0; mbr < seq.mb_h; mbr++) {
        for (mbc = 0; mbc < seq.mb_w; mbc++) {
            compensate(mbr, mbc);
            add_residual(mbr, mbc);
            mb_count++;
        }
    }
    sad_total = frame_sad();
    printf("mpeg2 mbs %d sad %d\\n", mb_count, sad_total);
    return 0;
}
"""

_NOMINAL_PARAMS = scenario_params(row_k=3, col_k=5, mv_mod=2)

SOURCE = string.Template(SOURCE_TEMPLATE).substitute(dict(_NOMINAL_PARAMS))

SCENARIOS = (
    InputScenario("nominal", "textured reference frame, mixed motion "
                             "(legacy input)",
                  params=_NOMINAL_PARAMS),
    InputScenario("still-scene", "zero motion vectors: MC windows never "
                                 "shift",
                  params=scenario_params(row_k=3, col_k=5, mv_mod=1)),
    InputScenario("flat-frame", "constant reference frame: residual "
                                "dominates",
                  params=scenario_params(row_k=0, col_k=0, mv_mod=2)),
)

WORKLOAD = Workload(
    name="mpeg2",
    source=SOURCE,
    description="48x32 P-frame decode: half-pel MC, residual add, frame SAD",
    paper_counterpart="mpeg2/mpeg2dec (MediaBench video; beyond the paper's "
                      "MiBench six)",
    source_template=SOURCE_TEMPLATE,
    scenarios=SCENARIOS,
)
