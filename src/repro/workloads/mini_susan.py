"""mini-susan — scaled-down counterpart of MiBench ``susan`` (image
recognition: smoothing + corner/edge response).

Shape targets from the paper:

* Table I: a small loop count with roughly 4:1 for:while mix;
* Table II: most model *loops* not in source FORAY form (78% in the paper)
  — SUSAN passes its image geometry around as function parameters, so even
  its ``for`` loops have statically unknown bounds — while about half the
  model *references* are already FORAY-form (the paper: 50%);
* Table III: the model captures the majority of all accesses (66% in the
  paper, the highest of the suite) because the mask convolutions dominate.
"""

from __future__ import annotations

import string

from repro.workloads.base import InputScenario, Workload, scenario_params

SOURCE_TEMPLATE = """
/* mini-susan: 48x48 smoothing + USAN response + thresholding. */

char image[2304];
char smoothed[2304];
int response[2304];
char lut[256];
int corners;
int edge_acc;

/* Brightness LUT and synthetic image use literal bounds: these loops and
   references are FORAY-form in the source. */
void build_lut() {
    int i;
    for (i = 0; i < 256; i++) {
        lut[i] = (char)(100 - (i > 100 ? 100 : i) / 2);
    }
}

void make_image() {
    int i;
    for (i = 0; i < 2304; i++) {
        image[i] = (char)(((i / 48) * ${row_gain} + (i % 48) * ${col_gain} + i % ${noise_mod}) % 200);
    }
}

/* SUSAN-style smoothing: geometry comes in as parameters, the walk is a
   pointer scan — invisible to static analysis, regular at runtime. */
void smooth(char *in, char *out, int width, int height, int mask) {
    int dy, dx;
    char *ip = in + width + 1;
    char *op = out + width + 1;
    int row = height - 2;
    while (row > 0) {
        int col = width - 2;
        while (col > 0) {
            int total = 0;
            for (dy = 0; dy < mask; dy++) {
                for (dx = 0; dx < mask; dx++) {
                    total += *(ip + width * (dy - 1) + (dx - 1));
                }
            }
            *op = (char)(total / (mask * mask));
            ip++;
            op++;
            col--;
        }
        ip += 2;
        op += 2;
        row--;
    }
}

/* USAN response: for loops with parameter bounds, explicit indexing that
   multiplies a parameter (width) into the subscript — affine at runtime,
   not statically. */
void usan(char *in, int *resp, int width, int height) {
    int y, x;
    for (y = 1; y < height - 1; y++) {
        for (x = 1; x < width - 1; x++) {
            int center = in[width * y + x];
            int count = 0;
            count += lut[(in[width * y + x - 1] - center) & 255];
            count += lut[(in[width * (y - 1) + x] - center) & 255];
            resp[width * y + x] = count;
        }
    }
}

/* Edge accumulation over the interior, literal bounds: FORAY form. */
void edges() {
    int i;
    int acc = 0;
    for (i = 48; i < 2304; i++) {
        acc += response[i] - response[i - 48];
    }
    edge_acc = acc;
}

/* Global brightness statistic, literal bounds: FORAY form. */
int brightness() {
    int i;
    int total = 0;
    for (i = 0; i < 2304; i++) {
        total += smoothed[i];
    }
    return total / 2304;
}

int main() {
    build_lut();
    make_image();
    smooth(image, smoothed, 48, 48, 3);
    usan(smoothed, response, 48, 48);
    edges();
    int mean = brightness();

    /* Threshold scan: pointer walk in a while loop. */
    int *rp = response;
    int found = 0;
    int remaining = 2304;
    while (remaining > 0) {
        if (*rp > 250) {
            found++;
        }
        rp++;
        remaining--;
    }
    corners = found;
    printf("susan corners %d edges %d mean %d\\n", found, edge_acc, mean);
    return 0;
}
"""

_NOMINAL_PARAMS = scenario_params(row_gain=5, col_gain=3, noise_mod=7)

SOURCE = string.Template(SOURCE_TEMPLATE).substitute(dict(_NOMINAL_PARAMS))

SCENARIOS = (
    InputScenario("nominal", "textured gradient scene (legacy input)",
                  params=_NOMINAL_PARAMS),
    InputScenario("flat-scene", "near-constant image: responses below "
                                "threshold everywhere",
                  params=scenario_params(row_gain=0, col_gain=0,
                                         noise_mod=7)),
    InputScenario("steep-gradient", "high-frequency scene: dense corner "
                                    "responses",
                  params=scenario_params(row_gain=23, col_gain=11,
                                         noise_mod=13)),
)

WORKLOAD = Workload(
    name="susan",
    source=SOURCE,
    description="48x48 SUSAN-style smoothing, USAN response, thresholding",
    paper_counterpart="susan (MiBench automotive)",
    source_template=SOURCE_TEMPLATE,
    scenarios=SCENARIOS,
)
