"""mini-jpeg — scaled-down counterpart of MiBench ``jpeg`` (cjpeg encoder).

Reproduces the paper's motivating code shapes (its Figure 1 is excerpted
from this benchmark):

* the ``*last_bitpos_ptr++`` initialization walk inside nested ``for``
  loops (Figure 1 top),
* the ``while (currow < numrows)`` row loop advancing an index that is not
  the loop iterator (Figure 1 bottom),
* loop bounds pulled from a config struct (``cinfo->num_components``), so
  the loops are not statically canonical,
* 8x8 DCT blocks with literal-bound loops over a local workspace (the
  statically visible FORAY-form part),
* zigzag reordering through an index table and variable-length entropy
  packing (irregular — correctly excluded from the model).
"""

from __future__ import annotations

import string

from repro.workloads.base import InputScenario, Workload, scenario_params

SOURCE_TEMPLATE = """
/* mini-jpeg: 48x48 3-component encode: level shift, DCT, quant, entropy. */

struct jpeg_config {
    int width;
    int height;
    int num_components;
    int quality;
};

struct jpeg_config cinfo;

char input[6912];       /* 48*48*3 interleaved RGB */
char component[2304];   /* one extracted component plane */
int  coef[2304];        /* DCT coefficients of one plane  */
int  quanttbl[64];
int  zigzag[64];
int  last_bitpos[192];  /* 3 components x 64 coefficients */
char bitstream[8192];
int  bits_used;
int  total_value;

void make_input() {
    /* BMP-style row reader: a while row loop wrapping a pointer-walk for
       loop (the paper's Figure 1, bottom shape). */
    int currow = 0;
    int i;
    char *p = input;
    while (currow < 48) {
        for (i = 0; i < 144; i++) {
            *p++ = (char)((currow * ${row_step} + i * ${col_step}) % ${modulus});
        }
        currow++;
    }
}

void init_tables() {
    int i, k;
    /* Quant table: canonical literal loop (FORAY form in the source). */
    for (i = 0; i < 64; i++) {
        quanttbl[i] = 1 + (i / 8) + (i % 8) + 50 / cinfo.quality;
    }
    /* Zigzag order: table length derived from runtime config. */
    k = 0;
    for (i = 0; i < cinfo.quality + 39; i++) {
        zigzag[i] = (k * 5 + 3) % 64;
        k = zigzag[i];
    }
    /* The paper's Figure 1 (top): initialize last_bitpos via a walking
       pointer under a struct-bound loop. */
    int ci, coefi;
    int *last_bitpos_ptr = last_bitpos;
    for (ci = 0; ci < cinfo.num_components; ci++) {
        for (coefi = 0; coefi < 64; coefi++) {
            *last_bitpos_ptr++ = -1;
        }
    }
}

void extract_component(int comp) {
    /* Strided gather from interleaved input, written legacy-style with
       while loops and config-struct bounds. */
    int r = 0;
    while (r < cinfo.height) {
        int c = 0;
        while (c < cinfo.width) {
            component[48 * r + c] = input[3 * (48 * r + c) + comp];
            c++;
        }
        r++;
    }
}

void dct_block(int br, int bc) {
    int workspace[64];
    int u, v, x, y;
    /* Load + level shift: literal 8x8 loops, affine in the source only up
       to the block offset parameters (dynamically fully affine). */
    for (y = 0; y < 8; y++) {
        for (x = 0; x < 8; x++) {
            workspace[8 * y + x] = component[48 * (8 * br + y) + 8 * bc + x] - 128;
        }
    }
    /* Integer "DCT": separable butterfly-ish passes over the workspace;
       literal bounds, statically FORAY-form. */
    for (y = 0; y < 8; y++) {
        for (x = 0; x < 4; x++) {
            int a = workspace[8 * y + x];
            int b = workspace[8 * y + 7 - x];
            workspace[8 * y + x] = a + b;
            workspace[8 * y + 7 - x] = (a - b) * (x + 1);
        }
    }
    for (x = 0; x < 8; x++) {
        for (y = 0; y < 4; y++) {
            int a = workspace[8 * y + x];
            int b = workspace[8 * (7 - y) + x];
            workspace[8 * y + x] = a + b;
            workspace[8 * (7 - y) + x] = (a - b) * (y + 1);
        }
    }
    /* Quantize into the coefficient plane. */
    for (u = 0; u < 8; u++) {
        for (v = 0; v < 8; v++) {
            coef[48 * (8 * br + u) + 8 * bc + v] =
                workspace[8 * u + v] / quanttbl[8 * u + v];
        }
    }
}

void entropy_encode() {
    /* Zigzag gather (table-indexed: irregular) + variable-length pack:
       while loop over blocks, do loop emitting bits. */
    int block = 0;
    int k;
    char *out = bitstream;
    int bitbuf = 0;
    int nbits = 0;
    while (block < 36) {
        int br = block / 6;
        int bc = block % 6;
        for (k = 0; k < 64; k++) {
            int zz = zigzag[k];
            int value = coef[48 * (8 * br + zz / 8) + 8 * bc + zz % 8];
            int mag = value < 0 ? -value : value;
            do {
                bitbuf = bitbuf * 2 + mag % 2;
                mag = mag / 2;
                nbits++;
                if (nbits == 8) {
                    *out++ = (char)bitbuf;
                    bitbuf = 0;
                    nbits = 0;
                }
            } while (mag > 0);
            total_value += value;
        }
        block++;
    }
    bits_used = (int)(out - bitstream);
}

int main() {
    int comp, b;
    cinfo.width = 48;
    cinfo.height = 48;
    cinfo.num_components = 3;
    cinfo.quality = 25;

    make_input();
    init_tables();
    for (comp = 0; comp < cinfo.num_components; comp++) {
        extract_component(comp);
        for (b = 0; b < 36; b++) {
            dct_block(b / 6, b % 6);
        }
        entropy_encode();
    }
    /* Byte-stuffing scan over the produced bitstream (marker bytes). */
    char *bp = bitstream;
    int stuffed = 0;
    while (bp < bitstream + 2048) {
        if ((*bp & 255) == 255) {
            stuffed++;
        }
        bp++;
    }

    printf("jpeg bytes %d stuffed %d checksum %d\\n", bits_used, stuffed,
           total_value);
    return 0;
}
"""

_NOMINAL_PARAMS = scenario_params(row_step=7, col_step=3, modulus=255)

SOURCE = string.Template(SOURCE_TEMPLATE).substitute(dict(_NOMINAL_PARAMS))

SCENARIOS = (
    InputScenario("nominal", "diagonal gradient test image (legacy input)",
                  params=_NOMINAL_PARAMS),
    InputScenario("flat-image", "constant-black image: DC-only blocks",
                  params=scenario_params(row_step=0, col_step=0,
                                         modulus=255)),
    InputScenario("high-contrast", "steep co-prime gradients: busy spectra",
                  params=scenario_params(row_step=31, col_step=17,
                                         modulus=251)),
)

WORKLOAD = Workload(
    name="jpeg",
    source=SOURCE,
    description="48x48x3 JPEG-style encode: DCT blocks, quant, entropy pack",
    paper_counterpart="jpeg/cjpeg (MiBench consumer)",
    source_template=SOURCE_TEMPLATE,
    scenarios=SCENARIOS,
)
