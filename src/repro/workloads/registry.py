"""Registry of all workloads: the mini-MiBench programs (the paper's
six plus the MediaBench-style mpeg2) and the paper's figure examples."""

from __future__ import annotations

from repro.workloads import (
    mini_adpcm,
    mini_fft,
    mini_gsm,
    mini_jpeg,
    mini_lame,
    mini_mpeg2,
    mini_susan,
)
from repro.workloads.base import Workload
from repro.workloads.figures import ALL_FIGURES

#: The evaluation suite: the paper's six (in the paper's table order)
#: plus the MediaBench-style mpeg2 addition.
MIBENCH_WORKLOADS: dict[str, Workload] = {
    workload.name: workload
    for workload in (
        mini_jpeg.WORKLOAD,
        mini_lame.WORKLOAD,
        mini_susan.WORKLOAD,
        mini_fft.WORKLOAD,
        mini_gsm.WORKLOAD,
        mini_adpcm.WORKLOAD,
        mini_mpeg2.WORKLOAD,
    )
}

#: The figure examples, addressable by name too.
FIGURE_WORKLOADS: dict[str, Workload] = {fig.name: fig for fig in ALL_FIGURES}

ALL_WORKLOADS: dict[str, Workload] = {**MIBENCH_WORKLOADS, **FIGURE_WORKLOADS}


def workload_names() -> tuple[str, ...]:
    """Names of the mini-MiBench suite, in paper order."""
    return tuple(MIBENCH_WORKLOADS)


def get_workload(name: str) -> Workload:
    try:
        return ALL_WORKLOADS[name]
    except KeyError:
        known = ", ".join(sorted(ALL_WORKLOADS))
        raise KeyError(f"unknown workload {name!r}; known: {known}") from None
