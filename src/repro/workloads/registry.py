"""Registry of all workloads: the mini-MiBench programs (the paper's
six plus the MediaBench-style mpeg2), the paper's figure examples, and
the ``gen:`` namespace of seeded generated programs.

A ``gen:<profile>:<seed>`` name is not a table entry — it is a *recipe*:
the workload is generated on first lookup (deterministically, see
:mod:`repro.gen`) and memoized for the process lifetime. That makes the
generated population addressable by every front end that resolves
workloads by name (``suite``, ``validate``, ``hier``, ``static``)
without enumerating it anywhere.
"""

from __future__ import annotations

import difflib

from repro.workloads import (
    mini_adpcm,
    mini_fft,
    mini_gsm,
    mini_jpeg,
    mini_lame,
    mini_mpeg2,
    mini_susan,
)
from repro.workloads.base import Workload
from repro.workloads.figures import ALL_FIGURES

#: The evaluation suite: the paper's six (in the paper's table order)
#: plus the MediaBench-style mpeg2 addition.
MIBENCH_WORKLOADS: dict[str, Workload] = {
    workload.name: workload
    for workload in (
        mini_jpeg.WORKLOAD,
        mini_lame.WORKLOAD,
        mini_susan.WORKLOAD,
        mini_fft.WORKLOAD,
        mini_gsm.WORKLOAD,
        mini_adpcm.WORKLOAD,
        mini_mpeg2.WORKLOAD,
    )
}

#: The figure examples, addressable by name too.
FIGURE_WORKLOADS: dict[str, Workload] = {fig.name: fig for fig in ALL_FIGURES}

ALL_WORKLOADS: dict[str, Workload] = {**MIBENCH_WORKLOADS, **FIGURE_WORKLOADS}

#: Process-lifetime memo of generated workloads (generation is
#: deterministic, so memoization is purely a speed matter).
_GENERATED: dict[str, Workload] = {}


def workload_names() -> tuple[str, ...]:
    """Names of the mini-MiBench suite, in paper order."""
    return tuple(MIBENCH_WORKLOADS)


def _unknown_name_error(name: str) -> KeyError:
    known = sorted(ALL_WORKLOADS)
    close = difflib.get_close_matches(name, known, n=3, cutoff=0.5)
    hint = f"; did you mean {', '.join(close)}?" if close else ""
    return KeyError(
        f"unknown workload {name!r}{hint} (known: {', '.join(known)}; "
        "generated programs are addressed as gen:<profile>:<seed>, "
        "e.g. gen:small:42)")


def get_workload(name: str) -> Workload:
    """Resolve a workload name, generating ``gen:`` specs on demand.

    Unknown names raise a ``KeyError`` that lists near-miss suggestions
    and the full known set; malformed or unknown-profile ``gen:`` specs
    raise with a usage hint rather than a bare lookup failure.
    """
    found = ALL_WORKLOADS.get(name)
    if found is not None:
        return found
    cached = _GENERATED.get(name)
    if cached is not None:
        return cached
    if name.startswith("gen:") or name == "gen":
        from repro.gen import generate_program, parse_gen_spec

        try:
            profile, seed = parse_gen_spec(name)
        except (ValueError, KeyError) as error:
            message = error.args[0] if error.args else str(error)
            raise KeyError(message) from None
        workload = generate_program(seed, profile).workload
        _GENERATED[name] = workload
        return workload
    raise _unknown_name_error(name)


def find_workload(name: str) -> Workload | None:
    """Like :func:`get_workload` but ``None`` for unknown names.

    For callers that merely *check* whether a name is registered (e.g.
    the validation stage deciding whether a scenario matrix exists).
    """
    try:
        return get_workload(name)
    except KeyError:
        return None
