"""The paper's running examples (Figures 1, 4, 7 and 9) as MiniC programs.

These are the exact code shapes the paper uses to motivate and explain
FORAY-GEN; the test suite and the figure benchmarks extract FORAY models
from them and check the published outcomes (Figure 4's coefficients, the
partial expressions of Figure 7, the duplication hint of Figure 9).
"""

from __future__ import annotations

from repro.workloads.base import Workload

#: Figure 1 (top): jpeg-style pointer walk inside nested for loops.
#: The paper's FORAY model (Figure 2, top) is a 3x64 nest with coefficients
#: 4 (inner) and 256 (outer): ints written through a walking pointer with a
#: per-component gap.
FIG1A = Workload(
    name="fig1a",
    description="Figure 1 (top): *last_bitpos_ptr++ walk over components",
    source="""
struct jpeg_info {
    int num_components;
    int pad;
};

int last_bitpos[256];

int main() {
    struct jpeg_info info;
    info.num_components = 3;
    int *last_bitpos_ptr = last_bitpos;
    int ci, coefi;
    for (ci = 0; ci < info.num_components; ci++) {
        for (coefi = 0; coefi < 64; coefi++) {
            *last_bitpos_ptr++ = -1;
        }
    }
    return 0;
}
""",
)

#: Figure 1 (bottom): while/for row loop writing through an index that is
#: not the loop iterator. The paper's model (Figure 2, bottom) is a single
#: 16-iteration loop with coefficient 4.
FIG1B = Workload(
    name="fig1b",
    description="Figure 1 (bottom): while+for rowsperchunk loop",
    source="""
int result[64];

int main() {
    int numrows = 16;
    int rowsperchunk = 16;
    int workspace = 12345;
    int currow = 0;
    int i;
    while (currow < numrows) {
        for (i = rowsperchunk; i > 0; i--) {
            result[currow++] = workspace;
        }
    }
    return 0;
}
""",
)

#: Figure 4(a): the paper's end-to-end example. The expected FORAY model is
#:   for i_while in 0..2: for i_for in 0..3: A[base + 1*i_for + 103*i_while]
FIG4A = Workload(
    name="fig4a",
    description="Figure 4(a): while+for with a strided pointer walk",
    source="""
int main() {
    char q[10000];
    char *ptr = q;
    int i, t1 = 98;
    while (t1 < 100) {
        t1++;
        ptr += 100;
        for (i = 40; i > 37; i--) {
            *ptr++ = i * i % 256;
        }
    }
    return 0;
}
""",
)

#: Figure 7 (left): a local array reallocated on every call — the constant
#: term of foo's access changes per call, so only the iterators inside foo
#: form a (partial) affine expression.
FIG7A = Workload(
    name="fig7a",
    description="Figure 7 (left): reallocated local array => partial affine",
    source="""
int consume;

int foo(int salt) {
    int ret = 0;
    int A[100];
    int i, j;
    for (i = 0; i < 10; i++) {
        for (j = 0; j < 10; j++) {
            A[j + 10 * i] = salt + i + j;
        }
    }
    for (i = 0; i < 10; i++) {
        for (j = 0; j < 10; j++) {
            ret += A[j + 10 * i];
        }
    }
    return ret;
}

int bar(int depth, int salt) {
    /* Extra frames between calls move foo's locals around, like the
       allocator variation the paper describes. */
    int pad[32];
    pad[salt % 32] = depth;
    if (depth > 0) {
        return bar(depth - 1, salt) + pad[salt % 32];
    }
    return foo(salt);
}

int main() {
    int x, y, tmp = 0;
    for (x = 0; x < 10; x++) {
        for (y = 0; y < 10; y++) {
            tmp += bar(x % 3, x * 10 + y);
        }
    }
    consume = tmp;
    return 0;
}
""",
)

#: Figure 7 (right): a global array accessed at a data-dependent offset
#: passed into the function — again a partial affine expression.
FIG7B = Workload(
    name="fig7b",
    description="Figure 7 (right): data-dependent offset => partial affine",
    source="""
int A[4096];
int lines[10] = {0, 700, 140, 2100, 350, 2800, 490, 3500, 70, 630};
int consume;

int foo(int offset) {
    int ret = 0;
    int i, j;
    for (i = 0; i < 10; i++) {
        for (j = 0; j < 10; j++) {
            ret += A[j + 10 * i + offset];
        }
    }
    return ret;
}

int main() {
    int x, tmp = 0;
    for (x = 0; x < 10; x++) {
        tmp += foo(lines[x]);
    }
    consume = tmp;
    return 0;
}
""",
)

#: Figure 9: one function called from two loops with different access
#: patterns — FORAY-GEN's inlined model exposes both and hints that
#: duplicating foo() lets each call site be optimized separately.
FIG9 = Workload(
    name="fig9",
    description="Figure 9: two call sites with different access patterns",
    source="""
int A[1024];
int consume;

int foo(int offset) {
    int ret = 0;
    int i;
    for (i = 0; i < 10; i++) {
        ret += A[i + offset];
    }
    return ret;
}

int main() {
    int x, y, tmp = 0;
    for (x = 0; x < 10; x++) {
        tmp += foo(10 * x);
    }
    for (y = 0; y < 20; y++) {
        tmp += foo(2 * y);
    }
    consume = tmp;
    return 0;
}
""",
)

ALL_FIGURES = (FIG1A, FIG1B, FIG4A, FIG7A, FIG7B, FIG9)
