"""Workloads: mini-MiBench suite and the paper's figure programs."""

from repro.workloads.base import Workload
from repro.workloads.registry import (
    ALL_WORKLOADS,
    FIGURE_WORKLOADS,
    MIBENCH_WORKLOADS,
    get_workload,
    workload_names,
)

__all__ = [
    "Workload",
    "ALL_WORKLOADS",
    "FIGURE_WORKLOADS",
    "MIBENCH_WORKLOADS",
    "get_workload",
    "workload_names",
]
