"""mini-lame — scaled-down counterpart of MiBench ``lame`` (MP3 encoder).

lame is the biggest benchmark of the suite and the only one with a
significant share of ``do`` loops (9% in Table I — its iterative
quantization loops). Shape targets:

* loop mix dominated by ``for`` with a few ``while`` and ``do`` loops;
* the largest model-reference count of the suite, ~40% not in source
  FORAY form (Table II);
* about a fifth of all accesses inside the library (Table III) — here
  from ``memcpy`` ring-buffer shifts, the staged PCM input and
  transcendental calls in the MDCT/psychoacoustic stages.
"""

from __future__ import annotations

from repro.sim.inputs import InputSpec
from repro.workloads.base import InputScenario, Workload

SOURCE = """
/* mini-lame: 12 frames of subband analysis + MDCT + iterative quant. */

struct frame_params {
    int num_frames;
    int subbands;
    int max_iterations;
};

struct frame_params params;

int pcm[2304];          /* 12 frames x 192 samples */
int ringbuf[128];
int window[32];
int subband_out[384];   /* 12 frames x 32 */
double mdct_in[32];
double mdct_out[96];    /* 12 frames x 8 */
int quantized[96];
int scalefactors[12];
double masking[96];
char stream[512];
int stream_len;
int bit_reservoir;
int checksum;

void init_window() {
    int i;
    for (i = 0; i < 32; i++) {
        window[i] = 32 - (i - 16) * (i - 16) / 8;
    }
}

void subband_analysis(int frame) {
    int s, k;
    /* Shift the ring buffer with the library (as lame does). */
    memcpy(ringbuf, ringbuf + 96, 128);
    memcpy(ringbuf + 32, pcm + 192 * frame, 384);
    /* Windowed subband sums: literal-bound for loops, FORAY form. */
    for (s = 0; s < params.subbands; s++) {
        int acc = 0;
        for (k = 0; k < 32; k++) {
            acc += ringbuf[k + s] * window[k];
        }
        subband_out[32 * frame + s] = acc / 32;
    }
}

void mdct(int frame) {
    int i, m;
    for (i = 0; i < 32; i++) {
        mdct_in[i] = (double)subband_out[32 * frame + i];
    }
    /* 8-line MDCT with on-the-fly twiddles (library transcendentals). */
    for (m = 0; m < params.subbands / 4; m++) {
        double acc = 0.0;
        for (i = 0; i < 32; i++) {
            acc += mdct_in[i] * cos(0.0490873852 * (double)((2 * i + 1 + 16) * (2 * m + 1)));
        }
        mdct_out[8 * frame + m] = acc;
    }
}

int psychoacoustic_all() {
    /* Masking thresholds from log energies, computed in one batch pass
       with literal bounds (FORAY form), plus pre-echo detection. */
    int frame, m;
    int flags = 0;
    for (frame = 0; frame < 12; frame++) {
        for (m = 0; m < 8; m++) {
            double energy = mdct_out[8 * frame + m];
            masking[8 * frame + m] = log(fabs(energy) + 1.0);
        }
    }
    for (frame = 0; frame < 12; frame++) {
        for (m = 1; m < 8; m++) {
            if (fabs(masking[8 * frame + m] - masking[8 * frame + m - 1]) > 2.0) {
                flags++;
            }
        }
    }
    return flags;
}

int quantize(int frame) {
    /* Iterative scalefactor search: the classic lame do-while pair. */
    int sf = 1;
    int bits;
    int m;
    do {
        bits = 0;
        for (m = 0; m < 8; m++) {
            int q = (int)(mdct_out[8 * frame + m]) / (sf * 16);
            if (q < 0) {
                q = -q;
            }
            quantized[8 * frame + m] = q;
            while (q > 0) {
                bits++;
                q = q / 2;
            }
        }
        sf++;
    } while (bits > 40 && sf < params.max_iterations);
    scalefactors[frame] = sf;
    return bits;
}

void format_bitstream(int bits) {
    /* Bit-reservoir bookkeeping: do loop, scalar state only. */
    int need = bits;
    do {
        bit_reservoir += 40 - need;
        if (bit_reservoir > 4000) {
            bit_reservoir = 4000;
        }
        need = 0;
    } while (bit_reservoir < 0);
}

void write_stream() {
    /* Serialize the quantized lines: a pointer-walking while loop. */
    int *qp = quantized;
    char *sp = stream;
    while (qp < quantized + 96) {
        *sp++ = (char)(*qp > 255 ? 255 : *qp);
        qp++;
    }
    stream_len = (int)(sp - stream);
}

int main() {
    int frame, i;
    int best = 0;
    params.num_frames = 12;
    params.subbands = 32;
    params.max_iterations = 16;

    init_window();
    read_samples(pcm, 2304);  /* stage the PCM input via the library */
    for (frame = 0; frame < params.num_frames; frame++) {
        subband_analysis(frame);
        mdct(frame);
    }
    int echo_flags = psychoacoustic_all();
    for (frame = 0; frame < params.num_frames; frame++) {
        int bits = quantize(frame) + echo_flags;
        format_bitstream(bits);
    }
    write_stream();

    /* Pick the smallest scalefactor (canonical scan; tiny footprint). */
    for (i = 1; i < 12; i++) {
        if (scalefactors[i] < scalefactors[best]) {
            best = i;
        }
    }

    int acc = 0;
    for (i = 0; i < 96; i++) {
        acc += quantized[i] + (int)masking[i];
    }
    checksum = acc + best;
    printf("lame checksum %d reservoir %d len %d\\n", acc, bit_reservoir,
           stream_len);
    return 0;
}
"""

SCENARIOS = (
    InputScenario("nominal", "uniform PCM noise (the legacy profiling input)"),
    InputScenario("loud-walk", "hot-level correlated signal: deep quant loops",
                  input=InputSpec(seed=1234, distribution="walk",
                                  amplitude=2000)),
    InputScenario("saw-ramp", "periodic sawtooth sweep across the range",
                  input=InputSpec(distribution="ramp", amplitude=1500,
                                  period=48)),
    InputScenario("silence", "digital silence: quantizer exits first pass",
                  input=InputSpec(distribution="constant", amplitude=0)),
)

WORKLOAD = Workload(
    name="lame",
    source=SOURCE,
    description="12 frames of subband analysis, MDCT, psychoacoustics and "
                "iterative quantization",
    paper_counterpart="lame (MiBench consumer)",
    scenarios=SCENARIOS,
)
