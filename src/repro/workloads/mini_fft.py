"""mini-fft — scaled-down counterpart of MiBench ``fft``.

The paper's fft row is the outlier in every table: it is the only
benchmark whose loops are *all* ``for`` loops and whose model references
are *all* already in FORAY form in the source (0% / 0% in Table II), while
the overwhelming majority of accesses (96%) happen inside the system
library (software floating point / libm on the paper's SimpleScalar
target).

This workload reproduces those properties:

* a hand-unrolled fixed-size 32-point radix-2 FFT — each stage is its own
  canonical ``for`` nest with literal strides, the style of hand-optimized
  embedded FFT code, so every array reference is statically affine;
* twiddle factors computed with ``sin``/``cos`` library calls per
  butterfly; the library's coefficient-table reads dominate the trace;
* the one irregular access (the bit-reverse permutation gather
  ``tr[revtab[i]]``) is correctly *rejected* by Algorithm 3 and stays out
  of the model.
"""

from __future__ import annotations

import string

from repro.sim.inputs import InputSpec
from repro.workloads.base import InputScenario, Workload, scenario_params

SOURCE_TEMPLATE = """
/* mini-fft: ${frames} frames of a 32-point radix-2 FFT, fully unrolled stages. */

double re[32];
double im[32];
double spectrum[1536];
double tr[32];
double ti[32];
int revtab[32];
int input[1536];
int checksum;

void build_revtab() {
    int i, b;
    for (i = 0; i < 32; i++) {
        int r = 0;
        int v = i;
        for (b = 0; b < 5; b++) {
            r = r * 2 + v % 2;
            v = v / 2;
        }
        revtab[i] = r;
    }
}

void bitreverse() {
    int i;
    for (i = 0; i < 32; i++) {
        tr[i] = re[i];
        ti[i] = im[i];
    }
    for (i = 0; i < 32; i++) {
        re[i] = tr[revtab[i]];
        im[i] = ti[revtab[i]];
    }
}

void stage1() {
    int g;
    for (g = 0; g < 16; g++) {
        double ar = re[2 * g];
        double ai = im[2 * g];
        double br = re[2 * g + 1];
        double bi = im[2 * g + 1];
        re[2 * g] = ar + br;
        im[2 * g] = ai + bi;
        re[2 * g + 1] = ar - br;
        im[2 * g + 1] = ai - bi;
    }
}

void stage2() {
    int g, k;
    for (g = 0; g < 8; g++) {
        for (k = 0; k < 2; k++) {
            double wr = cos(-1.5707963267948966 * (double)k);
            double wi = sin(-1.5707963267948966 * (double)k);
            double xr = re[4 * g + k + 2];
            double xi = im[4 * g + k + 2];
            double br = xr * wr - xi * wi;
            double bi = xr * wi + xi * wr;
            double ar = re[4 * g + k];
            double ai = im[4 * g + k];
            re[4 * g + k] = ar + br;
            im[4 * g + k] = ai + bi;
            re[4 * g + k + 2] = ar - br;
            im[4 * g + k + 2] = ai - bi;
        }
    }
}

void stage3() {
    int g, k;
    for (g = 0; g < 4; g++) {
        for (k = 0; k < 4; k++) {
            double wr = cos(-0.7853981633974483 * (double)k);
            double wi = sin(-0.7853981633974483 * (double)k);
            double xr = re[8 * g + k + 4];
            double xi = im[8 * g + k + 4];
            double br = xr * wr - xi * wi;
            double bi = xr * wi + xi * wr;
            double ar = re[8 * g + k];
            double ai = im[8 * g + k];
            re[8 * g + k] = ar + br;
            im[8 * g + k] = ai + bi;
            re[8 * g + k + 4] = ar - br;
            im[8 * g + k + 4] = ai - bi;
        }
    }
}

void stage4() {
    int g, k;
    for (g = 0; g < 2; g++) {
        for (k = 0; k < 8; k++) {
            double wr = cos(-0.39269908169872414 * (double)k);
            double wi = sin(-0.39269908169872414 * (double)k);
            double xr = re[16 * g + k + 8];
            double xi = im[16 * g + k + 8];
            double br = xr * wr - xi * wi;
            double bi = xr * wi + xi * wr;
            double ar = re[16 * g + k];
            double ai = im[16 * g + k];
            re[16 * g + k] = ar + br;
            im[16 * g + k] = ai + bi;
            re[16 * g + k + 8] = ar - br;
            im[16 * g + k + 8] = ai - bi;
        }
    }
}

void stage5() {
    int k;
    for (k = 0; k < 16; k++) {
        double wr = cos(-0.19634954084936207 * (double)k);
        double wi = sin(-0.19634954084936207 * (double)k);
        double xr = re[k + 16];
        double xi = im[k + 16];
        double br = xr * wr - xi * wi;
        double bi = xr * wi + xi * wr;
        double ar = re[k];
        double ai = im[k];
        re[k] = ar + br;
        im[k] = ai + bi;
        re[k + 16] = ar - br;
        im[k + 16] = ai - bi;
    }
}

int main() {
    int frame, i;
    int acc = 0;
    build_revtab();
    read_samples(input, 1536);  /* stage the PCM input via the library */
    for (frame = 0; frame < ${frames}; frame++) {
        for (i = 0; i < 32; i++) {
            re[i] = (double)input[32 * frame + i];
            im[i] = 0.0;
        }
        bitreverse();
        stage1();
        stage2();
        stage3();
        stage4();
        stage5();
        for (i = 0; i < 32; i++) {
            spectrum[32 * frame + i] = sqrt(re[i] * re[i] + im[i] * im[i]);
        }
    }
    for (i = 0; i < 1536; i++) {
        acc += (int)spectrum[i];
    }
    checksum = acc;
    printf("fft checksum %d\\n", acc);
    return 0;
}
"""

_NOMINAL_PARAMS = scenario_params(frames=48)

SOURCE = string.Template(SOURCE_TEMPLATE).substitute(dict(_NOMINAL_PARAMS))

SCENARIOS = (
    InputScenario("nominal", "48 frames of uniform noise (legacy input)",
                  params=_NOMINAL_PARAMS),
    InputScenario("silence", "all-zero PCM: spectra collapse to zero",
                  input=InputSpec(distribution="constant", amplitude=0),
                  params=_NOMINAL_PARAMS),
    InputScenario("chirp-ramp", "sawtooth sweep: tonal, highly correlated",
                  input=InputSpec(seed=11, distribution="ramp",
                                  amplitude=1000, period=37),
                  params=_NOMINAL_PARAMS),
    InputScenario("short-input", "data scale: only 12 of 48 frames present",
                  params=scenario_params(frames=12)),
)

WORKLOAD = Workload(
    name="fft",
    source=SOURCE,
    description="48 frames of an unrolled 32-point radix-2 FFT",
    paper_counterpart="fft (MiBench telecomm)",
    source_template=SOURCE_TEMPLATE,
    scenarios=SCENARIOS,
)
