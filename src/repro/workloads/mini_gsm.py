"""mini-gsm — scaled-down counterpart of MiBench ``gsm`` (GSM 06.10
full-rate encoder, LPC front end).

The real gsm codebase indexes nearly everything through walking pointers
(``*sp++`` style) even inside ``for`` loops, and passes buffer lengths as
parameters — which is why the paper reports the *highest* fraction of model
references not in source FORAY form (74%) while the loop mix is still
mostly ``for`` (87% / 13%). Its Table III row shows another distinctive
shape: a third of all accesses are captured by the model while its
footprint share is tiny (5%) — the encoder re-reads small per-frame
windows over and over.

This workload reproduces those behaviours: per-frame windows staged with
``memcpy``, autocorrelation/LTP/FIR over pointer walks with parameter
bounds, and a statically-visible table initialization.
"""

from __future__ import annotations

from repro.sim.inputs import InputSpec
from repro.workloads.base import InputScenario, Workload

SOURCE = """
/* mini-gsm: 12 frames of LPC autocorrelation + LTP search + filtering. */

int speech[1920];      /* 12 frames x 160 samples */
int win[160];          /* current frame window (heavily reused) */
int prev[160];         /* previous frame */
int autocorr[13];
int reflection[8];
int ltp_gain[12];
int ltp_lag[12];
int filtered[160];
int weights[8] = {6, 12, 18, 24, 24, 18, 12, 6};
int checksum;

void remove_dc(int dc) {
    /* Offset compensation: a pointer-walking while loop. */
    int *p = win;
    while (p < win + 160) {
        *p = *p - dc;
        p++;
    }
}

void autocorrelation(int len) {
    /* gsm style: pointer walks inside for loops, length from a param. */
    int k, i;
    for (k = 0; k < 12; k++) {
        int *sp = win + k;
        int *tp = win;
        int acc = 0;
        for (i = 0; i < len - 12; i++) {
            acc += *sp++ * *tp++;
        }
        autocorr[k] = acc / 64;
    }
}

void schur_recursion() {
    /* Reflection coefficients from the autocorrelation (tiny arrays). */
    int i, j;
    for (i = 0; i < 8; i++) {
        int num = autocorr[i + 1];
        int den = autocorr[0] + 1;
        for (j = 0; j < i; j++) {
            num -= reflection[j] * autocorr[i - j] / 256;
        }
        reflection[i] = 256 * num / den;
    }
}

int ltp_search(int frame, int maxlag) {
    /* Long-term predictor: best lag against the previous frame, again via
       pointer arithmetic with parameter bounds. */
    int lag, j;
    int best_lag = 1;
    int best_score = -2147483647;
    for (lag = 1; lag < maxlag; lag++) {
        int *cur = win;
        int *old = prev + 120 - lag;
        int score = 0;
        for (j = 0; j < 40; j++) {
            score += *cur++ * *old++ / 16;
        }
        if (score > best_score) {
            best_score = score;
            best_lag = lag;
        }
    }
    ltp_lag[frame] = best_lag;
    ltp_gain[frame] = best_score / 4096;
    return best_lag;
}

void weighting_filter(int len) {
    /* FIR over the window: pointer walks, parameter bound. */
    int i, t;
    int *op = filtered;
    for (i = 0; i < len - 8; i++) {
        int *ip = win + i;
        int acc = 0;
        for (t = 0; t < 8; t++) {
            acc += *ip++ * weights[t];
        }
        *op++ = acc / 128;
    }
}

int main() {
    int frame;
    int acc = 0;
    read_samples(speech, 1920);  /* stage the speech input via the library */
    for (frame = 0; frame < 12; frame++) {
        /* Stage the frame window via the library, as gsm does. */
        memcpy(prev, win, 640);
        memcpy(win, speech + 160 * frame, 640);
        remove_dc(frame % 3);
        autocorrelation(160);
        schur_recursion();
        ltp_search(frame, 40);
        weighting_filter(160);
        acc += filtered[frame % 152] + reflection[frame % 8];
    }
    checksum = acc;
    printf("gsm checksum %d\\n", acc);
    return 0;
}
"""

SCENARIOS = (
    InputScenario("nominal", "uniform speech-band noise (legacy input)"),
    InputScenario("voiced-walk", "correlated random walk: strong LTP matches",
                  input=InputSpec(seed=4242, distribution="walk",
                                  amplitude=600)),
    InputScenario("impulse-train", "glottal-pulse-like spikes every 40 samples",
                  input=InputSpec(distribution="impulse", amplitude=511,
                                  period=40)),
    InputScenario("silence", "all-zero frames: autocorrelation degenerates",
                  input=InputSpec(distribution="constant", amplitude=0)),
)

WORKLOAD = Workload(
    name="gsm",
    source=SOURCE,
    description="12 frames of GSM-style LPC analysis, LTP search, filtering",
    paper_counterpart="gsm (MiBench telecomm)",
    scenarios=SCENARIOS,
)
