"""Workload descriptor shared by the mini-MiBench suite and figure
programs, plus the input-scenario matrix.

A :class:`Workload` optionally declares a set of :class:`InputScenario`\\ s
— seeded, parameterized input ensembles. Scenario inputs come from two
orthogonal mechanisms:

* a :class:`~repro.sim.inputs.InputSpec` consumed by the ``read_samples``
  builtin (workloads that stage their input through the library);
* numeric *source parameters* substituted into ``source_template``
  (workloads that synthesize their input in-program, and scale knobs such
  as frame counts).

Source parameters may only change numeric literals, never code shape, so
every scenario of a workload compiles to the same AST skeleton: checkpoint
ids and synthetic pcs line up across scenarios, which is what lets
:mod:`repro.foray.validate` replay one scenario's trace against a model
extracted from another. The first declared scenario is the *nominal*
profiling scenario and must render exactly ``source`` (enforced at
construction), so the scenario matrix never perturbs the paper tables.
"""

from __future__ import annotations

import string
from dataclasses import dataclass, field

from repro.sim.inputs import InputSpec


def scenario_params(**params: int) -> tuple[tuple[str, int], ...]:
    """Hashable source-parameter set for an :class:`InputScenario`."""
    return tuple(sorted(params.items()))


@dataclass(frozen=True)
class InputScenario:
    """One named input ensemble of a workload's scenario matrix."""

    name: str
    description: str
    #: Sample ensemble pulled by the ``read_samples`` builtin.
    input: InputSpec = InputSpec()
    #: Numeric substitutions applied to the workload's source template.
    params: tuple[tuple[str, int], ...] = ()


@dataclass(frozen=True)
class Workload:
    """A MiniC benchmark program.

    ``paper_counterpart`` names the MiBench benchmark whose memory-behaviour
    *shape* this workload reproduces (see DESIGN.md for the substitution
    rationale); None for the paper's figure examples.
    """

    name: str
    source: str
    description: str
    paper_counterpart: str | None = None
    #: ``string.Template`` text with ``${param}`` placeholders; None when
    #: all scenarios share the nominal source verbatim.
    source_template: str | None = field(default=None, repr=False)
    #: Input-scenario matrix; index 0 is the nominal profiling scenario.
    scenarios: tuple[InputScenario, ...] = ()

    def __post_init__(self) -> None:
        names = [scenario.name for scenario in self.scenarios]
        if len(set(names)) != len(names):
            raise ValueError(f"workload {self.name!r}: duplicate scenario names")
        if self.scenarios and self.source_for(self.scenarios[0]) != self.source:
            raise ValueError(
                f"workload {self.name!r}: the nominal scenario "
                f"{self.scenarios[0].name!r} must render the exact "
                "workload source"
            )

    @property
    def profile_scenario(self) -> InputScenario | None:
        """The nominal scenario models are extracted from by default."""
        return self.scenarios[0] if self.scenarios else None

    def scenario_names(self) -> tuple[str, ...]:
        return tuple(scenario.name for scenario in self.scenarios)

    def scenario(self, name: str) -> InputScenario:
        for scenario in self.scenarios:
            if scenario.name == name:
                return scenario
        known = ", ".join(self.scenario_names()) or "<none>"
        raise KeyError(
            f"workload {self.name!r} has no scenario {name!r}; known: {known}"
        )

    def source_for(self, scenario: "InputScenario | str") -> str:
        """The MiniC source of one scenario (the nominal source when the
        workload has no template)."""
        if isinstance(scenario, str):
            scenario = self.scenario(scenario)
        if self.source_template is None:
            return self.source
        return string.Template(self.source_template).substitute(
            dict(scenario.params)
        )
