"""Workload descriptor shared by the mini-MiBench suite and figure programs."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Workload:
    """A MiniC benchmark program.

    ``paper_counterpart`` names the MiBench benchmark whose memory-behaviour
    *shape* this workload reproduces (see DESIGN.md for the substitution
    rationale); None for the paper's figure examples.
    """

    name: str
    source: str
    description: str
    paper_counterpart: str | None = None
