"""mini-adpcm — scaled-down counterpart of MiBench ``adpcm`` (encoder).

The paper's adpcm row is the minimal case: exactly two executed loops (one
``for``, one ``while`` — 50%/50% in Table I), exactly one reference in the
FORAY model, and *nothing* visible to static analysis (100%/100% in
Table II).

Reproduction of that shape:

* the input PCM buffer is staged through the library (``read_samples``,
  the stand-in for file input);
* the ``for`` table-initialization loop has a runtime-configured bound, so
  it is invisible to the static baseline, and its table is small enough
  that the step-4 purge drops its reference (Nloc);
* the encoder ``while`` loop reads input through a walking pointer — the
  single model reference — and packs two 4-bit codes per output byte, an
  alternating-stride pattern that Algorithm 3 correctly refuses to fit.
"""

from __future__ import annotations

from repro.sim.inputs import InputSpec
from repro.workloads.base import InputScenario, Workload

SOURCE = """
/* mini-adpcm: IMA-style encoder over 4096 samples read from "file". */

int indexadj[8];
int tabsize = 8;
int inbuf[4096];
char outbuf[2048];
int out_count;

int main() {
    int i;
    /* Index-adjustment table, sized by a runtime configuration value:
       the bound is not a compile-time constant, so the loop is invisible
       to static FORAY-form analysis. */
    for (i = 0; i < tabsize; i++) {
        indexadj[i] = (i < 4) ? -1 : (i - 3) * 2;
    }

    read_samples(inbuf, 4096);

    int *inp = inbuf;
    char *outp = outbuf;
    int predicted = 0;
    int step = 7;
    int index = 0;
    int n = 0;
    int pending = 0;
    while (n < 4096) {
        int sample = *inp++;

        int diff = sample - predicted;
        int sign = 0;
        if (diff < 0) {
            sign = 4;
            diff = -diff;
        }
        int code = 0;
        if (diff >= step) {
            code = 2;
            diff -= step;
        }
        if (diff >= step / 2) {
            code += 1;
        }
        int delta = (2 * code + 1) * step / 4;
        if (sign) {
            predicted -= delta;
        } else {
            predicted += delta;
        }
        if (predicted > 2047) {
            predicted = 2047;
        }
        if (predicted < -2048) {
            predicted = -2048;
        }
        index += indexadj[sign / 4 * 4 + code > 7 ? 7 : sign / 4 * 4 + code];
        if (index < 0) {
            index = 0;
        }
        if (index > 63) {
            index = 63;
        }
        step = 7 + index * 2;

        /* Pack two 4-bit codes per byte: the output pointer advances only
           every other sample (not affine in the loop iterator). */
        if (n % 2 == 0) {
            pending = sign + code;
        } else {
            *outp++ = (char)(pending * 16 + sign + code);
        }
        n++;
    }
    out_count = n;
    printf("adpcm encoded %d samples\\n", n);
    return 0;
}
"""

SCENARIOS = (
    InputScenario("nominal", "uniform PCM noise (the legacy profiling input)"),
    InputScenario("silence", "all-zero input: the encoder step logic idles",
                  input=InputSpec(distribution="constant", amplitude=0)),
    InputScenario("soft-walk", "low-amplitude random walk (speech-like)",
                  input=InputSpec(seed=9377, distribution="walk",
                                  amplitude=256)),
    InputScenario("impulse-train", "sparse full-scale spikes every 32 samples",
                  input=InputSpec(distribution="impulse", amplitude=500,
                                  period=32)),
)

WORKLOAD = Workload(
    name="adpcm",
    source=SOURCE,
    description="IMA-style ADPCM encoder over 4096 library-read samples",
    paper_counterpart="adpcm (MiBench telecomm)",
    scenarios=SCENARIOS,
)
