"""repro — reproduction of FORAY-GEN (Issenin & Dutt, DATE 2005).

FORAY-GEN automatically extracts the *FORAY model* of a C program — an
abstraction consisting of for loops and array references with (partial)
affine index expressions — from a profiling trace, enabling scratch-pad
memory optimizations on programs that are not written in an analyzable
form.

Top-level API:

* :func:`repro.pipeline.extract_foray_model` — Phase I on MiniC source.
* :func:`repro.pipeline.run_workload` / :func:`repro.pipeline.run_suite` —
  the paper's evaluation (Tables I-III).
* :func:`repro.pipeline.full_flow` — Phase I + Phase II (SPM optimization).
"""

from repro.foray.emitter import emit_model
from repro.foray.filters import FilterConfig
from repro.foray.hints import inlining_hints
from repro.foray.model import AffineExpression, ForayLoop, ForayModel, ForayReference
from repro.pipeline import (
    ExtractionResult,
    FullFlowResult,
    WorkloadReport,
    extract_foray_model,
    full_flow,
    run_suite,
    run_workload,
)

__version__ = "1.0.0"

__all__ = [
    "emit_model",
    "FilterConfig",
    "inlining_hints",
    "AffineExpression",
    "ForayLoop",
    "ForayModel",
    "ForayReference",
    "ExtractionResult",
    "FullFlowResult",
    "WorkloadReport",
    "extract_foray_model",
    "full_flow",
    "run_suite",
    "run_workload",
    "__version__",
]
