"""Dataflow analysis framework over the bytecode CFG.

The fusion pass, the block compiler and the IR verifier all need facts
that hold *along every execution path* — which registers are live, which
are definitely assigned, what integer range a slot can hold. This module
factors the machinery they share into one place:

* a basic-block CFG over a function's instruction tuple
  (:func:`build_cfg`), with the exact successor rules the ad-hoc passes
  used (jump to ``len(code)`` falls off the end; exceptions need no
  edges because an abort ends the run);
* a generic worklist fixpoint solver (:func:`solve`) over any numbered
  graph — forward or backward, pluggable join/transfer — reused by the
  MiniC linter for its statement-level CFG;
* four concrete bytecode analyses:

  - :func:`liveness` — per-instruction live-out bitmasks (the backward
    pass :func:`repro.sim.bytecode.fuse_function` fuses against);
  - :func:`definite_assignment` / :func:`maybe_uninitialized_reads` —
    forward must-analysis behind the verifier's defined-before-use
    check;
  - :func:`reaching_definitions` — which writes can reach each block;
  - :func:`constants` — sparse conditional constant propagation over
    the zero-filled frame (tracks executable edges, so code behind a
    statically-false branch stays unreached);

* an integer **value-range analysis** (:func:`interval_analysis`) whose
  abstract value is an interval plus a congruence — ``value in [lo, hi]
  and value ≡ rem (mod m)`` — precise enough to prove that an affine
  access sequence (``GADDR``/``MEMBOFF``/indexed loads and stores over
  a counted loop) stays inside one 4 KiB page, or at least never
  crosses a page boundary. :func:`access_facts` condenses that into one
  :class:`AccessFact` per memory instruction; the block compiler
  (:mod:`repro.sim.specialize`) uses them to drop per-access paged
  dispatch (guard elimination), and ``REPRO_CHECK_RANGES=1`` asserts
  every derived fact at runtime.

Soundness notes for the interval domain:

* every integer-producing opcode wraps (``& mask`` plus sign fold) or
  masks to 32 bits, so all tracked values are bounded; widening to
  ±infinity after a few visits only speeds convergence up;
* masking with a power of two preserves congruences modulo any divisor
  of it, so alignment facts survive address arithmetic and wrapping;
* a slot is tracked only while it provably holds a Python int — any
  float or opaque write removes it from the state.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import gcd
from typing import Any, Callable, Iterable, Sequence

from repro.sim import bytecode as bc
from repro.sim.memory import GLOBAL_BASE, STACK_LIMIT, STACK_TOP

#: Saturation bound for interval endpoints (far outside any 64-bit
#: domain, so clamping never loses a representable fact).
INF = 1 << 66

_M32 = 0xFFFFFFFF
_PAGE = 4096


# ---------------------------------------------------------------------------
# Control-flow graph
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class BasicBlock:
    """Half-open instruction range ``[start, end)`` of one basic block."""

    index: int
    start: int
    end: int


@dataclass
class CFG:
    """Basic blocks plus successor/predecessor block-index lists.

    A jump target equal to ``len(code)`` (or a fallthrough off the end)
    goes to a virtual exit and contributes no edge, mirroring the
    liveness pass's ``live_in[n] == 0`` convention.
    """

    code: tuple[tuple[Any, ...], ...]
    blocks: list[BasicBlock]
    succs: list[tuple[int, ...]]
    preds: list[tuple[int, ...]]
    #: Instruction index -> owning block index.
    block_at: list[int]

    def rpo(self) -> list[int]:
        """Reverse postorder from block 0 (unreachable blocks appended
        in index order so every block is processed exactly once)."""
        seen = [False] * len(self.blocks)
        order: list[int] = []
        for root in range(len(self.blocks)):
            if seen[root]:
                continue
            stack: list[tuple[int, int]] = [(root, 0)]
            seen[root] = True
            while stack:
                node, child = stack[-1]
                if child < len(self.succs[node]):
                    stack[-1] = (node, child + 1)
                    nxt = self.succs[node][child]
                    if not seen[nxt]:
                        seen[nxt] = True
                        stack.append((nxt, 0))
                else:
                    stack.pop()
                    order.append(node)
        order.reverse()
        return order


def _succ_indices(code: Sequence[tuple[Any, ...]],
                  i: int) -> tuple[int, ...]:
    """Instruction-level successors (the liveness pass's exact rules)."""
    ins = code[i]
    op = ins[0]
    if op == bc.OP_JMP:
        return (ins[1],)
    if op == bc.OP_JZ or op == bc.OP_JNZ:
        return (i + 1, ins[2])
    if op == bc.OP_BR:
        return (i + 1, ins[4])
    if op == bc.OP_RET or op == bc.OP_RET0:
        return ()
    return (i + 1,)


def build_cfg(code: Sequence[tuple[Any, ...]]) -> CFG:
    """Partition ``code`` into basic blocks and wire the edges."""
    n = len(code)
    leaders = {0}
    for i in range(n):
        op = code[i][0]
        if op == bc.OP_JMP:
            leaders.add(code[i][1])
            leaders.add(i + 1)
        elif op == bc.OP_JZ or op == bc.OP_JNZ:
            leaders.add(code[i][2])
            leaders.add(i + 1)
        elif op == bc.OP_BR:
            leaders.add(code[i][4])
            leaders.add(i + 1)
        elif op == bc.OP_RET or op == bc.OP_RET0:
            leaders.add(i + 1)
    leaders.discard(n)
    order = sorted(leaders)
    index_of = {start: j for j, start in enumerate(order)}
    blocks = [BasicBlock(j, start,
                         order[j + 1] if j + 1 < len(order) else n)
              for j, start in enumerate(order)]
    succs: list[tuple[int, ...]] = []
    for block in blocks:
        targets = _succ_indices(code, block.end - 1) if n else ()
        succs.append(tuple(index_of[t] for t in targets if t < n))
    preds_acc: list[list[int]] = [[] for _ in blocks]
    for j, ss in enumerate(succs):
        for t in ss:
            preds_acc[t].append(j)
    block_at = [0] * n
    for block in blocks:
        for i in range(block.start, block.end):
            block_at[i] = block.index
    return CFG(code=tuple(code), blocks=blocks, succs=succs,
               preds=[tuple(p) for p in preds_acc], block_at=block_at)


# ---------------------------------------------------------------------------
# Generic worklist solver
# ---------------------------------------------------------------------------


def solve(
    num_nodes: int,
    succs: Sequence[Sequence[int]],
    *,
    forward: bool,
    bottom: Any,
    boundary: Any,
    entry_nodes: Sequence[int] = (0,),
    transfer: Callable[[int, Any], Any],
    join: Callable[[Any, Any], Any],
) -> tuple[list[Any], list[Any]]:
    """Worklist fixpoint over an arbitrary numbered graph.

    Returns ``(inputs, outputs)`` in *analysis direction*: for a forward
    analysis ``inputs[i]`` is the value at node entry and ``outputs[i]``
    the value at node exit; for a backward analysis ``inputs[i]`` is the
    value *after* the node (e.g. live-out) and ``outputs[i]`` the value
    before it (live-in). ``boundary`` is joined into the inputs of
    ``entry_nodes`` (forward) or of every node without successors
    (backward, where edges are followed in reverse). Every node is
    seeded, so the least fixpoint covers unreachable nodes exactly like
    an instruction-level iteration would.
    """
    if forward:
        edges = [tuple(s) for s in succs]
    else:
        rev: list[list[int]] = [[] for _ in range(num_nodes)]
        for i, ss in enumerate(succs):
            for t in ss:
                rev[t].append(i)
        edges = [tuple(r) for r in rev]
        entry_nodes = [i for i, ss in enumerate(succs) if not ss]
    sources: list[list[int]] = [[] for _ in range(num_nodes)]
    for i, ss in enumerate(edges):
        for t in ss:
            sources[t].append(i)
    is_entry = [False] * num_nodes
    for i in entry_nodes:
        is_entry[i] = True
    inputs: list[Any] = [bottom] * num_nodes
    outputs: list[Any] = [bottom] * num_nodes
    pending = [True] * num_nodes
    worklist = list(range(num_nodes - 1, -1, -1))
    while worklist:
        node = worklist.pop()
        if not pending[node]:
            continue
        pending[node] = False
        value = boundary if is_entry[node] else bottom
        for src in sources[node]:
            value = join(value, outputs[src])
        inputs[node] = value
        new_out = transfer(node, value)
        if new_out != outputs[node]:
            outputs[node] = new_out
            for t in edges[node]:
                if not pending[t]:
                    pending[t] = True
                    worklist.append(t)
    return inputs, outputs


# ---------------------------------------------------------------------------
# Use/def extraction shared by the bitmask analyses
# ---------------------------------------------------------------------------


def _use_kill(ins: tuple[Any, ...]) -> tuple[int, int]:
    """(read-slot bitmask, written-slot bitmask) of one instruction."""
    op = ins[0]
    if op == bc.OP_CALL or op == bc.OP_CALLB:
        use = 0
        for slot in ins[3]:
            use |= 1 << slot
        return use, 1 << ins[1]
    use = 0
    for pos in bc._READS[op]:
        use |= 1 << ins[pos]
    write = bc._WRITES.get(op)
    return use, (1 << ins[write]) if write is not None else 0


def liveness(code: Sequence[tuple[Any, ...]]) -> list[int]:
    """Per-instruction live-*out* register bitmasks.

    Produces exactly the least fixpoint of the fusion pass's original
    instruction-level iteration (the equations are the same, grouped by
    block), so fusion decisions are unchanged.
    """
    n = len(code)
    if not n:
        return []
    cfg = build_cfg(code)
    nb = len(cfg.blocks)
    use_kill = [_use_kill(ins) for ins in code]
    block_gen = [0] * nb
    block_kill = [0] * nb
    for block in cfg.blocks:
        gen = kill = 0
        for i in range(block.end - 1, block.start - 1, -1):
            use, wr = use_kill[i]
            gen = use | (gen & ~wr)
            kill |= wr
        block_gen[block.index] = gen
        block_kill[block.index] = kill

    def xfer(b: int, out: int) -> int:
        return block_gen[b] | (out & ~block_kill[b])

    block_out, _ = solve(
        nb, cfg.succs, forward=False, bottom=0, boundary=0,
        transfer=xfer, join=lambda a, b: a | b)
    live_out = [0] * n
    for block in cfg.blocks:
        cur = block_out[block.index]
        for i in range(block.end - 1, block.start - 1, -1):
            live_out[i] = cur
            use, wr = use_kill[i]
            cur = use | (cur & ~wr)
    return live_out


def definite_assignment(
    fn: "bc.BytecodeFunction",
) -> tuple[CFG, list[int]]:
    """Forward must-analysis: bitmask of definitely-assigned slots at
    each block entry (parameters count as assigned)."""
    cfg = build_cfg(fn.code)
    nb = len(cfg.blocks)
    universe = (1 << (fn.n_slots + 1)) - 1
    params = 0
    for spec in fn.params:
        params |= 1 << spec.slot

    def xfer(b: int, assigned: int) -> int:
        block = cfg.blocks[b]
        for i in range(block.start, block.end):
            assigned |= _use_kill(fn.code[i])[1]
        return assigned

    block_in, _ = solve(
        nb, cfg.succs, forward=True, bottom=universe, boundary=params,
        transfer=xfer, join=lambda a, b: a & b)
    return cfg, block_in


def maybe_uninitialized_reads(
    fn: "bc.BytecodeFunction",
) -> list[tuple[int, int]]:
    """``(instruction index, slot)`` pairs where a read may observe the
    zero-filled frame before any assignment (sorted, deduplicated)."""
    cfg, block_in = definite_assignment(fn)
    out: list[tuple[int, int]] = []
    for block in cfg.blocks:
        assigned = block_in[block.index]
        for i in range(block.start, block.end):
            use, wr = _use_kill(fn.code[i])
            rogue = use & ~assigned
            while rogue:
                low = rogue & -rogue
                out.append((i, low.bit_length() - 1))
                rogue ^= low
            assigned |= wr
    return sorted(set(out))


# ---------------------------------------------------------------------------
# Reaching definitions
# ---------------------------------------------------------------------------


@dataclass
class ReachingDefs:
    """Definition sites reaching each block entry.

    ``sites[d]`` is ``(instruction index, slot)``; index ``-1`` marks
    the synthetic entry definition (zero fill or parameter binding).
    ``block_in[b]`` is a bitmask over ``sites``.
    """

    cfg: CFG
    sites: list[tuple[int, int]]
    block_in: list[int]

    def reaching_at(self, index: int, slot: int) -> list[int]:
        """Instruction indices of the definitions of ``slot`` that can
        reach instruction ``index`` (``-1`` for the entry definition)."""
        block = self.cfg.blocks[self.cfg.block_at[index]]
        mask = self.block_in[block.index]
        by_slot = [d for d, (_, s) in enumerate(self.sites) if s == slot]
        slot_mask = 0
        for d in by_slot:
            slot_mask |= 1 << d
        last: int | None = None
        for i in range(block.start, index):
            wr = _use_kill(self.cfg.code[i])[1]
            if (wr >> slot) & 1:
                last = i
        if last is not None:
            return [last]
        return [self.sites[d][0] for d in by_slot if (mask >> d) & 1]


def reaching_definitions(fn: "bc.BytecodeFunction") -> ReachingDefs:
    """Classic may-analysis over numbered definition sites."""
    code = fn.code
    cfg = build_cfg(code)
    sites: list[tuple[int, int]] = [(-1, s) for s in range(fn.n_slots)]
    for i, ins in enumerate(code):
        wr = _use_kill(ins)[1]
        if wr:
            sites.append((i, wr.bit_length() - 1))
    slot_defs = [0] * fn.n_slots
    for d, (_, slot) in enumerate(sites):
        slot_defs[slot] |= 1 << d
    entry = 0
    for s in range(fn.n_slots):
        entry |= 1 << s  # the synthetic defs come first, one per slot

    gen = [0] * len(cfg.blocks)
    kill = [0] * len(cfg.blocks)
    site_at = {(i, s): d for d, (i, s) in enumerate(sites)}
    for block in cfg.blocks:
        g = k = 0
        for i in range(block.start, block.end):
            wr = _use_kill(code[i])[1]
            if not wr:
                continue
            slot = wr.bit_length() - 1
            k |= slot_defs[slot]
            g = (g & ~slot_defs[slot]) | (1 << site_at[(i, slot)])
        gen[block.index] = g
        kill[block.index] = k

    def xfer(b: int, reaching: int) -> int:
        return (reaching & ~kill[b]) | gen[b]

    block_in, _ = solve(
        len(cfg.blocks), cfg.succs, forward=True, bottom=0,
        boundary=entry, transfer=xfer, join=lambda a, b: a | b)
    return ReachingDefs(cfg=cfg, sites=sites, block_in=block_in)


# ---------------------------------------------------------------------------
# Sparse conditional constant propagation
# ---------------------------------------------------------------------------


def _wrap_int(value: int, mask: int, maxv: int) -> int:
    value &= mask
    if maxv >= 0 and value > maxv:
        value -= mask + 1
    return value


def _const_eval(ins: tuple[Any, ...],
                state: dict[int, Any]) -> tuple[bool, Any]:
    """(known, value) of a pure instruction under known constants."""
    op = ins[0]

    def get(pos: int) -> tuple[bool, Any]:
        slot = ins[pos]
        if slot in state:
            return True, state[slot]
        return False, None

    if op == bc.OP_CONST:
        return True, ins[2]
    if op == bc.OP_MOV:
        return get(2)
    if op in (bc.OP_ADD_I, bc.OP_SUB_I, bc.OP_MUL_I):
        ka, a = get(2)
        kb, b = get(3)
        if not (ka and kb and type(a) is int and type(b) is int):
            return False, None
        raw = a + b if op == bc.OP_ADD_I else (
            a - b if op == bc.OP_SUB_I else a * b)
        return True, _wrap_int(raw, ins[4], ins[5])
    if op == bc.OP_ADDK_I:
        ka, a = get(2)
        if not (ka and type(a) is int):
            return False, None
        return True, _wrap_int(a + ins[3], ins[4], ins[5])
    if op == bc.OP_NEG_I:
        ka, a = get(2)
        if not (ka and type(a) is int):
            return False, None
        return True, _wrap_int(-a, ins[3], ins[4])
    if op == bc.OP_CONV_I:
        ka, a = get(2)
        if not (ka and type(a) is int):
            return False, None
        return True, _wrap_int(a, ins[3], ins[4])
    if op == bc.OP_NOT:
        ka, a = get(2)
        return (True, 0 if a else 1) if ka else (False, None)
    if op in bc._CMP_OPS:
        ka, a = get(2)
        kb, b = get(3)
        if not (ka and kb):
            return False, None
        if op == bc.OP_LT:
            return True, 1 if a < b else 0
        if op == bc.OP_LE:
            return True, 1 if a <= b else 0
        if op == bc.OP_GT:
            return True, 1 if a > b else 0
        if op == bc.OP_GE:
            return True, 1 if a >= b else 0
        if op == bc.OP_EQ:
            return True, 1 if a == b else 0
        return True, 1 if a != b else 0
    return False, None


@dataclass
class ConstantFacts:
    """Result of :func:`constants` (sparse conditional propagation)."""

    cfg: CFG
    #: Block entry states; ``None`` marks a block SCCP proved unreached.
    block_in: list[dict[int, Any] | None]
    #: ``(from_block, to_block)`` edges that can execute.
    executable_edges: set[tuple[int, int]]

    def reachable(self, b: int) -> bool:
        return self.block_in[b] is not None


def constants(fn: "bc.BytecodeFunction") -> ConstantFacts:
    """Conditional constant propagation with executable-edge tracking.

    Starts from the concrete frame state (zero-filled slots, opaque
    parameters) and only propagates along branch edges whose condition
    can actually evaluate that way, so blocks behind statically-decided
    branches keep a ``None`` entry state.
    """
    code = fn.code
    cfg = build_cfg(code)
    nb = len(cfg.blocks)
    params = {spec.slot for spec in fn.params}
    entry = {s: 0 for s in range(fn.n_slots) if s not in params}
    block_in: list[dict[int, Any] | None] = [None] * nb
    edges: set[tuple[int, int]] = set()
    if not nb:
        return ConstantFacts(cfg=cfg, block_in=block_in,
                             executable_edges=edges)
    block_in[0] = entry
    worklist = [0]
    while worklist:
        b = worklist.pop()
        state_in = block_in[b]
        assert state_in is not None
        state = dict(state_in)
        block = cfg.blocks[b]
        for i in range(block.start, block.end - 1):
            _const_step(code[i], state)
        term = code[block.end - 1]
        out_edges = _executable_successors(term, state, cfg, block)
        _const_step(term, state)
        for succ in out_edges:
            edges.add((b, succ))
            old = block_in[succ]
            new = state if old is None else _const_join(old, state)
            if new != old:
                block_in[succ] = dict(new)
                worklist.append(succ)
    return ConstantFacts(cfg=cfg, block_in=block_in,
                         executable_edges=edges)


def _const_step(ins: tuple[Any, ...], state: dict[int, Any]) -> None:
    known, value = _const_eval(ins, state)
    wr = _use_kill(ins)[1]
    if not wr:
        return
    slot = wr.bit_length() - 1
    if known:
        state[slot] = value
    else:
        state.pop(slot, None)


def _executable_successors(term: tuple[Any, ...], state: dict[int, Any],
                           cfg: CFG, block: BasicBlock) -> tuple[int, ...]:
    code_len = len(cfg.code)
    op = term[0]
    index = block.end - 1
    targets = _succ_indices(cfg.code, index)
    if op == bc.OP_JZ or op == bc.OP_JNZ:
        if term[1] in state:
            taken = bool(state[term[1]]) == (op == bc.OP_JNZ)
            targets = (term[2],) if taken else (index + 1,)
    elif op == bc.OP_BR:
        known, flag = _const_eval((term[1], 0, term[2], term[3]), state)
        if known:
            taken = bool(flag) == bool(term[5])
            targets = (term[4],) if taken else (index + 1,)
    return tuple(cfg.block_at[t] for t in targets if t < code_len)


def _const_join(a: dict[int, Any], b: dict[int, Any]) -> dict[int, Any]:
    out: dict[int, Any] = {}
    for slot, value in a.items():
        other = b.get(slot, _MISSING)
        if other is not _MISSING and type(other) is type(value) \
                and other == value:
            out[slot] = value
    return out


_MISSING = object()


# ---------------------------------------------------------------------------
# Interval + congruence domain
# ---------------------------------------------------------------------------

#: Abstract value: (lo, hi, mod, rem). Invariants after :func:`_norm`:
#: ``lo <= hi``; a singleton is ``(v, v, 0, v)``; otherwise ``mod >= 1``
#: and ``0 <= rem < mod`` (mod 1 carries no congruence information).
AVal = tuple[int, int, int, int]

TOP_INT: AVal = (-INF, INF, 1, 0)


def _norm(lo: int, hi: int, mod: int, rem: int) -> AVal | None:
    """Normalize; ``None`` when the set is empty (dead path)."""
    if mod > 1:
        rem %= mod
        # Tighten the bounds onto the residue class.
        if lo > -INF:
            delta = (rem - lo) % mod
            lo += delta
        if hi < INF:
            delta = (hi - rem) % mod
            hi -= delta
    if lo > hi:
        return None
    lo = max(lo, -INF)
    hi = min(hi, INF)
    if lo == hi and -INF < lo < INF:
        return (lo, lo, 0, lo)
    if mod <= 1:
        return (lo, hi, 1, 0)
    return (lo, hi, mod, rem % mod)


def _exact(value: int) -> AVal:
    return (value, value, 0, value)


def join_aval(a: AVal, b: AVal) -> AVal:
    lo = min(a[0], b[0])
    hi = max(a[1], b[1])
    mod = gcd(a[2], b[2], abs(a[3] - b[3]))
    out = _norm(lo, hi, mod, a[3])
    assert out is not None  # a union of non-empty sets is non-empty
    return out


def _sat(value: int) -> int:
    if value > INF:
        return INF
    if value < -INF:
        return -INF
    return value


def add_aval(a: AVal, b: AVal) -> AVal:
    out = _norm(_sat(a[0] + b[0]), _sat(a[1] + b[1]),
                gcd(a[2], b[2]), a[3] + b[3])
    assert out is not None
    return out


def scale_aval(a: AVal, c: int) -> AVal:
    if c == 0:
        return _exact(0)
    if c > 0:
        out = _norm(_sat(a[0] * c), _sat(a[1] * c), a[2] * c, a[3] * c)
    else:
        out = _norm(_sat(a[1] * c), _sat(a[0] * c), a[2] * -c, a[3] * c)
    assert out is not None
    return out


def neg_aval(a: AVal) -> AVal:
    return scale_aval(a, -1)


def mul_aval(a: AVal, b: AVal) -> AVal:
    if a[0] == a[1]:
        return scale_aval(b, a[0])
    if b[0] == b[1]:
        return scale_aval(a, b[0])
    corners = (a[0] * b[0], a[0] * b[1], a[1] * b[0], a[1] * b[1])
    out = _norm(_sat(min(corners)), _sat(max(corners)),
                gcd(a[2], b[2]), a[3] * b[3])
    assert out is not None
    return out


def mask32_aval(a: AVal) -> AVal:
    if a[0] == a[1]:
        return _exact(a[0] & _M32)
    if 0 <= a[0] and a[1] <= _M32:
        return a
    out = _norm(0, _M32, gcd(a[2], 1 << 32), a[3])
    assert out is not None
    return out


def _dom_interval(mask: int, maxv: int) -> tuple[int, int]:
    if maxv < 0:
        return 0, mask
    return -(maxv + 1), maxv


def wrap_aval(a: AVal, mask: int, maxv: int) -> AVal:
    lo, hi = _dom_interval(mask, maxv)
    if lo <= a[0] and a[1] <= hi:
        return a
    if a[0] == a[1]:
        return _exact(_wrap_int(a[0], mask, maxv))
    out = _norm(lo, hi, gcd(a[2], mask + 1), a[3])
    assert out is not None
    return out


def _meet_bounds(a: AVal, lo: int, hi: int) -> AVal | None:
    """Intersect with ``[lo, hi]`` (congruence kept); None when empty."""
    return _norm(max(a[0], lo), min(a[1], hi), a[2], a[3])


#: Comparison refinement: on the edge where ``a OP b`` is known true,
#: the operand intervals tighten against each other.
def refine_cmp(op: int, a: AVal, b: AVal,
               truth: bool) -> tuple[AVal, AVal] | None:
    if not truth:
        op = {bc.OP_LT: bc.OP_GE, bc.OP_LE: bc.OP_GT,
              bc.OP_GT: bc.OP_LE, bc.OP_GE: bc.OP_LT,
              bc.OP_EQ: bc.OP_NE, bc.OP_NE: bc.OP_EQ}[op]
    if op == bc.OP_GT:
        swapped = refine_cmp(bc.OP_LT, b, a, True)
        return None if swapped is None else (swapped[1], swapped[0])
    if op == bc.OP_GE:
        swapped = refine_cmp(bc.OP_LE, b, a, True)
        return None if swapped is None else (swapped[1], swapped[0])
    if op == bc.OP_LT:
        na = _meet_bounds(a, -INF, _sat(b[1] - 1))
        nb = _meet_bounds(b, _sat(a[0] + 1), INF)
    elif op == bc.OP_LE:
        na = _meet_bounds(a, -INF, b[1])
        nb = _meet_bounds(b, a[0], INF)
    elif op == bc.OP_EQ:
        na = _meet_bounds(a, b[0], b[1])
        nb = _meet_bounds(b, a[0], a[1])
    else:  # NE: only a singleton on one side can shave an endpoint
        na, nb = a, b
        if b[0] == b[1]:
            if a[0] == b[0]:
                na = _norm(a[0] + 1, a[1], a[2], a[3])
            elif a[1] == b[0]:
                na = _norm(a[0], a[1] - 1, a[2], a[3])
        if na is not None and a[0] == a[1]:
            if b[0] == a[0]:
                nb = _norm(b[0] + 1, b[1], b[2], b[3])
            elif b[1] == a[0]:
                nb = _norm(b[0], b[1] - 1, b[2], b[3])
    if na is None or nb is None:
        return None
    return na, nb


# ---------------------------------------------------------------------------
# Interval analysis: transfer function
# ---------------------------------------------------------------------------

#: Interval state: slot -> AVal for slots that provably hold an int.
IState = dict[int, AVal]

_STACK_LO = STACK_TOP - STACK_LIMIT


def _get(state: IState, slot: int) -> AVal:
    return state.get(slot, TOP_INT)


def _iload_bounds(size: int, signed: Any) -> AVal:
    if signed:
        half = 1 << (8 * size - 1)
        value = _norm(-half, half - 1, 1, 0)
    else:
        value = _norm(0, (1 << (8 * size)) - 1, 1, 0)
    assert value is not None
    return value


def _interval_step(ins: tuple[Any, ...], state: IState) -> None:
    """Apply one instruction's effect on the interval state in place.

    Mirrors the dispatch loop's concrete semantics: every arithmetic
    result wraps to its (mask, maxv) domain, addresses mask to 32 bits,
    loads are bounded by their access width, and anything opaque (a
    call, a float) evicts the destination slot.
    """
    op = ins[0]
    if op == bc.OP_CONST:
        if type(ins[2]) is int:
            state[ins[1]] = _exact(ins[2])
        else:
            state.pop(ins[1], None)
        return
    if op == bc.OP_MOV:
        src = state.get(ins[2])
        if src is None:
            state.pop(ins[1], None)
        else:
            state[ins[1]] = src
        return
    if op == bc.OP_ELEM or op == bc.OP_ADD_P:
        state[ins[1]] = mask32_aval(
            add_aval(_get(state, ins[2]),
                     scale_aval(_get(state, ins[3]), ins[4])))
        return
    if op == bc.OP_SUB_PI:
        state[ins[1]] = mask32_aval(
            add_aval(_get(state, ins[2]),
                     scale_aval(_get(state, ins[3]), -ins[4])))
        return
    if op == bc.OP_MEMBOFF or op == bc.OP_ADDK_P:
        state[ins[1]] = mask32_aval(
            add_aval(_get(state, ins[2]), _exact(ins[3])))
        return
    if op == bc.OP_ADD_I:
        state[ins[1]] = wrap_aval(
            add_aval(_get(state, ins[2]), _get(state, ins[3])),
            ins[4], ins[5])
        return
    if op == bc.OP_SUB_I:
        state[ins[1]] = wrap_aval(
            add_aval(_get(state, ins[2]), neg_aval(_get(state, ins[3]))),
            ins[4], ins[5])
        return
    if op == bc.OP_MUL_I:
        state[ins[1]] = wrap_aval(
            mul_aval(_get(state, ins[2]), _get(state, ins[3])),
            ins[4], ins[5])
        return
    if op == bc.OP_ADDK_I:
        state[ins[1]] = wrap_aval(
            add_aval(_get(state, ins[2]), _exact(ins[3])),
            ins[4], ins[5])
        return
    if op == bc.OP_NEG_I:
        state[ins[1]] = wrap_aval(neg_aval(_get(state, ins[2])),
                                  ins[3], ins[4])
        return
    if op == bc.OP_CONV_I:
        state[ins[1]] = wrap_aval(_get(state, ins[2]), ins[3], ins[4])
        return
    if op in bc._CMP_OPS or op == bc.OP_NOT:
        value = _norm(0, 1, 1, 0)
        assert value is not None
        state[ins[1]] = value
        return
    if op == bc.OP_SHL:
        b = state.get(ins[3])
        if b is not None and b[0] == b[1] and 0 <= b[0] <= 63:
            state[ins[1]] = wrap_aval(
                scale_aval(_get(state, ins[2]), 1 << b[0]),
                ins[4], ins[5])
        else:
            lo, hi = _dom_interval(ins[4], ins[5])
            value = _norm(lo, hi, 1, 0)
            assert value is not None
            state[ins[1]] = value
        return
    if op == bc.OP_SHR:
        a = state.get(ins[2])
        b = state.get(ins[3])
        if (a is not None and a[0] >= 0 and b is not None
                and b[0] == b[1] and 0 <= b[0] <= 63):
            value = _norm(a[0] >> b[0], a[1] >> b[0], 1, 0)
        else:
            lo, hi = _dom_interval(ins[4], ins[5])
            value = _norm(lo, hi, 1, 0)
        assert value is not None
        state[ins[1]] = value
        return
    if op == bc.OP_AND:
        a = state.get(ins[2])
        b = state.get(ins[3])
        hi = None
        if a is not None and a[0] >= 0:
            hi = a[1]
        if b is not None and b[0] >= 0:
            hi = b[1] if hi is None else min(hi, b[1])
        if hi is not None:
            value = _norm(0, hi, 1, 0)
        else:
            dlo, dhi = _dom_interval(ins[4], ins[5])
            value = _norm(dlo, dhi, 1, 0)
        assert value is not None
        state[ins[1]] = value
        return
    if op == bc.OP_BNOT:
        # (op, dst, a, mask, maxv) — domain operands sit one earlier
        # than the binary bitwise ops.
        lo, hi = _dom_interval(ins[3], ins[4])
        value = _norm(lo, hi, 1, 0)
        assert value is not None
        state[ins[1]] = value
        return
    if op in (bc.OP_OR, bc.OP_XOR, bc.OP_DIV_I, bc.OP_MOD_I):
        if op == bc.OP_MOD_I:
            a = state.get(ins[2])
            b = state.get(ins[3])
            if (b is not None and b[0] == b[1] and b[0] > 0
                    and a is not None and a[0] >= 0):
                value = _norm(0, min(a[1], b[0] - 1), 1, 0)
                assert value is not None
                state[ins[1]] = value
                return
        lo, hi = _dom_interval(ins[4], ins[5])
        value = _norm(lo, hi, 1, 0)
        assert value is not None
        state[ins[1]] = value
        return
    if op == bc.OP_LOAD_I:
        state[ins[1]] = _iload_bounds(ins[4], ins[6])
        return
    if op == bc.OP_LDELEM_I:
        state[ins[1]] = _iload_bounds(ins[5], ins[7])
        return
    if op == bc.OP_STORE_I:
        state[ins[4]] = wrap_aval(_get(state, ins[3]), ins[6], ins[7])
        return
    if op == bc.OP_STELEM_I:
        state[ins[5]] = wrap_aval(_get(state, ins[4]), ins[7], ins[8])
        return
    if op == bc.OP_STORE_P:
        state[ins[4]] = mask32_aval(_get(state, ins[3]))
        return
    if op == bc.OP_STELEM_P:
        state[ins[5]] = mask32_aval(_get(state, ins[4]))
        return
    if op == bc.OP_DECL:
        value = _norm(_STACK_LO, STACK_TOP - 1, max(1, ins[3]), 0)
        assert value is not None
        state[ins[1]] = value
        return
    if op == bc.OP_STR:
        value = _norm(GLOBAL_BASE, _M32, 1, 0)
        assert value is not None
        state[ins[1]] = value
        return
    if op == bc.OP_SUB_PP:
        value = _norm(-_M32, _M32, 1, 0)
        assert value is not None
        state[ins[1]] = value
        return
    if op == bc.OP_CONV_P:
        state[ins[1]] = mask32_aval(_get(state, ins[2]))
        return
    # Everything else that writes a register (float ops, calls, any
    # future opcode) is untracked: evict the destination rather than
    # keep a stale value. GADDR is handled by the caller (needs the
    # layout); STEP, CKPT, jumps, RET, ZFILL and WBYTES touch no
    # register.
    if op == bc.OP_CALL or op == bc.OP_CALLB:
        state.pop(ins[1], None)
        return
    wr = bc._WRITES.get(op)
    if wr is not None:
        state.pop(ins[wr], None)


def _interval_step_with_layout(
    ins: tuple[Any, ...], state: IState,
    layout: Sequence[int] | None,
) -> None:
    if ins[0] == bc.OP_GADDR:
        if layout is not None:
            state[ins[1]] = _exact(layout[ins[2]])
        else:
            value = _norm(GLOBAL_BASE, _M32, 1, 0)
            assert value is not None
            state[ins[1]] = value
        return
    _interval_step(ins, state)


def _entry_interval_state(fn: "bc.BytecodeFunction") -> IState:
    """The frame state at function entry: zero-filled slots, parameter
    slots bounded by their conversion (an in-memory parameter's slot
    holds the spilled stack address, aligned to its type)."""
    state: IState = {s: _exact(0) for s in range(fn.n_slots)}
    for spec in fn.params:
        if spec.in_memory:
            value = _norm(_STACK_LO, STACK_TOP - 1,
                          max(1, spec.ctype.alignment), 0)
            assert value is not None
            state[spec.slot] = value
        elif spec.conv == 1:
            lo, hi = _dom_interval(spec.mask, spec.maxv)
            value = _norm(lo, hi, 1, 0)
            assert value is not None
            state[spec.slot] = value
        elif spec.conv == 3:
            value = _norm(0, _M32, 1, 0)
            assert value is not None
            state[spec.slot] = value
        else:
            state.pop(spec.slot, None)
    return state


# ---------------------------------------------------------------------------
# Interval analysis: fixpoint with widening and narrowing
# ---------------------------------------------------------------------------

_WIDEN_AFTER = 4
_NARROW_PASSES = 2


def _join_istate(a: IState, b: IState) -> IState:
    out: IState = {}
    for slot, value in a.items():
        other = b.get(slot)
        if other is not None:
            out[slot] = join_aval(value, other)
    return out


def _widen_thresholds(code: Sequence[tuple[Any, ...]]) -> tuple[int, ...]:
    """Widening thresholds: the integer constants materialized by the
    function (plus 0). A counted loop's bound is always a ``CONST``
    operand of its governing compare, so widening an induction variable
    *to the threshold* instead of straight to infinity keeps it inside
    its int domain — and then the wrap transfer cannot smear the other
    bound across the whole 32-bit range."""
    values = {0}
    for ins in code:
        if ins[0] == bc.OP_CONST and type(ins[2]) is int:
            values.add(ins[2])
    return tuple(sorted(values))


def _widen_istate(old: IState, new: IState,
                  thresholds: tuple[int, ...] = ()) -> IState:
    """Jump growing bounds to the next threshold, then to ±infinity
    (congruences join by gcd and need no widening: divisor chains are
    finite)."""
    out: IState = {}
    for slot, ov in old.items():
        nv = new.get(slot)
        if nv is None:
            continue
        if nv[0] >= ov[0]:
            lo = ov[0]
        else:
            lo = max((t for t in thresholds if t <= nv[0]), default=-INF)
        if nv[1] <= ov[1]:
            hi = ov[1]
        else:
            hi = min((t for t in thresholds if t >= nv[1]), default=INF)
        mod = gcd(ov[2], nv[2], abs(ov[3] - nv[3]))
        value = _norm(lo, hi, mod, nv[3])
        assert value is not None
        out[slot] = value
    return out


def _edge_states(
    code: tuple[tuple[Any, ...], ...], cfg: CFG, block: BasicBlock,
    state: IState, layout: Sequence[int] | None,
) -> list[tuple[int, IState | None]]:
    """(successor block, refined state) pairs for one block's exit.

    ``None`` marks an edge the refinement proved dead (an interval
    became empty, e.g. the false arm of ``x == x0`` with ``x`` exact).
    """
    term = code[block.end - 1]
    op = term[0]
    index = block.end - 1
    out: list[tuple[int, IState | None]] = []
    if op == bc.OP_BR:
        a = state.get(term[2])
        b = state.get(term[3])
        for target, truth in ((term[4], bool(term[5])),
                              (index + 1, not term[5])):
            if target >= len(code):
                continue
            succ = cfg.block_at[target]
            if a is None or b is None:
                out.append((succ, state))
                continue
            refined = refine_cmp(term[1], a, b, truth)
            if refined is None:
                out.append((succ, None))
                continue
            edge = dict(state)
            edge[term[2]] = refined[0]
            edge[term[3]] = refined[1]
            out.append((succ, edge))
        return out
    if op == bc.OP_JZ or op == bc.OP_JNZ:
        src = state.get(term[1])
        for target, zero in ((term[2], op == bc.OP_JZ),
                             (index + 1, op == bc.OP_JNZ)):
            if target >= len(code):
                continue
            succ = cfg.block_at[target]
            if src is None:
                out.append((succ, state))
                continue
            if zero:
                refined_src = _meet_bounds(src, 0, 0)
                if refined_src is None:
                    out.append((succ, None))
                    continue
                edge = dict(state)
                edge[term[1]] = refined_src
                out.append((succ, edge))
            else:
                if src[0] == src[1] == 0:
                    out.append((succ, None))
                    continue
                out.append((succ, state))
        return out
    for target in _succ_indices(code, index):
        if target < len(code):
            out.append((cfg.block_at[target], state))
    return out


@dataclass
class IntervalResult:
    """Per-block interval states of one function (fused or lowered)."""

    cfg: CFG
    #: Entry state per block; ``None`` for blocks never reached.
    block_in: list[IState | None]

    def state_before(self, index: int,
                     layout: Sequence[int] | None = None) -> IState | None:
        """The abstract state just before instruction ``index``."""
        block = self.cfg.blocks[self.cfg.block_at[index]]
        entry = self.block_in[block.index]
        if entry is None:
            return None
        state = dict(entry)
        for i in range(block.start, index):
            _interval_step_with_layout(self.cfg.code[i], state, layout)
        return state


def interval_analysis(
    fn: "bc.BytecodeFunction",
    layout: Sequence[int] | None = None,
) -> IntervalResult:
    """Value-range + congruence fixpoint over one function.

    ``layout`` (see :func:`static_global_layout`) resolves ``GADDR`` to
    exact addresses; without it globals stay an opaque 32-bit range.
    Branch edges refine the compared operands, so counted loops bound
    their induction variables; widening caps the iteration count and
    two narrowing passes recover the post-loop precision widening gave
    up.
    """
    code = fn.code
    cfg = build_cfg(code)
    nb = len(cfg.blocks)
    block_in: list[IState | None] = [None] * nb
    if not nb:
        return IntervalResult(cfg=cfg, block_in=block_in)
    block_in[0] = _entry_interval_state(fn)
    thresholds = _widen_thresholds(code)
    visits = [0] * nb
    worklist = [0]
    while worklist:
        b = worklist.pop()
        entry = block_in[b]
        assert entry is not None
        state = dict(entry)
        block = cfg.blocks[b]
        # The terminator's transfer is included too: a fall-through
        # block can end in any instruction (control ops are register
        # no-ops, so this is always safe).
        for i in range(block.start, block.end):
            _interval_step_with_layout(code[i], state, layout)
        for succ, edge in _edge_states(code, cfg, block, state, layout):
            if edge is None:
                continue
            old = block_in[succ]
            if old is None:
                new = dict(edge)
            else:
                new = _join_istate(old, edge)
                if new == old:
                    continue
                visits[succ] += 1
                if visits[succ] >= _WIDEN_AFTER:
                    new = _widen_istate(old, new, thresholds)
                    if new == old:
                        continue
            block_in[succ] = new
            worklist.append(succ)
    # Narrowing: recompute entries from the (stable) edge states a few
    # times without widening. Transfers are monotone and the current
    # assignment is a post-fixpoint, so each pass only shrinks values
    # and any number of passes is sound.
    rpo = cfg.rpo()
    for _ in range(_NARROW_PASSES):
        edge_in: list[list[IState]] = [[] for _ in range(nb)]
        for b in range(nb):
            entry = block_in[b]
            if entry is None:
                continue
            state = dict(entry)
            block = cfg.blocks[b]
            for i in range(block.start, block.end):
                _interval_step_with_layout(code[i], state, layout)
            for succ, edge in _edge_states(code, cfg, block, state,
                                           layout):
                if edge is not None:
                    edge_in[succ].append(edge)
        for b in rpo:
            if b == 0 or block_in[b] is None:
                continue
            joined: IState | None = None
            for edge in edge_in[b]:
                joined = dict(edge) if joined is None \
                    else _join_istate(joined, edge)
            if joined is not None:
                block_in[b] = joined
    return IntervalResult(cfg=cfg, block_in=block_in)


# ---------------------------------------------------------------------------
# Cashing the intervals in: static layout, access facts, trip counts
# ---------------------------------------------------------------------------


def static_global_layout(bp: "bc.BytecodeProgram") -> tuple[int, ...]:
    """The address of every global, computed without running the VM.

    Replays :meth:`BytecodeVM._layout_globals` against a fresh bump
    allocator: globals are laid out in declaration order *before* any
    string interning or heap use, so the addresses are a pure function
    of the program. :meth:`Specialization.bind` re-checks the real VM's
    layout against this prediction before trusting it.
    """
    next_addr = GLOBAL_BASE
    out: list[int] = []
    for symbol in bp.global_symbols:
        align = max(1, symbol.ctype.alignment)
        addr = (next_addr + align - 1) // align * align
        next_addr = addr + max(1, symbol.ctype.size)
        out.append(addr)
    return tuple(out)


#: Memory opcode -> (address mode, operand positions, size).
#: Mode "off": address = (slots[0] + constant offset) & M32;
#: mode "elem": address = (slots[0] + slots[1] * elem_size) & M32.
_ACCESS_SHAPE: dict[int, tuple[str, tuple[int, ...], int | None]] = {
    bc.OP_LOAD_I: ("off", (2, 3), 4), bc.OP_LOAD_F: ("off", (2, 3), 4),
    bc.OP_STORE_I: ("off", (1, 2), 5), bc.OP_STORE_F: ("off", (1, 2), 5),
    bc.OP_STORE_P: ("off", (1, 2), None),
    bc.OP_LDELEM_I: ("elem", (2, 3, 4), 5),
    bc.OP_LDELEM_F: ("elem", (2, 3, 4), 5),
    bc.OP_STELEM_I: ("elem", (1, 2, 3), 6),
    bc.OP_STELEM_F: ("elem", (1, 2, 3), 6),
    bc.OP_STELEM_P: ("elem", (1, 2, 3), None),
}


@dataclass(frozen=True)
class AccessFact:
    """What the interval analysis knows about one memory access.

    ``lo``/``hi``/``mod``/``rem`` describe the effective (masked)
    address; ``size`` is the access width in bytes. ``page`` is the
    page index when every possible address lands in one page *and* the
    access cannot cross out of it; ``no_cross`` alone still licenses
    dropping the page-crossing check (alignment proof).
    """

    lo: int
    hi: int
    mod: int
    rem: int
    size: int

    @property
    def no_cross(self) -> bool:
        if (self.hi - self.lo) < _PAGE and \
                self.lo >> 12 == (self.hi + self.size - 1) >> 12:
            return True
        g = gcd(self.mod, _PAGE) if self.mod else _PAGE
        if g <= 1:
            return self.size <= 1
        return (self.rem % g) + self.size <= g

    @property
    def page(self) -> int | None:
        if self.lo >> 12 == (self.hi + self.size - 1) >> 12:
            return self.lo >> 12
        return None

    @property
    def nontrivial(self) -> bool:
        return self.lo > 0 or self.hi < _M32 or self.mod > 1


def _effective_address(ins: tuple[Any, ...], state: IState) -> AVal:
    mode, positions, _size_pos = _ACCESS_SHAPE[ins[0]]
    if mode == "off":
        base = _get(state, ins[positions[0]])
        return mask32_aval(add_aval(base, _exact(ins[positions[1]])))
    base = _get(state, ins[positions[0]])
    index = _get(state, ins[positions[1]])
    return mask32_aval(add_aval(base,
                                scale_aval(index, ins[positions[2]])))


def _access_size(ins: tuple[Any, ...]) -> int:
    size_pos = _ACCESS_SHAPE[ins[0]][2]
    return 4 if size_pos is None else ins[size_pos]


def access_facts(
    fn: "bc.BytecodeFunction",
    layout: Sequence[int] | None = None,
    result: IntervalResult | None = None,
) -> dict[int, AccessFact]:
    """One :class:`AccessFact` per reachable memory instruction of
    ``fn``, keyed by instruction index."""
    if result is None:
        result = interval_analysis(fn, layout)
    facts: dict[int, AccessFact] = {}
    code = fn.code
    for block in result.cfg.blocks:
        entry = result.block_in[block.index]
        if entry is None:
            continue
        state = dict(entry)
        for i in range(block.start, block.end):
            ins = code[i]
            if ins[0] in _ACCESS_SHAPE:
                addr = _effective_address(ins, state)
                facts[i] = AccessFact(lo=addr[0], hi=addr[1],
                                      mod=addr[2], rem=addr[3],
                                      size=_access_size(ins))
            _interval_step_with_layout(ins, state, layout)
    return facts


def loop_trip_counts(
    fn: "bc.BytecodeFunction",
    checkpoint_map: Any,
    layout: Sequence[int] | None = None,
) -> dict[int, int | None]:
    """Best-effort static trip-count bound per loop-begin checkpoint.

    For each ``OP_CKPT`` carrying a loop-begin id, the governing fused
    branch (the first conditional terminator reachable from the
    checkpoint's block) compares the induction variable against its
    bound; the refined interval on the *body* edge bounds how many
    values the variable can take. Returns ``{checkpoint_id: max_trips}``
    with ``None`` when no finite bound is provable — enough to recognise
    the paper's counted affine loops without a full induction-variable
    analysis.
    """
    from repro.sim.trace import LOOP_BEGIN_CODE as loop_code
    result = interval_analysis(fn, layout)
    cfg = result.cfg
    out: dict[int, int | None] = {}
    for i, ins in enumerate(fn.code):
        if ins[0] != bc.OP_CKPT or ins[2] != loop_code:
            continue
        info = checkpoint_map.infos.get(ins[1]) if checkpoint_map else None
        if info is None:
            continue
        bound: int | None = None
        # Walk forward (through unconditional chains) to the branch.
        block = cfg.blocks[cfg.block_at[i]]
        for _hop in range(4):
            term = fn.code[block.end - 1]
            if term[0] == bc.OP_BR:
                state = result.state_before(block.end - 1, layout)
                if state is not None:
                    a = state.get(term[2])
                    b = state.get(term[3])
                    if a is not None and b is not None:
                        refined = refine_cmp(term[1], a, b, True)
                        if refined is not None:
                            lo, hi, mod, _ = refined[0]
                            if -INF < lo and hi < INF:
                                step = mod if mod > 1 else 1
                                bound = (hi - lo) // step + 1
                break
            successors = cfg.succs[block.index]
            if len(successors) == 1:  # JMP or plain fall-through
                block = cfg.blocks[successors[0]]
                continue
            break
        out[ins[1]] = bound
    return out
