"""Parameterized input generation for the simulated "file" input.

The paper's benchmarks stage their inputs through C library reads; our
stand-in is the ``read_samples`` builtin, which fills a buffer with
deterministic 32-bit samples through traced library stores. Historically
the sample stream was a single hard-coded LCG — every workload profiled
exactly one input, so the paper's open question (how dependent is the
extracted model on the profiling input?) was never exercised.

:class:`InputSpec` makes the stream a run parameter: a seeded generator
with a named value *distribution* and shape knobs. Workloads declare
input *scenarios* (see :mod:`repro.workloads.base`) built from these
specs, and the validation pipeline stage replays every scenario's trace
against the model extracted from the profiling scenario.

The default spec reproduces the legacy stream bit-for-bit, so existing
traces, models and table metrics are unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass

#: glibc-style LCG constants (same generator the rand() builtin uses).
_LCG_MULTIPLIER = 1103515245
_LCG_INCREMENT = 12345
_LCG_MASK = 0x7FFFFFFF

#: Seed of the legacy hard-coded stream (kept as the default).
DEFAULT_SEED = 20050307

#: Recognized value distributions.
DISTRIBUTIONS = ("uniform", "constant", "ramp", "impulse", "walk")


@dataclass(frozen=True)
class InputSpec:
    """One deterministic input ensemble for ``read_samples``.

    * ``uniform`` — LCG white noise in ``[-amplitude/2, amplitude/2)``
      (the legacy stream when ``seed``/``amplitude`` keep their defaults);
    * ``constant`` — every sample equals ``amplitude`` (0 = silence);
    * ``ramp`` — a sawtooth sweep of period ``period`` spanning the
      amplitude range (slowly-varying, highly correlated input);
    * ``impulse`` — zero except one ``amplitude`` spike every ``period``
      samples (edge-shaped input);
    * ``walk`` — a seeded random walk clipped to ``±amplitude/2``
      (speech-like low-frequency content).
    """

    seed: int = DEFAULT_SEED
    distribution: str = "uniform"
    amplitude: int = 1024
    period: int = 64

    def __post_init__(self) -> None:
        if self.distribution not in DISTRIBUTIONS:
            raise ValueError(
                f"unknown input distribution {self.distribution!r}; "
                f"choose from {DISTRIBUTIONS}"
            )


class InputStream:
    """Stateful sample generator for one run; owned by the engine.

    ``read_samples`` pulls from this stream, so consecutive calls continue
    the same sequence (as consecutive reads of one input file would).
    """

    __slots__ = ("spec", "_state", "_index", "_level")

    def __init__(self, spec: InputSpec | None = None):
        self.spec = spec or InputSpec()
        self._state = self.spec.seed & _LCG_MASK
        self._index = 0
        self._level = 0

    def _advance(self) -> int:
        self._state = (
            self._state * _LCG_MULTIPLIER + _LCG_INCREMENT
        ) & _LCG_MASK
        return self._state

    def next_sample(self) -> int:
        """The next 32-bit sample of the ensemble."""
        spec = self.spec
        index = self._index
        self._index = index + 1
        distribution = spec.distribution
        if distribution == "uniform":
            amplitude = max(1, spec.amplitude)
            return (self._advance() >> 8) % amplitude - amplitude // 2
        if distribution == "constant":
            return spec.amplitude
        if distribution == "ramp":
            period = max(2, spec.period)
            phase = index % period
            return phase * spec.amplitude // (period - 1) - spec.amplitude // 2
        if distribution == "impulse":
            period = max(1, spec.period)
            return spec.amplitude if index % period == 0 else 0
        # walk
        half = max(1, abs(spec.amplitude) // 2)
        step = (self._advance() >> 8) % 65 - 32
        level = self._level + step
        if level > half:
            level = half
        elif level < -half:
            level = -half
        self._level = level
        return level
