"""Tree-walking interpreter for MiniC — the paper's "instruction set simulator".

The interpreter executes an analyzed (and usually instrumented) program over
the simulated memory of :mod:`repro.sim.memory` and streams trace records to
any number of sinks:

* every execution of an instrumented loop emits the paper's three
  checkpoints (loop-begin / body-begin / body-end);
* every access to simulated memory emits an :class:`~repro.sim.trace.Access`
  with a synthetic pc derived from the AST node performing the access
  (loads and stores of the same site get distinct pcs, as distinct machine
  instructions would).

Register promotion: scalar locals and parameters whose address is never
taken live in per-frame "registers" and generate no memory traffic — this
matches the paper's Figure 4(c) trace, which contains exactly one store per
inner-loop iteration for ``*ptr++ = ...`` and nothing for the loop
variables. Globals, arrays, structs, heap data and address-taken locals
live in memory and are traced.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.lang import ast_nodes as ast
from repro.lang.ctypes_ import (
    ArrayType,
    CType,
    FloatType,
    IntType,
    PointerType,
    StructType,
    decay,
)
from repro.lang.errors import MiniCRuntimeError
from repro.lang.semantics import Symbol
from repro.sim import builtins as libc
from repro.sim.inputs import InputSpec, InputStream
from repro.sim.builtins import ExitSignal
from repro.sim.memory import (
    GLOBAL_BASE,
    HEAP_BASE,
    BumpAllocator,
    Memory,
    StackAllocator,
)
from repro.sim.trace import (
    BODY_BEGIN_CODE,
    BODY_END_CODE,
    DEFAULT_TRACE_BLOCK,
    LIB_PC_BASE,
    LOOP_BEGIN_CODE,
    ColumnBlock,
    TraceSink,
    load_pc,
    split_sinks,
    store_pc,
)

_ADDR_MASK = 0xFFFFFFFF


class _BreakSignal(Exception):
    pass


class _ContinueSignal(Exception):
    pass


class _ReturnSignal(Exception):
    def __init__(self, value):
        self.value = value
        super().__init__()


class ExecLimitExceeded(MiniCRuntimeError):
    """The configured instruction budget was exhausted."""


@dataclass
class Frame:
    function: ast.FunctionDef
    regs: dict[Symbol, object] = field(default_factory=dict)
    mem_vars: dict[Symbol, int] = field(default_factory=dict)
    stack_marker: int = 0


@dataclass
class RunStats:
    """Aggregate counters maintained by the interpreter during a run."""

    steps: int = 0
    accesses: int = 0
    checkpoints: int = 0
    calls: int = 0


class Interpreter:
    """Executes one program. Create a fresh instance per run."""

    def __init__(
        self,
        program: ast.Program,
        sinks: tuple[TraceSink, ...] = (),
        max_steps: int = 200_000_000,
        max_call_depth: int = 512,
        trace_block_size: int = DEFAULT_TRACE_BLOCK,
        input_spec: InputSpec | None = None,
    ):
        self.program = program
        self._sinks = tuple(sinks)
        self._col_sinks, self._tup_sinks = split_sinks(self._sinks)
        self._max_steps = max_steps
        self._max_call_depth = max_call_depth
        self._block_size = max(1, trace_block_size)
        # Batched trace buffers (see repro.sim.trace): raw access and
        # checkpoint tuples, flushed to sinks in blocks.
        self._acc_buf: list[tuple[int, int, int, bool]] = []
        self._cp_buf: list[tuple[int, int, int]] = []

        self.memory = Memory()
        self._globals_alloc = BumpAllocator(GLOBAL_BASE)
        self._heap_alloc = BumpAllocator(HEAP_BASE)
        self._stack = StackAllocator()
        self._global_addrs: dict[Symbol, int] = {}
        self._string_pool: dict[str, int] = {}
        self._frames: list[Frame] = []
        self._trace_on = False
        self.stats = RunStats()
        self.stdout = ""
        self.rand_state = 1  # deterministic rand() seed
        #: Sample source of the read_samples() builtin (seeded ensemble).
        self.input_stream = InputStream(input_spec)

        self._layout_globals()

    # ------------------------------------------------------------------
    # Public entry points
    # ------------------------------------------------------------------

    def run(self, entry: str = "main") -> int:
        """Execute ``entry`` (tracing enabled) and return its exit code."""
        if not self.program.has_function(entry):
            raise MiniCRuntimeError(f"no entry function {entry!r}")
        # A simulated call consumes a few dozen Python frames, so the
        # Python recursion limit must comfortably exceed the simulated
        # call-depth limit (which reports the friendly error).
        import sys

        old_limit = sys.getrecursionlimit()
        sys.setrecursionlimit(max(old_limit, 64 * self._max_call_depth))
        self._trace_on = True
        try:
            result = self._call_function(self.program.function(entry), [])
        except ExitSignal as signal:
            return signal.code
        finally:
            self._trace_on = False
            self._flush_trace()
            sys.setrecursionlimit(old_limit)
        return int(result) if result is not None else 0

    # ------------------------------------------------------------------
    # Builtin facade (used by repro.sim.builtins)
    # ------------------------------------------------------------------

    def write_stdout(self, text: str) -> None:
        self.stdout += text

    def heap_alloc(self, size: int) -> int:
        return self._heap_alloc.allocate(max(1, size))

    def lib_load(self, builtin: str, addr: int, size: int) -> int:
        value = self.memory.read_int(addr, size, signed=False)
        if self._trace_on:
            pc = LIB_PC_BASE + 8 * libc.BUILTIN_INDEX[builtin]
            self._emit_access(pc, addr, size, False)
        return value

    def lib_store(self, builtin: str, addr: int, value: int, size: int) -> None:
        self.memory.write_int(addr, value, size)
        if self._trace_on:
            pc = LIB_PC_BASE + 8 * libc.BUILTIN_INDEX[builtin] + 4
            self._emit_access(pc, addr, size, True)

    # ------------------------------------------------------------------
    # Trace plumbing
    # ------------------------------------------------------------------

    def _emit_access(self, pc: int, addr: int, size: int, is_write: bool) -> None:
        self.stats.accesses += 1
        if self._sinks:
            self._acc_buf.append((pc, addr, size, is_write))
            if len(self._acc_buf) >= self._block_size:
                self._flush_trace()

    def _emit_checkpoint(self, checkpoint_id: int, kind_code: int) -> None:
        if not self._trace_on:
            return
        self.stats.checkpoints += 1
        if self._sinks:
            self._cp_buf.append((len(self._acc_buf), checkpoint_id, kind_code))
            # Access-free loops still produce checkpoints; bound that
            # buffer too so blocks stay constant-size.
            if len(self._cp_buf) >= self._block_size:
                self._flush_trace()

    def _flush_trace(self) -> None:
        if not self._acc_buf and not self._cp_buf:
            return
        accesses, checkpoints = self._acc_buf, self._cp_buf
        self._acc_buf, self._cp_buf = [], []
        if self._col_sinks:
            # Wrapping the tuple buffers is free; columnar sinks see the
            # same ColumnBlock interface as on the bytecode engine.
            block = ColumnBlock.from_tuples(accesses, checkpoints)
            for sink in self._col_sinks:
                sink.emit_columns(block)
        for sink in self._tup_sinks:
            sink.emit_block(accesses, checkpoints)

    def _bump_steps(self, amount: int = 1) -> None:
        self.stats.steps += amount
        if self.stats.steps > self._max_steps:
            raise ExecLimitExceeded(
                f"execution exceeded the budget of {self._max_steps} steps"
            )

    # ------------------------------------------------------------------
    # Program loading
    # ------------------------------------------------------------------

    def _layout_globals(self) -> None:
        """Allocate and initialize globals; runs with tracing off."""
        for decl_stmt in self.program.globals:
            for decl in decl_stmt.decls:
                symbol = decl.symbol
                assert isinstance(symbol, Symbol)
                addr = self._globals_alloc.allocate(
                    symbol.ctype.size, symbol.ctype.alignment
                )
                self._global_addrs[symbol] = addr
        # Initializers run after all globals have addresses so that
        # "char *p = q;" can reference a later-declared array.
        for decl_stmt in self.program.globals:
            for decl in decl_stmt.decls:
                if decl.init is not None:
                    addr = self._global_addrs[decl.symbol]
                    self._init_object(addr, decl.symbol.ctype, decl.init, None)

    def _intern_string(self, text: str) -> int:
        addr = self._string_pool.get(text)
        if addr is None:
            data = text.encode("latin-1", errors="replace") + b"\0"
            addr = self._globals_alloc.allocate(len(data), 1)
            self.memory.write_bytes(addr, data)
            self._string_pool[text] = addr
        return addr

    # ------------------------------------------------------------------
    # Functions and frames
    # ------------------------------------------------------------------

    def _call_function(self, fn: ast.FunctionDef, args: list) -> object:
        if len(self._frames) >= self._max_call_depth:
            raise MiniCRuntimeError(f"call depth exceeded in {fn.name!r}")
        self.stats.calls += 1
        frame = Frame(fn, stack_marker=self._stack.push_frame())
        for param, arg in zip(fn.params, args):
            symbol = param.symbol
            assert isinstance(symbol, Symbol)
            value = self._convert(arg, symbol.ctype)
            if symbol.in_memory:
                addr = self._stack.allocate(symbol.ctype.size, symbol.ctype.alignment)
                frame.mem_vars[symbol] = addr
                self._store_raw(addr, value, symbol.ctype)
            else:
                frame.regs[symbol] = value
        self._frames.append(frame)
        result = None
        try:
            self._exec_block(fn.body)
        except _ReturnSignal as signal:
            result = signal.value
        finally:
            self._frames.pop()
            self._stack.pop_frame(frame.stack_marker)
        if result is None and not fn.return_type.is_void:
            result = 0  # tolerate missing return, like traditional C
        return result

    @property
    def _frame(self) -> Frame:
        return self._frames[-1]

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------

    def _exec_block(self, block: ast.Block) -> None:
        for stmt in block.stmts:
            self._exec_stmt(stmt)

    def _exec_stmt(self, stmt: ast.Stmt) -> None:
        self._bump_steps()
        method = _STMT_DISPATCH.get(type(stmt))
        if method is None:  # pragma: no cover - defensive
            raise MiniCRuntimeError(f"cannot execute {type(stmt).__name__}",
                                    stmt.location)
        method(self, stmt)

    def _exec_decl(self, stmt: ast.DeclStmt) -> None:
        for decl in stmt.decls:
            symbol = decl.symbol
            assert isinstance(symbol, Symbol)
            if symbol.in_memory:
                addr = self._stack.allocate(symbol.ctype.size, symbol.ctype.alignment)
                self._frame.mem_vars[symbol] = addr
                if decl.init is not None:
                    self._init_object(addr, symbol.ctype, decl.init, decl.init)
                else:
                    # Fresh stack storage starts zeroed (deterministic runs).
                    self.memory.write_bytes(addr, bytes(symbol.ctype.size))
            else:
                value = self._eval(decl.init) if decl.init is not None else 0
                self._frame.regs[symbol] = self._convert(value, symbol.ctype)

    def _init_object(self, addr: int, ctype: CType, init: ast.Expr,
                     trace_node: ast.Expr | None) -> None:
        """Write an initializer into memory (recursively for brace lists).

        ``trace_node`` non-None makes element writes traced (local decls);
        global initialization passes None and stays silent, like program
        load in a real system.
        """
        if isinstance(init, ast.Call) and init.name == "__init_list__":
            if isinstance(ctype, ArrayType):
                element = ctype.element
                for index, item in enumerate(init.args[: ctype.length]):
                    self._init_object(addr + index * element.size, element, item,
                                      item if trace_node is not None else None)
                # Remaining elements are zero, as in C.
                used = min(len(init.args), ctype.length) * element.size
                self.memory.write_bytes(addr + used, bytes(ctype.size - used))
            elif isinstance(ctype, StructType):
                self.memory.write_bytes(addr, bytes(ctype.size))
                for item, member in zip(init.args, ctype.members):
                    self._init_object(addr + member.offset, member.ctype, item,
                                      item if trace_node is not None else None)
            else:
                raise MiniCRuntimeError("brace initializer on a scalar", init.location)
            return
        if isinstance(init, ast.StringLiteral) and isinstance(ctype, ArrayType):
            data = init.value.encode("latin-1", errors="replace") + b"\0"
            data = data[: ctype.length].ljust(ctype.length, b"\0")
            self.memory.write_bytes(addr, data)
            return
        value = self._eval(init)
        value = self._convert(value, ctype)
        if trace_node is not None:
            self._store_mem(addr, value, ctype, trace_node)
        else:
            self._store_raw(addr, value, ctype)

    def _exec_expr_stmt(self, stmt: ast.ExprStmt) -> None:
        self._eval(stmt.expr)

    def _exec_if(self, stmt: ast.If) -> None:
        if self._truthy(self._eval(stmt.cond)):
            self._exec_stmt(stmt.then_stmt)
        elif stmt.else_stmt is not None:
            self._exec_stmt(stmt.else_stmt)

    def _exec_for(self, stmt: ast.For) -> None:
        if stmt.is_instrumented:
            self._emit_checkpoint(stmt.begin_id, LOOP_BEGIN_CODE)
        if stmt.init is not None:
            self._exec_stmt(stmt.init)
        while stmt.cond is None or self._truthy(self._eval(stmt.cond)):
            self._bump_steps()
            if stmt.is_instrumented:
                self._emit_checkpoint(stmt.body_begin_id, BODY_BEGIN_CODE)
            try:
                # The body-end checkpoint sits in a cleanup position so it
                # fires on every body exit (normal, break, continue,
                # return) and the checkpoint stream stays well-nested —
                # see the note in repro/instrument/checkpoints.py.
                try:
                    self._exec_stmt(stmt.body)
                finally:
                    if stmt.is_instrumented:
                        self._emit_checkpoint(stmt.body_end_id,
                                              BODY_END_CODE)
            except _BreakSignal:
                return
            except _ContinueSignal:
                pass
            if stmt.step is not None:
                self._eval(stmt.step)

    def _exec_while(self, stmt: ast.While) -> None:
        if stmt.is_instrumented:
            self._emit_checkpoint(stmt.begin_id, LOOP_BEGIN_CODE)
        while self._truthy(self._eval(stmt.cond)):
            self._bump_steps()
            if stmt.is_instrumented:
                self._emit_checkpoint(stmt.body_begin_id, BODY_BEGIN_CODE)
            try:
                try:
                    self._exec_stmt(stmt.body)
                finally:
                    if stmt.is_instrumented:
                        self._emit_checkpoint(stmt.body_end_id,
                                              BODY_END_CODE)
            except _BreakSignal:
                return
            except _ContinueSignal:
                continue

    def _exec_do_while(self, stmt: ast.DoWhile) -> None:
        if stmt.is_instrumented:
            self._emit_checkpoint(stmt.begin_id, LOOP_BEGIN_CODE)
        while True:
            self._bump_steps()
            if stmt.is_instrumented:
                self._emit_checkpoint(stmt.body_begin_id, BODY_BEGIN_CODE)
            try:
                try:
                    self._exec_stmt(stmt.body)
                finally:
                    if stmt.is_instrumented:
                        self._emit_checkpoint(stmt.body_end_id,
                                              BODY_END_CODE)
            except _BreakSignal:
                return
            except _ContinueSignal:
                pass
            if not self._truthy(self._eval(stmt.cond)):
                return

    def _exec_return(self, stmt: ast.Return) -> None:
        value = self._eval(stmt.expr) if stmt.expr is not None else None
        raise _ReturnSignal(value)

    def _exec_break(self, stmt: ast.Break) -> None:
        raise _BreakSignal()

    def _exec_continue(self, stmt: ast.Continue) -> None:
        raise _ContinueSignal()

    def _exec_noop(self, stmt) -> None:
        pass

    # ------------------------------------------------------------------
    # Expressions
    # ------------------------------------------------------------------

    def _eval(self, expr: ast.Expr) -> object:
        method = _EXPR_DISPATCH.get(type(expr))
        if method is None:  # pragma: no cover - defensive
            raise MiniCRuntimeError(f"cannot evaluate {type(expr).__name__}",
                                    expr.location)
        return method(self, expr)

    def _truthy(self, value: object) -> bool:
        return value != 0

    # -- loads and stores ---------------------------------------------------

    def _load_mem(self, addr: int, ctype: CType, node: ast.Expr) -> object:
        value = self._load_raw(addr, ctype)
        if self._trace_on:
            self._emit_access(load_pc(node.node_id), addr, ctype.size, False)
        return value

    def _load_raw(self, addr: int, ctype: CType) -> object:
        addr &= _ADDR_MASK
        if isinstance(ctype, IntType):
            return self.memory.read_int(addr, ctype.size, ctype.signed)
        if isinstance(ctype, FloatType):
            return self.memory.read_float(addr, ctype.size)
        if isinstance(ctype, PointerType):
            return self.memory.read_int(addr, ctype.size, signed=False)
        raise MiniCRuntimeError(f"cannot load a value of type {ctype}")

    def _store_mem(self, addr: int, value: object, ctype: CType,
                   node: ast.Expr) -> None:
        self._store_raw(addr, value, ctype)
        if self._trace_on:
            self._emit_access(store_pc(node.node_id), addr & _ADDR_MASK,
                              ctype.size, True)

    def _store_raw(self, addr: int, value: object, ctype: CType) -> None:
        addr &= _ADDR_MASK
        if isinstance(ctype, IntType):
            self.memory.write_int(addr, int(value), ctype.size)
        elif isinstance(ctype, FloatType):
            self.memory.write_float(addr, float(value), ctype.size)
        elif isinstance(ctype, PointerType):
            self.memory.write_int(addr, int(value) & _ADDR_MASK, ctype.size)
        else:
            raise MiniCRuntimeError(f"cannot store a value of type {ctype}")

    def _convert(self, value: object, ctype: CType) -> object:
        if isinstance(ctype, IntType):
            return ctype.wrap(int(value))
        if isinstance(ctype, FloatType):
            return float(value)
        if isinstance(ctype, PointerType):
            return int(value) & _ADDR_MASK
        return value

    # -- lvalues ---------------------------------------------------------

    def _lvalue(self, expr: ast.Expr) -> tuple[str, object]:
        """Return ("r", symbol) for register variables or ("m", addr)."""
        if isinstance(expr, ast.Identifier):
            symbol = expr.symbol
            assert isinstance(symbol, Symbol)
            if not symbol.in_memory:
                return ("r", symbol)
            return ("m", self._symbol_addr(symbol))
        if isinstance(expr, ast.Index):
            return ("m", self._element_addr(expr))
        if isinstance(expr, ast.Member):
            return ("m", self._member_addr(expr))
        if isinstance(expr, ast.Unary) and expr.op == "*":
            return ("m", int(self._eval(expr.operand)) & _ADDR_MASK)
        raise MiniCRuntimeError("expression is not an lvalue", expr.location)

    def _symbol_addr(self, symbol: Symbol) -> int:
        if symbol.storage == "global":
            return self._global_addrs[symbol]
        addr = self._frame.mem_vars.get(symbol)
        if addr is None:
            raise MiniCRuntimeError(f"variable {symbol.name!r} has no storage")
        return addr

    def _element_addr(self, expr: ast.Index) -> int:
        base = int(self._eval(expr.base))
        index = int(self._eval(expr.index))
        assert expr.ctype is not None
        return (base + index * expr.ctype.size) & _ADDR_MASK

    def _member_addr(self, expr: ast.Member) -> int:
        base = int(self._eval(expr.base))
        base_type = expr.base.ctype
        assert base_type is not None
        if expr.is_arrow:
            struct = decay(base_type).pointee  # type: ignore[attr-defined]
        else:
            struct = base_type
        assert isinstance(struct, StructType)
        return (base + struct.member(expr.name).offset) & _ADDR_MASK

    def _read_lvalue(self, lv: tuple[str, object], ctype: CType,
                     node: ast.Expr) -> object:
        kind, ref = lv
        if kind == "r":
            return self._frame.regs.get(ref, 0)
        return self._load_mem(int(ref), ctype, node)

    def _write_lvalue(self, lv: tuple[str, object], value: object, ctype: CType,
                      node: ast.Expr) -> None:
        kind, ref = lv
        if kind == "r":
            self._frame.regs[ref] = self._convert(value, ctype)
        else:
            self._store_mem(int(ref), self._convert(value, ctype), ctype, node)

    # -- expression node evaluators -----------------------------------------

    def _eval_int_literal(self, expr: ast.IntLiteral):
        return expr.value

    def _eval_float_literal(self, expr: ast.FloatLiteral):
        return expr.value

    def _eval_string_literal(self, expr: ast.StringLiteral):
        return self._intern_string(expr.value)

    def _eval_identifier(self, expr: ast.Identifier):
        symbol = expr.symbol
        assert isinstance(symbol, Symbol)
        if not symbol.in_memory:
            return self._frame.regs.get(symbol, 0)
        addr = self._symbol_addr(symbol)
        if symbol.ctype.is_array or symbol.ctype.is_struct:
            return addr  # aggregates evaluate to their address (decay)
        return self._load_mem(addr, symbol.ctype, expr)

    def _eval_unary(self, expr: ast.Unary):
        op = expr.op
        if op == "*":
            addr = int(self._eval(expr.operand)) & _ADDR_MASK
            assert expr.ctype is not None
            if expr.ctype.is_array or expr.ctype.is_struct:
                return addr
            return self._load_mem(addr, expr.ctype, expr)
        if op == "&":
            kind, ref = self._lvalue(expr.operand)
            if kind == "r":  # pragma: no cover - semantics forces memory
                raise MiniCRuntimeError("address of a register variable",
                                        expr.location)
            return ref
        value = self._eval(expr.operand)
        if op == "-":
            return self._convert(-value, expr.ctype)
        if op == "+":
            return value
        if op == "!":
            return 0 if self._truthy(value) else 1
        if op == "~":
            return self._convert(~int(value), expr.ctype)
        raise MiniCRuntimeError(f"unknown unary {op!r}", expr.location)  # pragma: no cover

    def _eval_incdec(self, expr: ast.IncDec):
        lv = self._lvalue(expr.operand)
        ctype = expr.operand.ctype
        assert ctype is not None
        old = self._read_lvalue(lv, ctype, expr.operand)
        step = 1
        if isinstance(ctype, PointerType):
            step = max(1, ctype.pointee.size)
        new = old + step if expr.op == "++" else old - step
        self._write_lvalue(lv, new, ctype, expr.operand)
        return old if expr.is_postfix else self._convert(new, ctype)

    def _eval_binary(self, expr: ast.Binary):
        op = expr.op
        if op == "&&":
            if not self._truthy(self._eval(expr.left)):
                return 0
            return 1 if self._truthy(self._eval(expr.right)) else 0
        if op == "||":
            if self._truthy(self._eval(expr.left)):
                return 1
            return 1 if self._truthy(self._eval(expr.right)) else 0

        left = self._eval(expr.left)
        right = self._eval(expr.right)
        if op in ("==", "!=", "<", ">", "<=", ">="):
            return self._compare(op, left, right)

        left_type = decay(expr.left.ctype)
        right_type = decay(expr.right.ctype)
        if op == "+":
            if left_type.is_pointer:
                return (int(left) + int(right) * left_type.pointee.size) & _ADDR_MASK
            if right_type.is_pointer:
                return (int(right) + int(left) * right_type.pointee.size) & _ADDR_MASK
            return self._convert(left + right, expr.ctype)
        if op == "-":
            if left_type.is_pointer and right_type.is_pointer:
                return self._c_div(int(left) - int(right), left_type.pointee.size)
            if left_type.is_pointer:
                return (int(left) - int(right) * left_type.pointee.size) & _ADDR_MASK
            return self._convert(left - right, expr.ctype)
        if op == "*":
            return self._convert(left * right, expr.ctype)
        if op == "/":
            if isinstance(expr.ctype, FloatType):
                if right == 0:
                    raise MiniCRuntimeError("floating division by zero",
                                            expr.location)
                return left / right
            if right == 0:
                raise MiniCRuntimeError("integer division by zero", expr.location)
            return self._convert(self._c_div(int(left), int(right)), expr.ctype)
        if op == "%":
            if right == 0:
                raise MiniCRuntimeError("modulo by zero", expr.location)
            return self._convert(self._c_mod(int(left), int(right)), expr.ctype)
        if op == "<<":
            return self._convert(int(left) << (int(right) & 63), expr.ctype)
        if op == ">>":
            return self._convert(int(left) >> (int(right) & 63), expr.ctype)
        if op == "&":
            return self._convert(int(left) & int(right), expr.ctype)
        if op == "|":
            return self._convert(int(left) | int(right), expr.ctype)
        if op == "^":
            return self._convert(int(left) ^ int(right), expr.ctype)
        raise MiniCRuntimeError(f"unknown binary {op!r}", expr.location)  # pragma: no cover

    @staticmethod
    def _c_div(a: int, b: int) -> int:
        """C integer division: truncation toward zero."""
        q = abs(a) // abs(b)
        return q if (a < 0) == (b < 0) else -q

    @classmethod
    def _c_mod(cls, a: int, b: int) -> int:
        return a - cls._c_div(a, b) * b

    @staticmethod
    def _compare(op: str, left, right) -> int:
        if op == "==":
            return 1 if left == right else 0
        if op == "!=":
            return 1 if left != right else 0
        if op == "<":
            return 1 if left < right else 0
        if op == ">":
            return 1 if left > right else 0
        if op == "<=":
            return 1 if left <= right else 0
        return 1 if left >= right else 0

    def _eval_assign(self, expr: ast.Assign):
        lv = self._lvalue(expr.target)
        target_type = expr.target.ctype
        assert target_type is not None
        if expr.op == "":
            value = self._eval(expr.value)
        else:
            old = self._read_lvalue(lv, target_type, expr.target)
            rhs = self._eval(expr.value)
            value = self._apply_compound(expr, old, rhs, target_type)
        self._write_lvalue(lv, value, target_type, expr.target)
        return self._convert(value, target_type)

    def _apply_compound(self, expr: ast.Assign, old, rhs, target_type: CType):
        op = expr.op
        if isinstance(target_type, PointerType) and op in ("+", "-"):
            delta = int(rhs) * target_type.pointee.size
            return (int(old) + delta) if op == "+" else (int(old) - delta)
        if op == "+":
            return old + rhs
        if op == "-":
            return old - rhs
        if op == "*":
            return old * rhs
        if op == "/":
            if rhs == 0:
                raise MiniCRuntimeError("division by zero", expr.location)
            if target_type.is_float:
                return old / rhs
            return self._c_div(int(old), int(rhs))
        if op == "%":
            if rhs == 0:
                raise MiniCRuntimeError("modulo by zero", expr.location)
            return self._c_mod(int(old), int(rhs))
        if op == "<<":
            return int(old) << (int(rhs) & 63)
        if op == ">>":
            return int(old) >> (int(rhs) & 63)
        if op == "&":
            return int(old) & int(rhs)
        if op == "|":
            return int(old) | int(rhs)
        if op == "^":
            return int(old) ^ int(rhs)
        raise MiniCRuntimeError(f"unknown compound operator {op!r}",  # pragma: no cover
                                expr.location)

    def _eval_ternary(self, expr: ast.Ternary):
        if self._truthy(self._eval(expr.cond)):
            return self._eval(expr.then_expr)
        return self._eval(expr.else_expr)

    def _eval_call(self, expr: ast.Call):
        args = [self._eval(arg) for arg in expr.args]
        if expr.is_builtin:
            return libc.call_builtin(self, expr.name, args)
        fn = self.program.function(expr.name)
        return self._call_function(fn, args)

    def _eval_index(self, expr: ast.Index):
        addr = self._element_addr(expr)
        assert expr.ctype is not None
        if expr.ctype.is_array or expr.ctype.is_struct:
            return addr
        return self._load_mem(addr, expr.ctype, expr)

    def _eval_member(self, expr: ast.Member):
        addr = self._member_addr(expr)
        assert expr.ctype is not None
        if expr.ctype.is_array or expr.ctype.is_struct:
            return addr
        return self._load_mem(addr, expr.ctype, expr)

    def _eval_cast(self, expr: ast.Cast):
        value = self._eval(expr.operand)
        return self._convert(value, expr.target_type)

    def _eval_sizeof_type(self, expr: ast.SizeofType):
        return expr.queried_type.size

    def _eval_sizeof_expr(self, expr: ast.SizeofExpr):
        # sizeof does not evaluate its operand (C semantics).
        assert expr.operand.ctype is not None
        return expr.operand.ctype.size


_STMT_DISPATCH = {
    ast.DeclStmt: Interpreter._exec_decl,
    ast.ExprStmt: Interpreter._exec_expr_stmt,
    ast.EmptyStmt: Interpreter._exec_noop,
    ast.Block: Interpreter._exec_block,
    ast.If: Interpreter._exec_if,
    ast.For: Interpreter._exec_for,
    ast.While: Interpreter._exec_while,
    ast.DoWhile: Interpreter._exec_do_while,
    ast.Return: Interpreter._exec_return,
    ast.Break: Interpreter._exec_break,
    ast.Continue: Interpreter._exec_continue,
}

_EXPR_DISPATCH = {
    ast.IntLiteral: Interpreter._eval_int_literal,
    ast.FloatLiteral: Interpreter._eval_float_literal,
    ast.StringLiteral: Interpreter._eval_string_literal,
    ast.Identifier: Interpreter._eval_identifier,
    ast.Unary: Interpreter._eval_unary,
    ast.IncDec: Interpreter._eval_incdec,
    ast.Binary: Interpreter._eval_binary,
    ast.Assign: Interpreter._eval_assign,
    ast.Ternary: Interpreter._eval_ternary,
    ast.Call: Interpreter._eval_call,
    ast.Index: Interpreter._eval_index,
    ast.Member: Interpreter._eval_member,
    ast.Cast: Interpreter._eval_cast,
    ast.SizeofType: Interpreter._eval_sizeof_type,
    ast.SizeofExpr: Interpreter._eval_sizeof_expr,
}
