"""Trace records, sinks, and the paper-compatible text trace format.

The simulator (our stand-in for the modified SimpleScalar of the paper)
emits a stream of two record kinds:

* :class:`Checkpoint` — execution of a checkpoint instruction inserted by
  the annotator (paper Algorithm 1, step 1);
* :class:`Access` — one memory access, carrying the synthetic instruction
  pc and the accessed address.

The text format matches the paper's Figure 4(c)::

    Checkpoint: 12
    Instr: 4002a0 addr: 7fff5934 wr

Checkpoint *kinds* are not part of the text format (as in the paper); the
reader restores them from the :class:`CheckpointMap` produced by the
instrumentation pass.

pcs are synthetic: user-code access sites get
``USER_PC_BASE + 8*node_id (+4 for stores)``; accesses made inside library
builtins get pcs at ``LIB_PC_BASE`` and above, which is how Table III's
"system call" classification is reproduced.

Batched protocol
----------------

The engines do not hand sinks one record object at a time. They append raw
tuples to preallocated buffers and flush them in blocks through
:meth:`TraceSink.emit_block`:

* accesses are ``(pc, addr, size, is_write)`` tuples;
* checkpoints are ``(pos, checkpoint_id, kind_code)`` tuples, where ``pos``
  is the index of the access *before which* the checkpoint fires (``pos ==
  len(accesses)`` for checkpoints trailing the block) and ``kind_code`` is
  the compact :data:`KIND_TO_CODE` encoding.

This keeps the hot path free of per-access object construction while
preserving the exact interleaving of the two streams;
:func:`expand_block` recovers the classic record sequence when needed.
The per-record :meth:`TraceSink.emit` entry point remains for replaying
stored text traces (:func:`parse_trace`).

Columnar protocol
-----------------

On top of the tuple blocks sits the *columnar* fast path: engines build
one :class:`ColumnBlock` per flush — a struct of parallel ``int64``
columns (pc, addr, size, is_write) plus the checkpoint tuples — and hand
it to any sink exposing ``emit_columns(block)``. Sinks without that
method keep receiving the legacy ``emit_block`` tuples, decoded once per
flush from the same block (:meth:`ColumnBlock.to_tuples`), so existing
third-party sinks work unchanged. :func:`split_sinks` is the capability
probe the engines use.

The bytecode VM fills blocks as a single flat interleaved buffer
``[pc0, addr0, size0, w0, pc1, ...]`` (``is_write`` encoded 0/1) — one
C-level ``list.extend`` per access — which a block reshapes into columns
without per-access Python work; the tree-walking oracle keeps its tuple
buffers and wraps them via :meth:`ColumnBlock.from_tuples`, making the
legacy decode free on that engine.
"""

from __future__ import annotations

import enum
import io
from dataclasses import dataclass, field
from typing import IO, Any, Iterable, Iterator, Protocol, Union

_np: Any = None
HAVE_NUMPY = False
try:
    import numpy as _numpy
except ImportError:  # pragma: no cover - numpy ships with the toolchain
    pass
else:
    _np = _numpy
    HAVE_NUMPY = True

#: Base pc for user-code memory access sites.
USER_PC_BASE = 0x400000
#: Base pc for library-builtin memory access sites.
LIB_PC_BASE = 0x500000

#: Number of access tuples an engine buffers before flushing a block.
DEFAULT_TRACE_BLOCK = 4096


def is_library_pc(pc: int) -> bool:
    """True when ``pc`` belongs to the system library range."""
    return pc >= LIB_PC_BASE


def load_pc(node_id: int) -> int:
    """Synthetic pc of the load issued by AST node ``node_id``."""
    return USER_PC_BASE + 8 * node_id


def store_pc(node_id: int) -> int:
    """Synthetic pc of the store issued by AST node ``node_id``."""
    return USER_PC_BASE + 8 * node_id + 4


def node_id_of_pc(pc: int) -> int:
    """Recover the AST node_id a user-code pc was derived from."""
    if is_library_pc(pc) or pc < USER_PC_BASE:
        raise ValueError(f"pc {pc:#x} is not a user-code pc")
    return (pc - USER_PC_BASE) // 8


def pc_is_store(pc: int) -> bool:
    """True when a user-code pc denotes the store role of its site."""
    return (pc - USER_PC_BASE) % 8 == 4


class CheckpointKind(enum.Enum):
    """The three checkpoint flavours of the paper's Algorithm 2."""

    LOOP_BEGIN = "loop-begin"
    BODY_BEGIN = "body-begin"
    BODY_END = "body-end"


#: Compact integer encoding of checkpoint kinds used in batched blocks.
LOOP_BEGIN_CODE, BODY_BEGIN_CODE, BODY_END_CODE = 0, 1, 2
KIND_TO_CODE: dict[CheckpointKind, int] = {
    CheckpointKind.LOOP_BEGIN: LOOP_BEGIN_CODE,
    CheckpointKind.BODY_BEGIN: BODY_BEGIN_CODE,
    CheckpointKind.BODY_END: BODY_END_CODE,
}
CODE_TO_KIND: tuple[CheckpointKind, ...] = (
    CheckpointKind.LOOP_BEGIN,
    CheckpointKind.BODY_BEGIN,
    CheckpointKind.BODY_END,
)


@dataclass(frozen=True, slots=True)
class Checkpoint:
    checkpoint_id: int
    kind: CheckpointKind


@dataclass(frozen=True, slots=True)
class Access:
    pc: int
    addr: int
    size: int
    is_write: bool

    @property
    def is_library(self) -> bool:
        return is_library_pc(self.pc)


TraceRecord = Checkpoint | Access


@dataclass(frozen=True)
class CheckpointInfo:
    """Static description of one checkpoint id (from the annotator)."""

    checkpoint_id: int
    kind: CheckpointKind
    #: node_id of the loop this checkpoint belongs to.
    loop_node_id: int
    #: "for" | "while" | "do"
    loop_kind: str
    #: Compact batched-protocol encoding of ``kind`` (see KIND_TO_CODE).
    kind_code: int = field(init=False)

    def __post_init__(self) -> None:
        object.__setattr__(self, "kind_code", KIND_TO_CODE[self.kind])


@dataclass
class CheckpointMap:
    """id → :class:`CheckpointInfo`, produced by the instrumentation pass."""

    infos: dict[int, CheckpointInfo] = field(default_factory=dict)
    _begin_cache: dict[int, int | None] | None = field(
        default=None, init=False, repr=False, compare=False
    )

    def add(self, info: CheckpointInfo) -> None:
        if info.checkpoint_id in self.infos:
            raise ValueError(f"duplicate checkpoint id {info.checkpoint_id}")
        self.infos[info.checkpoint_id] = info
        # Explicit invalidation: a stale-length heuristic would miss
        # mutations that keep the map the same size.
        self._begin_cache = None

    def kind_of(self, checkpoint_id: int) -> CheckpointKind:
        return self.infos[checkpoint_id].kind

    def begin_id_for(self, checkpoint_id: int) -> int | None:
        """The loop-begin checkpoint id of the loop owning ``checkpoint_id``.

        All three checkpoints of one loop share a ``loop_node_id``; the
        mapping is cached (invalidated by :meth:`add`) because this sits on
        the trace-processing hot path.
        """
        cache = self._begin_cache
        if cache is None:
            begin_by_loop = {
                info.loop_node_id: info.checkpoint_id
                for info in self.infos.values()
                if info.kind is CheckpointKind.LOOP_BEGIN
            }
            cache = {
                cid: begin_by_loop.get(info.loop_node_id)
                for cid, info in self.infos.items()
            }
            self._begin_cache = cache
        return cache.get(checkpoint_id)

    def __contains__(self, checkpoint_id: int) -> bool:
        return checkpoint_id in self.infos

    def __len__(self) -> int:
        return len(self.infos)

    def loops(self) -> set[int]:
        """node_ids of all instrumented loops."""
        return {info.loop_node_id for info in self.infos.values()}


#: Raw batched event tuples (see the module docstring).
AccessTuple = tuple[int, int, int, bool]
CheckpointTuple = tuple[int, int, int]
#: The four parallel access columns (pcs, addrs, sizes, writes) as plain
#: lists; ``writes`` carries 0/1 ints (or legacy bools) per access.
_Columns = tuple[list[int], list[int], list[int], list[int]]


class ColumnBlock:
    """One flushed trace block as parallel columns (struct-of-arrays).

    Access data lives in four parallel ``int64`` columns (``pc``,
    ``addr``, ``size``, ``is_write`` — the latter 0/1); checkpoints stay
    the small ``(pos, checkpoint_id, kind_code)`` tuple list of the
    legacy protocol (``pos`` indexes into the columns exactly as it
    indexed the tuple list). Column arrays, plain-list views and the
    legacy tuple decode are all built lazily and memoized, so a flush
    serving several sinks pays each conversion at most once.
    """

    __slots__ = ("n", "checkpoints", "_flat", "_tuples", "_arr", "_lists")

    def __init__(self, flat: list[int] | None,
                 checkpoints: list[CheckpointTuple],
                 tuples: list[AccessTuple] | None = None) -> None:
        self._flat = flat
        self._tuples = tuples
        self.checkpoints: list[CheckpointTuple] = checkpoints
        if flat is not None:
            #: Number of accesses in the block.
            self.n = len(flat) >> 2
        else:
            assert tuples is not None
            self.n = len(tuples)
        self._arr: Any = None
        self._lists: _Columns | None = None

    @classmethod
    def from_flat(cls, flat: list[int],
                  checkpoints: list[CheckpointTuple]) -> "ColumnBlock":
        """Snapshot an engine's flat interleaved buffer (copies both, so
        the engine may clear its buffers in place afterwards)."""
        return cls(list(flat), list(checkpoints))

    @classmethod
    def from_tuples(cls, accesses: list[AccessTuple],
                    checkpoints: list[CheckpointTuple]) -> "ColumnBlock":
        """Wrap legacy tuple buffers (takes ownership; no copy)."""
        return cls(None, checkpoints, accesses)

    def __len__(self) -> int:
        return self.n

    # -- columnar views ---------------------------------------------------

    def _array(self) -> Any:
        """The (n, 4) int64 matrix backing the column properties."""
        arr = self._arr
        if arr is None:
            if not HAVE_NUMPY:
                raise RuntimeError(
                    "ColumnBlock column arrays require numpy; use "
                    ".lists() or .to_tuples() instead"
                )
            if self._flat is not None:
                arr = _np.array(self._flat, dtype=_np.int64).reshape(-1, 4)
            elif self._tuples:
                arr = _np.array(self._tuples, dtype=_np.int64)
            else:
                arr = _np.empty((0, 4), dtype=_np.int64)
            self._arr = arr
        return arr

    @property
    def pc(self) -> Any:
        return self._array()[:, 0]

    @property
    def addr(self) -> Any:
        return self._array()[:, 1]

    @property
    def size(self) -> Any:
        return self._array()[:, 2]

    @property
    def is_write(self) -> Any:
        return self._array()[:, 3]

    def lists(self) -> _Columns:
        """``(pcs, addrs, sizes, writes)`` as plain Python lists.

        Values are native ints (``writes`` may be legacy bools when the
        block came from a tuple engine) — safe to stash in long-lived
        sets/dicts without pinning numpy scalars.
        """
        lists = self._lists
        if lists is None:
            flat = self._flat
            if flat is not None:
                lists = (flat[0::4], flat[1::4], flat[2::4], flat[3::4])
            elif self._tuples:
                pcs, addrs, sizes, writes = zip(*self._tuples)
                lists = (list(pcs), list(addrs), list(sizes), list(writes))
            else:
                lists = ([], [], [], [])
            self._lists = lists
        return lists

    # -- legacy decode ----------------------------------------------------

    def to_tuples(self) -> tuple[list[AccessTuple], list[CheckpointTuple]]:
        """Decode to the legacy ``(accesses, checkpoints)`` block form.

        ``is_write`` is decoded to real bools so legacy sinks observe
        records identical to the tuple engines'. Memoized; blocks built
        by :meth:`from_tuples` return their original buffers unchanged.
        """
        tuples = self._tuples
        if tuples is None:
            pcs, addrs, sizes, writes = self.lists()
            tuples = list(zip(pcs, addrs, sizes, map(bool, writes)))
            self._tuples = tuples
        return tuples, self.checkpoints


class TraceSink(Protocol):
    """Anything that can consume trace records as they are produced.

    Engines talk to sinks through :meth:`emit_block` — or, when a sink
    exposes the optional columnar fast path ``emit_columns(block)``,
    through that instead (see :func:`split_sinks`); the per-record
    :meth:`emit` entry point exists for replaying stored traces and for
    tests. A sink needs only one of the two block entry points: engines
    decode blocks to legacy tuples for sinks without ``emit_columns``.
    """

    def emit(self, record: TraceRecord) -> None: ...

    def emit_block(
        self,
        accesses: list[AccessTuple],
        checkpoints: list[CheckpointTuple],
    ) -> None: ...


def split_sinks(
    sinks: Iterable[TraceSink],
) -> tuple[tuple[TraceSink, ...], tuple[TraceSink, ...]]:
    """Partition sinks into ``(columnar, legacy)`` by capability.

    A sink taking the columnar fast path exposes a callable
    ``emit_columns``; everything else stays on the tuple protocol.
    """
    columnar, legacy = [], []
    for sink in sinks:
        if callable(getattr(sink, "emit_columns", None)):
            columnar.append(sink)
        else:
            legacy.append(sink)
    return tuple(columnar), tuple(legacy)


def expand_block(
    accesses: list[AccessTuple],
    checkpoints: list[CheckpointTuple],
) -> Iterator[TraceRecord]:
    """Interleave one batched block back into classic record objects."""
    ci = 0
    ncp = len(checkpoints)
    for i, (pc, addr, size, is_write) in enumerate(accesses):
        while ci < ncp and checkpoints[ci][0] <= i:
            _, checkpoint_id, code = checkpoints[ci]
            ci += 1
            yield Checkpoint(checkpoint_id, CODE_TO_KIND[code])
        yield Access(pc, addr, size, is_write)
    while ci < ncp:
        _, checkpoint_id, code = checkpoints[ci]
        ci += 1
        yield Checkpoint(checkpoint_id, CODE_TO_KIND[code])


class TraceCollector:
    """A sink that stores all records in memory (tests, small runs)."""

    def __init__(self) -> None:
        self.records: list[TraceRecord] = []

    def emit(self, record: TraceRecord) -> None:
        self.records.append(record)

    def emit_block(
        self,
        accesses: list[AccessTuple],
        checkpoints: list[CheckpointTuple],
    ) -> None:
        self.records.extend(expand_block(accesses, checkpoints))

    def emit_columns(self, block: ColumnBlock) -> None:
        self.records.extend(expand_block(*block.to_tuples()))

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self.records)

    def accesses(self) -> list[Access]:
        return [r for r in self.records if isinstance(r, Access)]

    def checkpoints(self) -> list[Checkpoint]:
        return [r for r in self.records if isinstance(r, Checkpoint)]


class TraceWriter:
    """A sink that streams records to a text file in the paper's format."""

    def __init__(self, stream: io.TextIOBase) -> None:
        self._stream = stream

    def emit(self, record: TraceRecord) -> None:
        if isinstance(record, Checkpoint):
            self._stream.write(f"Checkpoint: {record.checkpoint_id}\n")
        else:
            kind = "wr" if record.is_write else "rd"
            self._stream.write(f"Instr: {record.pc:x} addr: {record.addr:x} {kind}\n")

    def emit_block(
        self,
        accesses: list[AccessTuple],
        checkpoints: list[CheckpointTuple],
    ) -> None:
        # Text lines are written straight from the raw tuples; no record
        # objects are constructed on the flush path.
        write = self._stream.write
        ci = 0
        ncp = len(checkpoints)
        for i, (pc, addr, size, is_write) in enumerate(accesses):
            while ci < ncp and checkpoints[ci][0] <= i:
                write(f"Checkpoint: {checkpoints[ci][1]}\n")
                ci += 1
            write(f"Instr: {pc:x} addr: {addr:x} {'wr' if is_write else 'rd'}\n")
        while ci < ncp:
            write(f"Checkpoint: {checkpoints[ci][1]}\n")
            ci += 1

    def emit_columns(self, block: ColumnBlock) -> None:
        self.emit_block(*block.to_tuples())


def format_trace(records: Iterable[TraceRecord]) -> str:
    """Render records as paper-format text (Figure 4c)."""
    buffer = io.StringIO()
    writer = TraceWriter(buffer)
    for record in records:
        writer.emit(record)
    return buffer.getvalue()


def parse_trace(
    trace: Union[str, IO[str], Iterable[str]],
    checkpoint_map: CheckpointMap,
) -> Iterator[TraceRecord]:
    """Parse paper-format trace text back into records, streaming.

    ``trace`` may be the whole trace text, an open text file, or any other
    iterable of lines — the trace is never materialized in memory, so
    arbitrarily large stored traces can be replayed with constant space.

    Access sizes are not part of the text format; they are restored as 1,
    which is sufficient for the FORAY-GEN analysis (it never uses sizes).
    """
    lines = trace.splitlines() if isinstance(trace, str) else trace
    for line_number, line in enumerate(lines, start=1):
        line = line.strip()
        if not line:
            continue
        if line.startswith("Checkpoint:"):
            body = line.split(":", 1)[1]
            try:
                checkpoint_id = int(body)
            except ValueError:
                raise ValueError(
                    f"malformed trace line {line_number}: {line!r}"
                ) from None
            if checkpoint_id not in checkpoint_map:
                raise ValueError(
                    f"unknown checkpoint id {checkpoint_id} "
                    f"on trace line {line_number}"
                )
            yield Checkpoint(checkpoint_id, checkpoint_map.kind_of(checkpoint_id))
        elif line.startswith("Instr:"):
            parts = line.split()
            if len(parts) != 5 or parts[2] != "addr:" or parts[4] not in ("wr", "rd"):
                raise ValueError(f"malformed trace line {line_number}: {line!r}")
            try:
                pc = int(parts[1], 16)
                addr = int(parts[3], 16)
            except ValueError:
                raise ValueError(
                    f"malformed trace line {line_number}: {line!r}"
                ) from None
            yield Access(pc, addr, 1, parts[4] == "wr")
        else:
            raise ValueError(f"malformed trace line {line_number}: {line!r}")
