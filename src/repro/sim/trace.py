"""Trace records, sinks, and the paper-compatible text trace format.

The simulator (our stand-in for the modified SimpleScalar of the paper)
emits a stream of two record kinds:

* :class:`Checkpoint` — execution of a checkpoint instruction inserted by
  the annotator (paper Algorithm 1, step 1);
* :class:`Access` — one memory access, carrying the synthetic instruction
  pc and the accessed address.

The text format matches the paper's Figure 4(c)::

    Checkpoint: 12
    Instr: 4002a0 addr: 7fff5934 wr

Checkpoint *kinds* are not part of the text format (as in the paper); the
reader restores them from the :class:`CheckpointMap` produced by the
instrumentation pass.

pcs are synthetic: user-code access sites get
``USER_PC_BASE + 8*node_id (+4 for stores)``; accesses made inside library
builtins get pcs at ``LIB_PC_BASE`` and above, which is how Table III's
"system call" classification is reproduced.
"""

from __future__ import annotations

import enum
import io
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Protocol

#: Base pc for user-code memory access sites.
USER_PC_BASE = 0x400000
#: Base pc for library-builtin memory access sites.
LIB_PC_BASE = 0x500000


def is_library_pc(pc: int) -> bool:
    """True when ``pc`` belongs to the system library range."""
    return pc >= LIB_PC_BASE


def load_pc(node_id: int) -> int:
    """Synthetic pc of the load issued by AST node ``node_id``."""
    return USER_PC_BASE + 8 * node_id


def store_pc(node_id: int) -> int:
    """Synthetic pc of the store issued by AST node ``node_id``."""
    return USER_PC_BASE + 8 * node_id + 4


def node_id_of_pc(pc: int) -> int:
    """Recover the AST node_id a user-code pc was derived from."""
    if is_library_pc(pc) or pc < USER_PC_BASE:
        raise ValueError(f"pc {pc:#x} is not a user-code pc")
    return (pc - USER_PC_BASE) // 8


def pc_is_store(pc: int) -> bool:
    """True when a user-code pc denotes the store role of its site."""
    return (pc - USER_PC_BASE) % 8 == 4


class CheckpointKind(enum.Enum):
    """The three checkpoint flavours of the paper's Algorithm 2."""

    LOOP_BEGIN = "loop-begin"
    BODY_BEGIN = "body-begin"
    BODY_END = "body-end"


@dataclass(frozen=True, slots=True)
class Checkpoint:
    checkpoint_id: int
    kind: CheckpointKind


@dataclass(frozen=True, slots=True)
class Access:
    pc: int
    addr: int
    size: int
    is_write: bool

    @property
    def is_library(self) -> bool:
        return is_library_pc(self.pc)


TraceRecord = Checkpoint | Access


@dataclass(frozen=True)
class CheckpointInfo:
    """Static description of one checkpoint id (from the annotator)."""

    checkpoint_id: int
    kind: CheckpointKind
    #: node_id of the loop this checkpoint belongs to.
    loop_node_id: int
    #: "for" | "while" | "do"
    loop_kind: str


@dataclass
class CheckpointMap:
    """id → :class:`CheckpointInfo`, produced by the instrumentation pass."""

    infos: dict[int, CheckpointInfo] = field(default_factory=dict)

    def add(self, info: CheckpointInfo) -> None:
        if info.checkpoint_id in self.infos:
            raise ValueError(f"duplicate checkpoint id {info.checkpoint_id}")
        self.infos[info.checkpoint_id] = info

    def kind_of(self, checkpoint_id: int) -> CheckpointKind:
        return self.infos[checkpoint_id].kind

    def begin_id_for(self, checkpoint_id: int) -> int | None:
        """The loop-begin checkpoint id of the loop owning ``checkpoint_id``.

        All three checkpoints of one loop share a ``loop_node_id``; the
        mapping is cached because this sits on the trace-processing hot
        path.
        """
        cache = self.__dict__.get("_begin_cache")
        if cache is None or len(cache) != len(self.infos):
            begin_by_loop = {
                info.loop_node_id: info.checkpoint_id
                for info in self.infos.values()
                if info.kind is CheckpointKind.LOOP_BEGIN
            }
            cache = {
                cid: begin_by_loop.get(info.loop_node_id)
                for cid, info in self.infos.items()
            }
            self.__dict__["_begin_cache"] = cache
        return cache.get(checkpoint_id)

    def __contains__(self, checkpoint_id: int) -> bool:
        return checkpoint_id in self.infos

    def __len__(self) -> int:
        return len(self.infos)

    def loops(self) -> set[int]:
        """node_ids of all instrumented loops."""
        return {info.loop_node_id for info in self.infos.values()}


class TraceSink(Protocol):
    """Anything that can consume trace records as they are produced."""

    def emit(self, record: TraceRecord) -> None: ...


class TraceCollector:
    """A sink that stores all records in memory (tests, small runs)."""

    def __init__(self) -> None:
        self.records: list[TraceRecord] = []

    def emit(self, record: TraceRecord) -> None:
        self.records.append(record)

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self.records)

    def accesses(self) -> list[Access]:
        return [r for r in self.records if isinstance(r, Access)]

    def checkpoints(self) -> list[Checkpoint]:
        return [r for r in self.records if isinstance(r, Checkpoint)]


class TraceWriter:
    """A sink that streams records to a text file in the paper's format."""

    def __init__(self, stream: io.TextIOBase):
        self._stream = stream

    def emit(self, record: TraceRecord) -> None:
        if isinstance(record, Checkpoint):
            self._stream.write(f"Checkpoint: {record.checkpoint_id}\n")
        else:
            kind = "wr" if record.is_write else "rd"
            self._stream.write(f"Instr: {record.pc:x} addr: {record.addr:x} {kind}\n")


def format_trace(records: Iterable[TraceRecord]) -> str:
    """Render records as paper-format text (Figure 4c)."""
    buffer = io.StringIO()
    writer = TraceWriter(buffer)
    for record in records:
        writer.emit(record)
    return buffer.getvalue()


def parse_trace(text: str, checkpoint_map: CheckpointMap) -> Iterator[TraceRecord]:
    """Parse paper-format trace text back into records.

    Access sizes are not part of the text format; they are restored as 1,
    which is sufficient for the FORAY-GEN analysis (it never uses sizes).
    """
    for line_number, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        if line.startswith("Checkpoint:"):
            checkpoint_id = int(line.split(":", 1)[1])
            yield Checkpoint(checkpoint_id, checkpoint_map.kind_of(checkpoint_id))
        elif line.startswith("Instr:"):
            parts = line.split()
            if len(parts) != 5 or parts[2] != "addr:":
                raise ValueError(f"malformed trace line {line_number}: {line!r}")
            pc = int(parts[1], 16)
            addr = int(parts[3], 16)
            yield Access(pc, addr, 1, parts[4] == "wr")
        else:
            raise ValueError(f"malformed trace line {line_number}: {line!r}")
