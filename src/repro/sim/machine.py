"""Compile-and-run harness tying the frontend, instrumentation and
interpreter together.

Typical use::

    from repro.sim.machine import compile_program, run_compiled
    from repro.sim.trace import TraceCollector

    compiled = compile_program(source)
    collector = TraceCollector()
    result = run_compiled(compiled, sinks=(collector,))
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.instrument.checkpoints import instrument
from repro.lang import ast_nodes as ast
from repro.lang.semantics import parse_and_analyze
from repro.sim.interpreter import Interpreter, RunStats
from repro.sim.trace import CheckpointMap, TraceCollector, TraceSink


@dataclass
class CompiledProgram:
    """An analyzed (and optionally instrumented) program plus metadata."""

    program: ast.Program
    checkpoint_map: CheckpointMap
    source: str

    @property
    def is_instrumented(self) -> bool:
        return len(self.checkpoint_map) > 0


@dataclass
class RunResult:
    """Everything produced by one simulated run."""

    exit_code: int
    stdout: str
    stats: RunStats
    interpreter: Interpreter


def compile_program(source: str, annotate: bool = True,
                    filename: str = "<minic>") -> CompiledProgram:
    """Parse, semantically analyze and (by default) instrument ``source``."""
    program = parse_and_analyze(source, filename)
    checkpoint_map = instrument(program) if annotate else CheckpointMap()
    return CompiledProgram(program, checkpoint_map, source)


def run_compiled(
    compiled: CompiledProgram,
    sinks: tuple[TraceSink, ...] = (),
    entry: str = "main",
    max_steps: int = 200_000_000,
) -> RunResult:
    """Execute a compiled program, streaming trace records to ``sinks``."""
    interpreter = Interpreter(compiled.program, sinks=sinks, max_steps=max_steps)
    exit_code = interpreter.run(entry)
    return RunResult(exit_code, interpreter.stdout, interpreter.stats, interpreter)


def run_and_trace(
    source: str,
    entry: str = "main",
    max_steps: int = 200_000_000,
) -> tuple[RunResult, TraceCollector, CompiledProgram]:
    """Convenience: compile, run, and collect the full trace in memory."""
    compiled = compile_program(source)
    collector = TraceCollector()
    result = run_compiled(compiled, sinks=(collector,), entry=entry,
                          max_steps=max_steps)
    return result, collector, compiled
