"""Compile-and-run harness tying the frontend, instrumentation and
execution engines together.

Two engines execute compiled programs:

* ``"bytecode"`` (default) — the flat register-machine fast path of
  :mod:`repro.sim.bytecode`;
* ``"ast"`` — the reference tree-walking interpreter of
  :mod:`repro.sim.interpreter`.

Both stream identical traces through the batched sink protocol; pick one
with :class:`EngineConfig` (or the CLI's ``--engine`` flag).

Typical use::

    from repro.sim.machine import compile_program, run_compiled
    from repro.sim.trace import TraceCollector

    compiled = compile_program(source)
    collector = TraceCollector()
    result = run_compiled(compiled, sinks=(collector,))
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from repro.instrument.checkpoints import instrument
from repro.lang import ast_nodes as ast
from repro.lang.semantics import parse_and_analyze
from repro.sim.inputs import InputSpec
from repro.sim.interpreter import Interpreter, RunStats
from repro.sim.trace import (
    DEFAULT_TRACE_BLOCK,
    CheckpointMap,
    TraceCollector,
    TraceSink,
)

#: Engine names accepted by :class:`EngineConfig` and the CLI.
ENGINES = ("bytecode", "ast")
DEFAULT_ENGINE = "bytecode"


@dataclass(frozen=True)
class EngineConfig:
    """How to execute a compiled program."""

    engine: str = DEFAULT_ENGINE
    max_steps: int = 200_000_000
    max_call_depth: int = 512
    trace_block_size: int = DEFAULT_TRACE_BLOCK
    #: Superinstruction fusion on the bytecode engine (the AST engine
    #: ignores this; disable to time or debug the plain dispatch loop).
    fusion: bool = True
    #: Interval-analysis guard elimination in the specialized fast path
    #: (see :mod:`repro.sim.dataflow`; disable to time or debug the
    #: fully checked memory-access code).
    guard_elim: bool = True
    #: Input ensemble consumed by the ``read_samples`` builtin.
    input: InputSpec = InputSpec()
    #: Run the structural IR verifier over the lowered and fused bytecode
    #: before executing (also forced by the ``REPRO_VERIFY_IR`` env var).
    verify_ir: bool = False

    def __post_init__(self) -> None:
        if self.engine not in ENGINES:
            raise ValueError(
                f"unknown engine {self.engine!r}; choose from {ENGINES}"
            )


@dataclass
class CompiledProgram:
    """An analyzed (and optionally instrumented) program plus metadata."""

    program: ast.Program
    checkpoint_map: CheckpointMap
    source: str
    #: Lazily populated bytecode lowering (see :func:`lower_compiled`).
    bytecode: object | None = field(default=None, repr=False, compare=False)
    #: Set once the IR verifier has passed this program (idempotence memo).
    ir_verified: bool = field(default=False, repr=False, compare=False)

    @property
    def is_instrumented(self) -> bool:
        return len(self.checkpoint_map) > 0


@dataclass
class RunResult:
    """Everything produced by one simulated run.

    ``machine`` is the engine instance that ran the program (an
    :class:`~repro.sim.interpreter.Interpreter` or a
    :class:`~repro.sim.bytecode.BytecodeVM`); both expose ``memory``,
    ``stdout`` and ``stats``. The legacy ``interpreter`` alias is kept for
    existing callers.
    """

    exit_code: int
    stdout: str
    stats: RunStats
    machine: object

    @property
    def interpreter(self) -> object:
        return self.machine


def compile_program(source: str, annotate: bool = True,
                    filename: str = "<minic>") -> CompiledProgram:
    """Parse, semantically analyze and (by default) instrument ``source``."""
    program = parse_and_analyze(source, filename)
    checkpoint_map = instrument(program) if annotate else CheckpointMap()
    return CompiledProgram(program, checkpoint_map, source)


def lower_compiled(compiled: CompiledProgram):
    """Lower ``compiled`` to bytecode, caching the result on the object."""
    if compiled.bytecode is None:
        from repro.sim.bytecode import lower_program

        compiled.bytecode = lower_program(compiled.program)
    return compiled.bytecode


def verify_ir(compiled: CompiledProgram) -> None:
    """Run the structural IR verifier once per compiled program.

    Raises :class:`repro.sim.verify.IRVerificationError` on findings; a
    passing program is memoized on the object, so attaching the verifier
    to every run (``REPRO_VERIFY_IR=1`` in the test suite) costs one
    pass per program, not one per run.
    """
    if compiled.ir_verified:
        return
    from repro.sim.verify import verify_compiled

    verify_compiled(compiled)
    compiled.ir_verified = True


def run_compiled(
    compiled: CompiledProgram,
    sinks: tuple[TraceSink, ...] = (),
    entry: str = "main",
    max_steps: int = 200_000_000,
    config: EngineConfig | None = None,
) -> RunResult:
    """Execute a compiled program, streaming trace records to ``sinks``.

    ``config`` selects the engine and overrides ``max_steps``; without it
    the default (bytecode) engine runs with the given ``max_steps``.
    """
    if config is None:
        config = EngineConfig(max_steps=max_steps)
    if config.verify_ir or os.environ.get("REPRO_VERIFY_IR", "") not in (
            "", "0"):
        verify_ir(compiled)
    if config.engine == "ast":
        machine = Interpreter(
            compiled.program,
            sinks=sinks,
            max_steps=config.max_steps,
            max_call_depth=config.max_call_depth,
            trace_block_size=config.trace_block_size,
            input_spec=config.input,
        )
    else:
        from repro.sim.bytecode import BytecodeVM

        machine = BytecodeVM(
            lower_compiled(compiled),
            sinks=sinks,
            max_steps=config.max_steps,
            max_call_depth=config.max_call_depth,
            trace_block_size=config.trace_block_size,
            input_spec=config.input,
            fusion=config.fusion,
            guard_elim=config.guard_elim,
        )
    exit_code = machine.run(entry)
    return RunResult(exit_code, machine.stdout, machine.stats, machine)


def run_and_trace(
    source: str,
    entry: str = "main",
    max_steps: int = 200_000_000,
    config: EngineConfig | None = None,
) -> tuple[RunResult, TraceCollector, CompiledProgram]:
    """Convenience: compile, run, and collect the full trace in memory."""
    compiled = compile_program(source)
    collector = TraceCollector()
    result = run_compiled(compiled, sinks=(collector,), entry=entry,
                          max_steps=max_steps, config=config)
    return result, collector, compiled
