"""Implementations of the MiniC library builtins ("system library").

Each builtin that touches simulated memory does so through the interpreter's
``lib_load``/``lib_store`` helpers, which emit trace records with pcs in the
library range (``LIB_PC_BASE + 8*index``). The paper's Table III counts
these references in its "system calls" column; our pc-range tagging
reproduces that classification.

Bulk routines (``memcpy``, ``memset``, ``calloc``) work at 4-byte
granularity, like word-oriented library code on a 32-bit target.
"""

from __future__ import annotations

import math

from repro.lang.errors import MiniCRuntimeError

#: glibc-style LCG constants for the deterministic rand().
_RAND_MULTIPLIER = 1103515245
_RAND_INCREMENT = 12345
_RAND_MASK = 0x7FFFFFFF

#: Library-internal data segment. Math builtins read their polynomial
#: coefficient tables from here (as real libm implementations do), which is
#: the main source of "system call" memory traffic in compute-heavy
#: benchmarks — the effect behind the paper's fft row of Table III, where
#: 96% of accesses happen inside the system library.
LIBDATA_BASE = 0x70000000
#: Coefficient words read per transcendental call.
_MATH_TABLE_TERMS = 10

#: Stable ordering of builtins; the index defines each builtin's lib pcs.
_BUILTIN_ORDER = [
    "printf", "putchar", "puts", "malloc", "calloc", "free",
    "memcpy", "memset", "memmove", "strlen", "strcpy", "strcmp",
    "abs", "labs", "rand", "srand", "exit", "read_samples",
    "sqrt", "fabs", "sin", "cos", "tan", "atan", "atan2",
    "exp", "log", "log10", "pow", "floor", "ceil", "fmod",
]

BUILTIN_INDEX: dict[str, int] = {name: i for i, name in enumerate(_BUILTIN_ORDER)}


class ExitSignal(Exception):
    """Raised by the exit() builtin; carries the exit code."""

    def __init__(self, code: int):
        self.code = code
        super().__init__(code)


def _word_copy(machine, name: str, dst: int, src: int, count: int) -> None:
    offset = 0
    while offset < count:
        chunk = min(4, count - offset)
        value = machine.lib_load(name, src + offset, chunk)
        machine.lib_store(name, dst + offset, value, chunk)
        offset += chunk


def _word_set(machine, name: str, dst: int, byte: int, count: int) -> None:
    offset = 0
    byte &= 0xFF
    while offset < count:
        chunk = min(4, count - offset)
        pattern = int.from_bytes(bytes([byte]) * chunk, "little")
        machine.lib_store(name, dst + offset, pattern, chunk)
        offset += chunk


def _read_cstring(machine, name: str, addr: int) -> str:
    """Read a NUL-terminated string with traced per-byte library loads."""
    chars: list[str] = []
    offset = 0
    while True:
        byte = machine.lib_load(name, addr + offset, 1)
        if byte == 0:
            return "".join(chars)
        chars.append(chr(byte & 0xFF))
        offset += 1
        if offset > 1 << 20:
            raise MiniCRuntimeError("unterminated string passed to library")


def _format_printf(machine, fmt: str, args: list) -> str:
    out: list[str] = []
    arg_index = 0
    i = 0

    def next_arg():
        nonlocal arg_index
        if arg_index >= len(args):
            raise MiniCRuntimeError("printf: not enough arguments")
        value = args[arg_index]
        arg_index += 1
        return value

    while i < len(fmt):
        ch = fmt[i]
        if ch != "%":
            out.append(ch)
            i += 1
            continue
        # Collect the specifier: %[flags][width][.prec][length]conv
        j = i + 1
        spec = "%"
        while j < len(fmt) and fmt[j] in "-+ 0123456789.#lh":
            spec += fmt[j]
            j += 1
        if j >= len(fmt):
            out.append(spec)
            break
        conv = fmt[j]
        spec_body = spec[1:].replace("l", "").replace("h", "")
        if conv == "%":
            out.append("%")
        elif conv in "di":
            out.append(("%" + spec_body + "d") % int(next_arg()))
        elif conv == "u":
            out.append(("%" + spec_body + "d") % (int(next_arg()) & 0xFFFFFFFF))
        elif conv in "xX":
            out.append(("%" + spec_body + conv) % (int(next_arg()) & 0xFFFFFFFF))
        elif conv == "c":
            out.append(chr(int(next_arg()) & 0xFF))
        elif conv == "s":
            out.append(_read_cstring(machine, "printf", int(next_arg())))
        elif conv in "feEgG":
            out.append(("%" + spec_body + conv) % float(next_arg()))
        elif conv == "p":
            out.append(f"0x{int(next_arg()):x}")
        else:
            raise MiniCRuntimeError(f"printf: unsupported conversion %{conv}")
        i = j + 1
    return "".join(out)


def call_builtin(machine, name: str, args: list) -> object:
    """Execute builtin ``name``; ``machine`` is the interpreter facade."""
    if name == "printf":
        fmt = _read_cstring(machine, "printf", int(args[0]))
        text = _format_printf(machine, fmt, args[1:])
        machine.write_stdout(text)
        return len(text)
    if name == "putchar":
        machine.write_stdout(chr(int(args[0]) & 0xFF))
        return int(args[0])
    if name == "puts":
        text = _read_cstring(machine, "puts", int(args[0]))
        machine.write_stdout(text + "\n")
        return len(text) + 1
    if name == "malloc":
        return machine.heap_alloc(int(args[0]))
    if name == "calloc":
        count, size = int(args[0]), int(args[1])
        addr = machine.heap_alloc(count * size)
        _word_set(machine, "calloc", addr, 0, count * size)
        return addr
    if name == "free":
        return 0
    if name == "memcpy" or name == "memmove":
        dst, src, count = int(args[0]), int(args[1]), int(args[2])
        _word_copy(machine, name, dst, src, count)
        return dst
    if name == "memset":
        dst, byte, count = int(args[0]), int(args[1]), int(args[2])
        _word_set(machine, "memset", dst, byte, count)
        return dst
    if name == "strlen":
        return len(_read_cstring(machine, "strlen", int(args[0])))
    if name == "strcpy":
        dst, src = int(args[0]), int(args[1])
        text = _read_cstring(machine, "strcpy", src)
        for offset, ch in enumerate(text):
            machine.lib_store("strcpy", dst + offset, ord(ch), 1)
        machine.lib_store("strcpy", dst + len(text), 0, 1)
        return dst
    if name == "strcmp":
        left = _read_cstring(machine, "strcmp", int(args[0]))
        right = _read_cstring(machine, "strcmp", int(args[1]))
        return (left > right) - (left < right)
    if name == "abs" or name == "labs":
        return abs(int(args[0]))
    if name == "rand":
        machine.rand_state = (
            machine.rand_state * _RAND_MULTIPLIER + _RAND_INCREMENT
        ) & _RAND_MASK
        return machine.rand_state
    if name == "srand":
        machine.rand_state = int(args[0]) & _RAND_MASK
        return 0
    if name == "exit":
        raise ExitSignal(int(args[0]))
    if name == "read_samples":
        buf, count = int(args[0]), int(args[1])
        stream = machine.input_stream
        for index in range(count):
            sample = stream.next_sample()
            machine.lib_store("read_samples", buf + 4 * index, sample, 4)
        return count

    value = [float(a) for a in args]
    table_offset = BUILTIN_INDEX[name] * 64
    for term in range(_MATH_TABLE_TERMS):
        machine.lib_load(name, LIBDATA_BASE + table_offset + 8 * term, 8)
    math_fns = {
        "sqrt": lambda: math.sqrt(value[0]) if value[0] >= 0 else float("nan"),
        "fabs": lambda: abs(value[0]),
        "sin": lambda: math.sin(value[0]),
        "cos": lambda: math.cos(value[0]),
        "tan": lambda: math.tan(value[0]),
        "atan": lambda: math.atan(value[0]),
        "atan2": lambda: math.atan2(value[0], value[1]),
        "exp": lambda: math.exp(value[0]),
        "log": lambda: math.log(value[0]) if value[0] > 0 else float("-inf"),
        "log10": lambda: math.log10(value[0]) if value[0] > 0 else float("-inf"),
        "pow": lambda: math.pow(value[0], value[1]),
        "floor": lambda: math.floor(value[0]),
        "ceil": lambda: math.ceil(value[0]),
        "fmod": lambda: math.fmod(value[0], value[1]) if value[1] != 0 else float("nan"),
    }
    if name in math_fns:
        return math_fns[name]()
    raise MiniCRuntimeError(f"unknown builtin {name!r}")  # pragma: no cover
