"""Structural IR verifier for lowered and fused bytecode.

The specializer and the fixpoint fusion pass rewrite every hot function;
until now their only safety net was end-to-end trace parity. This module
checks the bytecode *structurally*, per function:

* every opcode is known, and superinstructions appear only in fused code;
* every register operand addresses a slot inside the frame
  (``0 <= slot < n_slots``), derived from the same ``_READS``/``_WRITES``
  tables the fusion pass trusts for liveness;
* every jump lands on an instruction boundary of the same function;
* registers are defined before use: a forward must-analysis over the
  basic-block CFG (:func:`repro.sim.dataflow.maybe_uninitialized_reads`)
  flags every individual read a merge path can reach without a prior
  definition (frames are zero-filled, so a violation is not UB — but it
  means the lowering lost an initialization, which trace parity can
  miss);
* slot domains are consistent: a slot that definitely holds a float
  must never flow into an operand position the dispatch loop masks
  *without* an ``int()`` conversion (integer arithmetic operands,
  pointer bases, access addresses) — there the raw ``&`` would raise at
  runtime on exotic paths only;
* every basic block is reachable from entry, except trivial epilogue
  blocks (the auto-appended trailing return after a user ``return``);
* fused superinstructions decode back to their constituent operations —
  element size, access width, struct format and synthetic pc must all be
  the values the unfused ``OP_ELEM + OP_LOAD/OP_STORE`` pair would carry,
  and ``OP_BR`` must wrap a real comparison opcode;
* trace-emitting instructions carry valid synthetic pcs (user range,
  load/store parity) and valid checkpoint ids (present in the
  instrumentation map with the matching kind code);
* calls name real functions or known builtins;
* instrumented body regions lie inside the code and name body-end
  checkpoints.

`verify_compiled` runs all of it over every function of the lowered
program *and* its fused twin. Tests enable it unconditionally via the
``REPRO_VERIFY_IR`` environment variable; the CLI exposes ``--verify-ir``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.lang.stdlib import BUILTIN_SIGNATURES
from repro.sim import bytecode as bc
from repro.sim import dataflow
from repro.sim.trace import (
    BODY_END_CODE,
    KIND_TO_CODE,
    LIB_PC_BASE,
    USER_PC_BASE,
    CheckpointMap,
)

#: Operand position of the synthetic pc per trace-emitting opcode.
_PC_POS: dict[int, int] = {
    bc.OP_LOAD_I: 7, bc.OP_LOAD_F: 6,
    bc.OP_STORE_I: 9, bc.OP_STORE_F: 7, bc.OP_STORE_P: 5,
    bc.OP_LDELEM_I: 8, bc.OP_LDELEM_F: 7,
    bc.OP_STELEM_I: 10, bc.OP_STELEM_F: 8, bc.OP_STELEM_P: 6,
}

_LOAD_OPS = frozenset((bc.OP_LOAD_I, bc.OP_LOAD_F,
                       bc.OP_LDELEM_I, bc.OP_LDELEM_F))
_STORE_OPS = frozenset((bc.OP_STORE_I, bc.OP_STORE_F, bc.OP_STORE_P,
                        bc.OP_STELEM_I, bc.OP_STELEM_F, bc.OP_STELEM_P))

#: (elem_size operand, access-size operand or None) per fused memory op.
_FUSED_SHAPE: dict[int, tuple[int, int | None]] = {
    bc.OP_LDELEM_I: (4, 5), bc.OP_LDELEM_F: (4, 5),
    bc.OP_STELEM_I: (3, 6), bc.OP_STELEM_F: (3, 6), bc.OP_STELEM_P: (3, None),
}

_ACCESS_SIZES = frozenset((1, 2, 4, 8))

_FUSED_OPS = frozenset((bc.OP_LDELEM_I, bc.OP_LDELEM_F, bc.OP_STELEM_I,
                        bc.OP_STELEM_F, bc.OP_STELEM_P, bc.OP_BR))

_KNOWN_OPS = frozenset(range(62))


class IRVerificationError(Exception):
    """The bytecode of a compiled program failed structural verification."""

    def __init__(self, findings: list[str]):
        self.findings = findings
        preview = "\n  ".join(findings[:20])
        more = f"\n  ... and {len(findings) - 20} more" if len(findings) > 20 else ""
        super().__init__(
            f"IR verification failed with {len(findings)} finding(s):\n"
            f"  {preview}{more}")


@dataclass(frozen=True)
class VerifyStats:
    """What one :func:`verify_compiled` pass covered."""

    functions: int
    instructions: int
    fused_functions: int
    fused_instructions: int


def _valid_pc(pc: object, is_store: bool, allow_untraced: bool) -> bool:
    if not isinstance(pc, int):
        return False
    if pc == -1:
        # The untraced sentinel: global initialization and parameter
        # spills run with tracing off by design.
        return allow_untraced
    if not USER_PC_BASE <= pc < LIB_PC_BASE:
        return False
    return pc % 8 == (4 if is_store else 0)


def verify_function(
    fn: "bc.BytecodeFunction",
    checkpoint_map: CheckpointMap,
    function_names: frozenset[str],
    fused: bool,
    allow_untraced_pc: bool = False,
) -> list[str]:
    """Structural findings for one bytecode function (empty = clean)."""
    findings: list[str] = []
    code = fn.code
    size = len(code)

    def flag(index: int, message: str) -> None:
        findings.append(f"{fn.name}[{index}]: {message}")

    for index, ins in enumerate(code):
        op = ins[0]
        if op not in _KNOWN_OPS:
            flag(index, f"unknown opcode {op!r}")
            continue
        if op in _FUSED_OPS and not fused:
            flag(index, f"superinstruction {op} in unfused code")
            continue

        # Register operands: the same tables the liveness fixpoint uses.
        if op == bc.OP_CALL or op == bc.OP_CALLB:
            if len(ins) != 4 or not isinstance(ins[3], tuple):
                flag(index, f"malformed call {ins!r}")
                continue
            slots = (ins[1], *ins[3])
            if op == bc.OP_CALL and ins[2] not in function_names:
                flag(index, f"call to unknown function {ins[2]!r}")
            if op == bc.OP_CALLB and ins[2] not in BUILTIN_SIGNATURES:
                flag(index, f"call to unknown builtin {ins[2]!r}")
        else:
            read_positions = bc._READS.get(op, ())
            write_position = bc._WRITES.get(op)
            positions = (*read_positions,
                         *(() if write_position is None else (write_position,)))
            if positions and max(positions) >= len(ins):
                flag(index, f"operand arity too small for opcode {op}: {ins!r}")
                continue
            slots = tuple(ins[pos] for pos in positions)
        for slot in slots:
            if not isinstance(slot, int) or not 0 <= slot < fn.n_slots:
                flag(index, f"register slot {slot!r} outside frame "
                            f"of {fn.n_slots} slots")

        # Jumps land on instruction boundaries.
        target_pos = None
        if op == bc.OP_JMP:
            target_pos = 1
        elif op == bc.OP_JZ or op == bc.OP_JNZ:
            target_pos = 2
        elif op == bc.OP_BR:
            target_pos = 4
        if target_pos is not None:
            target = ins[target_pos]
            if not isinstance(target, int) or not 0 <= target <= size:
                flag(index, f"jump target {target!r} outside code "
                            f"of {size} instructions")

        # Trace-emitting memory ops carry decodable synthetic pcs.
        pc_pos = _PC_POS.get(op)
        if pc_pos is not None:
            if pc_pos >= len(ins):
                flag(index, f"missing pc operand: {ins!r}")
            elif not _valid_pc(ins[pc_pos], op in _STORE_OPS,
                               allow_untraced_pc):
                flag(index, f"invalid synthetic pc {ins[pc_pos]!r}")

        # Superinstructions decode back to their constituent ops.
        if op in _FUSED_SHAPE:
            elem_pos, size_pos = _FUSED_SHAPE[op]
            if ins[elem_pos] < 1:
                flag(index, f"fused element size {ins[elem_pos]!r} < 1")
            if size_pos is not None and ins[size_pos] not in _ACCESS_SIZES:
                flag(index, f"fused access size {ins[size_pos]!r}")
        if op == bc.OP_BR:
            if ins[1] not in bc._CMP_OPS:
                flag(index, f"fused branch wraps non-comparison op {ins[1]!r}")
            if ins[5] not in (0, 1):
                flag(index, f"fused branch sense {ins[5]!r}")

        # Checkpoints exist in the instrumentation map, kinds agree.
        if op == bc.OP_CKPT:
            checkpoint_id, kind_code = ins[1], ins[2]
            info = checkpoint_map.infos.get(checkpoint_id)
            if info is None:
                flag(index, f"checkpoint id {checkpoint_id!r} not in map")
            elif KIND_TO_CODE[info.kind] != kind_code:
                flag(index, f"checkpoint {checkpoint_id} kind code "
                            f"{kind_code} != {KIND_TO_CODE[info.kind]}")

    # Semantic checks need a structurally valid function to build a CFG
    # over, so they run only once the shape checks above are clean.
    if not findings and size:
        for index, slot in dataflow.maybe_uninitialized_reads(fn):
            findings.append(
                f"{fn.name}[{index}]: slot {slot} may be read before "
                "any definition on some path")
        findings.extend(_domain_findings(fn))
        findings.extend(_unreachable_findings(fn))

    # Instrumented body regions are in bounds and name body-end ids.
    for start, end, body_end_id in fn.body_regions:
        if not 0 <= start <= end <= size:
            findings.append(
                f"{fn.name}: body region ({start}, {end}) outside code")
        info = checkpoint_map.infos.get(body_end_id)
        if info is None or KIND_TO_CODE[info.kind] != BODY_END_CODE:
            findings.append(
                f"{fn.name}: body region id {body_end_id} is not a "
                "body-end checkpoint")
    return findings


# -- slot-domain consistency (int vs float) ---------------------------------

#: Opcodes whose destination definitely holds a float afterwards.
_FLOAT_WRITERS = frozenset((
    bc.OP_ADD_F, bc.OP_SUB_F, bc.OP_MUL_F, bc.OP_DIV_F, bc.OP_ADDK_F,
    bc.OP_NEG_F, bc.OP_CONV_F, bc.OP_LOAD_F, bc.OP_LDELEM_F,
    bc.OP_STORE_F, bc.OP_STELEM_F,
))

#: Operand positions per opcode where the dispatch loop applies a raw
#: ``&`` (or page arithmetic) with no ``int()`` conversion: a definitely
#: float-valued slot there is a latent TypeError. Positions mirror the
#: handlers in :meth:`BytecodeVM._execute` and the specializer templates.
_RAW_MASK_POSITIONS: dict[int, tuple[int, ...]] = {
    bc.OP_ADD_I: (2, 3), bc.OP_SUB_I: (2, 3), bc.OP_MUL_I: (2, 3),
    bc.OP_ADDK_I: (2,), bc.OP_NEG_I: (2,),
    bc.OP_ELEM: (2,), bc.OP_ADD_P: (2,), bc.OP_MEMBOFF: (2,),
    bc.OP_ADDK_P: (2,), bc.OP_SUB_PI: (2,),
    bc.OP_LOAD_I: (2,), bc.OP_LOAD_F: (2,),
    bc.OP_STORE_I: (1,), bc.OP_STORE_F: (1,), bc.OP_STORE_P: (1,),
    bc.OP_LDELEM_I: (2,), bc.OP_LDELEM_F: (2,),
    bc.OP_STELEM_I: (1,), bc.OP_STELEM_F: (1,), bc.OP_STELEM_P: (1,),
    bc.OP_ZFILL: (1,), bc.OP_WBYTES: (1,),
}

#: Two bits per slot: INT (1) and/or FLOAT (2); 3 = either, 0 = unknown.
_INT, _FLOAT = 1, 2


def _domain_transfer(ins: tuple[object, ...], state: int) -> int:
    op = ins[0]
    assert isinstance(op, int)
    if op == bc.OP_CALL or op == bc.OP_CALLB:
        dst = ins[1]
        assert isinstance(dst, int)
        return state | (3 << (2 * dst))
    write = bc._WRITES.get(op)
    if write is None:
        return state
    dst = ins[write]
    assert isinstance(dst, int)
    shift = 2 * dst
    if op == bc.OP_MOV:
        src = ins[2]
        assert isinstance(src, int)
        bits = (state >> (2 * src)) & 3
    elif op == bc.OP_CONST:
        bits = _FLOAT if type(ins[2]) is float else _INT
    elif op in _FLOAT_WRITERS:
        bits = _FLOAT
    else:
        bits = _INT
    return (state & ~(3 << shift)) | (bits << shift)


def _domain_findings(fn: "bc.BytecodeFunction") -> list[str]:
    """Definite-float slots flowing into raw-mask operand positions."""
    cfg = dataflow.build_cfg(fn.code)
    nb = len(cfg.blocks)
    if not nb:
        return []
    # Entry: every slot is a zero-filled int; parameters refine by
    # conversion tag (2 = float; an in-memory parameter's slot holds
    # the spill address, which is an int).
    entry = 0
    for s in range(fn.n_slots):
        entry |= _INT << (2 * s)
    for spec in fn.params:
        shift = 2 * spec.slot
        if not spec.in_memory and spec.conv == 2:
            entry = (entry & ~(3 << shift)) | (_FLOAT << shift)
        elif not spec.in_memory and spec.conv == 0:
            entry |= 3 << shift

    def transfer(b: int, state: int) -> int:
        block = cfg.blocks[b]
        for i in range(block.start, block.end):
            state = _domain_transfer(fn.code[i], state)
        return state

    inputs, _outputs = dataflow.solve(
        nb, cfg.succs, forward=True, bottom=0, boundary=entry,
        transfer=transfer, join=lambda a, b: a | b)

    findings: list[str] = []
    for block in cfg.blocks:
        state = inputs[block.index]
        if state == 0:  # unreachable; reported separately
            continue
        for i in range(block.start, block.end):
            ins = fn.code[i]
            op = ins[0]
            assert isinstance(op, int)
            for pos in _RAW_MASK_POSITIONS.get(op, ()):
                slot = ins[pos]
                assert isinstance(slot, int)
                if (state >> (2 * slot)) & 3 == _FLOAT:
                    findings.append(
                        f"{fn.name}[{i}]: slot {slot} definitely holds "
                        f"a float but feeds an int-masked operand of "
                        f"opcode {op}")
            state = _domain_transfer(ins, state)
    return findings


# -- unreachable blocks ------------------------------------------------------

#: Opcodes allowed in an unreachable block without a finding: the
#: lowering appends a trailing return after user code that already
#: returned on every path, and fusion can strand such epilogues.
_BENIGN_UNREACHABLE = frozenset((
    bc.OP_RET, bc.OP_RET0, bc.OP_JMP, bc.OP_STEP, bc.OP_CKPT,
))


def _unreachable_findings(fn: "bc.BytecodeFunction") -> list[str]:
    cfg = dataflow.build_cfg(fn.code)
    if not cfg.blocks:
        return []
    seen = {0}
    stack = [0]
    while stack:
        for succ in cfg.succs[stack.pop()]:
            if succ not in seen:
                seen.add(succ)
                stack.append(succ)
    findings: list[str] = []
    for block in cfg.blocks:
        if block.index in seen:
            continue
        ops = {fn.code[i][0] for i in range(block.start, block.end)}
        if ops <= _BENIGN_UNREACHABLE:
            continue
        findings.append(
            f"{fn.name}[{block.start}]: unreachable block "
            f"[{block.start}, {block.end}) with effects")
    return findings


def verify_bytecode(
    bytecode_program: "bc.BytecodeProgram",
    checkpoint_map: CheckpointMap,
    fused: bool = False,
) -> list[str]:
    """Findings across all functions (and globals-init) of one program."""
    names = frozenset(bytecode_program.functions)
    findings = verify_function(bytecode_program.globals_init, checkpoint_map,
                               names, fused, allow_untraced_pc=True)
    for fn in bytecode_program.functions.values():
        findings.extend(verify_function(fn, checkpoint_map, names, fused))
    return findings


def verify_compiled(compiled, raise_on_error: bool = True) -> VerifyStats:
    """Verify the lowered program and its fused twin.

    ``compiled`` is a :class:`repro.sim.machine.CompiledProgram`; lowering
    and fusion results are cached on it, so verification shares work with
    a subsequent run instead of repeating it.
    """
    from repro.sim.machine import lower_compiled

    lowered = lower_compiled(compiled)
    findings = verify_bytecode(lowered, compiled.checkpoint_map, fused=False)
    fused = bc.fuse_program(lowered)
    findings.extend(verify_bytecode(fused, compiled.checkpoint_map,
                                    fused=True))
    if findings and raise_on_error:
        raise IRVerificationError(findings)
    count = len(lowered.functions) + 1
    instructions = lowered.instruction_count
    return VerifyStats(
        functions=count,
        instructions=instructions,
        fused_functions=len(fused.functions) + 1,
        fused_instructions=fused.instruction_count,
    )
