"""Structural IR verifier for lowered and fused bytecode.

The specializer and the fixpoint fusion pass rewrite every hot function;
until now their only safety net was end-to-end trace parity. This module
checks the bytecode *structurally*, per function:

* every opcode is known, and superinstructions appear only in fused code;
* every register operand addresses a slot inside the frame
  (``0 <= slot < n_slots``), derived from the same ``_READS``/``_WRITES``
  tables the fusion pass trusts for liveness;
* every jump lands on an instruction boundary of the same function;
* registers are defined before use: the backward liveness fixpoint's
  live-in set at instruction 0 may contain only parameter slots
  (frames are zero-filled, so a violation is not UB — but it means the
  lowering lost an initialization, which trace parity can miss);
* fused superinstructions decode back to their constituent operations —
  element size, access width, struct format and synthetic pc must all be
  the values the unfused ``OP_ELEM + OP_LOAD/OP_STORE`` pair would carry,
  and ``OP_BR`` must wrap a real comparison opcode;
* trace-emitting instructions carry valid synthetic pcs (user range,
  load/store parity) and valid checkpoint ids (present in the
  instrumentation map with the matching kind code);
* calls name real functions or known builtins;
* instrumented body regions lie inside the code and name body-end
  checkpoints.

`verify_compiled` runs all of it over every function of the lowered
program *and* its fused twin. Tests enable it unconditionally via the
``REPRO_VERIFY_IR`` environment variable; the CLI exposes ``--verify-ir``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.lang.stdlib import BUILTIN_SIGNATURES
from repro.sim import bytecode as bc
from repro.sim.trace import (
    BODY_END_CODE,
    KIND_TO_CODE,
    LIB_PC_BASE,
    USER_PC_BASE,
    CheckpointMap,
)

#: Operand position of the synthetic pc per trace-emitting opcode.
_PC_POS: dict[int, int] = {
    bc.OP_LOAD_I: 7, bc.OP_LOAD_F: 6,
    bc.OP_STORE_I: 9, bc.OP_STORE_F: 7, bc.OP_STORE_P: 5,
    bc.OP_LDELEM_I: 8, bc.OP_LDELEM_F: 7,
    bc.OP_STELEM_I: 10, bc.OP_STELEM_F: 8, bc.OP_STELEM_P: 6,
}

_LOAD_OPS = frozenset((bc.OP_LOAD_I, bc.OP_LOAD_F,
                       bc.OP_LDELEM_I, bc.OP_LDELEM_F))
_STORE_OPS = frozenset((bc.OP_STORE_I, bc.OP_STORE_F, bc.OP_STORE_P,
                        bc.OP_STELEM_I, bc.OP_STELEM_F, bc.OP_STELEM_P))

#: (elem_size operand, access-size operand or None) per fused memory op.
_FUSED_SHAPE: dict[int, tuple[int, int | None]] = {
    bc.OP_LDELEM_I: (4, 5), bc.OP_LDELEM_F: (4, 5),
    bc.OP_STELEM_I: (3, 6), bc.OP_STELEM_F: (3, 6), bc.OP_STELEM_P: (3, None),
}

_ACCESS_SIZES = frozenset((1, 2, 4, 8))

_FUSED_OPS = frozenset((bc.OP_LDELEM_I, bc.OP_LDELEM_F, bc.OP_STELEM_I,
                        bc.OP_STELEM_F, bc.OP_STELEM_P, bc.OP_BR))

_KNOWN_OPS = frozenset(range(62))


class IRVerificationError(Exception):
    """The bytecode of a compiled program failed structural verification."""

    def __init__(self, findings: list[str]):
        self.findings = findings
        preview = "\n  ".join(findings[:20])
        more = f"\n  ... and {len(findings) - 20} more" if len(findings) > 20 else ""
        super().__init__(
            f"IR verification failed with {len(findings)} finding(s):\n"
            f"  {preview}{more}")


@dataclass(frozen=True)
class VerifyStats:
    """What one :func:`verify_compiled` pass covered."""

    functions: int
    instructions: int
    fused_functions: int
    fused_instructions: int


def _valid_pc(pc: object, is_store: bool, allow_untraced: bool) -> bool:
    if not isinstance(pc, int):
        return False
    if pc == -1:
        # The untraced sentinel: global initialization and parameter
        # spills run with tracing off by design.
        return allow_untraced
    if not USER_PC_BASE <= pc < LIB_PC_BASE:
        return False
    return pc % 8 == (4 if is_store else 0)


def verify_function(
    fn: "bc.BytecodeFunction",
    checkpoint_map: CheckpointMap,
    function_names: frozenset[str],
    fused: bool,
    allow_untraced_pc: bool = False,
) -> list[str]:
    """Structural findings for one bytecode function (empty = clean)."""
    findings: list[str] = []
    code = fn.code
    size = len(code)

    def flag(index: int, message: str) -> None:
        findings.append(f"{fn.name}[{index}]: {message}")

    for index, ins in enumerate(code):
        op = ins[0]
        if op not in _KNOWN_OPS:
            flag(index, f"unknown opcode {op!r}")
            continue
        if op in _FUSED_OPS and not fused:
            flag(index, f"superinstruction {op} in unfused code")
            continue

        # Register operands: the same tables the liveness fixpoint uses.
        if op == bc.OP_CALL or op == bc.OP_CALLB:
            if len(ins) != 4 or not isinstance(ins[3], tuple):
                flag(index, f"malformed call {ins!r}")
                continue
            slots = (ins[1], *ins[3])
            if op == bc.OP_CALL and ins[2] not in function_names:
                flag(index, f"call to unknown function {ins[2]!r}")
            if op == bc.OP_CALLB and ins[2] not in BUILTIN_SIGNATURES:
                flag(index, f"call to unknown builtin {ins[2]!r}")
        else:
            read_positions = bc._READS.get(op, ())
            write_position = bc._WRITES.get(op)
            positions = (*read_positions,
                         *(() if write_position is None else (write_position,)))
            if positions and max(positions) >= len(ins):
                flag(index, f"operand arity too small for opcode {op}: {ins!r}")
                continue
            slots = tuple(ins[pos] for pos in positions)
        for slot in slots:
            if not isinstance(slot, int) or not 0 <= slot < fn.n_slots:
                flag(index, f"register slot {slot!r} outside frame "
                            f"of {fn.n_slots} slots")

        # Jumps land on instruction boundaries.
        target_pos = None
        if op == bc.OP_JMP:
            target_pos = 1
        elif op == bc.OP_JZ or op == bc.OP_JNZ:
            target_pos = 2
        elif op == bc.OP_BR:
            target_pos = 4
        if target_pos is not None:
            target = ins[target_pos]
            if not isinstance(target, int) or not 0 <= target <= size:
                flag(index, f"jump target {target!r} outside code "
                            f"of {size} instructions")

        # Trace-emitting memory ops carry decodable synthetic pcs.
        pc_pos = _PC_POS.get(op)
        if pc_pos is not None:
            if pc_pos >= len(ins):
                flag(index, f"missing pc operand: {ins!r}")
            elif not _valid_pc(ins[pc_pos], op in _STORE_OPS,
                               allow_untraced_pc):
                flag(index, f"invalid synthetic pc {ins[pc_pos]!r}")

        # Superinstructions decode back to their constituent ops.
        if op in _FUSED_SHAPE:
            elem_pos, size_pos = _FUSED_SHAPE[op]
            if ins[elem_pos] < 1:
                flag(index, f"fused element size {ins[elem_pos]!r} < 1")
            if size_pos is not None and ins[size_pos] not in _ACCESS_SIZES:
                flag(index, f"fused access size {ins[size_pos]!r}")
        if op == bc.OP_BR:
            if ins[1] not in bc._CMP_OPS:
                flag(index, f"fused branch wraps non-comparison op {ins[1]!r}")
            if ins[5] not in (0, 1):
                flag(index, f"fused branch sense {ins[5]!r}")

        # Checkpoints exist in the instrumentation map, kinds agree.
        if op == bc.OP_CKPT:
            checkpoint_id, kind_code = ins[1], ins[2]
            info = checkpoint_map.infos.get(checkpoint_id)
            if info is None:
                flag(index, f"checkpoint id {checkpoint_id!r} not in map")
            elif KIND_TO_CODE[info.kind] != kind_code:
                flag(index, f"checkpoint {checkpoint_id} kind code "
                            f"{kind_code} != {KIND_TO_CODE[info.kind]}")

    # Defined-before-use: at entry only parameter slots may be live.
    if not findings and size:
        live_entry = _entry_liveness(code)
        allowed = 0
        for param in fn.params:
            allowed |= 1 << param.slot
        rogue = live_entry & ~allowed
        if rogue:
            bad = [i for i in range(fn.n_slots) if rogue >> i & 1]
            findings.append(
                f"{fn.name}: slots {bad} read before any definition")

    # Instrumented body regions are in bounds and name body-end ids.
    for start, end, body_end_id in fn.body_regions:
        if not 0 <= start <= end <= size:
            findings.append(
                f"{fn.name}: body region ({start}, {end}) outside code")
        info = checkpoint_map.infos.get(body_end_id)
        if info is None or KIND_TO_CODE[info.kind] != BODY_END_CODE:
            findings.append(
                f"{fn.name}: body region id {body_end_id} is not a "
                "body-end checkpoint")
    return findings


def _entry_liveness(code) -> int:
    """Live-in register mask at instruction 0 (reuses the fusion tables)."""
    n = len(code)
    use = [0] * n
    kill = [0] * n
    succs: list[tuple[int, ...]] = []
    for i, ins in enumerate(code):
        op = ins[0]
        if op == bc.OP_CALL or op == bc.OP_CALLB:
            mask = 0
            for slot in ins[3]:
                mask |= 1 << slot
            use[i] = mask
            kill[i] = 1 << ins[1]
        else:
            mask = 0
            for pos in bc._READS[op]:
                mask |= 1 << ins[pos]
            use[i] = mask
            write = bc._WRITES.get(op)
            if write is not None:
                kill[i] = 1 << ins[write]
        if op == bc.OP_JMP:
            succs.append((ins[1],))
        elif op == bc.OP_JZ or op == bc.OP_JNZ:
            succs.append((i + 1, ins[2]))
        elif op == bc.OP_BR:
            succs.append((i + 1, ins[4]))
        elif op == bc.OP_RET or op == bc.OP_RET0:
            succs.append(())
        else:
            succs.append((i + 1,))
    live_in = [0] * (n + 1)
    changed = True
    while changed:
        changed = False
        for i in range(n - 1, -1, -1):
            out = 0
            for successor in succs[i]:
                out |= live_in[successor]
            new = use[i] | (out & ~kill[i])
            if new != live_in[i]:
                live_in[i] = new
                changed = True
    return live_in[0]


def verify_bytecode(
    bytecode_program: "bc.BytecodeProgram",
    checkpoint_map: CheckpointMap,
    fused: bool = False,
) -> list[str]:
    """Findings across all functions (and globals-init) of one program."""
    names = frozenset(bytecode_program.functions)
    findings = verify_function(bytecode_program.globals_init, checkpoint_map,
                               names, fused, allow_untraced_pc=True)
    for fn in bytecode_program.functions.values():
        findings.extend(verify_function(fn, checkpoint_map, names, fused))
    return findings


def verify_compiled(compiled, raise_on_error: bool = True) -> VerifyStats:
    """Verify the lowered program and its fused twin.

    ``compiled`` is a :class:`repro.sim.machine.CompiledProgram`; lowering
    and fusion results are cached on it, so verification shares work with
    a subsequent run instead of repeating it.
    """
    from repro.sim.machine import lower_compiled

    lowered = lower_compiled(compiled)
    findings = verify_bytecode(lowered, compiled.checkpoint_map, fused=False)
    fused = bc.fuse_program(lowered)
    findings.extend(verify_bytecode(fused, compiled.checkpoint_map,
                                    fused=True))
    if findings and raise_on_error:
        raise IRVerificationError(findings)
    count = len(lowered.functions) + 1
    instructions = lowered.instruction_count
    return VerifyStats(
        functions=count,
        instructions=instructions,
        fused_functions=len(fused.functions) + 1,
        fused_instructions=fused.instruction_count,
    )
