"""Byte-addressable simulated memory with an embedded-style address map.

The layout mimics a 32-bit embedded target (and produces the kinds of
addresses seen in the paper's Figure 4 trace, e.g. stack addresses just
below ``0x80000000``):

====================  =========================================
``0x10000000``        globals and string literals (grow up)
``0x40000000``        heap (bump allocator, grows up)
``0x80000000``        stack top (frames grow down)
====================  =========================================

Memory is organised in 4 KiB pages allocated on demand, so sparse address
use stays cheap. All multi-byte values are little-endian.
"""

from __future__ import annotations

import struct

from repro.lang.errors import MemoryFault

GLOBAL_BASE = 0x10000000
HEAP_BASE = 0x40000000
STACK_TOP = 0x80000000
#: Maximum stack depth in bytes before a simulated stack overflow.
STACK_LIMIT = 8 * 1024 * 1024

_PAGE_SHIFT = 12
_PAGE_SIZE = 1 << _PAGE_SHIFT
_PAGE_MASK = _PAGE_SIZE - 1


class Memory:
    """Sparse paged memory."""

    def __init__(self) -> None:
        self._pages: dict[int, bytearray] = {}

    # -- raw byte access -------------------------------------------------

    def _page(self, page_index: int) -> bytearray:
        page = self._pages.get(page_index)
        if page is None:
            page = bytearray(_PAGE_SIZE)
            self._pages[page_index] = page
        return page

    def read_bytes(self, addr: int, size: int) -> bytes:
        if addr < 0 or size < 0:
            raise MemoryFault(f"invalid read at {addr:#x} size {size}")
        out = bytearray(size)
        offset = 0
        while offset < size:
            page = self._page((addr + offset) >> _PAGE_SHIFT)
            start = (addr + offset) & _PAGE_MASK
            chunk = min(size - offset, _PAGE_SIZE - start)
            out[offset : offset + chunk] = page[start : start + chunk]
            offset += chunk
        return bytes(out)

    def write_bytes(self, addr: int, data: bytes) -> None:
        if addr < 0:
            raise MemoryFault(f"invalid write at {addr:#x}")
        offset = 0
        size = len(data)
        while offset < size:
            page = self._page((addr + offset) >> _PAGE_SHIFT)
            start = (addr + offset) & _PAGE_MASK
            chunk = min(size - offset, _PAGE_SIZE - start)
            page[start : start + chunk] = data[offset : offset + chunk]
            offset += chunk

    # -- typed access -------------------------------------------------------

    def read_int(self, addr: int, size: int, signed: bool) -> int:
        return int.from_bytes(self.read_bytes(addr, size), "little", signed=signed)

    def write_int(self, addr: int, value: int, size: int) -> None:
        mask = (1 << (8 * size)) - 1
        self.write_bytes(addr, (value & mask).to_bytes(size, "little"))

    def read_float(self, addr: int, size: int) -> float:
        fmt = "<f" if size == 4 else "<d"
        return struct.unpack(fmt, self.read_bytes(addr, size))[0]

    def write_float(self, addr: int, value: float, size: int) -> None:
        fmt = "<f" if size == 4 else "<d"
        try:
            data = struct.pack(fmt, value)
        except OverflowError:
            data = struct.pack(fmt, float("inf") if value > 0 else float("-inf"))
        self.write_bytes(addr, data)

    def read_cstring(self, addr: int, max_len: int = 1 << 20) -> str:
        chars: list[str] = []
        for offset in range(max_len):
            byte = self.read_bytes(addr + offset, 1)[0]
            if byte == 0:
                return "".join(chars)
            chars.append(chr(byte))
        raise MemoryFault(f"unterminated string at {addr:#x}")


class BumpAllocator:
    """Bump-pointer allocator used for both globals and the heap.

    ``free`` is a no-op, which is a common arrangement in static embedded
    software and is sufficient for the workloads here.
    """

    def __init__(self, base: int):
        self.base = base
        self._next = base

    def allocate(self, size: int, align: int = 8) -> int:
        align = max(1, align)
        addr = (self._next + align - 1) // align * align
        self._next = addr + max(1, size)
        return addr

    @property
    def used(self) -> int:
        return self._next - self.base


class StackAllocator:
    """A downward-growing stack of frames."""

    def __init__(self, top: int = STACK_TOP, limit: int = STACK_LIMIT):
        self._top = top
        self._limit = limit
        self._sp = top

    @property
    def sp(self) -> int:
        return self._sp

    def push_frame(self) -> int:
        """Return a marker to restore at frame exit."""
        return self._sp

    def pop_frame(self, marker: int) -> None:
        self._sp = marker

    def allocate(self, size: int, align: int = 8) -> int:
        align = max(1, align)
        addr = (self._sp - max(1, size)) // align * align
        if self._top - addr > self._limit:
            raise MemoryFault("simulated stack overflow")
        self._sp = addr
        return addr
