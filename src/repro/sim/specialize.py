"""Block compilation: fused bytecode → straight-line generated Python.

The classic dispatch loop costs one full trip through the opcode ladder
per instruction. This module removes the interpreter from the hot path
entirely: each function of the *fused* program (:func:`~repro.sim.
bytecode.fuse_program`) is translated once into Python source — one
module-level function per basic block, operating on a flat register list
``r`` — which CPython then executes natively. Memory accesses append
``(pc, addr, size, w)`` directly to the VM's flat column buffer with a
single bound-method call, so a fused load is one generated statement
instead of two dispatched instructions.

Within a block, register slots live in Python locals (``t<slot>``): a
write goes to the local, later reads come from it, and only slots that
are *live out* of the block (per the fusion pass's backward liveness)
are flushed back to ``r`` before the block returns. Everything that can
observe registers mid-block — a simulated call, a builtin, an abort —
either reads only explicitly materialized state (the per-frame call pc)
or ends the run, so the localization is invisible.

Layout of the generated module (for function index ``f``):

* ``_bk{f}_{j}(r)`` — basic block ``j``; returns the next block index,
  or ``-1`` to return from the function.
* ``_BK{f}`` — the block table.
* ``_fn{f}(*_a)`` — the driver: binds parameters exactly like
  ``BytecodeVM._bind_frame`` (including silent truncation of missing
  arguments), trampolines over the block table, and converts the return
  value with the callee's void-ness, mirroring the dispatch loop's
  ``OP_RET`` handling. Simulated calls compile to direct calls between
  drivers; the simulated call-depth limit is enforced through a shared
  depth cell.

Every name starting with ``_`` but the block/driver definitions is bound
per-VM by :meth:`Specialization.bind` before the module is exec'd, so
one compiled specialization (cached on the :class:`BytecodeProgram`)
serves any number of VM runs. Registers ``r`` carry three extra slots:
the return value, the current call pc (read by the ``exit()`` unwind
path to replay pending body-end checkpoints per frame), and the stack
frame marker.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from types import CodeType
from typing import TYPE_CHECKING, Any, Callable, Sequence

from repro.lang.ctypes_ import FloatType, IntType, PointerType
from repro.sim import bytecode as bc

if TYPE_CHECKING:
    from repro.sim.dataflow import AccessFact

#: One lowered/fused instruction: ``(op, *operands)``.
_Ins = tuple[Any, ...]
#: The line-writer bound method (``self.lines.append``).
_W = Callable[[str], None]

_M32 = "4294967295"

#: Side-effect-free, non-raising opcodes writing operand 1 — skipped
#: outright when the destination is dead. DECL/STR never qualify: they
#: move the stack/intern pointers, which later addresses observe.
_DEAD_SKIP = bc._PURE_OPS


@dataclass
class _Region:
    """A loop in the chain graph, emitted as one dispatch function."""

    id: int
    #: Every chain inside the region, nested loops included.
    members: tuple[int, ...]
    #: Chains dispatched directly by this region's ladder.
    direct: tuple[int, ...]
    #: Nested loops, each its own :class:`_Region`.
    children: tuple["_Region", ...]


def _sccs(nodes: list[int],
          succ: dict[int, list[int]]) -> list[list[int]]:
    """Tarjan's strongly connected components, iteratively."""
    index: dict[int, int] = {}
    low: dict[int, int] = {}
    on: dict[int, bool] = {}
    stack: list[int] = []
    out: list[list[int]] = []
    next_index = 0
    for root in nodes:
        if root in index:
            continue
        work = [(root, 0)]
        while work:
            v, pi = work[-1]
            if pi == 0:
                index[v] = low[v] = next_index
                next_index += 1
                stack.append(v)
                on[v] = True
            descended = False
            kids = succ.get(v, ())
            for i in range(pi, len(kids)):
                t = kids[i]
                if t not in index:
                    work[-1] = (v, i + 1)
                    work.append((t, 0))
                    descended = True
                    break
                if on.get(t):
                    low[v] = min(low[v], index[t])
            if descended:
                continue
            work.pop()
            if work:
                pv = work[-1][0]
                low[pv] = min(low[pv], low[v])
            if low[v] == index[v]:
                comp = []
                while True:
                    u = stack.pop()
                    on[u] = False
                    comp.append(u)
                    if u == v:
                        break
                out.append(comp)
    return out


def _loop_forest(
    nodes: list[int], succ: dict[int, list[int]], counter: list[int],
) -> tuple[list[int], list[_Region]]:
    """Split a chain graph into straight-line chains and loop regions.

    Each nontrivial SCC is a loop; removing the in-SCC edges into its
    header breaks the cycle, and recursing on the remainder exposes the
    nested loops. Returns ``(straight_chains, regions)``.
    """
    straight: list[int] = []
    regions: list[_Region] = []
    for comp in _sccs(nodes, succ):
        if len(comp) == 1 and comp[0] not in succ.get(comp[0], ()):
            straight.append(comp[0])
            continue
        comp_set = set(comp)
        header = min(comp)
        sub = {v: [t for t in succ.get(v, ()) if t in comp_set
                   and t != header]
               for v in comp}
        rid = counter[0]
        counter[0] += 1
        direct, children = _loop_forest(comp, sub, counter)
        regions.append(_Region(rid, tuple(sorted(comp)),
                               tuple(sorted(direct)), tuple(children)))
    return straight, regions


@dataclass
class Specialization:
    """One program's compiled fast path (source kept for debugging)."""

    source: str
    code: CodeType
    consts: tuple[Any, ...]
    fmts: tuple[str, ...]
    #: MiniC function name → generated driver symbol (index-mangled, so
    #: simulated names that collide with Python keywords stay legal).
    drivers: dict[str, str]
    #: Page indices the interval analysis pinned accesses to; their
    #: bytearrays are resolved once at bind time (``_pg{index}``).
    pages: tuple[int, ...] = ()
    #: Predicted static global layout the guard-eliminated code was
    #: compiled against; re-checked against the real VM at bind time.
    layout: tuple[int, ...] = ()

    def bind(self, vm: "bc.BytecodeVM") -> dict[str, Any]:
        """Exec the generated module against one VM's state; returns the
        module namespace (driver functions live under ``drivers``)."""
        memory = vm.memory
        if self.layout and tuple(vm._global_addrs) != self.layout:
            raise bc.MiniCRuntimeError(
                "specializer: static global layout prediction does not "
                "match the VM (guard elimination would be unsound)")
        env: dict[str, Any] = {
            "_VM": vm,
            "_PG": memory._pages,
            "_MP": memory._page,
            "_RI": memory.read_int,
            "_RF": memory.read_float,
            "_WI": memory.write_int,
            "_WF": memory.write_float,
            "_WB": memory.write_bytes,
            "_AB": vm._acc_buf,
            "_AX": vm._acc_buf.extend,
            "_CPB": vm._cp_buf,
            "_CPA": vm._cp_buf.append,
            "_FLUSH": vm._flush_trace,
            "_FL": vm._flat_limit,
            "_BS": vm._block_size,
            "_S": [0],
            "_D": [0],
            "_MAXS": vm._max_steps,
            "_MAXD": vm._max_call_depth,
            "_EMSG": (f"execution exceeded the budget of "
                      f"{vm._max_steps} steps"),
            "_ELE": bc.ExecLimitExceeded,
            "_RTE": bc.MiniCRuntimeError,
            "_EXIT": bc.ExitSignal,
            "_ST": vm.stats,
            "_PUSH": vm._stack.push_frame,
            "_POP": vm._stack.pop_frame,
            "_SALLOC": vm._stack.allocate,
            "_GA": vm._global_addrs,
            "_ISTR": vm._intern_string,
            "_CB": bc.libc.call_builtin,
            "_CDIV": bc._c_div,
            "_PEND": vm._pending_body_ends_one,
            "_C": self.consts,
        }
        for i, fmt in enumerate(self.fmts):
            env[f"_U{i}"] = bc._UNPACK.get(fmt)
            env[f"_P{i}"] = bc._PACK.get(fmt)
        # Preresolve the statically proven pages: creating a page eagerly
        # is invisible (an untouched page reads as zeros either way, and
        # page bytearrays are never replaced once created).
        for p in self.pages:
            env[f"_pg{p}"] = memory._page(p)
        exec(self.code, env)
        return env


def _check_ranges_enabled() -> bool:
    """REPRO_CHECK_RANGES=1 compiles runtime asserts for every derived
    interval into the specialized code (the guard-elim debug mode)."""
    return os.environ.get("REPRO_CHECK_RANGES", "") not in ("", "0")


def get_specialization(bp: "bc.BytecodeProgram",
                       guard_elim: bool = True) -> Specialization:
    """The (cached) specialization of a lowered program.

    Variants are keyed by (guard_elim, check_ranges): the interval-based
    guard elimination can be disabled for timing/debugging, and the
    check-ranges debug mode compiles different (asserting) code.
    """
    key = (bool(guard_elim), _check_ranges_enabled())
    cache = getattr(bp, "_specializations", None)
    if cache is None:
        cache = {}
        bp._specializations = cache
    spec = cache.get(key)
    if spec is None:
        spec = _specialize(bc.fuse_program(bp), guard_elim=key[0],
                           check_ranges=key[1])
        cache[key] = spec
    return spec


def _specialize(fbp: "bc.BytecodeProgram", guard_elim: bool = True,
                check_ranges: bool = False) -> Specialization:
    facts: dict[str, dict[int, "AccessFact"]] = {}
    layout: tuple[int, ...] = ()
    if guard_elim:
        from repro.sim import dataflow

        layout = dataflow.static_global_layout(fbp)
        facts = {name: dataflow.access_facts(fn, layout)
                 for name, fn in fbp.functions.items()}
    fidx = {name: i for i, name in enumerate(fbp.functions)}
    gen = _Codegen(fidx, facts=facts, guard_elim=guard_elim,
                   check_ranges=check_ranges)
    for name, fn in fbp.functions.items():
        gen.emit_function(fidx[name], name, fn)
    source = "\n".join(gen.lines) + "\n"
    code = compile(source, "<specialized>", "exec")
    return Specialization(source=source, code=code,
                          consts=tuple(gen.consts),
                          fmts=tuple(gen.fmts),
                          drivers={name: f"_fn{i}"
                                   for name, i in fidx.items()},
                          pages=tuple(sorted(gen.pages)),
                          layout=layout)


_CMP_SYM = {
    "LT": "<", "LE": "<=", "GT": ">", "GE": ">=", "EQ": "==", "NE": "!=",
}


def _cmp_sym(op: int) -> str:
    if op == bc.OP_LT:
        return "<"
    if op == bc.OP_LE:
        return "<="
    if op == bc.OP_GT:
        return ">"
    if op == bc.OP_GE:
        return ">="
    if op == bc.OP_EQ:
        return "=="
    return "!="


class _Codegen:
    def __init__(self, fidx: dict[str, int],
                 facts: dict[str, dict[int, "AccessFact"]] | None = None,
                 guard_elim: bool = False,
                 check_ranges: bool = False) -> None:
        self.fidx = fidx
        self.lines: list[str] = []
        self.consts: list[Any] = []
        self.fmts: list[str] = []
        self._fmt_index: dict[str, int] = {}
        #: Function name → {instruction index → interval access fact}.
        self._all_facts = facts or {}
        self._facts: dict[int, "AccessFact"] = {}
        self._guard = guard_elim
        self._check = check_ranges
        #: Pages referenced by page-pinned fast paths (bound as _pg{p}).
        self.pages: set[int] = set()
        #: Block-local slot → local-name map (register localization).
        self._cur: dict[int, str] = {}
        #: Block-local constant tracking: slot → (literal expr, value).
        self._lits: dict[int, tuple[str, object]] = {}
        #: Slots whose current value is statically a Python int.
        self._ints: set[int] = set()
        #: Slots wrapped to a known (mask, maxv) integer domain.
        self._doms: dict[int, tuple[int, int]] = {}
        #: Live-out mask at the current block's exit.
        self._exit_live = 0
        #: Whether the current block keeps the step counter in ``s_``.
        self._steps_local = False
        #: pc → bitmask of slots written strictly later in the chain
        #: (licenses MOV aliasing: the source must stay unchanged).
        self._written_after: dict[int, int] = {}
        #: Trace traffic emitted by the current chain (one buffer-limit
        #: check per exit instead of one per record).
        self._n_acc = 0
        self._n_cp = 0
        #: Accesses since ``la_`` snapshotted ``len(_AB)`` (None: no
        #: valid snapshot); checkpoint positions are computed from it.
        self._snap: int | None = None
        #: Write counter per slot (versions pure computations for CSE).
        self._ver: dict[int, int] = {}
        #: Value numbering: (expr, mask, maxv, operand versions) → the
        #: (slot, version, name, dom) that already holds the value.
        self._cse: dict[Any, Any] = {}
        #: Operand (slot, version) pairs of the instruction being
        #: emitted — part of every CSE key.
        self._reads_key: tuple[Any, ...] = ()
        #: Unique suffix for divmod-core temporaries.
        self._site = 0
        #: pc of the instruction being emitted (written_after lookups).
        self._pc = -1
        #: Chain index → in-region transfer kind; targets outside the
        #: current region return to the enclosing dispatcher.
        self._route: dict[int, tuple[Any, ...]] = {}
        #: Slots carried in ``t`` locals across the current region's
        #: iterations (sorted; empty outside regions).
        self._carried: tuple[int, ...] = ()

    # -- shared tables -----------------------------------------------------

    def _const(self, obj: Any) -> str:
        self.consts.append(obj)
        return f"_C[{len(self.consts) - 1}]"

    def _fmt(self, fmt: str) -> int:
        index = self._fmt_index.get(fmt)
        if index is None:
            index = len(self.fmts)
            self.fmts.append(fmt)
            self._fmt_index[fmt] = index
        return index

    def _lit(self, value: Any) -> str:
        """A literal expression for an OP_CONST/immediate value."""
        if type(value) is float and (value != value or value in
                                     (float("inf"), float("-inf"))):
            return self._const(value)
        return repr(value)

    # -- register localization and block-local value tracking ---------------

    def _rd(self, slot: int) -> str:
        lit = self._lits.get(slot)
        if lit is not None:
            return lit[0]
        return self._cur.get(slot) or f"r[{slot}]"

    def _rd_int(self, slot: int) -> str:
        """A read already known to be a Python int (skips the ``int()``
        the dispatch loop applies unconditionally)."""
        if slot in self._ints:
            return self._rd(slot)
        lit = self._lits.get(slot)
        if lit is not None and type(lit[1]) is int:
            return lit[0]
        return f"int({self._rd(slot)})"

    def _wr(self, slot: int, is_int: bool = False,
            dom: tuple[int, int] | None = None) -> str:
        name = f"t{slot}"
        self._cur[slot] = name
        self._lits.pop(slot, None)
        self._doms.pop(slot, None)
        self._ver[slot] = self._ver.get(slot, 0) + 1
        if is_int:
            self._ints.add(slot)
        else:
            self._ints.discard(slot)
        if dom is not None:
            self._doms[slot] = dom
        return name

    def _set_const(self, slot: int, value: Any) -> None:
        """Record a constant slot; materialize the local only when the
        slot survives the block (reads inside it use the literal)."""
        lit = self._lit(value)
        if (self._exit_live >> slot) & 1:
            name = self._wr(slot, is_int=type(value) is int)
            self.lines.append(f"    {name} = {lit}")
        else:
            self._cur.pop(slot, None)
            self._doms.pop(slot, None)
            self._ver[slot] = self._ver.get(slot, 0) + 1
            if type(value) is int:
                self._ints.add(slot)
            else:
                self._ints.discard(slot)
        self._lits[slot] = (lit, value)

    def _lit_int(self, slot: int) -> int | None:
        """The slot's statically known int value, or None."""
        lit = self._lits.get(slot)
        if lit is not None and type(lit[1]) is int:
            return lit[1]
        return None

    def _flush_lines(self, live_mask: int) -> tuple[str, ...]:
        """``r[slot] = ...`` statements for every live tracked slot."""
        return tuple(f"r[{slot}] = {self._cur[slot]}"
                     for slot in sorted(self._cur)
                     if (live_mask >> slot) & 1)

    def _mat_lines(self, skip: tuple[int, ...] = ()) -> tuple[str, ...]:
        """Region back-edge sync: re-materialize carried locals whose
        value currently lives elsewhere (an alias or a literal). A slot
        absent from ``_cur`` was either untouched (its local is already
        current) or constant-folded while dead (unreadable until the
        next write), so it needs nothing. RHS expressions only ever
        name literals or other carried locals that are themselves
        consistent — an alias ``t9`` is only tracked while slot 9 is
        never rewritten afterwards — so order cannot matter."""
        out = []
        for slot in self._carried:
            if slot in skip:
                continue
            cur = self._cur.get(slot)
            if cur is not None and cur != f"t{slot}":
                out.append(f"t{slot} = {cur}")
        return tuple(out)

    def _flush_trace_checks(self) -> None:
        """The buffer-limit checks for everything the chain appended."""
        if self._n_acc and self._n_cp:
            self.lines.append(
                "    if len(_AB) >= _FL or len(_CPB) >= _BS: _FLUSH()")
        elif self._n_acc:
            self.lines.append("    if len(_AB) >= _FL: _FLUSH()")
        elif self._n_cp:
            self.lines.append("    if len(_CPB) >= _BS: _FLUSH()")

    def _flush_steps(self) -> None:
        """Write the local step counter back before anything that can
        observe it — a simulated call, a builtin, or leaving the block."""
        if self._steps_local:
            self.lines.append("    _S[0] = s_")

    def _steps_raise(self, message: str) -> str:
        """An abort statement that first syncs the step counter."""
        if self._steps_local:
            return f"_S[0] = s_; raise {message}"
        return f"raise {message}"

    # -- function emission -------------------------------------------------

    def emit_function(self, findex: int, name: str,
                      fn: "bc.BytecodeFunction") -> None:
        self._facts = self._all_facts.get(name, {})
        code = fn.code
        n = len(code)
        leaders = {0}
        for i, ins in enumerate(code):
            op = ins[0]
            if op == bc.OP_JMP:
                leaders.add(ins[1])
                leaders.add(i + 1)
            elif op == bc.OP_JZ or op == bc.OP_JNZ:
                leaders.add(ins[2])
                leaders.add(i + 1)
            elif op == bc.OP_BR:
                leaders.add(ins[4])
                leaders.add(i + 1)
            elif op == bc.OP_RET or op == bc.OP_RET0:
                leaders.add(i + 1)
        leaders.discard(n)
        order = sorted(leaders)
        ranges = [(start, order[j + 1] if j + 1 < len(order) else n)
                  for j, start in enumerate(order)]
        block_of = {start: j for j, start in enumerate(order)}

        # Superblock chaining: a block whose only way in is another
        # block's unconditional JMP is absorbed into that block, so the
        # transfer costs nothing and locals stay live across the join.
        preds = {start: 0 for start in order}
        preds[0] += 1
        for start, end in ranges:
            term = code[end - 1]
            op = term[0]
            if op == bc.OP_JMP:
                preds[term[1]] += 1
            elif op == bc.OP_JZ or op == bc.OP_JNZ:
                preds[term[2]] += 1
                preds[end] += 1
            elif op == bc.OP_BR:
                preds[term[4]] += 1
                preds[end] += 1
            elif op != bc.OP_RET and op != bc.OP_RET0:
                preds[end] += 1
        chains: list[list[int]] = []
        placed: set[int] = set()
        for j in range(len(order)):
            if j in placed:
                continue
            placed.add(j)
            chain = [j]
            while True:
                _start, end = ranges[chain[-1]]
                term = code[end - 1]
                if term[0] != bc.OP_JMP:
                    break
                tj = block_of[term[1]]
                if preds[term[1]] != 1 or tj in placed:
                    break
                placed.add(tj)
                chain.append(tj)
            chains.append(chain)
        # Only chain heads are ever jumped (or fallen through) to: an
        # interior block's single predecessor is the absorbed JMP.
        blk = {order[chain[0]]: c for c, chain in enumerate(chains)}

        live_out = bc._liveness(code)
        rv = fn.n_slots
        pcs = fn.n_slots + 1
        mk = fn.n_slots + 2

        # Chain-level control-flow graph → loop forest. Every loop
        # becomes one Python function whose back-edges are ``continue``
        # through an internal dispatch ladder, so iterating costs no
        # trampoline round-trip; straight-line chains stay plain block
        # functions driven by the trampoline.
        succ: dict[int, list[int]] = {}
        for c, chain in enumerate(chains):
            end = ranges[chain[-1]][1]
            term = code[end - 1]
            top = term[0]
            targets: tuple[int, ...]
            if top == bc.OP_JMP:
                targets = (term[1],)
            elif top == bc.OP_JZ or top == bc.OP_JNZ:
                targets = (term[2], end)
            elif top == bc.OP_BR:
                targets = (term[4], end)
            elif top == bc.OP_RET or top == bc.OP_RET0:
                targets = ()
            else:
                targets = (end,)
            succ[c] = sorted({blk[t] for t in targets})
        counter = [0]
        straight, regions = _loop_forest(list(range(len(chains))), succ,
                                         counter)

        emit = (chains, ranges, code, blk, rv, pcs, mk, live_out)
        for c in sorted(straight):
            self._route = {}
            self.lines.append(f"def _bk{findex}_{c}(r):")
            self._emit_chain_body(chains[c], ranges, code, blk, rv, pcs,
                                  mk, live_out)
            self.lines.append("")
        for reg in regions:
            self._emit_region(findex, reg, *emit)
            for m in reg.members:
                # Trampoline entry: jump into the loop at chain m.
                self.lines.append(f"def _bk{findex}_{m}(r):")
                self.lines.append(
                    f"    return _rg{findex}_{reg.id}(r, {m})")
                self.lines.append("")

        table = ", ".join(f"_bk{findex}_{c}" for c in range(len(chains)))
        self.lines.append(f"_BK{findex} = ({table},)")
        self.lines.append("")
        self._emit_driver(findex, name, fn, rv, pcs, mk)

    def _emit_chain_body(self, chain: list[int],
                         ranges: list[tuple[int, int]],
                         code: Sequence[_Ins], blk: dict[int, int],
                         rv: int, pcs: int, mk: int,
                         live_out: Sequence[int]) -> None:
        """Emit one chain's statements at base indentation, routing
        control transfers through :meth:`_goto`."""
        # Inside a region every carried slot's value lives in its
        # ``t`` local (the preheader loaded it, every edge keeps it
        # consistent), so seed the tracker with it; ``r`` entries for
        # carried slots are stale between region entry and exit.
        self._cur = {slot: f"t{slot}" for slot in self._carried}
        self._lits = {}
        self._ints = set()
        self._doms = {}
        self._n_acc = 0
        self._n_cp = 0
        self._snap = None
        self._ver = {}
        self._cse = {}
        chain_pcs = [pc for j in chain for pc in range(*ranges[j])]
        self._written_after = {}
        mask = 0
        for pc in reversed(chain_pcs):
            self._written_after[pc] = mask
            written = bc._WRITES.get(code[pc][0])
            if written is not None:
                mask |= 1 << code[pc][written]
        self._steps_local = any(
            code[pc][0] == bc.OP_STEP and code[pc][1]
            for pc in chain_pcs)
        if self._steps_local:
            self.lines.append("    s_ = _S[0]")
        terminated = False
        for k, j in enumerate(chain):
            start, end = ranges[j]
            self._exit_live = live_out[end - 1]
            last = end - 1 if k + 1 < len(chain) else end
            for pc in range(start, last):
                terminated = self._emit_ins(code[pc], pc, blk, rv,
                                            pcs, mk, end, live_out)
        if not terminated:
            self._flush_steps()
            self._flush_trace_checks()
            for line in self._goto(blk[end], live_out[end - 1]):
                self.lines.append("    " + line)

    def _emit_region(self, findex: int, reg: _Region,
                     chains: list[list[int]],
                     ranges: list[tuple[int, int]],
                     code: Sequence[_Ins], blk: dict[int, int], rv: int,
                     pcs: int, mk: int,
                     live_out: Sequence[int]) -> tuple[int, ...]:
        """One loop region: ``while True`` around a chain-index ladder.

        Direct members inline their bodies; nested loops dispatch into
        the child's function and re-dispatch whatever chain index it
        comes back with — an index outside the region bubbles out to
        the caller (ultimately the trampoline). Every transition still
        flushes live registers and re-reads ``r`` at the next chain
        top, so the dispatch shape is invisible to the simulation.
        """
        child_carried = {
            child.id: self._emit_region(findex, child, chains, ranges,
                                        code, blk, rv, pcs, mk, live_out)
            for child in reg.children
        }
        # Carry every slot the region's chains touch in a local for the
        # whole stay: the preheader loads them once, in-region edges
        # sync locals only, exits (and nested-region hand-offs) flush
        # the live ones back to ``r``. Write-completeness of _WRITES
        # guarantees any slot NOT carried is never written inside the
        # region, so plain ``r`` reads of uncarried slots stay exact.
        touched = 0
        for m in reg.members:
            for j in chains[m]:
                for pc in range(*ranges[j]):
                    ins = code[pc]
                    op = ins[0]
                    if op == bc.OP_CALL or op == bc.OP_CALLB:
                        for slot in ins[3]:
                            touched |= 1 << slot
                        touched |= 1 << ins[1]
                    else:
                        for pos in bc._READS[op]:
                            touched |= 1 << ins[pos]
                        wp = bc._WRITES.get(op)
                        if wp is not None:
                            touched |= 1 << ins[wp]
        carried = tuple(slot for slot in range(touched.bit_length())
                        if (touched >> slot) & 1)
        self._carried = carried
        w = self.lines.append
        w(f"def _rg{findex}_{reg.id}(r, b_):")
        for slot in carried:
            w(f"    t{slot} = r[{slot}]")
        w("    while True:")
        if len(reg.direct) == 1 and not reg.children:
            # Single-chain loop: no ladder, the back-edge is a bare
            # ``continue``.
            c = reg.direct[0]
            self._route = {c: ("loop",)}
            start = len(self.lines)
            self._emit_chain_body(chains[c], ranges, code, blk, rv,
                                  pcs, mk, live_out)
            self.lines[start:] = ["    " + line
                                  for line in self.lines[start:]]
        else:
            route: dict[int, tuple[Any, ...]] = {}
            for m in reg.direct:
                route[m] = ("intra",)
            for child in reg.children:
                for m in child.members:
                    route[m] = ("child", f"{findex}_{child.id}",
                                child_carried[child.id])
            for i, c in enumerate(reg.direct):
                w(f"        {'if' if i == 0 else 'elif'} b_ == {c}:")
                self._route = route
                start = len(self.lines)
                self._emit_chain_body(chains[c], ranges, code, blk, rv,
                                      pcs, mk, live_out)
                self.lines[start:] = ["        " + line
                                      for line in self.lines[start:]]
            for child in reg.children:
                members = ", ".join(str(m) for m in child.members)
                w(f"        elif b_ in {{{members}}}:")
                # Re-dispatch from an arbitrary predecessor: liveness
                # is unknown here, so flush the whole carried set (dead
                # stores are harmless); only the child's own touched
                # slots can come back changed, so the reload stops
                # there.
                for slot in carried:
                    w(f"            r[{slot}] = t{slot}")
                w(f"            b_ = _rg{findex}_{child.id}(r, b_)")
                for slot in child_carried[child.id]:
                    w(f"            t{slot} = r[{slot}]")
            w("        else:")
            w("            return b_")
        self._carried = ()
        w("")
        return carried

    def _goto(self, target: int, live: int) -> tuple[str, ...]:
        """Transfer-of-control statements (unindented) for a chain
        index, register sync included: a trampoline return and nested
        dispatches flush live locals to ``r`` (and reload the carried
        set after a child region ran); in-region edges skip ``r``
        entirely and just keep the carried locals consistent."""
        route = self._route.get(target)
        if route is None:
            return (*self._flush_lines(live), f"return {target}")
        kind = route[0]
        if kind == "loop":
            return (*self._mat_lines(), "continue")
        if kind == "intra":
            return (*self._mat_lines(), f"b_ = {target}", "continue")
        # The flush must cover everything live — an exit edge inside
        # the child is the only flush a slot passing *through* it gets —
        # but only the child's own touched slots can come back changed,
        # so the reload stops there; slots the reload skips still need
        # their locals materialized (the flush alone writes an alias or
        # literal to ``r`` without repairing the local).
        reload = route[2]
        return (*self._flush_lines(live),
                *self._mat_lines(skip=reload),
                f"b_ = _rg{route[1]}(r, {target})",
                *(f"t{slot} = r[{slot}]" for slot in reload),
                "continue")

    def _emit_branch(self, w: _W, cond: str,
                     when_true: tuple[str, ...],
                     when_false: tuple[str, ...]) -> None:
        """A two-way transfer on ``cond``. Identical leading sync lines
        (both arms exiting flush the same live set) hoist above the
        condition; the remaining same-shape arms merge into a single
        conditional return (or dispatch) expression."""
        n = 0
        limit = min(len(when_true), len(when_false))
        while n < limit and when_true[n] == when_false[n]:
            n += 1
        for line in when_true[:n]:
            w("    " + line)
        when_true = when_true[n:]
        when_false = when_false[n:]
        if not when_true and not when_false:
            return
        if len(when_true) == 1 and len(when_false) == 1:
            a, b = when_true[0], when_false[0]
            if a.startswith("return ") and b.startswith("return "):
                w(f"    return {a[7:]} if {cond} else {b[7:]}")
                return
        if (len(when_true) == 2 and len(when_false) == 2
                and when_true[1] == "continue"
                and when_false[1] == "continue"
                and when_true[0].startswith("b_ = ")
                and when_false[0].startswith("b_ = ")):
            w(f"    b_ = {when_true[0][5:]} if {cond} "
              f"else {when_false[0][5:]}")
            w("    continue")
            return
        w(f"    if {cond}:")
        for line in when_true or ("pass",):
            w("        " + line)
        for line in when_false:
            w("    " + line)

    def _emit_driver(self, findex: int, name: str,
                     fn: "bc.BytecodeFunction", rv: int, pcs: int,
                     mk: int) -> None:
        w = self.lines.append
        w(f"def _fn{findex}(*_a):  # {name}")
        w(f"    r = [0] * {fn.n_slots + 3}")
        w(f"    r[{mk}] = _PUSH()")
        if fn.params:
            w("    _n = len(_a)")
        for i, spec in enumerate(fn.params):
            # Mirrors _bind_frame: zip() silently drops missing args.
            w(f"    if {i} < _n:")
            w(f"        v_ = _a[{i}]")
            if spec.conv == 1:
                w(f"        v_ = int(v_) & {spec.mask}")
                if spec.maxv >= 0:
                    w(f"        if v_ > {spec.maxv}: "
                      f"v_ -= {spec.mask + 1}")
            elif spec.conv == 2:
                w("        v_ = float(v_)")
            elif spec.conv == 3:
                w(f"        v_ = int(v_) & {_M32}")
            if spec.in_memory:
                ctype = spec.ctype
                w(f"        a_ = _SALLOC({ctype.size}, {ctype.alignment})")
                w(f"        r[{spec.slot}] = a_")
                if isinstance(ctype, FloatType):
                    w(f"        _WF(a_, float(v_), {ctype.size})")
                elif isinstance(ctype, (IntType, PointerType)):
                    w(f"        _WI(a_, int(v_), {ctype.size})")
                else:
                    message = f"cannot store a value of type {ctype}"
                    w(f"        raise _RTE({message!r})")
            else:
                w(f"        r[{spec.slot}] = v_")
        w(f"    _blocks = _BK{findex}")
        w("    b_ = 0")
        if fn.body_regions:
            regions = self._const(fn.body_regions)
            w("    try:")
            w("        while b_ >= 0:")
            w("            b_ = _blocks[b_](r)")
            w("    except _EXIT:")
            w(f"        _PEND({regions}, r[{pcs}])")
            w("        raise")
        else:
            w("    while b_ >= 0:")
            w("        b_ = _blocks[b_](r)")
        if fn.returns_void:
            w(f"    return r[{rv}]")
        else:
            w(f"    v_ = r[{rv}]")
            w("    return 0 if v_ is None else v_")
        w("")

    # -- instruction templates ---------------------------------------------

    def _cse_hit(self, key: Any, dst: int,
                 dom: tuple[int, int] | None) -> bool:
        """Reuse an earlier identical pure computation if its result is
        still held somewhere. Keys embed the operand slots' write
        versions, so a lookup only matches values computed from the
        exact registers currently visible; the holder's own version is
        re-checked because its slot may have been overwritten since."""
        hit = self._cse.get(key)
        if hit is None:
            return False
        slot, ver, name = hit
        if self._ver.get(slot, 0) != ver:
            return False
        if slot == dst:
            # The destination already holds this exact value.
            return True
        if not (self._written_after.get(self._pc, -1) >> slot) & 1:
            # The holder is never rewritten later in the chain, so the
            # destination can alias its local directly.
            self._wr(dst, is_int=True, dom=dom)
            self._cur[dst] = name
        else:
            self.lines.append(
                f"    {self._wr(dst, is_int=True, dom=dom)} = {name}")
        return True

    def _cse_put(self, key: Any, dst: int) -> None:
        self._cse[key] = (dst, self._ver.get(dst, 0), self._cur[dst])

    def _wrap(self, value_expr: str, mask: int, maxv: int,
              dst: int) -> None:
        """IntType.wrap with the sign branch specialized away when the
        type is unsigned (maxv < 0), exactly as the dispatch loop's
        ``ins[maxv] >= 0 and value > maxv`` test behaves."""
        key = (value_expr, mask, maxv, self._reads_key)
        if self._cse_hit(key, dst, (mask, maxv)):
            return
        w = self.lines.append
        name = self._wr(dst, is_int=True, dom=(mask, maxv))
        w(f"    {name} = ({value_expr}) & {mask}")
        if maxv >= 0:
            w(f"    if {name} > {maxv}: {name} -= {mask + 1}")
        self._cse_put(key, dst)

    def _assign_p(self, dst: int, expr: str) -> None:
        """CSE-aware pointer-valued assignment (address math)."""
        dom = (4294967295, -1)
        key = (expr, dom, self._reads_key)
        if self._cse_hit(key, dst, dom):
            return
        name = self._wr(dst, is_int=True, dom=dom)
        self.lines.append(f"    {name} = {expr}")
        self._cse_put(key, dst)

    def _trace(self, w: _W, pc: int, size: int, is_write: bool) -> None:
        # The buffer-limit check is batched at the chain's exits (the
        # overshoot is bounded by the chain's own access count).
        w(f"    _AX(({pc}, a_, {size}, {1 if is_write else 0}))")
        self._n_acc += 1
        if self._snap is not None:
            self._snap += 1

    def _access_fact(
        self, size: int,
    ) -> tuple["AccessFact | None", int | None, bool]:
        """(fact, pinned page, crossing provably impossible) for the
        instruction being emitted, under the current optimization mode.

        The interval facts are keyed by the *fused-code* instruction
        index (``self._pc``), which is exactly what `_emit_ins` walks.
        """
        fact = self._facts.get(self._pc)
        if fact is None:
            return None, None, False
        if fact.size != size:  # defensive; shapes always agree
            return None, None, False
        page = fact.page if self._guard else None
        if page is not None:
            self.pages.add(page)
        return fact, page, self._guard and fact.no_cross

    def _range_check(self, w: _W, fact: "AccessFact | None") -> None:
        """REPRO_CHECK_RANGES: assert the derived interval + congruence
        against the concrete address (``a_`` is already assigned)."""
        if not self._check or fact is None or not fact.nontrivial:
            return
        cond = f"{fact.lo} <= a_ <= {fact.hi}"
        if fact.mod > 1:
            cond += f" and a_ % {fact.mod} == {fact.rem}"
        w(f"    assert {cond}, ('interval fact violated', {self._pc}, a_)")

    def _emit_load_i(self, w: _W, dst: int, addr_expr: str, size: int,
                     fmt: str, signed: int, pc: int) -> None:
        # A signed/unsigned load of ``size`` bytes lands exactly in the
        # matching wrap domain, so a following same-type CONV_I elides.
        mask = (1 << 8 * size) - 1
        name = self._wr(dst, is_int=True,
                        dom=(mask, mask >> 1 if signed else -1))
        w(f"    a_ = {addr_expr}")
        fact, page, no_cross = self._access_fact(size)
        self._range_check(w, fact)
        if page is not None:
            # Interval-proven single page: the bytearray was resolved
            # at bind time, no dict lookup and no crossing check.
            if size == 1:
                w(f"    {name} = _pg{page}[a_ & 4095]")
                if signed:
                    # Raw byte indexing skips the struct format, so the
                    # sign fold stays manual (as in the generic path).
                    w(f"    if {name} > 127: {name} -= 256")
            else:
                w(f"    {name} = _U{self._fmt(fmt)}(_pg{page}, "
                  f"a_ & 4095)[0]")
        elif size == 1:
            # A byte never crosses a page: plain bytearray indexing
            # replaces the struct call (and the crossing check).
            w("    p_ = _PG.get(a_ >> 12)")
            w("    if p_ is None: p_ = _MP(a_ >> 12)")
            w(f"    {name} = p_[a_ & 4095]")
            if signed:
                w(f"    if {name} > 127: {name} -= 256")
        elif no_cross:
            # Alignment-proven in-page access: the crossing check (and
            # its slow-path arm) drops; the page is still dynamic.
            w("    p_ = _PG.get(a_ >> 12)")
            w("    if p_ is None: p_ = _MP(a_ >> 12)")
            w(f"    {name} = _U{self._fmt(fmt)}(p_, a_ & 4095)[0]")
        else:
            w("    o_ = a_ & 4095")
            w(f"    if o_ <= {4096 - size}:")
            w("        p_ = _PG.get(a_ >> 12)")
            w("        if p_ is None: p_ = _MP(a_ >> 12)")
            w(f"        {name} = _U{self._fmt(fmt)}(p_, o_)[0]")
            w("    else:")
            w(f"        {name} = _RI(a_, {size}, {bool(signed)})")
        self._trace(w, pc, size, False)

    def _emit_load_f(self, w: _W, dst: int, addr_expr: str, size: int,
                     fmt: str, pc: int) -> None:
        name = self._wr(dst)
        w(f"    a_ = {addr_expr}")
        fact, page, no_cross = self._access_fact(size)
        self._range_check(w, fact)
        if page is not None:
            w(f"    {name} = _U{self._fmt(fmt)}(_pg{page}, a_ & 4095)[0]")
        elif no_cross:
            w("    p_ = _PG.get(a_ >> 12)")
            w("    if p_ is None: p_ = _MP(a_ >> 12)")
            w(f"    {name} = _U{self._fmt(fmt)}(p_, a_ & 4095)[0]")
        else:
            w("    o_ = a_ & 4095")
            w(f"    if o_ <= {4096 - size}:")
            w("        p_ = _PG.get(a_ >> 12)")
            w("        if p_ is None: p_ = _MP(a_ >> 12)")
            w(f"        {name} = _U{self._fmt(fmt)}(p_, o_)[0]")
            w("    else:")
            w(f"        {name} = _RF(a_, {size})")
        self._trace(w, pc, size, False)

    def _emit_store_i(self, w: _W, addr_expr: str, src: int, dst: int,
                      size: int, mask: int, maxv: int, fmt: str,
                      pc: int) -> None:
        w(f"    a_ = {addr_expr}")
        w(f"    v_ = {self._rd_int(src)} & {mask}")
        fact, page, no_cross = self._access_fact(size)
        self._range_check(w, fact)
        if page is not None:
            if size == 1:
                w(f"    _pg{page}[a_ & 4095] = v_")
            else:
                w(f"    _P{self._fmt(fmt)}(_pg{page}, a_ & 4095, v_)")
        elif size == 1:
            # A byte never crosses a page; the masked value is already
            # in [0, 255], so bytearray assignment stores it verbatim.
            w("    p_ = _PG.get(a_ >> 12)")
            w("    if p_ is None: p_ = _MP(a_ >> 12)")
            w("    p_[a_ & 4095] = v_")
        elif no_cross:
            w("    p_ = _PG.get(a_ >> 12)")
            w("    if p_ is None: p_ = _MP(a_ >> 12)")
            w(f"    _P{self._fmt(fmt)}(p_, a_ & 4095, v_)")
        else:
            w("    o_ = a_ & 4095")
            w(f"    if o_ <= {4096 - size}:")
            w("        p_ = _PG.get(a_ >> 12)")
            w("        if p_ is None: p_ = _MP(a_ >> 12)")
            w(f"        _P{self._fmt(fmt)}(p_, o_, v_)")
            w("    else:")
            w(f"        _WI(a_, v_, {size})")
        if maxv >= 0:
            w(f"    if v_ > {maxv}: v_ -= {mask + 1}")
        w(f"    {self._wr(dst, is_int=True, dom=(mask, maxv))} = v_")
        if pc >= 0:
            self._trace(w, pc, size, True)

    def _emit_store_f(self, w: _W, addr_expr: str, src: int, dst: int,
                      size: int, fmt: str, pc: int) -> None:
        w(f"    a_ = {addr_expr}")
        w(f"    v_ = float({self._rd(src)})")
        fact, page, no_cross = self._access_fact(size)
        self._range_check(w, fact)
        if page is not None:
            # Out-of-range doubles still divert to write_float, which
            # owns the overflow-to-inf packing semantics.
            w("    try:")
            w(f"        _P{self._fmt(fmt)}(_pg{page}, a_ & 4095, v_)")
            w("    except OverflowError:")
            w(f"        _WF(a_, v_, {size})")
        elif no_cross:
            w("    p_ = _PG.get(a_ >> 12)")
            w("    if p_ is None: p_ = _MP(a_ >> 12)")
            w("    try:")
            w(f"        _P{self._fmt(fmt)}(p_, a_ & 4095, v_)")
            w("    except OverflowError:")
            w(f"        _WF(a_, v_, {size})")
        else:
            w("    o_ = a_ & 4095")
            w(f"    if o_ <= {4096 - size}:")
            w("        p_ = _PG.get(a_ >> 12)")
            w("        if p_ is None: p_ = _MP(a_ >> 12)")
            w("        try:")
            w(f"            _P{self._fmt(fmt)}(p_, o_, v_)")
            w("        except OverflowError:")
            w(f"            _WF(a_, v_, {size})")
            w("    else:")
            w(f"        _WF(a_, v_, {size})")
        w(f"    {self._wr(dst)} = v_")
        if pc >= 0:
            self._trace(w, pc, size, True)

    def _emit_store_p(self, w: _W, addr_expr: str, src: int, dst: int,
                      pc: int) -> None:
        w(f"    a_ = {addr_expr}")
        w(f"    v_ = {self._rd_int(src)} & {_M32}")
        fact, page, no_cross = self._access_fact(4)
        self._range_check(w, fact)
        if page is not None:
            w(f"    _P{self._fmt('<I')}(_pg{page}, a_ & 4095, v_)")
        elif no_cross:
            w("    p_ = _PG.get(a_ >> 12)")
            w("    if p_ is None: p_ = _MP(a_ >> 12)")
            w(f"    _P{self._fmt('<I')}(p_, a_ & 4095, v_)")
        else:
            w("    o_ = a_ & 4095")
            w("    if o_ <= 4092:")
            w("        p_ = _PG.get(a_ >> 12)")
            w("        if p_ is None: p_ = _MP(a_ >> 12)")
            w(f"        _P{self._fmt('<I')}(p_, o_, v_)")
            w("    else:")
            w("        _WI(a_, v_, 4)")
        w(f"    {self._wr(dst, is_int=True, dom=(4294967295, -1))} = v_")
        if pc >= 0:
            self._trace(w, pc, 4, True)

    def _elem_expr(self, base: int, index: int, esize: int) -> str:
        scale = f" * {esize}" if esize != 1 else ""
        return (f"({self._rd(base)} + {self._rd_int(index)}{scale})"
                f" & {_M32}")

    def _off_expr(self, base: int, off: int) -> str:
        if off:
            return f"({self._rd(base)} + {off}) & {_M32}"
        if self._doms.get(base) == (4294967295, -1):
            # Pointer slot already masked this block — skip the re-mask.
            return self._rd(base)
        return f"{self._rd(base)} & {_M32}"

    def _emit_ins(self, ins: _Ins, pc: int, blk: dict[int, int], rv: int,
                  pcs: int, mk: int, fall: int,
                  live_out: Sequence[int]) -> bool:
        """Emit one instruction into the current block; True if it was a
        terminator (emitted its own ``return``)."""
        w = self.lines.append
        op = ins[0]
        B = bc
        if op in _DEAD_SKIP and not (live_out[pc] >> ins[1]) & 1:
            # The write is dead and the computation cannot raise or
            # touch memory: nothing to emit. Stale tracking for the
            # slot is harmless — it cannot be read before the next
            # write, which resets it.
            return False
        self._pc = pc
        reads = B._READS.get(op)
        self._reads_key = (tuple((ins[p], self._ver.get(ins[p], 0))
                                 for p in reads) if reads else ())
        if op == B.OP_STEP:
            if ins[1] == 0:
                # Drained by the fusion pass's step sinking.
                return False
            w(f"    s_ += {ins[1]}")
            w(f"    if s_ > _MAXS: {self._steps_raise('_ELE(_EMSG)')}")
        elif op == B.OP_CONST:
            self._set_const(ins[1], ins[2])
        elif op == B.OP_MOV:
            src = ins[2]
            lit = self._lits.get(src)
            if lit is not None:
                self._set_const(ins[1], lit[1])
            else:
                source = self._rd(src)
                is_int = src in self._ints
                dom = self._doms.get(src)
                if not (self._written_after.get(pc, -1) >> src) & 1:
                    # The source slot is never rewritten in this chain,
                    # so the destination can alias its expression (the
                    # exit flush writes the alias back under dst).
                    self._wr(ins[1], is_int=is_int, dom=dom)
                    self._cur[ins[1]] = source
                else:
                    w(f"    {self._wr(ins[1], is_int=is_int, dom=dom)}"
                      f" = {source}")
        elif op == B.OP_ELEM or op == B.OP_ADD_P:
            self._assign_p(ins[1], self._elem_expr(ins[2], ins[3], ins[4]))
        elif op == B.OP_MEMBOFF:
            self._assign_p(ins[1], self._off_expr(ins[2], ins[3]))
        elif op == B.OP_LOAD_I:
            self._emit_load_i(w, ins[1], self._off_expr(ins[2], ins[3]),
                              ins[4], ins[5], ins[6], ins[7])
        elif op == B.OP_LOAD_F:
            self._emit_load_f(w, ins[1], self._off_expr(ins[2], ins[3]),
                              ins[4], ins[5], ins[6])
        elif op == B.OP_STORE_I:
            self._emit_store_i(w, self._off_expr(ins[1], ins[2]), ins[3],
                               ins[4], ins[5], ins[6], ins[7], ins[8],
                               ins[9])
        elif op == B.OP_STORE_F:
            self._emit_store_f(w, self._off_expr(ins[1], ins[2]), ins[3],
                               ins[4], ins[5], ins[6], ins[7])
        elif op == B.OP_STORE_P:
            self._emit_store_p(w, self._off_expr(ins[1], ins[2]), ins[3],
                               ins[4], ins[5])
        elif op == B.OP_LDELEM_I:
            self._emit_load_i(w, ins[1],
                              self._elem_expr(ins[2], ins[3], ins[4]),
                              ins[5], ins[6], ins[7], ins[8])
        elif op == B.OP_LDELEM_F:
            self._emit_load_f(w, ins[1],
                              self._elem_expr(ins[2], ins[3], ins[4]),
                              ins[5], ins[6], ins[7])
        elif op == B.OP_STELEM_I:
            self._emit_store_i(w, self._elem_expr(ins[1], ins[2], ins[3]),
                               ins[4], ins[5], ins[6], ins[7], ins[8],
                               ins[9], ins[10])
        elif op == B.OP_STELEM_F:
            self._emit_store_f(w, self._elem_expr(ins[1], ins[2], ins[3]),
                               ins[4], ins[5], ins[6], ins[7], ins[8])
        elif op == B.OP_STELEM_P:
            self._emit_store_p(w, self._elem_expr(ins[1], ins[2], ins[3]),
                               ins[4], ins[5], ins[6])
        elif op == B.OP_ADD_I:
            self._wrap(f"{self._rd(ins[2])} + {self._rd(ins[3])}",
                       ins[4], ins[5], ins[1])
        elif op == B.OP_SUB_I:
            self._wrap(f"{self._rd(ins[2])} - {self._rd(ins[3])}",
                       ins[4], ins[5], ins[1])
        elif op == B.OP_MUL_I:
            self._wrap(f"{self._rd(ins[2])} * {self._rd(ins[3])}",
                       ins[4], ins[5], ins[1])
        elif op == B.OP_ADDK_I:
            self._wrap(f"{self._rd(ins[2])} + {ins[3]}",
                       ins[4], ins[5], ins[1])
        elif op in (B.OP_LT, B.OP_LE, B.OP_GT, B.OP_GE, B.OP_EQ, B.OP_NE):
            cond = f"{self._rd(ins[2])} {_cmp_sym(op)} {self._rd(ins[3])}"
            w(f"    {self._wr(ins[1], is_int=True)} = 1 if {cond} else 0")
        elif op == B.OP_JMP:
            self._flush_steps()
            self._flush_trace_checks()
            for line in self._goto(blk[ins[1]], live_out[pc]):
                w("    " + line)
            return True
        elif op == B.OP_JZ or op == B.OP_JNZ:
            lit = self._lits.get(ins[1])
            self._flush_steps()
            self._flush_trace_checks()
            if lit is not None:
                taken = bool(lit[1]) == (op == B.OP_JNZ)
                for line in self._goto(blk[ins[2]] if taken
                                       else blk[fall], live_out[pc]):
                    w("    " + line)
            else:
                cond = self._rd(ins[1])
                if op == B.OP_JZ:
                    cond = f"not {cond}"
                self._emit_branch(w, cond,
                                  self._goto(blk[ins[2]], live_out[pc]),
                                  self._goto(blk[fall], live_out[pc]))
            return True
        elif op == B.OP_BR:
            # The comparison is never negated, so NaN operands take the
            # cond-false arm exactly like the dispatch loop's ternary.
            cond = (f"{self._rd(ins[2])} {_cmp_sym(ins[1])} "
                    f"{self._rd(ins[3])}")
            self._flush_steps()
            self._flush_trace_checks()
            taken = self._goto(blk[ins[4]], live_out[pc])
            fallth = self._goto(blk[fall], live_out[pc])
            if ins[5]:
                self._emit_branch(w, cond, taken, fallth)
            else:
                self._emit_branch(w, cond, fallth, taken)
            return True
        elif op == B.OP_CKPT:
            # The access position only needs len(_AB) measured once per
            # chain: accesses since the snapshot are counted statically.
            if self._snap is None:
                w("    la_ = len(_AB)")
                self._snap = 0
            pos = ("la_ >> 2" if self._snap == 0
                   else f"(la_ >> 2) + {self._snap}")
            w(f"    _CPA(({pos}, {ins[1]}, {ins[2]}))")
            self._n_cp += 1
        elif op == B.OP_ADDK_P:
            # Reads are resolved before the destination is localized, so
            # dst == src never references a not-yet-assigned local.
            self._assign_p(ins[1], f"({self._rd(ins[2])} + {ins[3]})"
                                   f" & {_M32}")
        elif op == B.OP_ADD_F:
            expr = f"float({self._rd(ins[2])} + {self._rd(ins[3])})"
            w(f"    {self._wr(ins[1])} = {expr}")
        elif op == B.OP_SUB_F:
            expr = f"float({self._rd(ins[2])} - {self._rd(ins[3])})"
            w(f"    {self._wr(ins[1])} = {expr}")
        elif op == B.OP_MUL_F:
            expr = f"float({self._rd(ins[2])} * {self._rd(ins[3])})"
            w(f"    {self._wr(ins[1])} = {expr}")
        elif op == B.OP_DIV_F:
            abort = self._steps_raise(
                f"_RTE('floating division by zero', "
                f"{self._const(ins[4])})")
            w(f"    if {self._rd(ins[3])} == 0: {abort}")
            expr = f"{self._rd(ins[2])} / {self._rd(ins[3])}"
            w(f"    {self._wr(ins[1])} = {expr}")
        elif op == B.OP_DIV_I or op == B.OP_MOD_I:
            # The truncating-division core (numerator, quotient, checked
            # divisor) is shared between a DIV and MOD on the same
            # operands: the core locals get unique per-site names, so a
            # cached core is valid as long as the operand versions in
            # the key still match — x/2 next to x%2 computes q once.
            divisor = self._lit_int(ins[3])
            key = ("divmod", (ins[2], self._ver.get(ins[2], 0)),
                   divisor if divisor else
                   (ins[3], self._ver.get(ins[3], 0)))
            core = self._cse.get(key)
            if core is None:
                self._site += 1
                nv, qv = f"n{self._site}_", f"q{self._site}_"
                w(f"    {nv} = {self._rd_int(ins[2])}")
                if divisor:
                    # Nonzero constant divisor: the zero check and the
                    # divisor's sign test resolve at specialization
                    # time.
                    w(f"    {qv} = abs({nv}) // {abs(divisor)}")
                    w(f"    if {nv} {'<' if divisor > 0 else '>='} 0: "
                      f"{qv} = -{qv}")
                    bv = str(divisor)
                else:
                    message = ("integer division by zero"
                               if op == B.OP_DIV_I else "modulo by zero")
                    bv = f"b{self._site}_"
                    w(f"    {bv} = {self._rd_int(ins[3])}")
                    abort = self._steps_raise(
                        f"_RTE({message!r}, {self._const(ins[6])})")
                    w(f"    if {bv} == 0: {abort}")
                    w(f"    {qv} = abs({nv}) // abs({bv})")
                    w(f"    if ({nv} < 0) != ({bv} < 0): {qv} = -{qv}")
                core = (nv, qv, bv)
                self._cse[key] = core
            nv, qv, bv = core
            result = qv if op == B.OP_DIV_I else f"{nv} - {qv} * {bv}"
            self._wrap(result, ins[4], ins[5], ins[1])
        elif op == B.OP_SHL:
            self._wrap(f"{self._rd_int(ins[2])} << "
                       f"({self._rd_int(ins[3])} & 63)",
                       ins[4], ins[5], ins[1])
        elif op == B.OP_SHR:
            self._wrap(f"{self._rd_int(ins[2])} >> "
                       f"({self._rd_int(ins[3])} & 63)",
                       ins[4], ins[5], ins[1])
        elif op == B.OP_AND:
            self._wrap(f"{self._rd_int(ins[2])} & "
                       f"{self._rd_int(ins[3])}",
                       ins[4], ins[5], ins[1])
        elif op == B.OP_OR:
            self._wrap(f"{self._rd_int(ins[2])} | "
                       f"{self._rd_int(ins[3])}",
                       ins[4], ins[5], ins[1])
        elif op == B.OP_XOR:
            self._wrap(f"{self._rd_int(ins[2])} ^ "
                       f"{self._rd_int(ins[3])}",
                       ins[4], ins[5], ins[1])
        elif op == B.OP_SUB_PI:
            scale = f" * {ins[4]}" if ins[4] != 1 else ""
            self._assign_p(ins[1], f"({self._rd(ins[2])} - "
                                   f"{self._rd_int(ins[3])}{scale})"
                                   f" & {_M32}")
        elif op == B.OP_SUB_PP:
            expr = (f"_CDIV({self._rd_int(ins[2])} - "
                    f"{self._rd_int(ins[3])}, {ins[4]})")
            w(f"    {self._wr(ins[1], is_int=True)} = {expr}")
        elif op == B.OP_ADDK_F:
            expr = f"float({self._rd(ins[2])} + {self._lit(ins[3])})"
            w(f"    {self._wr(ins[1])} = {expr}")
        elif op == B.OP_NEG_I:
            self._wrap(f"-{self._rd(ins[2])}", ins[3], ins[4], ins[1])
        elif op == B.OP_NEG_F:
            expr = f"float(-{self._rd(ins[2])})"
            w(f"    {self._wr(ins[1])} = {expr}")
        elif op == B.OP_NOT:
            source = self._rd(ins[2])
            w(f"    {self._wr(ins[1], is_int=True)} = "
              f"0 if {source} else 1")
        elif op == B.OP_BNOT:
            self._wrap(f"~{self._rd_int(ins[2])}", ins[3], ins[4],
                       ins[1])
        elif op == B.OP_CONV_I:
            src, mask, maxv = ins[2], ins[3], ins[4]
            value = self._lit_int(src)
            if value is not None:
                folded = value & mask
                if maxv >= 0 and folded > maxv:
                    folded -= mask + 1
                self._set_const(ins[1], folded)
            elif self._doms.get(src) == (mask, maxv):
                # The source is already wrapped to this exact domain;
                # re-wrapping is the identity (and aliases like a MOV
                # when the source is never rewritten in this chain).
                if ins[1] != src:
                    expr = self._rd(src)
                    if not (self._written_after.get(pc, -1) >> src) & 1:
                        self._wr(ins[1], is_int=True, dom=(mask, maxv))
                        self._cur[ins[1]] = expr
                    else:
                        w(f"    {self._wr(ins[1], is_int=True, dom=(mask, maxv))}"
                          f" = {expr}")
            else:
                self._wrap(self._rd_int(src), mask, maxv, ins[1])
        elif op == B.OP_CONV_F:
            expr = f"float({self._rd(ins[2])})"
            w(f"    {self._wr(ins[1])} = {expr}")
        elif op == B.OP_CONV_P:
            self._assign_p(ins[1], f"{self._rd_int(ins[2])} & {_M32}")
        elif op == B.OP_CALL:
            args = ", ".join(self._rd(slot) for slot in ins[3])
            message = f"call depth exceeded in {ins[2]!r}"
            self._flush_steps()
            w(f"    r[{pcs}] = {pc}")
            w(f"    if _D[0] + 1 >= _MAXD: raise _RTE({message!r})")
            w("    _ST.calls += 1")
            w("    _D[0] += 1")
            w(f"    {self._wr(ins[1])} = _fn{self.fidx[ins[2]]}({args})")
            w("    _D[0] -= 1")
            if self._steps_local:
                # The callee advanced the shared counter.
                w("    s_ = _S[0]")
            self._snap = None  # the callee may have flushed the buffer
        elif op == B.OP_CALLB:
            args = ", ".join(self._rd(slot) for slot in ins[3])
            self._flush_steps()
            w(f"    r[{pcs}] = {pc}")
            w(f"    {self._wr(ins[1])} = _CB(_VM, {ins[2]!r}, [{args}])")
            self._snap = None  # builtins like puts() append to the trace
        elif op == B.OP_RET:
            result = self._rd(ins[1])
            self._flush_steps()
            self._flush_trace_checks()
            w(f"    _POP(r[{mk}])")
            w(f"    r[{rv}] = {result}")
            w("    return -1")
            return True
        elif op == B.OP_RET0:
            self._flush_steps()
            self._flush_trace_checks()
            w(f"    _POP(r[{mk}])")
            w(f"    r[{rv}] = None")
            w("    return -1")
            return True
        elif op == B.OP_DECL:
            w(f"    {self._wr(ins[1], is_int=True)} = "
              f"_SALLOC({ins[2]}, {ins[3]})")
        elif op == B.OP_ZFILL:
            w(f"    _WB(({self._rd(ins[1])} + {ins[2]}) & {_M32}, "
              f"{self._const(bytes(ins[3]))})")
        elif op == B.OP_WBYTES:
            w(f"    _WB(({self._rd(ins[1])} + {ins[2]}) & {_M32}, "
              f"{self._const(ins[3])})")
        elif op == B.OP_STR:
            w(f"    {self._wr(ins[1], is_int=True)} = _ISTR({ins[2]!r})")
        elif op == B.OP_GADDR:
            w(f"    {self._wr(ins[1], is_int=True)} = _GA[{ins[2]}]")
        else:
            raise bc.MiniCRuntimeError(
                f"specializer: unhandled opcode {op}")
        return False
