"""Bytecode fast path: lowering pass + register-machine dispatch loop.

The tree-walking interpreter (:mod:`repro.sim.interpreter`) pays for a
dict-dispatch, several helper calls and an exception-based control-flow
protocol on *every* AST node it touches. This module compiles the analyzed
(and usually instrumented) program once into a flat, register-oriented
instruction list per function and executes it with a single dispatch loop:

* every function gets a frame of numbered slots ("registers") holding
  register-promoted scalars, the addresses of stack-allocated variables,
  and expression temporaries;
* control flow (``if``/loops/``break``/``continue``/``return``) is lowered
  to conditional jumps — no Python exceptions on the hot path;
* calls are handled iteratively with an explicit frame stack, so deep
  simulated recursion needs no Python recursion;
* checkpoints and memory accesses append raw tuples to block buffers and
  are flushed through the batched :meth:`TraceSink.emit_block` protocol.

Trace parity: the lowering mirrors the tree-walker's evaluation order,
conversion rules and checkpoint placement exactly, so both engines produce
byte-identical traces and FORAY models (enforced by
``tests/test_engine_parity.py``). The one intentional difference is
:class:`RunStats` — both engines count a step per executed statement and
per loop iteration, but an aborted mid-statement run may stop at a
slightly different counter value.

The paper's *body-end* checkpoint fires on every body exit, including a
``return`` or ``exit()`` unwinding through the loop. Normal exits,
``break`` and ``continue`` compile to explicit checkpoint instructions;
for ``exit()`` (which unwinds the whole frame stack from inside a builtin)
each function carries a static table of its instrumented body regions, and
the VM replays the pending body-end checkpoints innermost-first from the
saved per-frame pcs.
"""

from __future__ import annotations

import struct
import sys
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Iterable, Sequence

from repro.lang import ast_nodes as ast
from repro.lang.ctypes_ import (
    ArrayType,
    CType,
    FloatType,
    IntType,
    PointerType,
    StructType,
    decay,
)
from repro.lang.errors import MiniCRuntimeError
from repro.lang.semantics import Symbol
from repro.sim import builtins as libc
from repro.sim.builtins import ExitSignal
from repro.sim.inputs import InputSpec, InputStream
from repro.sim.interpreter import ExecLimitExceeded, RunStats
from repro.sim.memory import (
    GLOBAL_BASE,
    HEAP_BASE,
    BumpAllocator,
    Memory,
    StackAllocator,
)
from repro.sim.trace import (
    BODY_END_CODE,
    DEFAULT_TRACE_BLOCK,
    LIB_PC_BASE,
    ColumnBlock,
    TraceSink,
    load_pc,
    split_sinks,
    store_pc,
)

if TYPE_CHECKING:
    from repro.sim import specialize

_ADDR_MASK = 0xFFFFFFFF

#: One lowered instruction: ``(op, *operands)``. Operand shapes are
#: per-opcode (see the opcode table below), so the tuple stays loose.
_Ins = tuple[Any, ...]

# ---------------------------------------------------------------------------
# Opcodes. Grouped roughly by dynamic frequency; the dispatch loop tests the
# hot group first.
# ---------------------------------------------------------------------------

(
    OP_STEP,        # (op, amount)
    OP_CONST,       # (op, dst, value)
    OP_MOV,         # (op, dst, src)
    OP_ELEM,        # (op, dst, base, index, elem_size)
    OP_MEMBOFF,     # (op, dst, base, offset)
    OP_LOAD_I,      # (op, dst, addr, off, size, fmt, signed, pc)
    OP_LOAD_F,      # (op, dst, addr, off, size, fmt, pc)
    OP_STORE_I,     # (op, addr, off, src, dst, size, mask, maxv, fmt, pc)
    OP_STORE_F,     # (op, addr, off, src, dst, size, fmt, pc)
    OP_STORE_P,     # (op, addr, off, src, dst, pc)
    OP_ADD_I,       # (op, dst, a, b, mask, maxv)
    OP_SUB_I,
    OP_MUL_I,
    OP_ADDK_I,      # (op, dst, a, imm, mask, maxv)
    OP_LT,          # (op, dst, a, b)
    OP_LE,
    OP_GT,
    OP_GE,
    OP_EQ,
    OP_NE,
    OP_JMP,         # (op, target)
    OP_JZ,          # (op, src, target)
    OP_JNZ,
    OP_CKPT,        # (op, checkpoint_id, kind_code)
    OP_ADD_P,       # (op, dst, ptr, idx, elem_size)
    OP_ADDK_P,      # (op, dst, a, scaled_imm)
    OP_ADD_F,       # (op, dst, a, b)
    OP_SUB_F,
    OP_MUL_F,
    OP_DIV_F,       # (op, dst, a, b, location)
    OP_DIV_I,       # (op, dst, a, b, mask, maxv, location)
    OP_MOD_I,
    OP_SHL,         # (op, dst, a, b, mask, maxv)
    OP_SHR,
    OP_AND,
    OP_OR,
    OP_XOR,
    OP_SUB_PI,      # (op, dst, ptr, idx, elem_size)
    OP_SUB_PP,      # (op, dst, a, b, elem_size)
    OP_ADDK_F,      # (op, dst, a, imm)
    OP_NEG_I,       # (op, dst, a, mask, maxv)
    OP_NEG_F,       # (op, dst, a)
    OP_NOT,         # (op, dst, a)
    OP_BNOT,        # (op, dst, a, mask, maxv)
    OP_CONV_I,      # (op, dst, src, mask, maxv)
    OP_CONV_F,      # (op, dst, src)
    OP_CONV_P,      # (op, dst, src)
    OP_CALL,        # (op, dst, function_name, arg_slots)
    OP_CALLB,       # (op, dst, builtin_name, arg_slots)
    OP_RET,         # (op, src)
    OP_RET0,        # (op,)
    OP_DECL,        # (op, slot, size, align)
    OP_ZFILL,       # (op, addr_slot, off, size)
    OP_WBYTES,      # (op, addr_slot, off, data)
    OP_STR,         # (op, dst, text)
    OP_GADDR,       # (op, dst, global_index)
) = range(56)

# Superinstructions produced by the fusion pass (:func:`fuse_function`).
# They never reach the classic dispatch loop: fused code is executed only
# by the block-compiled fast path (:mod:`repro.sim.specialize`), while the
# dispatch loop always runs the unfused form.
(
    OP_LDELEM_I,    # (op, dst, base, index, elem_size, size, fmt, signed, pc)
    OP_LDELEM_F,    # (op, dst, base, index, elem_size, size, fmt, pc)
    OP_STELEM_I,    # (op, base, index, elem_size, src, dst, size, mask, maxv, fmt, pc)
    OP_STELEM_F,    # (op, base, index, elem_size, src, dst, size, fmt, pc)
    OP_STELEM_P,    # (op, base, index, elem_size, src, dst, pc)
    OP_BR,          # (op, cmp_op, a, b, target, jump_if_true)
) = range(56, 62)


def _int_conv(ctype: IntType) -> tuple[int, int]:
    """(mask, max_value) encoding of IntType.wrap; maxv == -1 → unsigned."""
    mask = (1 << (8 * ctype.byte_size)) - 1
    return mask, (ctype.max_value if ctype.signed else -1)


# struct formats for the VM's single-page memory fast path. Instructions
# carry the format string (keeping them picklable for the multiprocess
# suite runner); the dispatch loop resolves the bound methods below.
_INT_LOAD_FMT = {
    (1, True): "<b", (1, False): "<B",
    (2, True): "<h", (2, False): "<H",
    (4, True): "<i", (4, False): "<I",
    (8, True): "<q", (8, False): "<Q",
}
_INT_STORE_FMT = {1: "<B", 2: "<H", 4: "<I", 8: "<Q"}
_FLOAT_FMT = {4: "<f", 8: "<d"}
_UNPACK = {
    fmt: struct.Struct(fmt).unpack_from
    for fmt in (*_INT_LOAD_FMT.values(), *_FLOAT_FMT.values())
}
_PACK = {
    fmt: struct.Struct(fmt).pack_into
    for fmt in (*_INT_STORE_FMT.values(), *_FLOAT_FMT.values())
}
_PAGE_SHIFT = 12
_PAGE_SIZE = 1 << _PAGE_SHIFT
_PAGE_MASK = _PAGE_SIZE - 1


def _c_div(a: int, b: int) -> int:
    q = abs(a) // abs(b)
    return q if (a < 0) == (b < 0) else -q


# ---------------------------------------------------------------------------
# Compiled artifacts
# ---------------------------------------------------------------------------


@dataclass
class ParamSpec:
    """How one parameter of a bytecode function is bound at call time."""

    slot: int
    in_memory: bool
    ctype: CType
    # Conversion tag: 0 passthrough, 1 int-wrap, 2 float, 3 pointer-mask.
    conv: int
    mask: int = 0
    maxv: int = -1


@dataclass
class BytecodeFunction:
    name: str
    code: tuple[_Ins, ...] = ()
    n_slots: int = 0
    params: list[ParamSpec] = field(default_factory=list)
    returns_void: bool = False
    #: Static instrumented-body regions, innermost-last in program order:
    #: (start_pc, end_pc, body_end_id). Used to replay pending body-end
    #: checkpoints when exit() unwinds the frame stack.
    body_regions: tuple[tuple[int, int, int], ...] = ()


@dataclass
class BytecodeProgram:
    """The lowered program: one flat code object per function."""

    program: ast.Program
    functions: dict[str, BytecodeFunction]
    #: Globals in declaration order: (symbol, global_index).
    global_symbols: list[Symbol]
    #: Code run once at VM startup (tracing off) to initialize globals.
    globals_init: BytecodeFunction
    #: Per-process derived caches, rebuilt on demand after unpickling
    #: (see :meth:`__getstate__`): the fused twin and the compiled
    #: specializations keyed by (guard_elim, check_ranges).
    _fused: "BytecodeProgram | None" = field(
        default=None, init=False, repr=False, compare=False)
    _specializations: "dict[tuple[bool, bool], specialize.Specialization] | None" = field(
        default=None, init=False, repr=False, compare=False)

    @property
    def instruction_count(self) -> int:
        total = len(self.globals_init.code)
        return total + sum(len(fn.code) for fn in self.functions.values())

    def __getstate__(self) -> dict[str, Any]:
        # The fused twin and the compiled specialization are per-process
        # derived caches (the latter holds a code object); recompute them
        # after unpickling instead of shipping them across processes.
        state = dict(self.__dict__)
        state.pop("_fused", None)
        state.pop("_specializations", None)
        return state


# ---------------------------------------------------------------------------
# Lowering pass
# ---------------------------------------------------------------------------


@dataclass
class _LoopCtx:
    instrumented: bool
    body_end_id: int | None
    break_jumps: list[int]
    continue_target: int | None  # patched later when None at break/continue
    continue_jumps: list[int]


class _FunctionCompiler:
    """Lowers one function body to a flat instruction list."""

    def __init__(self, lowering: "ProgramLowering", name: str) -> None:
        self.lowering = lowering
        self.name = name
        self.code: list[list[Any]] = []
        self.slot_of: dict[Symbol, int] = {}
        self.n_locals = 0
        self.temp_sp = 0
        self.max_slots = 0
        self.loop_stack: list[_LoopCtx] = []
        self.body_regions: list[tuple[int, int, int]] = []

    # -- slot bookkeeping -------------------------------------------------

    def declare_local(self, symbol: Symbol) -> int:
        slot = self.slot_of.get(symbol)
        if slot is None:
            slot = self.n_locals
            self.slot_of[symbol] = slot
            self.n_locals += 1
        return slot

    def seal_locals(self) -> None:
        self.temp_sp = self.n_locals
        self.max_slots = max(self.max_slots, self.n_locals)

    def temp(self) -> int:
        slot = self.temp_sp
        self.temp_sp += 1
        if self.temp_sp > self.max_slots:
            self.max_slots = self.temp_sp
        return slot

    def mark(self) -> int:
        return self.temp_sp

    def release(self, mark: int) -> None:
        self.temp_sp = mark

    # -- emission ---------------------------------------------------------

    def emit(self, *ins: Any) -> int:
        self.code.append(list(ins))
        return len(self.code) - 1

    @property
    def here(self) -> int:
        return len(self.code)

    def patch_jump(self, at: int, target: int | None = None) -> None:
        ins = self.code[at]
        where = target if target is not None else self.here
        if ins[0] == OP_JMP:
            ins[1] = where
        else:  # OP_JZ / OP_JNZ
            ins[2] = where

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------

    def compile_function(self, fn: ast.FunctionDef) -> BytecodeFunction:
        for param in fn.params:
            assert isinstance(param.symbol, Symbol)
            self.declare_local(param.symbol)
        for node in ast.walk(fn.body):
            if isinstance(node, ast.VarDecl):
                assert isinstance(node.symbol, Symbol)
                self.declare_local(node.symbol)
        self.seal_locals()

        params: list[ParamSpec] = []
        for param in fn.params:
            symbol = param.symbol
            spec = ParamSpec(
                slot=self.slot_of[symbol],
                in_memory=symbol.in_memory,
                ctype=symbol.ctype,
                conv=0,
            )
            if isinstance(symbol.ctype, IntType):
                spec.conv = 1
                spec.mask, spec.maxv = _int_conv(symbol.ctype)
            elif isinstance(symbol.ctype, FloatType):
                spec.conv = 2
            elif isinstance(symbol.ctype, PointerType):
                spec.conv = 3
            params.append(spec)

        for stmt in fn.body.stmts:
            self.compile_stmt(stmt)
        self.emit(OP_RET0)

        return BytecodeFunction(
            name=fn.name,
            code=tuple(tuple(ins) for ins in self.code),
            n_slots=self.max_slots,
            params=params,
            returns_void=fn.return_type.is_void,
            body_regions=tuple(self.body_regions),
        )

    def compile_stmt(self, stmt: ast.Stmt) -> None:
        # The tree-walker bumps the step counter once per executed
        # statement; OP_STEP mirrors that (and carries the budget check).
        self.emit(OP_STEP, 1)
        mark = self.mark()
        if isinstance(stmt, ast.DeclStmt):
            self._compile_decl(stmt)
        elif isinstance(stmt, ast.ExprStmt):
            self.compile_expr(stmt.expr)
        elif isinstance(stmt, ast.EmptyStmt):
            pass
        elif isinstance(stmt, ast.Block):
            for inner in stmt.stmts:
                self.compile_stmt(inner)
        elif isinstance(stmt, ast.If):
            self._compile_if(stmt)
        elif isinstance(stmt, ast.For):
            self._compile_for(stmt)
        elif isinstance(stmt, ast.While):
            self._compile_while(stmt)
        elif isinstance(stmt, ast.DoWhile):
            self._compile_do_while(stmt)
        elif isinstance(stmt, ast.Return):
            self._compile_return(stmt)
        elif isinstance(stmt, ast.Break):
            self._compile_break(stmt)
        elif isinstance(stmt, ast.Continue):
            self._compile_continue(stmt)
        else:  # pragma: no cover - defensive
            raise MiniCRuntimeError(
                f"cannot lower {type(stmt).__name__}", stmt.location
            )
        self.release(mark)

    def _compile_decl(self, stmt: ast.DeclStmt) -> None:
        for decl in stmt.decls:
            symbol = decl.symbol
            assert isinstance(symbol, Symbol)
            slot = self.slot_of[symbol]
            if symbol.in_memory:
                self.emit(OP_DECL, slot, symbol.ctype.size,
                          symbol.ctype.alignment)
                if decl.init is not None:
                    self._compile_init_object(slot, 0, symbol.ctype,
                                              decl.init, traced=True)
                else:
                    # Fresh stack storage starts zeroed (deterministic runs).
                    self.emit(OP_ZFILL, slot, 0, symbol.ctype.size)
            else:
                mark = self.mark()
                if decl.init is not None:
                    value = self.compile_expr(decl.init)
                else:
                    value = self.temp()
                    self.emit(OP_CONST, value,
                              0.0 if symbol.ctype.is_float else 0)
                self._emit_convert(slot, value, symbol.ctype)
                self.release(mark)

    def _compile_init_object(self, addr_slot: int, offset: int, ctype: CType,
                             init: ast.Expr, traced: bool) -> None:
        """Lower an initializer write (recursively for brace lists).

        Mirrors ``Interpreter._init_object``: traced element stores for
        local declarations, silent writes for global initialization.
        """
        if isinstance(init, ast.Call) and init.name == "__init_list__":
            if isinstance(ctype, ArrayType):
                element = ctype.element
                for index, item in enumerate(init.args[: ctype.length]):
                    self._compile_init_object(
                        addr_slot, offset + index * element.size, element,
                        item, traced)
                used = min(len(init.args), ctype.length) * element.size
                if ctype.size - used:
                    self.emit(OP_ZFILL, addr_slot, offset + used,
                              ctype.size - used)
            elif isinstance(ctype, StructType):
                self.emit(OP_ZFILL, addr_slot, offset, ctype.size)
                for item, member in zip(init.args, ctype.members):
                    self._compile_init_object(
                        addr_slot, offset + member.offset, member.ctype,
                        item, traced)
            else:
                raise MiniCRuntimeError("brace initializer on a scalar",
                                        init.location)
            return
        if isinstance(init, ast.StringLiteral) and isinstance(ctype, ArrayType):
            data = init.value.encode("latin-1", errors="replace") + b"\0"
            data = data[: ctype.length].ljust(ctype.length, b"\0")
            self.emit(OP_WBYTES, addr_slot, offset, bytes(data))
            return
        mark = self.mark()
        value = self.compile_expr(init)
        pc = store_pc(init.node_id) if traced else -1
        self._emit_store(addr_slot, offset, value, self.temp(), ctype, pc)
        self.release(mark)

    def _compile_if(self, stmt: ast.If) -> None:
        mark = self.mark()
        cond = self.compile_expr(stmt.cond)
        self.release(mark)
        jz = self.emit(OP_JZ, cond, -1)
        self.compile_stmt(stmt.then_stmt)
        if stmt.else_stmt is not None:
            jend = self.emit(OP_JMP, -1)
            self.patch_jump(jz)
            self.compile_stmt(stmt.else_stmt)
            self.patch_jump(jend)
        else:
            self.patch_jump(jz)

    def _push_loop(self, stmt: ast.Loop) -> _LoopCtx:
        ctx = _LoopCtx(
            instrumented=stmt.is_instrumented,
            body_end_id=stmt.body_end_id,
            break_jumps=[],
            continue_target=None,
            continue_jumps=[],
        )
        self.loop_stack.append(ctx)
        return ctx

    def _compile_loop_body(self, stmt: ast.Loop, ctx: _LoopCtx) -> int:
        """Body + the normal body-end checkpoint; returns the pc of the
        body-end point (continue target for for/do loops)."""
        body_start = self.here
        self.compile_stmt(stmt.body)
        body_end_pc = self.here
        for jump in ctx.continue_jumps:
            self.patch_jump(jump, body_end_pc)
        if ctx.instrumented:
            self.emit(OP_CKPT, stmt.body_end_id, BODY_END_CODE)
            self.body_regions.append((body_start, body_end_pc,
                                      stmt.body_end_id))
        return body_end_pc

    def _compile_for(self, stmt: ast.For) -> None:
        if stmt.is_instrumented:
            self.emit(OP_CKPT, stmt.begin_id, 0)
        if stmt.init is not None:
            self.compile_stmt(stmt.init)
        ctx = self._push_loop(stmt)
        cond_pc = self.here
        exit_jz = None
        if stmt.cond is not None:
            mark = self.mark()
            cond = self.compile_expr(stmt.cond)
            self.release(mark)
            exit_jz = self.emit(OP_JZ, cond, -1)
        self.emit(OP_STEP, 1)  # per-iteration bump, like the tree-walker
        if stmt.is_instrumented:
            self.emit(OP_CKPT, stmt.body_begin_id, 1)
        self._compile_loop_body(stmt, ctx)
        if stmt.step is not None:
            mark = self.mark()
            self.compile_expr(stmt.step)
            self.release(mark)
        self.emit(OP_JMP, cond_pc)
        if exit_jz is not None:
            self.patch_jump(exit_jz)
        for jump in ctx.break_jumps:
            self.patch_jump(jump)
        self.loop_stack.pop()

    def _compile_while(self, stmt: ast.While) -> None:
        if stmt.is_instrumented:
            self.emit(OP_CKPT, stmt.begin_id, 0)
        ctx = self._push_loop(stmt)
        cond_pc = self.here
        mark = self.mark()
        cond = self.compile_expr(stmt.cond)
        self.release(mark)
        exit_jz = self.emit(OP_JZ, cond, -1)
        self.emit(OP_STEP, 1)
        if stmt.is_instrumented:
            self.emit(OP_CKPT, stmt.body_begin_id, 1)
        self._compile_loop_body(stmt, ctx)
        self.emit(OP_JMP, cond_pc)
        self.patch_jump(exit_jz)
        for jump in ctx.break_jumps:
            self.patch_jump(jump)
        self.loop_stack.pop()

    def _compile_do_while(self, stmt: ast.DoWhile) -> None:
        if stmt.is_instrumented:
            self.emit(OP_CKPT, stmt.begin_id, 0)
        ctx = self._push_loop(stmt)
        top_pc = self.here
        self.emit(OP_STEP, 1)
        if stmt.is_instrumented:
            self.emit(OP_CKPT, stmt.body_begin_id, 1)
        self._compile_loop_body(stmt, ctx)
        mark = self.mark()
        cond = self.compile_expr(stmt.cond)
        self.release(mark)
        self.emit(OP_JNZ, cond, top_pc)
        for jump in ctx.break_jumps:
            self.patch_jump(jump)
        self.loop_stack.pop()

    def _compile_return(self, stmt: ast.Return) -> None:
        mark = self.mark()
        value = self.compile_expr(stmt.expr) if stmt.expr is not None else None
        # A return unwinds through every enclosing loop body; the cleanup
        # body-end checkpoints fire innermost-first, after the return value
        # has been evaluated (matching the tree-walker's finally blocks).
        for ctx in reversed(self.loop_stack):
            if ctx.instrumented:
                self.emit(OP_CKPT, ctx.body_end_id, BODY_END_CODE)
        if value is None:
            self.emit(OP_RET0)
        else:
            self.emit(OP_RET, value)
        self.release(mark)

    def _compile_break(self, stmt: ast.Break) -> None:
        if not self.loop_stack:  # pragma: no cover - semantics rejects
            raise MiniCRuntimeError("break outside loop", stmt.location)
        ctx = self.loop_stack[-1]
        if ctx.instrumented:
            self.emit(OP_CKPT, ctx.body_end_id, BODY_END_CODE)
        ctx.break_jumps.append(self.emit(OP_JMP, -1))

    def _compile_continue(self, stmt: ast.Continue) -> None:
        if not self.loop_stack:  # pragma: no cover - semantics rejects
            raise MiniCRuntimeError("continue outside loop", stmt.location)
        ctx = self.loop_stack[-1]
        # Jump to the normal body-end point: the body-end checkpoint fires
        # there exactly once, then the loop proceeds to step/condition.
        ctx.continue_jumps.append(self.emit(OP_JMP, -1))

    # ------------------------------------------------------------------
    # Expressions
    # ------------------------------------------------------------------

    def compile_expr(self, expr: ast.Expr) -> int:
        """Lower ``expr``; returns the slot holding its value.

        The returned slot may alias a local variable slot (never a
        temporary that a later sibling could clobber); callers that
        evaluate other side-effecting code before consuming the value must
        go through :meth:`compile_operand`.
        """
        if isinstance(expr, ast.IntLiteral):
            t = self.temp()
            self.emit(OP_CONST, t, expr.value)
            return t
        if isinstance(expr, ast.FloatLiteral):
            t = self.temp()
            self.emit(OP_CONST, t, expr.value)
            return t
        if isinstance(expr, ast.StringLiteral):
            t = self.temp()
            self.emit(OP_STR, t, expr.value)
            return t
        if isinstance(expr, ast.Identifier):
            return self._compile_identifier(expr)
        if isinstance(expr, ast.Unary):
            return self._compile_unary(expr)
        if isinstance(expr, ast.IncDec):
            return self._compile_incdec(expr)
        if isinstance(expr, ast.Binary):
            return self._compile_binary(expr)
        if isinstance(expr, ast.Assign):
            return self._compile_assign(expr)
        if isinstance(expr, ast.Ternary):
            return self._compile_ternary(expr)
        if isinstance(expr, ast.Call):
            return self._compile_call(expr)
        if isinstance(expr, ast.Index):
            addr = self._compile_element_addr(expr)
            assert expr.ctype is not None
            if expr.ctype.is_array or expr.ctype.is_struct:
                return addr
            return self._emit_load(addr, 0, expr.ctype, load_pc(expr.node_id))
        if isinstance(expr, ast.Member):
            addr = self._compile_member_addr(expr)
            assert expr.ctype is not None
            if expr.ctype.is_array or expr.ctype.is_struct:
                return addr
            return self._emit_load(addr, 0, expr.ctype, load_pc(expr.node_id))
        if isinstance(expr, ast.Cast):
            value = self.compile_expr(expr.operand)
            t = self.temp()
            self._emit_convert(t, value, expr.target_type)
            return t
        if isinstance(expr, ast.SizeofType):
            t = self.temp()
            self.emit(OP_CONST, t, expr.queried_type.size)
            return t
        if isinstance(expr, ast.SizeofExpr):
            assert expr.operand.ctype is not None
            t = self.temp()
            self.emit(OP_CONST, t, expr.operand.ctype.size)
            return t
        raise MiniCRuntimeError(  # pragma: no cover - defensive
            f"cannot lower {type(expr).__name__}", expr.location)

    def compile_operand(self, expr: ast.Expr, hazard: bool) -> int:
        """Like :meth:`compile_expr`, but copies variable aliases to a
        temporary when a later-evaluated sibling could write registers."""
        slot = self.compile_expr(expr)
        if hazard and slot < self.n_locals:
            t = self.temp()
            self.emit(OP_MOV, t, slot)
            return t
        return slot

    @staticmethod
    def _writes_registers(expr: ast.Expr) -> bool:
        """Conservative: does evaluating ``expr`` write any register slot?

        Calls cannot touch the caller's registers, so only assignments and
        ++/-- anywhere inside the expression matter.
        """
        return any(
            isinstance(node, (ast.Assign, ast.IncDec))
            for node in ast.walk(expr)
        )

    # -- identifiers, lvalues, addresses -------------------------------------

    def _compile_identifier(self, expr: ast.Identifier) -> int:
        symbol = expr.symbol
        assert isinstance(symbol, Symbol)
        if not symbol.in_memory:
            return self.slot_of[symbol]
        addr = self._compile_symbol_addr(symbol)
        if symbol.ctype.is_array or symbol.ctype.is_struct:
            return addr  # aggregates evaluate to their address (decay)
        return self._emit_load(addr, 0, symbol.ctype, load_pc(expr.node_id))

    def _compile_symbol_addr(self, symbol: Symbol) -> int:
        if symbol.storage == "global":
            t = self.temp()
            self.emit(OP_GADDR, t, self.lowering.global_index[symbol])
            return t
        slot = self.slot_of.get(symbol)
        if slot is None:  # pragma: no cover - semantics guarantees storage
            raise MiniCRuntimeError(f"variable {symbol.name!r} has no storage")
        return slot  # the slot holds the stack address assigned by OP_DECL

    def _compile_element_addr(self, expr: ast.Index) -> int:
        base = self.compile_operand(
            expr.base, hazard=self._writes_registers(expr.index))
        index = self.compile_expr(expr.index)
        assert expr.ctype is not None
        t = self.temp()
        self.emit(OP_ELEM, t, base, index, expr.ctype.size)
        return t

    def _compile_member_addr(self, expr: ast.Member) -> int:
        base = self.compile_expr(expr.base)
        base_type = expr.base.ctype
        assert base_type is not None
        if expr.is_arrow:
            struct = decay(base_type).pointee  # type: ignore[attr-defined]
        else:
            struct = base_type
        assert isinstance(struct, StructType)
        t = self.temp()
        self.emit(OP_MEMBOFF, t, base, struct.member(expr.name).offset)
        return t

    def _compile_lvalue(self, expr: ast.Expr) -> tuple[str, int]:
        """("r", var_slot) for register variables or ("m", addr_slot)."""
        if isinstance(expr, ast.Identifier):
            symbol = expr.symbol
            assert isinstance(symbol, Symbol)
            if not symbol.in_memory:
                return ("r", self.slot_of[symbol])
            return ("m", self._compile_symbol_addr(symbol))
        if isinstance(expr, ast.Index):
            return ("m", self._compile_element_addr(expr))
        if isinstance(expr, ast.Member):
            return ("m", self._compile_member_addr(expr))
        if isinstance(expr, ast.Unary) and expr.op == "*":
            operand = self.compile_expr(expr.operand)
            t = self.temp()
            self.emit(OP_MEMBOFF, t, operand, 0)  # masks the address
            return ("m", t)
        raise MiniCRuntimeError("expression is not an lvalue", expr.location)

    # -- loads, stores, conversions ------------------------------------------

    def _emit_load(self, addr_slot: int, offset: int, ctype: CType,
                   pc: int) -> int:
        t = self.temp()
        if isinstance(ctype, IntType):
            self.emit(OP_LOAD_I, t, addr_slot, offset, ctype.size,
                      _INT_LOAD_FMT[(ctype.size, ctype.signed)],
                      ctype.signed, pc)
        elif isinstance(ctype, FloatType):
            self.emit(OP_LOAD_F, t, addr_slot, offset, ctype.size,
                      _FLOAT_FMT[ctype.size], pc)
        elif isinstance(ctype, PointerType):
            self.emit(OP_LOAD_I, t, addr_slot, offset, ctype.size,
                      _INT_LOAD_FMT[(ctype.size, False)], False, pc)
        else:
            raise MiniCRuntimeError(f"cannot load a value of type {ctype}")
        return t

    def _emit_store(self, addr_slot: int, offset: int, src: int, dst: int,
                    ctype: CType, pc: int) -> int:
        """Convert + write + trace; ``dst`` receives the converted value
        (the value of the assignment expression). ``pc < 0`` disables the
        trace record (global initialization)."""
        if isinstance(ctype, IntType):
            mask, maxv = _int_conv(ctype)
            self.emit(OP_STORE_I, addr_slot, offset, src, dst, ctype.size,
                      mask, maxv, _INT_STORE_FMT[ctype.size], pc)
        elif isinstance(ctype, FloatType):
            self.emit(OP_STORE_F, addr_slot, offset, src, dst, ctype.size,
                      _FLOAT_FMT[ctype.size], pc)
        elif isinstance(ctype, PointerType):
            self.emit(OP_STORE_P, addr_slot, offset, src, dst, pc)
        else:
            raise MiniCRuntimeError(f"cannot store a value of type {ctype}")
        return dst

    def _emit_convert(self, dst: int, src: int, ctype: CType) -> None:
        if isinstance(ctype, IntType):
            mask, maxv = _int_conv(ctype)
            self.emit(OP_CONV_I, dst, src, mask, maxv)
        elif isinstance(ctype, FloatType):
            self.emit(OP_CONV_F, dst, src)
        elif isinstance(ctype, PointerType):
            self.emit(OP_CONV_P, dst, src)
        elif dst != src:
            self.emit(OP_MOV, dst, src)

    # -- operators ---------------------------------------------------------

    def _compile_unary(self, expr: ast.Unary) -> int:
        op = expr.op
        if op == "*":
            operand = self.compile_expr(expr.operand)
            assert expr.ctype is not None
            if expr.ctype.is_array or expr.ctype.is_struct:
                t = self.temp()
                self.emit(OP_MEMBOFF, t, operand, 0)
                return t
            return self._emit_load(operand, 0, expr.ctype,
                                   load_pc(expr.node_id))
        if op == "&":
            kind, ref = self._compile_lvalue(expr.operand)
            if kind == "r":  # pragma: no cover - semantics forces memory
                raise MiniCRuntimeError("address of a register variable",
                                        expr.location)
            return ref
        value = self.compile_expr(expr.operand)
        t = self.temp()
        if op == "-":
            if isinstance(expr.ctype, FloatType):
                self.emit(OP_NEG_F, t, value)
            else:
                assert isinstance(expr.ctype, IntType)
                mask, maxv = _int_conv(expr.ctype)
                self.emit(OP_NEG_I, t, value, mask, maxv)
        elif op == "+":
            return value  # no conversion, like the tree-walker
        elif op == "!":
            self.emit(OP_NOT, t, value)
        elif op == "~":
            assert isinstance(expr.ctype, IntType)
            mask, maxv = _int_conv(expr.ctype)
            self.emit(OP_BNOT, t, value, mask, maxv)
        else:  # pragma: no cover - parser limits the operator set
            raise MiniCRuntimeError(f"unknown unary {op!r}", expr.location)
        return t

    def _compile_incdec(self, expr: ast.IncDec) -> int:
        ctype = expr.operand.ctype
        assert ctype is not None
        step = 1
        if isinstance(ctype, PointerType):
            step = max(1, ctype.pointee.size)
        if expr.op == "--":
            step = -step
        kind, ref = self._compile_lvalue(expr.operand)
        if kind == "r":
            result = None
            if expr.is_postfix:
                result = self.temp()
                self.emit(OP_MOV, result, ref)
            self._emit_addk(ref, ref, step, ctype)
            return result if result is not None else ref
        old = self._emit_load(ref, 0, ctype, load_pc(expr.operand.node_id))
        new = self.temp()
        self._emit_addk(new, old, step, ctype)
        converted = self._emit_store(ref, 0, new, self.temp(), ctype,
                                     store_pc(expr.operand.node_id))
        return old if expr.is_postfix else converted

    def _emit_addk(self, dst: int, src: int, imm: int, ctype: CType) -> None:
        if isinstance(ctype, PointerType):
            self.emit(OP_ADDK_P, dst, src, imm)
        elif isinstance(ctype, FloatType):
            self.emit(OP_ADDK_F, dst, src, imm)
        else:
            assert isinstance(ctype, IntType)
            mask, maxv = _int_conv(ctype)
            self.emit(OP_ADDK_I, dst, src, imm, mask, maxv)

    _COMPARE_OPS = {"==": OP_EQ, "!=": OP_NE, "<": OP_LT, ">": OP_GT,
                    "<=": OP_LE, ">=": OP_GE}

    def _compile_binary(self, expr: ast.Binary) -> int:
        op = expr.op
        if op in ("&&", "||"):
            return self._compile_logical(expr)
        left = self.compile_operand(
            expr.left, hazard=self._writes_registers(expr.right))
        right = self.compile_expr(expr.right)
        t = self.temp()
        cmp_op = self._COMPARE_OPS.get(op)
        if cmp_op is not None:
            self.emit(cmp_op, t, left, right)
            return t
        self._emit_binop(t, op, left, right, expr.left.ctype,
                         expr.right.ctype, expr.ctype, expr.location)
        return t

    def _emit_binop(self, dst: int, op: str, left: int, right: int,
                    left_ctype: CType, right_ctype: CType,
                    result_ctype: CType,
                    location: ast.SourceLocation) -> None:
        """Arithmetic lowering shared by binary operators and compound
        assignment (where ``result_ctype`` is the lvalue's type)."""
        left_type = decay(left_ctype)
        right_type = decay(right_ctype)
        if op == "+":
            if left_type.is_pointer:
                self.emit(OP_ADD_P, dst, left, right, left_type.pointee.size)
            elif right_type.is_pointer:
                self.emit(OP_ADD_P, dst, right, left, right_type.pointee.size)
            elif isinstance(result_ctype, FloatType):
                self.emit(OP_ADD_F, dst, left, right)
            else:
                assert isinstance(result_ctype, IntType)
                self.emit(OP_ADD_I, dst, left, right, *_int_conv(result_ctype))
            return
        if op == "-":
            if left_type.is_pointer and right_type.is_pointer:
                self.emit(OP_SUB_PP, dst, left, right,
                          left_type.pointee.size)
            elif left_type.is_pointer:
                self.emit(OP_SUB_PI, dst, left, right,
                          left_type.pointee.size)
            elif isinstance(result_ctype, FloatType):
                self.emit(OP_SUB_F, dst, left, right)
            else:
                assert isinstance(result_ctype, IntType)
                self.emit(OP_SUB_I, dst, left, right, *_int_conv(result_ctype))
            return
        if op == "*":
            if isinstance(result_ctype, FloatType):
                self.emit(OP_MUL_F, dst, left, right)
            else:
                assert isinstance(result_ctype, IntType)
                self.emit(OP_MUL_I, dst, left, right, *_int_conv(result_ctype))
            return
        if op == "/":
            if isinstance(result_ctype, FloatType):
                self.emit(OP_DIV_F, dst, left, right, location)
            else:
                assert isinstance(result_ctype, IntType)
                mask, maxv = _int_conv(result_ctype)
                self.emit(OP_DIV_I, dst, left, right, mask, maxv, location)
            return
        simple = {"%": OP_MOD_I, "<<": OP_SHL, ">>": OP_SHR,
                  "&": OP_AND, "|": OP_OR, "^": OP_XOR}.get(op)
        if simple is None:  # pragma: no cover - parser limits the set
            raise MiniCRuntimeError(f"unknown binary {op!r}", location)
        assert isinstance(result_ctype, IntType)
        mask, maxv = _int_conv(result_ctype)
        if simple == OP_MOD_I:
            self.emit(OP_MOD_I, dst, left, right, mask, maxv, location)
        else:
            self.emit(simple, dst, left, right, mask, maxv)

    def _compile_logical(self, expr: ast.Binary) -> int:
        dst = self.temp()
        mark = self.mark()
        left = self.compile_expr(expr.left)
        if expr.op == "&&":
            self.emit(OP_CONST, dst, 0)
            short = self.emit(OP_JZ, left, -1)
        else:
            self.emit(OP_CONST, dst, 1)
            short = self.emit(OP_JNZ, left, -1)
        self.release(mark)
        mark = self.mark()
        right = self.compile_expr(expr.right)
        self.release(mark)
        self.emit(OP_NOT, dst, right)  # dst = !right
        self.emit(OP_NOT, dst, dst)   # dst = !!right  (0/1 of truthiness)
        self.patch_jump(short)
        return dst

    def _compile_assign(self, expr: ast.Assign) -> int:
        target_type = expr.target.ctype
        assert target_type is not None
        kind, ref = self._compile_lvalue(expr.target)
        if expr.op == "":
            value = self.compile_expr(expr.value)
            if kind == "r":
                self._emit_convert(ref, value, target_type)
                return ref
            return self._emit_store(ref, 0, value, self.temp(), target_type,
                                    store_pc(expr.target.node_id))
        # Compound: read old, apply, write back. Intermediate wrapping with
        # the lvalue's own type is idempotent with the write conversion, so
        # the specialized opcodes reproduce the tree-walker's raw-then-
        # convert semantics exactly.
        if kind == "r":
            old = self.compile_operand(
                expr.target, hazard=self._writes_registers(expr.value))
        else:
            old = self._emit_load(ref, 0, target_type,
                                  load_pc(expr.target.node_id))
        rhs = self.compile_expr(expr.value)
        t = self.temp()
        self._emit_compound(t, expr.op, old, rhs, target_type, expr.location)
        if kind == "r":
            self._emit_convert(ref, t, target_type)
            return ref
        return self._emit_store(ref, 0, t, self.temp(), target_type,
                                store_pc(expr.target.node_id))

    def _compile_ternary(self, expr: ast.Ternary) -> int:
        dst = self.temp()
        mark = self.mark()
        cond = self.compile_expr(expr.cond)
        self.release(mark)
        jz = self.emit(OP_JZ, cond, -1)
        mark = self.mark()
        then_value = self.compile_expr(expr.then_expr)
        self.emit(OP_MOV, dst, then_value)
        self.release(mark)
        jend = self.emit(OP_JMP, -1)
        self.patch_jump(jz)
        mark = self.mark()
        else_value = self.compile_expr(expr.else_expr)
        self.emit(OP_MOV, dst, else_value)
        self.release(mark)
        self.patch_jump(jend)
        return dst

    def _emit_compound(self, dst: int, op: str, old: int, rhs: int,
                       target_type: CType,
                       location: ast.SourceLocation) -> None:
        if isinstance(target_type, PointerType) and op in ("+", "-"):
            if op == "+":
                self.emit(OP_ADD_P, dst, old, rhs, target_type.pointee.size)
            else:
                self.emit(OP_SUB_PI, dst, old, rhs, target_type.pointee.size)
            return
        self._emit_binop(dst, op, old, rhs, target_type, target_type,
                         target_type, location)

    def _compile_call(self, expr: ast.Call) -> int:
        arg_slots = []
        for index, arg in enumerate(expr.args):
            hazard = any(self._writes_registers(later)
                         for later in expr.args[index + 1:])
            arg_slots.append(self.compile_operand(arg, hazard))
        dst = self.temp()
        if expr.is_builtin:
            self.emit(OP_CALLB, dst, expr.name, tuple(arg_slots))
        else:
            self.emit(OP_CALL, dst, expr.name, tuple(arg_slots))
        return dst


class ProgramLowering:
    """Compiles an analyzed program into a :class:`BytecodeProgram`."""

    def __init__(self, program: ast.Program) -> None:
        self.program = program
        self.global_index: dict[Symbol, int] = {}
        self.global_symbols: list[Symbol] = []

    def lower(self) -> BytecodeProgram:
        for decl_stmt in self.program.globals:
            for decl in decl_stmt.decls:
                symbol = decl.symbol
                assert isinstance(symbol, Symbol)
                self.global_index[symbol] = len(self.global_symbols)
                self.global_symbols.append(symbol)

        functions = {
            fn.name: _FunctionCompiler(self, fn.name).compile_function(fn)
            for fn in self.program.functions
        }
        return BytecodeProgram(
            program=self.program,
            functions=functions,
            global_symbols=self.global_symbols,
            globals_init=self._lower_globals_init(),
        )

    def _lower_globals_init(self) -> BytecodeFunction:
        """Initializer writes for all globals, in declaration order.

        Runs at VM startup with tracing off — like program load in a real
        system — after every global has its address (so ``char *p = q;``
        can reference a later-declared array).
        """
        compiler = _FunctionCompiler(self, "__globals_init__")
        compiler.seal_locals()
        for decl_stmt in self.program.globals:
            for decl in decl_stmt.decls:
                if decl.init is None:
                    continue
                symbol = decl.symbol
                mark = compiler.mark()
                addr = compiler.temp()
                compiler.emit(OP_GADDR, addr, self.global_index[symbol])
                compiler._compile_init_object(addr, 0, symbol.ctype,
                                              decl.init, traced=False)
                compiler.release(mark)
        compiler.emit(OP_RET0)
        return BytecodeFunction(
            name="__globals_init__",
            code=tuple(tuple(ins) for ins in compiler.code),
            n_slots=compiler.max_slots,
            returns_void=True,
        )


def lower_program(program: ast.Program) -> BytecodeProgram:
    """Lower an analyzed (and optionally instrumented) program."""
    return ProgramLowering(program).lower()


# ---------------------------------------------------------------------------
# The virtual machine
# ---------------------------------------------------------------------------


class BytecodeVM:
    """Executes one lowered program. Create a fresh instance per run.

    Exposes the same builtin facade as the tree-walking interpreter
    (``write_stdout`` / ``heap_alloc`` / ``lib_load`` / ``lib_store`` plus
    the deterministic ``rand_state`` / ``input_stream``), so
    :mod:`repro.sim.builtins` runs unchanged on both engines.
    """

    def __init__(
        self,
        bytecode: BytecodeProgram,
        sinks: tuple[TraceSink, ...] = (),
        max_steps: int = 200_000_000,
        max_call_depth: int = 512,
        trace_block_size: int = DEFAULT_TRACE_BLOCK,
        input_spec: InputSpec | None = None,
        fusion: bool = True,
        guard_elim: bool = True,
    ) -> None:
        self.bytecode = bytecode
        self.program = bytecode.program
        self._sinks = tuple(sinks)
        self._col_sinks, self._tup_sinks = split_sinks(self._sinks)
        self._max_steps = max_steps
        self._max_call_depth = max_call_depth
        self._block_size = max(1, trace_block_size)
        # The access buffer is flat interleaved (4 ints per access), so
        # the flush threshold is scaled once here.
        self._flat_limit = 4 * self._block_size
        self._fusion = bool(fusion)
        #: Interval-analysis guard elimination in the specialized code
        #: (only meaningful with fusion; off compiles the fully checked
        #: variant for timing and differential testing).
        self._guard_elim = bool(guard_elim)

        self.memory = Memory()
        self._globals_alloc = BumpAllocator(GLOBAL_BASE)
        self._heap_alloc = BumpAllocator(HEAP_BASE)
        self._stack = StackAllocator()
        self._string_pool: dict[str, int] = {}
        self._global_addrs: list[int] = []
        self._tracing = False
        self.stats = RunStats()
        self.stdout = ""
        self.rand_state = 1  # deterministic rand() seed
        #: Sample source of the read_samples() builtin (seeded ensemble).
        self.input_stream = InputStream(input_spec)

        #: Flat interleaved access buffer: [pc, addr, size, is_write(0/1)]
        #: per access. Cleared in place on flush so cached ``extend``
        #: bindings (dispatch loop, specialized code) stay valid.
        self._acc_buf: list[int] = []
        self._cp_buf: list[tuple[int, int, int]] = []

        self._layout_globals()

    # ------------------------------------------------------------------
    # Builtin facade (used by repro.sim.builtins)
    # ------------------------------------------------------------------

    def write_stdout(self, text: str) -> None:
        self.stdout += text

    def heap_alloc(self, size: int) -> int:
        return self._heap_alloc.allocate(max(1, size))

    def lib_load(self, builtin: str, addr: int, size: int) -> int:
        value = self.memory.read_int(addr, size, signed=False)
        if self._tracing:
            pc = LIB_PC_BASE + 8 * libc.BUILTIN_INDEX[builtin]
            self._trace_access(pc, addr, size, False)
        return value

    def lib_store(self, builtin: str, addr: int, value: int, size: int) -> None:
        self.memory.write_int(addr, value, size)
        if self._tracing:
            pc = LIB_PC_BASE + 8 * libc.BUILTIN_INDEX[builtin] + 4
            self._trace_access(pc, addr, size, True)

    # ------------------------------------------------------------------
    # Trace plumbing
    # ------------------------------------------------------------------

    def _trace_access(self, pc: int, addr: int, size: int,
                      is_write: bool) -> None:
        self._acc_buf.extend((pc, addr, size, 1 if is_write else 0))
        if len(self._acc_buf) >= self._flat_limit:
            self._flush_trace()

    def _trace_checkpoint(self, checkpoint_id: int, kind_code: int) -> None:
        self._cp_buf.append(
            (len(self._acc_buf) >> 2, checkpoint_id, kind_code))

    def _flush_trace(self) -> None:
        flat, cps = self._acc_buf, self._cp_buf
        if not flat and not cps:
            return
        self.stats.accesses += len(flat) >> 2
        self.stats.checkpoints += len(cps)
        if self._col_sinks or self._tup_sinks:
            block = ColumnBlock.from_flat(flat, cps)
            for sink in self._col_sinks:
                sink.emit_columns(block)
            if self._tup_sinks:
                accesses, checkpoints = block.to_tuples()
                for sink in self._tup_sinks:
                    sink.emit_block(accesses, checkpoints)
        # Clear in place: hot paths hold bound .extend/.append methods.
        del flat[:]
        del cps[:]

    # ------------------------------------------------------------------
    # Startup
    # ------------------------------------------------------------------

    def _intern_string(self, text: str) -> int:
        addr = self._string_pool.get(text)
        if addr is None:
            data = text.encode("latin-1", errors="replace") + b"\0"
            addr = self._globals_alloc.allocate(len(data), 1)
            self.memory.write_bytes(addr, data)
            self._string_pool[text] = addr
        return addr

    def _layout_globals(self) -> None:
        for symbol in self.bytecode.global_symbols:
            self._global_addrs.append(
                self._globals_alloc.allocate(symbol.ctype.size,
                                             symbol.ctype.alignment)
            )
        init = self.bytecode.globals_init
        if len(init.code) > 1:  # more than the trailing RET0
            self._execute(init, [], budget_active=False)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def run(self, entry: str = "main") -> int:
        """Execute ``entry`` (tracing enabled) and return its exit code."""
        fn = self.bytecode.functions.get(entry)
        if fn is None:
            raise MiniCRuntimeError(f"no entry function {entry!r}")
        if self._fusion:
            from repro.sim.specialize import get_specialization
            return self._run_specialized(
                get_specialization(self.bytecode,
                                   guard_elim=self._guard_elim), entry)
        self._tracing = True
        try:
            result = self._execute(fn, [], budget_active=True)
        except ExitSignal as signal:
            return signal.code
        finally:
            self._tracing = False
            self._flush_trace()
        return int(result) if result is not None else 0

    def _run_specialized(self, spec: "specialize.Specialization",
                         entry: str) -> int:
        """Run the block-compiled fast path (fused code as generated
        Python). Mirrors :meth:`run`'s classic branch observable for
        observable: stats, trace stream, stdout and exit code."""
        env = spec.bind(self)
        driver = env[spec.drivers[entry]]
        # Simulated calls become nested Python calls here (one driver and
        # one block frame per simulated frame), so deep simulated
        # recursion needs real recursion headroom.
        limit = sys.getrecursionlimit()
        needed = self._max_call_depth * 4 + 200
        if limit < needed:
            sys.setrecursionlimit(needed)
        env["_S"][0] = self.stats.steps
        self.stats.calls += 1
        self._tracing = True
        try:
            result = driver()
        except ExitSignal as signal:
            return signal.code
        finally:
            self.stats.steps = env["_S"][0]
            self._tracing = False
            self._flush_trace()
            if sys.getrecursionlimit() != limit:
                sys.setrecursionlimit(limit)
        return int(result) if result is not None else 0

    def _bind_frame(self, fn: BytecodeFunction,
                    args: list[Any]) -> tuple[list[Any], int]:
        """Build the register file for ``fn`` and bind converted args."""
        regs = [0] * fn.n_slots
        marker = self._stack.push_frame()
        memory = self.memory
        for spec, arg in zip(fn.params, args):
            conv = spec.conv
            if conv == 1:
                mask = spec.mask
                value = int(arg) & mask
                if spec.maxv >= 0 and value > spec.maxv:
                    value -= mask + 1
            elif conv == 2:
                value = float(arg)
            elif conv == 3:
                value = int(arg) & _ADDR_MASK
            else:
                value = arg
            if spec.in_memory:
                ctype = spec.ctype
                addr = self._stack.allocate(ctype.size, ctype.alignment)
                regs[spec.slot] = addr
                if isinstance(ctype, FloatType):
                    memory.write_float(addr, float(value), ctype.size)
                elif isinstance(ctype, (IntType, PointerType)):
                    memory.write_int(addr, int(value), ctype.size)
                else:
                    raise MiniCRuntimeError(
                        f"cannot store a value of type {ctype}")
            else:
                regs[spec.slot] = value
        return regs, marker

    def _execute(self, fn: BytecodeFunction, args: list[Any],
                 budget_active: bool) -> Any:
        """The dispatch loop. Runs ``fn`` and every function it calls."""
        memory = self.memory
        stack = self._stack
        pages = memory._pages
        mem_page = memory._page
        unpack = _UNPACK
        pack = _PACK
        acc_buf = self._acc_buf
        acc_ext = acc_buf.extend
        flat_limit = self._flat_limit
        mask32 = _ADDR_MASK
        max_steps = self._max_steps
        steps = self.stats.steps
        if not budget_active:
            max_steps = float("inf")

        regs, marker = self._bind_frame(fn, args)
        # Caller frames: (function, code, resume_pc, regs, dst, stack_marker).
        frames: list[tuple[Any, ...]] = []
        if budget_active:  # globals init is not a simulated call
            self.stats.calls += 1
        code = fn.code
        pc = 0

        try:
            while True:
                ins = code[pc]
                op = ins[0]
                if op <= OP_CKPT:
                    if op == OP_LOAD_I:
                        addr = (regs[ins[2]] + ins[3]) & mask32
                        size = ins[4]
                        start = addr & _PAGE_MASK
                        if start + size <= _PAGE_SIZE:
                            page = pages.get(addr >> _PAGE_SHIFT)
                            if page is None:
                                page = mem_page(addr >> _PAGE_SHIFT)
                            regs[ins[1]] = unpack[ins[5]](page, start)[0]
                        else:  # page-crossing (unaligned) access
                            regs[ins[1]] = memory.read_int(addr, size, ins[6])
                        if self._tracing:
                            acc_ext((ins[7], addr, size, 0))
                            if len(acc_buf) >= flat_limit:
                                self._flush_trace()
                    elif op == OP_ELEM:
                        regs[ins[1]] = (
                            regs[ins[2]] + int(regs[ins[3]]) * ins[4]
                        ) & mask32
                    elif op == OP_STORE_I:
                        addr = (regs[ins[1]] + ins[2]) & mask32
                        value = int(regs[ins[3]]) & ins[6]
                        size = ins[5]
                        start = addr & _PAGE_MASK
                        if start + size <= _PAGE_SIZE:
                            page = pages.get(addr >> _PAGE_SHIFT)
                            if page is None:
                                page = mem_page(addr >> _PAGE_SHIFT)
                            pack[ins[8]](page, start, value)
                        else:
                            memory.write_int(addr, value, size)
                        if ins[7] >= 0 and value > ins[7]:
                            value -= ins[6] + 1
                        regs[ins[4]] = value
                        if self._tracing and ins[9] >= 0:
                            acc_ext((ins[9], addr, size, 1))
                            if len(acc_buf) >= flat_limit:
                                self._flush_trace()
                    elif op == OP_STEP:
                        steps += ins[1]
                        if steps > max_steps:
                            raise ExecLimitExceeded(
                                f"execution exceeded the budget of "
                                f"{self._max_steps} steps"
                            )
                    elif op == OP_ADDK_I:
                        value = (regs[ins[2]] + ins[3]) & ins[4]
                        if ins[5] >= 0 and value > ins[5]:
                            value -= ins[4] + 1
                        regs[ins[1]] = value
                    elif op == OP_LT:
                        regs[ins[1]] = 1 if regs[ins[2]] < regs[ins[3]] else 0
                    elif op == OP_JZ:
                        if not regs[ins[1]]:
                            pc = ins[2]
                            continue
                    elif op == OP_JMP:
                        pc = ins[1]
                        continue
                    elif op == OP_ADD_I:
                        value = (regs[ins[2]] + regs[ins[3]]) & ins[4]
                        if ins[5] >= 0 and value > ins[5]:
                            value -= ins[4] + 1
                        regs[ins[1]] = value
                    elif op == OP_CKPT:
                        if self._tracing:
                            self._cp_buf.append(
                                (len(acc_buf) >> 2, ins[1], ins[2]))
                            # Access-free loops must still flush in blocks.
                            if len(self._cp_buf) >= self._block_size:
                                self._flush_trace()
                    elif op == OP_CONST:
                        regs[ins[1]] = ins[2]
                    elif op == OP_MOV:
                        regs[ins[1]] = regs[ins[2]]
                    elif op == OP_MEMBOFF:
                        regs[ins[1]] = (regs[ins[2]] + ins[3]) & mask32
                    elif op == OP_SUB_I:
                        value = (regs[ins[2]] - regs[ins[3]]) & ins[4]
                        if ins[5] >= 0 and value > ins[5]:
                            value -= ins[4] + 1
                        regs[ins[1]] = value
                    elif op == OP_MUL_I:
                        value = (regs[ins[2]] * regs[ins[3]]) & ins[4]
                        if ins[5] >= 0 and value > ins[5]:
                            value -= ins[4] + 1
                        regs[ins[1]] = value
                    elif op == OP_LOAD_F:
                        addr = (regs[ins[2]] + ins[3]) & mask32
                        size = ins[4]
                        start = addr & _PAGE_MASK
                        if start + size <= _PAGE_SIZE:
                            page = pages.get(addr >> _PAGE_SHIFT)
                            if page is None:
                                page = mem_page(addr >> _PAGE_SHIFT)
                            regs[ins[1]] = unpack[ins[5]](page, start)[0]
                        else:
                            regs[ins[1]] = memory.read_float(addr, size)
                        if self._tracing:
                            acc_ext((ins[6], addr, size, 0))
                            if len(acc_buf) >= flat_limit:
                                self._flush_trace()
                    elif op == OP_STORE_F:
                        addr = (regs[ins[1]] + ins[2]) & mask32
                        value = float(regs[ins[3]])
                        size = ins[5]
                        start = addr & _PAGE_MASK
                        if start + size <= _PAGE_SIZE:
                            page = pages.get(addr >> _PAGE_SHIFT)
                            if page is None:
                                page = mem_page(addr >> _PAGE_SHIFT)
                            try:
                                pack[ins[6]](page, start, value)
                            except OverflowError:
                                # double → float overflow clamps to ±inf
                                memory.write_float(addr, value, size)
                        else:
                            memory.write_float(addr, value, size)
                        regs[ins[4]] = value
                        if self._tracing and ins[7] >= 0:
                            acc_ext((ins[7], addr, size, 1))
                            if len(acc_buf) >= flat_limit:
                                self._flush_trace()
                    elif op == OP_STORE_P:
                        addr = (regs[ins[1]] + ins[2]) & mask32
                        value = int(regs[ins[3]]) & mask32
                        start = addr & _PAGE_MASK
                        if start + 4 <= _PAGE_SIZE:
                            page = pages.get(addr >> _PAGE_SHIFT)
                            if page is None:
                                page = mem_page(addr >> _PAGE_SHIFT)
                            pack["<I"](page, start, value)
                        else:
                            memory.write_int(addr, value, 4)
                        regs[ins[4]] = value
                        if self._tracing and ins[5] >= 0:
                            acc_ext((ins[5], addr, 4, 1))
                            if len(acc_buf) >= flat_limit:
                                self._flush_trace()
                    elif op == OP_LE:
                        regs[ins[1]] = 1 if regs[ins[2]] <= regs[ins[3]] else 0
                    elif op == OP_GT:
                        regs[ins[1]] = 1 if regs[ins[2]] > regs[ins[3]] else 0
                    elif op == OP_GE:
                        regs[ins[1]] = 1 if regs[ins[2]] >= regs[ins[3]] else 0
                    elif op == OP_EQ:
                        regs[ins[1]] = 1 if regs[ins[2]] == regs[ins[3]] else 0
                    elif op == OP_NE:
                        regs[ins[1]] = 1 if regs[ins[2]] != regs[ins[3]] else 0
                    else:  # OP_JNZ
                        if regs[ins[1]]:
                            pc = ins[2]
                            continue
                elif op == OP_CALL:
                    callee = self.bytecode.functions[ins[2]]
                    if len(frames) + 1 >= self._max_call_depth:
                        raise MiniCRuntimeError(
                            f"call depth exceeded in {callee.name!r}")
                    self.stats.calls += 1
                    call_args = [regs[slot] for slot in ins[3]]
                    frames.append((fn, code, pc, regs, ins[1], marker))
                    fn = callee
                    regs, marker = self._bind_frame(callee, call_args)
                    code = callee.code
                    pc = 0
                    continue
                elif op == OP_CALLB:
                    call_args = [regs[slot] for slot in ins[3]]
                    regs[ins[1]] = libc.call_builtin(self, ins[2], call_args)
                elif op == OP_RET or op == OP_RET0:
                    result = regs[ins[1]] if op == OP_RET else None
                    if result is None and not fn.returns_void:
                        result = 0  # tolerate missing return, like C
                    stack.pop_frame(marker)
                    if not frames:
                        return result
                    fn, code, pc, regs, dst, marker = frames.pop()
                    regs[dst] = result
                elif op == OP_ADD_P:
                    regs[ins[1]] = (
                        regs[ins[2]] + int(regs[ins[3]]) * ins[4]
                    ) & mask32
                elif op == OP_ADDK_P:
                    regs[ins[1]] = (regs[ins[2]] + ins[3]) & mask32
                elif op == OP_ADD_F:
                    regs[ins[1]] = float(regs[ins[2]] + regs[ins[3]])
                elif op == OP_SUB_F:
                    regs[ins[1]] = float(regs[ins[2]] - regs[ins[3]])
                elif op == OP_MUL_F:
                    regs[ins[1]] = float(regs[ins[2]] * regs[ins[3]])
                elif op == OP_DIV_F:
                    if regs[ins[3]] == 0:
                        raise MiniCRuntimeError("floating division by zero",
                                                ins[4])
                    regs[ins[1]] = regs[ins[2]] / regs[ins[3]]
                elif op == OP_DIV_I:
                    b = int(regs[ins[3]])
                    if b == 0:
                        raise MiniCRuntimeError("integer division by zero",
                                                ins[6])
                    value = _c_div(int(regs[ins[2]]), b) & ins[4]
                    if ins[5] >= 0 and value > ins[5]:
                        value -= ins[4] + 1
                    regs[ins[1]] = value
                elif op == OP_MOD_I:
                    a, b = int(regs[ins[2]]), int(regs[ins[3]])
                    if b == 0:
                        raise MiniCRuntimeError("modulo by zero", ins[6])
                    value = (a - _c_div(a, b) * b) & ins[4]
                    if ins[5] >= 0 and value > ins[5]:
                        value -= ins[4] + 1
                    regs[ins[1]] = value
                elif op == OP_SHL:
                    value = (int(regs[ins[2]]) << (int(regs[ins[3]]) & 63)) \
                        & ins[4]
                    if ins[5] >= 0 and value > ins[5]:
                        value -= ins[4] + 1
                    regs[ins[1]] = value
                elif op == OP_SHR:
                    value = (int(regs[ins[2]]) >> (int(regs[ins[3]]) & 63)) \
                        & ins[4]
                    if ins[5] >= 0 and value > ins[5]:
                        value -= ins[4] + 1
                    regs[ins[1]] = value
                elif op == OP_AND:
                    value = (int(regs[ins[2]]) & int(regs[ins[3]])) & ins[4]
                    if ins[5] >= 0 and value > ins[5]:
                        value -= ins[4] + 1
                    regs[ins[1]] = value
                elif op == OP_OR:
                    value = (int(regs[ins[2]]) | int(regs[ins[3]])) & ins[4]
                    if ins[5] >= 0 and value > ins[5]:
                        value -= ins[4] + 1
                    regs[ins[1]] = value
                elif op == OP_XOR:
                    value = (int(regs[ins[2]]) ^ int(regs[ins[3]])) & ins[4]
                    if ins[5] >= 0 and value > ins[5]:
                        value -= ins[4] + 1
                    regs[ins[1]] = value
                elif op == OP_SUB_PI:
                    regs[ins[1]] = (
                        regs[ins[2]] - int(regs[ins[3]]) * ins[4]
                    ) & mask32
                elif op == OP_SUB_PP:
                    regs[ins[1]] = _c_div(
                        int(regs[ins[2]]) - int(regs[ins[3]]), ins[4])
                elif op == OP_ADDK_F:
                    regs[ins[1]] = float(regs[ins[2]] + ins[3])
                elif op == OP_NEG_I:
                    value = (-regs[ins[2]]) & ins[3]
                    if ins[4] >= 0 and value > ins[4]:
                        value -= ins[3] + 1
                    regs[ins[1]] = value
                elif op == OP_NEG_F:
                    regs[ins[1]] = float(-regs[ins[2]])
                elif op == OP_NOT:
                    regs[ins[1]] = 0 if regs[ins[2]] else 1
                elif op == OP_BNOT:
                    value = (~int(regs[ins[2]])) & ins[3]
                    if ins[4] >= 0 and value > ins[4]:
                        value -= ins[3] + 1
                    regs[ins[1]] = value
                elif op == OP_CONV_I:
                    value = int(regs[ins[2]]) & ins[3]
                    if ins[4] >= 0 and value > ins[4]:
                        value -= ins[3] + 1
                    regs[ins[1]] = value
                elif op == OP_CONV_F:
                    regs[ins[1]] = float(regs[ins[2]])
                elif op == OP_CONV_P:
                    regs[ins[1]] = int(regs[ins[2]]) & mask32
                elif op == OP_DECL:
                    regs[ins[1]] = stack.allocate(ins[2], ins[3])
                elif op == OP_ZFILL:
                    memory.write_bytes((regs[ins[1]] + ins[2]) & mask32,
                                       bytes(ins[3]))
                elif op == OP_WBYTES:
                    memory.write_bytes((regs[ins[1]] + ins[2]) & mask32,
                                       ins[3])
                elif op == OP_STR:
                    regs[ins[1]] = self._intern_string(ins[2])
                else:  # OP_GADDR
                    regs[ins[1]] = self._global_addrs[ins[2]]
                pc += 1
        except ExitSignal:
            # exit() unwinds every frame; replay the pending body-end
            # checkpoints (the tree-walker's finally blocks) innermost-first
            # before propagating to run().
            if self._tracing:
                self._emit_pending_body_ends(fn, pc, frames)
            raise
        finally:
            self.stats.steps = steps

    def _emit_pending_body_ends(
        self, fn: BytecodeFunction, pc: int,
        frames: list[tuple[Any, ...]],
    ) -> None:
        stack = [(fn, pc)]
        for caller, caller_code, caller_pc, *_rest in reversed(frames):
            stack.append((caller, caller_pc))
        for func, frame_pc in stack:
            open_regions = [
                (start, body_end_id)
                for start, end, body_end_id in func.body_regions
                if start <= frame_pc < end
            ]
            for _, body_end_id in sorted(open_regions, reverse=True):
                self._trace_checkpoint(body_end_id, BODY_END_CODE)

    def _pending_body_ends_one(
        self, regions: Iterable[tuple[int, int, int]], frame_pc: int,
    ) -> None:
        """Replay one frame's pending body-end checkpoints (the
        specialized drivers call this per frame as ``exit()`` unwinds,
        innermost-first — the same order :meth:`_emit_pending_body_ends`
        produces for the classic loop's explicit frame stack)."""
        if not self._tracing:
            return
        open_regions = [
            (start, body_end_id)
            for start, end, body_end_id in regions
            if start <= frame_pc < end
        ]
        for _, body_end_id in sorted(open_regions, reverse=True):
            self._trace_checkpoint(body_end_id, BODY_END_CODE)


# ---------------------------------------------------------------------------
# Superinstruction fusion pass
#
# A peephole rewriter over the lowered code: the address-compute /
# load/store idiom (ELEM or ADD_P feeding a LOAD/STORE at offset 0),
# constant-index addressing, member-offset chains, compare-and-branch
# pairs and adjacent step counters each collapse into one
# superinstruction. Fusion is applied only when the intermediate register
# is provably dead afterwards (backward liveness over register bitmasks),
# so the visible machine state — memory, trace stream, stats, register
# file at every observation point — is unchanged. The classic dispatch
# loop never sees fused code; it exists for the block compiler
# (:mod:`repro.sim.specialize`), which turns each superinstruction into
# one straight-line Python statement writing directly into the flat
# column buffer.
# ---------------------------------------------------------------------------

#: Register-read operand positions per opcode. OP_CALL/OP_CALLB read the
#: slot *list* in ins[3] and are special-cased in :func:`_liveness`.
_READS: dict[int, tuple[int, ...]] = {
    OP_STEP: (), OP_CONST: (), OP_MOV: (2,), OP_ELEM: (2, 3),
    OP_MEMBOFF: (2,), OP_LOAD_I: (2,), OP_LOAD_F: (2,),
    OP_STORE_I: (1, 3), OP_STORE_F: (1, 3), OP_STORE_P: (1, 3),
    OP_ADD_I: (2, 3), OP_SUB_I: (2, 3), OP_MUL_I: (2, 3), OP_ADDK_I: (2,),
    OP_LT: (2, 3), OP_LE: (2, 3), OP_GT: (2, 3), OP_GE: (2, 3),
    OP_EQ: (2, 3), OP_NE: (2, 3),
    OP_JMP: (), OP_JZ: (1,), OP_JNZ: (1,), OP_CKPT: (),
    OP_ADD_P: (2, 3), OP_ADDK_P: (2,),
    OP_ADD_F: (2, 3), OP_SUB_F: (2, 3), OP_MUL_F: (2, 3), OP_DIV_F: (2, 3),
    OP_DIV_I: (2, 3), OP_MOD_I: (2, 3),
    OP_SHL: (2, 3), OP_SHR: (2, 3), OP_AND: (2, 3), OP_OR: (2, 3),
    OP_XOR: (2, 3), OP_SUB_PI: (2, 3), OP_SUB_PP: (2, 3), OP_ADDK_F: (2,),
    OP_NEG_I: (2,), OP_NEG_F: (2,), OP_NOT: (2,), OP_BNOT: (2,),
    OP_CONV_I: (2,), OP_CONV_F: (2,), OP_CONV_P: (2,),
    OP_RET: (1,), OP_RET0: (),
    OP_DECL: (), OP_ZFILL: (1,), OP_WBYTES: (1,), OP_STR: (), OP_GADDR: (),
    OP_LDELEM_I: (2, 3), OP_LDELEM_F: (2, 3),
    OP_STELEM_I: (1, 2, 4), OP_STELEM_F: (1, 2, 4), OP_STELEM_P: (1, 2, 4),
    OP_BR: (2, 3),
}

#: Written operand position per opcode (absent → no register write).
_WRITES: dict[int, int] = {
    OP_CONST: 1, OP_MOV: 1, OP_ELEM: 1, OP_MEMBOFF: 1,
    OP_LOAD_I: 1, OP_LOAD_F: 1,
    OP_STORE_I: 4, OP_STORE_F: 4, OP_STORE_P: 4,
    OP_ADD_I: 1, OP_SUB_I: 1, OP_MUL_I: 1, OP_ADDK_I: 1,
    OP_LT: 1, OP_LE: 1, OP_GT: 1, OP_GE: 1, OP_EQ: 1, OP_NE: 1,
    OP_ADD_P: 1, OP_ADDK_P: 1,
    OP_ADD_F: 1, OP_SUB_F: 1, OP_MUL_F: 1, OP_DIV_F: 1,
    OP_DIV_I: 1, OP_MOD_I: 1,
    OP_SHL: 1, OP_SHR: 1, OP_AND: 1, OP_OR: 1, OP_XOR: 1,
    OP_SUB_PI: 1, OP_SUB_PP: 1, OP_ADDK_F: 1,
    OP_NEG_I: 1, OP_NEG_F: 1, OP_NOT: 1, OP_BNOT: 1,
    OP_CONV_I: 1, OP_CONV_F: 1, OP_CONV_P: 1,
    OP_CALL: 1, OP_CALLB: 1,
    OP_DECL: 1, OP_STR: 1, OP_GADDR: 1,
    OP_LDELEM_I: 1, OP_LDELEM_F: 1,
    OP_STELEM_I: 5, OP_STELEM_F: 5, OP_STELEM_P: 5,
}

_CMP_OPS = frozenset((OP_LT, OP_LE, OP_GT, OP_GE, OP_EQ, OP_NE))
_MEM_OPS = frozenset((OP_LOAD_I, OP_LOAD_F, OP_STORE_I, OP_STORE_F,
                      OP_STORE_P))
_FUSED_MEM_OPS = frozenset((OP_LDELEM_I, OP_LDELEM_F, OP_STELEM_I,
                            OP_STELEM_F, OP_STELEM_P))

#: Instructions with no observable effect and no way to raise: a STEP's
#: count may move backwards across them (see :func:`_sink_steps`).
_PURE_OPS = frozenset((
    OP_CONST, OP_MOV, OP_ELEM, OP_ADD_P, OP_MEMBOFF, OP_ADDK_P,
    OP_ADD_I, OP_SUB_I, OP_MUL_I, OP_ADDK_I,
    OP_ADD_F, OP_SUB_F, OP_MUL_F, OP_ADDK_F,
    OP_LT, OP_LE, OP_GT, OP_GE, OP_EQ, OP_NE,
    OP_NEG_I, OP_NEG_F, OP_NOT, OP_BNOT,
    OP_CONV_I, OP_CONV_F, OP_CONV_P,
    OP_SHL, OP_SHR, OP_AND, OP_OR, OP_XOR,
    OP_SUB_PI, OP_SUB_PP, OP_GADDR,
))


def _liveness(code: Sequence[_Ins]) -> list[int]:
    """Per-instruction live-*out* register bitmask (backward fixpoint).

    Delegates to the block-level dataflow framework (the least fixpoint
    is unique, so this is bit-identical to the historical ad-hoc
    instruction-level pass). Exceptions need no edges: a MiniC runtime
    error or budget overrun aborts the whole run, and the ``exit()``
    unwind path reads only the per-frame pcs, never registers.
    """
    from repro.sim import dataflow

    return dataflow.liveness(code)


def _jump_targets(code: Sequence[_Ins]) -> set[int]:
    targets: set[int] = set()
    for ins in code:
        op = ins[0]
        if op == OP_JMP:
            targets.add(ins[1])
        elif op == OP_JZ or op == OP_JNZ:
            targets.add(ins[2])
        elif op == OP_BR:
            targets.add(ins[4])
    return targets


def _fuse_once(code: Sequence[_Ins]) -> dict[int, _Ins]:
    """One left-to-right scan; {first_index: fused_instruction}.

    A pair is fused only when the second instruction is not a jump
    target (control may not enter the middle of a superinstruction) and
    the dropped intermediate register is dead afterwards — or is
    rewritten by the pair itself with the same value either way.
    """
    n = len(code)
    targets = _jump_targets(code)
    live_out = _liveness(code)
    fused: dict[int, _Ins] = {}
    i = 0
    while i < n - 1:
        if i + 1 in targets:
            i += 1
            continue
        a = code[i]
        b = code[i + 1]
        opa = a[0]
        opb = b[0]
        out = live_out[i + 1]
        new = None
        if opa == OP_ELEM or opa == OP_ADD_P:
            # F1/F2: address compute + load/store at offset 0. The store
            # value operand must not be the address temp (the fused form
            # reads it before the address exists).
            t = a[1]
            if opb == OP_LOAD_I and b[2] == t and b[3] == 0 \
                    and (b[1] == t or not (out >> t) & 1):
                new = (OP_LDELEM_I, b[1], a[2], a[3], a[4],
                       b[4], b[5], b[6], b[7])
            elif opb == OP_LOAD_F and b[2] == t and b[3] == 0 \
                    and (b[1] == t or not (out >> t) & 1):
                new = (OP_LDELEM_F, b[1], a[2], a[3], a[4],
                       b[4], b[5], b[6])
            elif opb == OP_STORE_I and b[1] == t and b[2] == 0 \
                    and b[3] != t and (b[4] == t or not (out >> t) & 1):
                new = (OP_STELEM_I, a[2], a[3], a[4], b[3], b[4],
                       b[5], b[6], b[7], b[8], b[9])
            elif opb == OP_STORE_F and b[1] == t and b[2] == 0 \
                    and b[3] != t and (b[4] == t or not (out >> t) & 1):
                new = (OP_STELEM_F, a[2], a[3], a[4], b[3], b[4],
                       b[5], b[6], b[7])
            elif opb == OP_STORE_P and b[1] == t and b[2] == 0 \
                    and b[3] != t and (b[4] == t or not (out >> t) & 1):
                new = (OP_STELEM_P, a[2], a[3], a[4], b[3], b[4], b[5])
        elif opa in _CMP_OPS and (opb == OP_JZ or opb == OP_JNZ) \
                and b[1] == a[1] and not (out >> a[1]) & 1:
            # F3: compare + conditional jump. The branch keeps "jump
            # when the flag is (non)zero" semantics rather than the
            # complemented comparison, so NaN operands behave exactly
            # as in the unfused pair.
            new = (OP_BR, opa, a[2], a[3], b[2], opb == OP_JNZ)
        elif opa == OP_STEP and opb == OP_STEP:
            # F4: nothing can observe the counter between two adjacent
            # steps except an over-budget abort, whose counter value is
            # already engine-defined (see the module docstring).
            new = (OP_STEP, a[1] + b[1])
        elif opa == OP_CONST and type(a[2]) is int:
            # F6: constant index folds into a static member offset.
            t = a[1]
            if (opb == OP_ELEM or opb == OP_ADD_P) and b[3] == t \
                    and b[2] != t and (b[1] == t or not (out >> t) & 1):
                new = (OP_MEMBOFF, b[1], b[2], a[2] * b[4])
            elif opb == OP_SUB_PI and b[3] == t and b[2] != t \
                    and (b[1] == t or not (out >> t) & 1):
                new = (OP_MEMBOFF, b[1], b[2], -(a[2] * b[4]))
        elif opa == OP_MEMBOFF:
            # F7: member-offset chains fold into the next offset field
            # (address masks compose: ((x+o1)&M + o2)&M == (x+o1+o2)&M).
            t = a[1]
            off = a[3]
            if opb == OP_MEMBOFF and b[2] == t \
                    and (b[1] == t or not (out >> t) & 1):
                new = (OP_MEMBOFF, b[1], a[2], off + b[3])
            elif opb == OP_LOAD_I and b[2] == t \
                    and (b[1] == t or not (out >> t) & 1):
                new = (OP_LOAD_I, b[1], a[2], off + b[3],
                       b[4], b[5], b[6], b[7])
            elif opb == OP_LOAD_F and b[2] == t \
                    and (b[1] == t or not (out >> t) & 1):
                new = (OP_LOAD_F, b[1], a[2], off + b[3], b[4], b[5], b[6])
            elif opb == OP_STORE_I and b[1] == t and b[3] != t \
                    and (b[4] == t or not (out >> t) & 1):
                new = (OP_STORE_I, a[2], off + b[2], b[3], b[4],
                       b[5], b[6], b[7], b[8], b[9])
            elif opb == OP_STORE_F and b[1] == t and b[3] != t \
                    and (b[4] == t or not (out >> t) & 1):
                new = (OP_STORE_F, a[2], off + b[2], b[3], b[4],
                       b[5], b[6], b[7])
            elif opb == OP_STORE_P and b[1] == t and b[3] != t \
                    and (b[4] == t or not (out >> t) & 1):
                new = (OP_STORE_P, a[2], off + b[2], b[3], b[4], b[5])
        if new is not None:
            fused[i] = new
            i += 2
        else:
            i += 1
    return fused


def _rebuild(code: Sequence[_Ins],
             fused: dict[int, _Ins]) -> tuple[list[_Ins], list[int]]:
    """Apply one round of fusions; return (new_code, pos) where pos[p] is
    the new index of the first retained instruction with old index >= p
    (monotone — the remap rule for jump targets and region bounds)."""
    n = len(code)
    new_code: list[_Ins] = []
    pos = [0] * (n + 1)
    i = 0
    while i < n:
        pos[i] = len(new_code)
        ins = fused.get(i)
        if ins is not None:
            new_code.append(ins)
            pos[i + 1] = len(new_code)
            i += 2
        else:
            new_code.append(code[i])
            i += 1
    pos[n] = len(new_code)
    for j, ins in enumerate(new_code):
        op = ins[0]
        if op == OP_JMP:
            new_code[j] = (op, pos[ins[1]])
        elif op == OP_JZ or op == OP_JNZ:
            new_code[j] = (op, ins[1], pos[ins[2]])
        elif op == OP_BR:
            new_code[j] = (op, ins[1], ins[2], ins[3], pos[ins[4]], ins[5])
    return new_code, pos


def _sink_steps(code: list[_Ins]) -> None:
    """Accumulate STEP counts backwards across pure instructions.

    Between two STEPs separated only by :data:`_PURE_OPS` nothing can
    observe the counter, emit trace records, or raise, so charging the
    later count at the earlier STEP is observably exact — including at
    an over-budget abort, where the counter lands on the same value and
    the skipped pure tail had no visible effects. A jump target between
    the two (or on the later STEP itself) breaks the chain: a path
    entering there must still pay its own steps. Drained STEPs stay in
    place with a count of zero (no pc remap needed); the specializer
    emits nothing for them.
    """
    targets = _jump_targets(code)
    consts: dict[int, object] = {}
    last = -1
    for i, ins in enumerate(code):
        op = ins[0]
        if i in targets:
            last = -1
            consts.clear()
        if op == OP_STEP:
            if last >= 0 and i not in targets:
                code[last] = (OP_STEP, code[last][1] + ins[1])
                code[i] = (OP_STEP, 0)
            else:
                last = i
            continue
        if op not in _PURE_OPS:
            # A division whose divisor slot provably holds a nonzero
            # integer constant cannot raise either.
            if not ((op == OP_DIV_I or op == OP_MOD_I)
                    and type(consts.get(ins[3])) is int and consts[ins[3]]):
                last = -1
        if op == OP_CONST:
            consts[ins[1]] = ins[2]
        else:
            written = _WRITES.get(op)
            if written is not None:
                consts.pop(ins[written], None)


def fuse_function(fn: BytecodeFunction) -> BytecodeFunction:
    """Fuse one function's code to fixpoint (chains like CONST→ELEM→LOAD
    collapse over successive rounds). Body regions are remapped with the
    same monotone rule as jump targets; call-site pcs — the only pcs the
    regions are ever tested against — keep their region membership
    because calls never fuse."""
    code = list(fn.code)
    regions = list(fn.body_regions)
    while True:
        fused = _fuse_once(code)
        if not fused:
            break
        code, pos = _rebuild(code, fused)
        regions = [(pos[s], pos[e], bid) for s, e, bid in regions]
    _sink_steps(code)
    return BytecodeFunction(
        name=fn.name,
        code=tuple(code),
        n_slots=fn.n_slots,
        params=fn.params,
        returns_void=fn.returns_void,
        body_regions=tuple(regions),
    )


def fuse_program(bp: BytecodeProgram) -> BytecodeProgram:
    """The fused twin of a lowered program (cached on the original).

    ``globals_init`` stays unfused: it runs once through the classic
    dispatch loop, which by design never executes superinstructions.
    """
    cached = getattr(bp, "_fused", None)
    if cached is None:
        cached = BytecodeProgram(
            program=bp.program,
            functions={name: fuse_function(fn)
                       for name, fn in bp.functions.items()},
            global_symbols=bp.global_symbols,
            globals_init=bp.globals_init,
        )
        bp._fused = cached
    return cached


def fusion_stats(bp: BytecodeProgram) -> dict[str, Any]:
    """Static fusion coverage of a program (reported by the benchmarks).

    ``memory_fused_share`` is the fraction of memory-access instructions
    that ended up in superinstruction form.
    """
    fused = fuse_program(bp)
    mem_total = mem_fused = br_total = br_fused = 0
    for fn in fused.functions.values():
        for ins in fn.code:
            op = ins[0]
            if op in _FUSED_MEM_OPS:
                mem_fused += 1
                mem_total += 1
            elif op in _MEM_OPS:
                mem_total += 1
            elif op == OP_BR:
                br_fused += 1
                br_total += 1
            elif op == OP_JZ or op == OP_JNZ:
                br_total += 1
    before = sum(len(fn.code) for fn in bp.functions.values())
    after = sum(len(fn.code) for fn in fused.functions.values())
    return {
        "instructions_before": before,
        "instructions_after": after,
        "memory_ops": mem_total,
        "memory_ops_fused": mem_fused,
        "memory_fused_share": mem_fused / mem_total if mem_total else 0.0,
        "branches": br_total,
        "branches_fused": br_fused,
    }
