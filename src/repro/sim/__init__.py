"""Simulator substrate: memory model, trace format, builtins, interpreter.

Replaces the paper's modified SimpleScalar functional simulator: it executes
MiniC programs over a simulated 32-bit address space and streams the
checkpoint/memory-access trace that FORAY-GEN consumes.
"""

from repro.sim.bytecode import BytecodeVM, lower_program
from repro.sim.interpreter import ExecLimitExceeded, Interpreter
from repro.sim.machine import (
    DEFAULT_ENGINE,
    ENGINES,
    CompiledProgram,
    EngineConfig,
    RunResult,
    compile_program,
    lower_compiled,
    run_and_trace,
    run_compiled,
)
from repro.sim.trace import (
    Access,
    Checkpoint,
    CheckpointKind,
    CheckpointMap,
    TraceCollector,
    TraceWriter,
    format_trace,
    parse_trace,
)

__all__ = [
    "ExecLimitExceeded",
    "Interpreter",
    "BytecodeVM",
    "lower_program",
    "CompiledProgram",
    "EngineConfig",
    "ENGINES",
    "DEFAULT_ENGINE",
    "RunResult",
    "compile_program",
    "lower_compiled",
    "run_and_trace",
    "run_compiled",
    "Access",
    "Checkpoint",
    "CheckpointKind",
    "CheckpointMap",
    "TraceCollector",
    "TraceWriter",
    "format_trace",
    "parse_trace",
]
