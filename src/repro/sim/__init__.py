"""Simulator substrate: memory model, trace format, builtins, interpreter.

Replaces the paper's modified SimpleScalar functional simulator: it executes
MiniC programs over a simulated 32-bit address space and streams the
checkpoint/memory-access trace that FORAY-GEN consumes.
"""

from repro.sim.interpreter import ExecLimitExceeded, Interpreter
from repro.sim.machine import (
    CompiledProgram,
    RunResult,
    compile_program,
    run_and_trace,
    run_compiled,
)
from repro.sim.trace import (
    Access,
    Checkpoint,
    CheckpointKind,
    CheckpointMap,
    TraceCollector,
    TraceWriter,
    format_trace,
    parse_trace,
)

__all__ = [
    "ExecLimitExceeded",
    "Interpreter",
    "CompiledProgram",
    "RunResult",
    "compile_program",
    "run_and_trace",
    "run_compiled",
    "Access",
    "Checkpoint",
    "CheckpointKind",
    "CheckpointMap",
    "TraceCollector",
    "TraceWriter",
    "format_trace",
    "parse_trace",
]
