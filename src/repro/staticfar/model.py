"""Result types for the compile-time FORAY analyzer.

:class:`StaticForayModel` is the static twin of
:class:`repro.foray.model.ForayModel`: the same reference/loop records,
derived from the AST alone. Every reference the analyzer could *not*
model soundly is recorded as a :class:`StaticRefusal` instead of being
guessed at — the differential oracle leans on that taxonomy to prove the
static side never silently mis-models an access.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.foray.extractor import TraceStats
from repro.foray.filters import FilterConfig
from repro.foray.model import ForayLoop, ForayModel, ForayReference

#: Machine-readable refusal reasons (stable strings: tests and the JSON
#: payload key off them).
REFUSAL_REASONS = (
    "non-affine-index",
    "pointer-dereference",
    "stack-allocated",
    "control-dependent",
    "short-circuit",
    "non-canonical-loop",
    "early-exit-loop",
    "indeterminate-attribution",
    "recursion",
    "library-call",
    "footprint-too-large",
)


@dataclass(frozen=True)
class StaticRefusal:
    """One reference (AST node) the static analyzer declined to model."""

    node_id: int
    reason: str
    detail: str = ""
    #: True when the refusal provably cannot survive the reference filter
    #: (e.g. a constant-address scalar under ``require_iterator``), so the
    #: *filtered* static model is still complete despite it.
    provably_filtered: bool = False


@dataclass
class StaticForayModel:
    """A FORAY model computed without running the program."""

    name: str
    #: References that survive the extraction filter, program order.
    references: list[ForayReference]
    #: Every soundly modeled reference, pre-filter, program order.
    unfiltered_references: list[ForayReference]
    #: Loops on the paths of iterator-bearing unfiltered references.
    loops: list[ForayLoop]
    #: node_id → refusal for everything we declined to model.
    refusals: dict[int, StaticRefusal]
    #: ast_node_id → kind for loops proven to execute at least once.
    executed_loops: dict[int, str]
    #: Synthesised from the modeled references only (exact when
    #: ``stats_exact``); lib traffic is never statically modeled.
    trace_stats: TraceStats
    captured_accesses: int
    captured_footprint: int
    filter_config: FilterConfig
    #: Every user memory reference is either modeled or provably filtered.
    model_complete: bool
    #: Stronger: no refusals, no library traffic, no conditional control
    #: flow around loops — the synthetic trace stats equal a real run's.
    stats_exact: bool
    #: reason → count, for reports.
    refusal_histogram: dict[str, int] = field(default_factory=dict)

    @property
    def fast_path_ok(self) -> bool:
        """May the pipeline skip simulation entirely for this program?"""
        return self.model_complete and self.stats_exact

    @property
    def refused_count(self) -> int:
        return len(self.refusals)

    def refused(self, node_id: int) -> bool:
        return node_id in self.refusals

    def foray_model(self) -> ForayModel:
        """Repackage as a plain :class:`ForayModel` for the SPM layer."""
        return ForayModel(
            references=list(self.references),
            unfiltered_references=list(self.unfiltered_references),
            loops=list(self.loops),
            non_analyzable_count=0,
            trace_stats=self.trace_stats,
            captured_accesses=self.captured_accesses,
            captured_footprint=self.captured_footprint,
        )
