"""Static FORAY-form detection: the compile-time baseline of Table II."""

from repro.staticfar.detector import (
    CanonicalLoopInfo,
    StaticAnalysisResult,
    StaticForayDetector,
    affine_terms,
    detect,
)

__all__ = [
    "CanonicalLoopInfo",
    "StaticAnalysisResult",
    "StaticForayDetector",
    "affine_terms",
    "detect",
]
