"""Static FORAY analysis: form detection, the compile-time model engine,
and the static-vs-dynamic differential oracle (Table II, model-level)."""

from repro.staticfar.analyze import StaticAnalyzer, analyze_static
from repro.staticfar.detector import (
    CanonicalLoopInfo,
    StaticAnalysisResult,
    StaticForayDetector,
    affine_terms,
    detect,
)
from repro.staticfar.layout import global_layout
from repro.staticfar.model import (
    REFUSAL_REASONS,
    StaticForayModel,
    StaticRefusal,
)
from repro.staticfar.oracle import (
    CONTEXTUAL_REASONS,
    OracleReport,
    compare_models,
)

__all__ = [
    "CanonicalLoopInfo",
    "CONTEXTUAL_REASONS",
    "OracleReport",
    "REFUSAL_REASONS",
    "StaticAnalysisResult",
    "StaticAnalyzer",
    "StaticForayDetector",
    "StaticForayModel",
    "StaticRefusal",
    "affine_terms",
    "analyze_static",
    "compare_models",
    "detect",
    "global_layout",
]
