"""Static-vs-dynamic differential oracle.

Compares the compile-time :class:`~repro.staticfar.model.StaticForayModel`
against the trace-extracted :class:`~repro.foray.model.ForayModel` of the
same program and input. The contract it enforces:

1. **Exactness** — every reference the static analyzer modeled must agree
   with its dynamic counterpart *exactly*: affine coefficients, constant
   term, execution/read/write counts, footprint, access size and the
   per-loop trip/entry structure on its path.
2. **No silent gaps** — every dynamic user reference the static side did
   not model must carry an explicit :class:`StaticRefusal`; a dynamic
   reference with neither a match nor a refusal is a hard failure.
3. **No phantoms** — the static model must not contain references the
   dynamic trace never produced.
4. **Detector consistency** — for references the *form detector* calls
   FORAY-form, a static refusal is only acceptable when its reason is
   *contextual* (an enclosing irregular loop, control dependence, an
   indeterminate frame address...). A refusal that contradicts the
   detector about the reference itself (``non-affine-index``,
   ``pointer-dereference``) means the two static layers disagree — a bug.
5. **Allocation parity** — DP allocation over the reuse graph built from
   the matched static references equals DP allocation over the same
   dynamic references, at every capacity of the default ladder.

The surviving, intentional difference between the two models — dynamic
references with contextual refusals — *is* the paper's Table II gap,
reported as coverage rather than failure.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.foray.model import ForayModel, ForayReference
from repro.sim.trace import node_id_of_pc
from repro.spm.allocator import Allocation, allocate_graph
from repro.spm.explore import DEFAULT_CAPACITIES
from repro.spm.graph import ReuseGraph
from repro.staticfar.detector import StaticAnalysisResult
from repro.staticfar.model import StaticForayModel

#: Refusal reasons that concern a reference's *context* (surrounding
#: control flow, loop shape, frame layout) rather than the reference
#: itself. These are the honest static-analysis limits the paper's
#: dynamic approach exists to overcome.
CONTEXTUAL_REASONS = frozenset({
    "non-canonical-loop",
    "early-exit-loop",
    "control-dependent",
    "short-circuit",
    "indeterminate-attribution",
    "recursion",
    "stack-allocated",
    "footprint-too-large",
})

_REF_FIELDS = ("expression", "exec_count", "footprint", "reads", "writes",
               "access_size", "mispredictions")
_LOOP_FIELDS = ("begin_id", "kind", "depth", "max_trip", "min_trip",
                "entries", "total_iterations")


def _ref_key(reference: ForayReference) -> tuple[int, tuple[int, ...]]:
    return (reference.pc,
            tuple(loop.begin_id for loop in reference.loop_path))


@dataclass
class OracleReport:
    """Outcome of one static-vs-dynamic comparison."""

    name: str = ""
    scenario: str = ""
    #: Dynamic references with an exactly-agreeing static twin.
    matched: int = 0
    dynamic_total: int = 0
    analyzable_total: int = 0
    #: Field-level disagreements on matched references (hard failures).
    mismatches: list[str] = field(default_factory=list)
    #: Dynamic references with neither a static twin nor a refusal.
    unexplained: list[str] = field(default_factory=list)
    #: Static references the dynamic trace never produced.
    phantoms: list[str] = field(default_factory=list)
    #: Detector-FORAY-form references refused for a non-contextual reason.
    detector_conflicts: list[str] = field(default_factory=list)
    #: Allocation disagreements over the matched-reference graphs.
    allocation_diffs: list[str] = field(default_factory=list)
    #: Detector-FORAY-form references excused by a contextual refusal —
    #: the reproduced Table II gap, not a failure.
    foray_gap: list[tuple[int, str]] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not (self.mismatches or self.unexplained or self.phantoms
                    or self.detector_conflicts or self.allocation_diffs)

    @property
    def coverage(self) -> float:
        """Fraction of dynamic references the static model reproduces."""
        if not self.dynamic_total:
            return 1.0
        return self.matched / self.dynamic_total

    def diff_lines(self) -> list[str]:
        """Readable failure report, one finding per line."""
        out: list[str] = []
        label = f"{self.name}/{self.scenario}" if self.scenario else self.name
        for line in self.mismatches:
            out.append(f"{label}: MISMATCH {line}")
        for line in self.unexplained:
            out.append(f"{label}: UNEXPLAINED {line}")
        for line in self.phantoms:
            out.append(f"{label}: PHANTOM {line}")
        for line in self.detector_conflicts:
            out.append(f"{label}: DETECTOR-CONFLICT {line}")
        for line in self.allocation_diffs:
            out.append(f"{label}: ALLOCATION {line}")
        return out


def _allocation_signature(allocation: Allocation) -> tuple:
    entries = []
    for node in allocation.nodes:
        reference = node.candidate.reference
        entries.append((
            reference.pc,
            tuple(loop.begin_id for loop in reference.loop_path),
            node.candidate.level.level,
            node.candidate.size_bytes,
            round(node.benefit_nj, 6),
            node.fill_words,
            node.writeback_words,
        ))
    return tuple(sorted(entries))


def _restricted_model(model: ForayModel,
                      keys: set[tuple[int, tuple[int, ...]]]) -> ForayModel:
    """A copy of ``model`` keeping only filtered references in ``keys``."""
    references = [ref for ref in model.references if _ref_key(ref) in keys]
    return ForayModel(
        references=references,
        unfiltered_references=references,
        loops=model.loops,
        non_analyzable_count=0,
        trace_stats=model.trace_stats,
        captured_accesses=model.captured_accesses,
        captured_footprint=model.captured_footprint,
    )


def compare_models(
    dynamic: ForayModel,
    static: StaticForayModel,
    detector: StaticAnalysisResult | None = None,
    capacities: tuple[int, ...] = DEFAULT_CAPACITIES,
    name: str = "",
    scenario: str = "",
) -> OracleReport:
    """Run the full differential contract; see the module docstring."""
    report = OracleReport(name=name, scenario=scenario)
    dynamic_refs = {_ref_key(ref): ref for ref in dynamic.unfiltered_references}
    static_refs = {_ref_key(ref): ref for ref in static.unfiltered_references}
    report.dynamic_total = len(dynamic_refs)
    if detector is not None:
        report.analyzable_total = len(detector.analyzable_refs)

    matched_keys: set[tuple[int, tuple[int, ...]]] = set()
    for key, dyn_ref in dynamic_refs.items():
        node_id = node_id_of_pc(dyn_ref.pc)
        static_ref = static_refs.get(key)
        if static_ref is None:
            refusal = static.refusals.get(node_id)
            if refusal is None:
                report.unexplained.append(
                    f"pc={dyn_ref.pc:#x} node={node_id} "
                    f"path={key[1]} expr={dyn_ref.expression} — no static "
                    "model and no refusal")
            elif detector is not None and node_id in detector.analyzable_refs:
                if refusal.reason in CONTEXTUAL_REASONS:
                    report.foray_gap.append((node_id, refusal.reason))
                else:
                    report.detector_conflicts.append(
                        f"node={node_id} is FORAY-form per the detector but "
                        f"statically refused as {refusal.reason!r} "
                        f"({refusal.detail})")
            continue
        matched_keys.add(key)
        for field_name in _REF_FIELDS:
            dyn_value = getattr(dyn_ref, field_name)
            static_value = getattr(static_ref, field_name)
            if dyn_value != static_value:
                report.mismatches.append(
                    f"pc={dyn_ref.pc:#x} node={node_id} {field_name}: "
                    f"dynamic={dyn_value!r} static={static_value!r}")
        for dyn_loop, static_loop in zip(dyn_ref.loop_path,
                                         static_ref.loop_path):
            for field_name in _LOOP_FIELDS:
                dyn_value = getattr(dyn_loop, field_name)
                static_value = getattr(static_loop, field_name)
                if dyn_value != static_value:
                    report.mismatches.append(
                        f"pc={dyn_ref.pc:#x} loop begin={dyn_loop.begin_id} "
                        f"{field_name}: dynamic={dyn_value!r} "
                        f"static={static_value!r}")
    report.matched = len(matched_keys)

    for key, static_ref in static_refs.items():
        if key not in dynamic_refs:
            report.phantoms.append(
                f"pc={static_ref.pc:#x} node={node_id_of_pc(static_ref.pc)} "
                f"path={key[1]} modeled statically but never traced")

    # Allocation parity over the common (matched, filtered) references.
    filtered_keys = {_ref_key(ref) for ref in dynamic.references}
    common = matched_keys & filtered_keys
    dyn_graph = ReuseGraph.from_model(_restricted_model(dynamic, common))
    static_graph = ReuseGraph.from_model(
        _restricted_model(static.foray_model(), common))
    for capacity in capacities:
        dyn_alloc = allocate_graph(dyn_graph, capacity)
        static_alloc = allocate_graph(static_graph, capacity)
        dyn_sig = _allocation_signature(dyn_alloc)
        static_sig = _allocation_signature(static_alloc)
        if dyn_sig != static_sig:
            report.allocation_diffs.append(
                f"capacity={capacity}: dynamic selected {dyn_sig} "
                f"!= static selected {static_sig}")
        elif abs(dyn_alloc.total_benefit_nj
                 - static_alloc.total_benefit_nj) > 1e-6:
            report.allocation_diffs.append(
                f"capacity={capacity}: benefit dynamic="
                f"{dyn_alloc.total_benefit_nj} static="
                f"{static_alloc.total_benefit_nj}")
    return report
