"""Compile-time replica of the engines' global data layout.

Both execution engines place globals with a bump allocator over
``program.globals`` in declaration order (see
``Interpreter._layout_globals``); the static analyzer reproduces that
walk arithmetically so it can name the exact byte addresses a run will
use without running anything. String literals are interned *after* all
globals, so their lazy allocation never disturbs these addresses.
"""

from __future__ import annotations

from repro.lang import ast_nodes as ast
from repro.lang.semantics import Symbol
from repro.sim.memory import GLOBAL_BASE


def global_layout(program: ast.Program) -> dict[Symbol, int]:
    """Symbol → base address for every global, as the engines lay them out."""
    addrs: dict[Symbol, int] = {}
    cursor = GLOBAL_BASE
    for decl_stmt in program.globals:
        for decl in decl_stmt.decls:
            symbol = decl.symbol
            assert isinstance(symbol, Symbol)
            align = max(1, symbol.ctype.alignment)
            addr = (cursor + align - 1) // align * align
            cursor = addr + max(1, symbol.ctype.size)
            addrs[symbol] = addr
    return addrs
