"""Static FORAY-form detection — the baseline FORAY-GEN is compared against.

Traditional SPM optimization techniques ([5][6][7] in the paper) perform
*compile-time* analysis and therefore only handle references that are
already written in FORAY form in the source:

* enclosing loops must all be *canonical* ``for`` loops — a single integer
  iterator, constant bounds and a constant step, iterator not modified in
  the body, no ``break``;
* the reference must be an explicit subscript of a declared array whose
  index expression is affine in the enclosing canonical iterators with
  constant coefficients;
* the reference must not be control-dependent on data (no enclosing ``if``
  inside the loop nest).

Everything else — pointer walks, ``while``/``do`` loops, data-dependent
offsets, accesses through pointer parameters — is invisible to the static
baseline. Table II's "% not in FORAY form in the original program" is the
fraction of the *dynamic* FORAY model that this detector cannot see.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.lang import ast_nodes as ast
from repro.lang.semantics import Symbol


@dataclass
class CanonicalLoopInfo:
    """A ``for`` loop recognized as canonical by the static detector."""

    node_id: int
    iterator: Symbol
    start: int
    bound: int
    step: int
    #: Trip count implied by start/bound/step (0 when the loop cannot run).
    trip_count: int


@dataclass
class StaticAnalysisResult:
    """Everything the static baseline could prove about a program."""

    #: node_id → info for every canonical for loop.
    canonical_loops: dict[int, CanonicalLoopInfo] = field(default_factory=dict)
    #: node_ids of loop statements that are NOT statically analyzable.
    non_canonical_loops: set[int] = field(default_factory=set)
    #: node_ids of array-subscript expressions that are statically
    #: analyzable (FORAY form in the source).
    analyzable_refs: set[int] = field(default_factory=set)
    #: node_ids of memory-reference expressions the detector had to reject.
    rejected_refs: set[int] = field(default_factory=set)

    @property
    def loop_count(self) -> int:
        return len(self.canonical_loops) + len(self.non_canonical_loops)

    def is_canonical_loop(self, node_id: int) -> bool:
        return node_id in self.canonical_loops

    def is_analyzable_ref(self, node_id: int) -> bool:
        return node_id in self.analyzable_refs


def _const_value(expr: ast.Expr) -> int | None:
    """Fold an integer-constant expression, or None."""
    if isinstance(expr, ast.IntLiteral):
        return expr.value
    if isinstance(expr, ast.Unary) and expr.op in ("-", "+"):
        inner = _const_value(expr.operand)
        if inner is None:
            return None
        return -inner if expr.op == "-" else inner
    if isinstance(expr, ast.Binary):
        left = _const_value(expr.left)
        right = _const_value(expr.right)
        if left is None or right is None:
            return None
        ops = {
            "+": lambda: left + right,
            "-": lambda: left - right,
            "*": lambda: left * right,
            "<<": lambda: left << right,
            ">>": lambda: left >> right,
        }
        if expr.op in ops:
            return ops[expr.op]()
        if expr.op == "/" and right != 0:
            return left // right
    if isinstance(expr, ast.SizeofType):
        return expr.queried_type.size
    if isinstance(expr, ast.SizeofExpr) and expr.operand.ctype is not None:
        return expr.operand.ctype.size
    return None


def affine_terms(
    expr: ast.Expr, iterators: set[Symbol]
) -> dict[Symbol | None, int] | None:
    """Decompose ``expr`` as ``const + Σ c_i * iter_i`` or return None.

    The returned dict maps each iterator symbol to its coefficient; the
    ``None`` key holds the constant term.
    """
    const = _const_value(expr)
    if const is not None:
        return {None: const}
    if isinstance(expr, ast.Identifier):
        if expr.symbol in iterators:
            return {expr.symbol: 1, None: 0}
        return None
    if isinstance(expr, ast.Unary) and expr.op == "-":
        inner = affine_terms(expr.operand, iterators)
        if inner is None:
            return None
        return {key: -value for key, value in inner.items()}
    if isinstance(expr, ast.Unary) and expr.op == "+":
        return affine_terms(expr.operand, iterators)
    if isinstance(expr, ast.Binary):
        if expr.op in ("+", "-"):
            left = affine_terms(expr.left, iterators)
            right = affine_terms(expr.right, iterators)
            if left is None or right is None:
                return None
            sign = 1 if expr.op == "+" else -1
            combined = dict(left)
            combined.setdefault(None, 0)
            for key, value in right.items():
                combined[key] = combined.get(key, 0) + sign * value
            return combined
        if expr.op == "*":
            left_const = _const_value(expr.left)
            right_const = _const_value(expr.right)
            if left_const is not None:
                inner = affine_terms(expr.right, iterators)
            elif right_const is not None:
                inner = affine_terms(expr.left, iterators)
                left_const = right_const
            else:
                return None
            if inner is None:
                return None
            return {key: left_const * value for key, value in inner.items()}
    return None


class StaticForayDetector:
    """Walks a program and classifies loops and references statically."""

    def __init__(self, program: ast.Program):
        self.program = program
        self.result = StaticAnalysisResult()
        self._may_exit = _may_exit_functions(program)

    # ------------------------------------------------------------------

    def run(self) -> StaticAnalysisResult:
        for fn in self.program.functions:
            self._walk_stmt(fn.body, loop_stack=[], under_if=False)
        return self.result

    # -- loop classification ------------------------------------------------

    def _classify_for(self, stmt: ast.For) -> CanonicalLoopInfo | None:
        iterator, start = self._parse_init(stmt.init)
        if iterator is None or start is None:
            return None
        bound_info = self._parse_cond(stmt.cond, iterator)
        if bound_info is None:
            return None
        op, bound = bound_info
        step = self._parse_step(stmt.step, iterator)
        if step is None or step == 0:
            return None
        if self._iterator_modified(stmt.body, iterator):
            return None
        if self._contains_escape(stmt.body):
            return None
        trip = self._trip_count(start, op, bound, step)
        if trip is None:
            return None
        return CanonicalLoopInfo(stmt.node_id, iterator, start, bound, step, trip)

    @staticmethod
    def _trip_count(start: int, op: str, bound: int, step: int) -> int | None:
        if step > 0 and op in ("<", "<="):
            limit = bound + (1 if op == "<=" else 0)
            return max(0, -(-(limit - start) // step)) if limit > start else 0
        if step < 0 and op in (">", ">="):
            limit = bound - (1 if op == ">=" else 0)
            return max(0, -(-(start - limit) // -step)) if start > limit else 0
        return None

    def _parse_init(
        self, init: ast.Stmt | None
    ) -> tuple[Symbol | None, int | None]:
        if isinstance(init, ast.DeclStmt) and len(init.decls) == 1:
            decl = init.decls[0]
            symbol = decl.symbol
            if (
                isinstance(symbol, Symbol)
                and symbol.ctype.is_integer
                and not symbol.in_memory
                and decl.init is not None
            ):
                start = _const_value(decl.init)
                if start is not None:
                    return symbol, start
            return None, None
        if isinstance(init, ast.ExprStmt) and isinstance(init.expr, ast.Assign):
            assign = init.expr
            if assign.op == "" and isinstance(assign.target, ast.Identifier):
                symbol = assign.target.symbol
                if (isinstance(symbol, Symbol) and symbol.ctype.is_integer
                        and not symbol.in_memory):
                    # An address-taken (or global) iterator is itself a
                    # memory reference per iteration — not FORAY form.
                    start = _const_value(assign.value)
                    if start is not None:
                        return symbol, start
        return None, None

    def _parse_cond(
        self, cond: ast.Expr | None, iterator: Symbol
    ) -> tuple[str, int] | None:
        if not isinstance(cond, ast.Binary) or cond.op not in ("<", "<=", ">", ">="):
            return None
        if (
            isinstance(cond.left, ast.Identifier)
            and cond.left.symbol is iterator
        ):
            bound = _const_value(cond.right)
            if bound is not None:
                return cond.op, bound
        return None

    def _parse_step(self, step: ast.Expr | None, iterator: Symbol) -> int | None:
        if isinstance(step, ast.IncDec):
            if (
                isinstance(step.operand, ast.Identifier)
                and step.operand.symbol is iterator
            ):
                return 1 if step.op == "++" else -1
            return None
        if isinstance(step, ast.Assign) and isinstance(step.target, ast.Identifier):
            if step.target.symbol is not iterator:
                return None
            if step.op in ("+", "-"):
                amount = _const_value(step.value)
                if amount is None:
                    return None
                return amount if step.op == "+" else -amount
            if step.op == "" and isinstance(step.value, ast.Binary):
                value = step.value
                if (
                    value.op in ("+", "-")
                    and isinstance(value.left, ast.Identifier)
                    and value.left.symbol is iterator
                ):
                    amount = _const_value(value.right)
                    if amount is None:
                        return None
                    return amount if value.op == "+" else -amount
        return None

    def _iterator_modified(self, body: ast.Stmt, iterator: Symbol) -> bool:
        for node in ast.walk(body):
            if isinstance(node, ast.Assign):
                target = node.target
                if isinstance(target, ast.Identifier) and target.symbol is iterator:
                    return True
            elif isinstance(node, ast.IncDec):
                operand = node.operand
                if isinstance(operand, ast.Identifier) and operand.symbol is iterator:
                    return True
        return False

    def _contains_escape(self, body: ast.Stmt) -> bool:
        """Can control leave this loop other than through its condition?

        A direct ``break`` (nested loops scanned separately), a ``return``
        at any depth, or a call that can reach ``exit()`` all cut the trip
        count short of the closed form — such a loop must not be
        classified canonical, or the static model would overstate it.
        """
        stack: list = [body]
        while stack:
            node = stack.pop()
            if isinstance(node, ast.Break):
                return True
            if isinstance(node, ast.Loop):
                # a break in a nested loop exits that loop only, but a
                # return or exit() inside it still escapes this one.
                for inner in ast.walk(node):
                    if isinstance(inner, ast.Return):
                        return True
                    if isinstance(inner, ast.Call) and self._call_may_exit(inner):
                        return True
                continue
            if isinstance(node, ast.Return):
                return True
            if isinstance(node, ast.Call) and self._call_may_exit(node):
                return True
            stack.extend(ast.children(node))
        return False

    def _call_may_exit(self, call: ast.Call) -> bool:
        if call.is_builtin:
            return call.name == "exit"
        return call.name in self._may_exit

    # -- traversal -------------------------------------------------------------

    def _walk_stmt(self, stmt, loop_stack: list[CanonicalLoopInfo | None],
                   under_if: bool) -> None:
        if isinstance(stmt, ast.For):
            info = self._classify_for(stmt)
            if info is not None:
                self.result.canonical_loops[stmt.node_id] = info
            else:
                self.result.non_canonical_loops.add(stmt.node_id)
            self._walk_exprs(
                [stmt.cond, stmt.step], loop_stack, under_if, in_loop_header=True
            )
            if isinstance(stmt.init, ast.Stmt):
                self._walk_stmt(stmt.init, loop_stack, under_if)
            loop_stack.append(info)
            self._walk_stmt(stmt.body, loop_stack, under_if)
            loop_stack.pop()
            return
        if isinstance(stmt, (ast.While, ast.DoWhile)):
            self.result.non_canonical_loops.add(stmt.node_id)
            self._walk_exprs([stmt.cond], loop_stack, under_if, in_loop_header=True)
            loop_stack.append(None)  # non-canonical context
            self._walk_stmt(stmt.body, loop_stack, under_if)
            loop_stack.pop()
            return
        if isinstance(stmt, ast.If):
            self._walk_exprs([stmt.cond], loop_stack, under_if)
            inside_loop = len(loop_stack) > 0
            self._walk_stmt(stmt.then_stmt, loop_stack, under_if or inside_loop)
            if stmt.else_stmt is not None:
                self._walk_stmt(stmt.else_stmt, loop_stack, under_if or inside_loop)
            return
        if isinstance(stmt, ast.Block):
            for inner in stmt.stmts:
                self._walk_stmt(inner, loop_stack, under_if)
            return
        if isinstance(stmt, ast.DeclStmt):
            for decl in stmt.decls:
                if decl.init is not None:
                    self._walk_exprs([decl.init], loop_stack, under_if)
            return
        if isinstance(stmt, ast.ExprStmt):
            self._walk_exprs([stmt.expr], loop_stack, under_if)
            return
        if isinstance(stmt, ast.Return) and stmt.expr is not None:
            self._walk_exprs([stmt.expr], loop_stack, under_if)

    def _walk_exprs(self, exprs, loop_stack, under_if: bool,
                    in_loop_header: bool = False) -> None:
        for expr in exprs:
            if expr is None:
                continue
            self._walk_expr(expr, loop_stack, under_if or in_loop_header)

    def _walk_expr(self, node: ast.Expr, loop_stack, under_if: bool) -> None:
        if isinstance(node, (ast.Index, ast.Member)) or (
            isinstance(node, ast.Unary) and node.op == "*"
        ):
            if self._is_memory_ref(node):
                self._classify_ref(node, loop_stack, under_if)
        # Ternary arms and short-circuit right-hand sides execute
        # data-dependently, exactly like an if branch.
        inside_loop = len(loop_stack) > 0
        if isinstance(node, ast.Ternary):
            self._walk_expr(node.cond, loop_stack, under_if)
            self._walk_expr(node.then_expr, loop_stack, under_if or inside_loop)
            self._walk_expr(node.else_expr, loop_stack, under_if or inside_loop)
            return
        if isinstance(node, ast.Binary) and node.op in ("&&", "||"):
            self._walk_expr(node.left, loop_stack, under_if)
            self._walk_expr(node.right, loop_stack, under_if or inside_loop)
            return
        for child in ast.children(node):
            if isinstance(child, ast.Expr):
                self._walk_expr(child, loop_stack, under_if)

    def _is_memory_ref(self, node: ast.Expr) -> bool:
        """Only scalar-typed accesses actually touch memory; intermediate
        subscripts of multi-dimensional arrays are address arithmetic."""
        return node.ctype is not None and node.ctype.is_scalar

    def _classify_ref(self, node: ast.Expr, loop_stack, under_if: bool) -> None:
        if self._analyzable(node, loop_stack, under_if):
            self.result.analyzable_refs.add(node.node_id)
        else:
            self.result.rejected_refs.add(node.node_id)

    def _analyzable(self, node: ast.Expr, loop_stack, under_if: bool) -> bool:
        if under_if:
            return False  # control-dependent access pattern
        if not isinstance(node, ast.Index):
            return False  # pointer dereference or struct member
        if any(info is not None and info.trip_count == 0
               for info in loop_stack):
            return False  # enclosed in a loop proven never to run
        # Static SPM techniques analyze loop nests locally: the index must
        # be affine over the *canonical* enclosing iterators; an irregular
        # outer loop is tolerated as long as the index does not depend on
        # it (its "iterator" cannot appear in the affine form anyway).
        iterators = {info.iterator for info in loop_stack if info is not None}
        current: ast.Expr = node
        while isinstance(current, ast.Index):
            if affine_terms(current.index, iterators) is None:
                return False
            current = current.base
        if not isinstance(current, ast.Identifier):
            return False
        symbol = current.symbol
        return isinstance(symbol, Symbol) and symbol.ctype.is_array


def _may_exit_functions(program: ast.Program) -> set[str]:
    """Names of functions that can reach the ``exit()`` builtin."""
    direct: dict[str, set[str]] = {}
    out: set[str] = set()
    for fn in program.functions:
        calls: set[str] = set()
        for node in ast.walk(fn.body):
            if isinstance(node, ast.Call):
                if node.is_builtin:
                    if node.name == "exit":
                        out.add(fn.name)
                else:
                    calls.add(node.name)
        direct[fn.name] = calls
    changed = True
    while changed:
        changed = False
        for name, calls in direct.items():
            if name not in out and calls & out:
                out.add(name)
                changed = True
    return out


def detect(program: ast.Program) -> StaticAnalysisResult:
    """Run the static baseline over an analyzed program."""
    return StaticForayDetector(program).run()
