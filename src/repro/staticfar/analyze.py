"""Compile-time FORAY extraction — the static twin of the dynamic pipeline.

:func:`analyze_static` walks a compiled program from ``main`` in program
order and computes, with zero simulation, the same per-reference records
the dynamic extractor derives from the trace: affine access functions
over loop iteration counters, exact footprints, execution counts and
loop-tree paths. The walk is a *mirror* of the dynamic machinery:

* the loop stack reproduces :class:`repro.foray.looptree.LoopTreeBuilder`
  checkpoint semantics exactly, including the lazy pop of finished loops
  (an access textually after an inner loop is attributed to that loop's
  *closed* node, with its iterator dimension stuck at ``trip - 1``);
* global addresses come from :func:`repro.staticfar.layout.global_layout`
  and frame addresses from a replica of the engines' downward stack
  allocator, so the constant terms are real byte addresses;
* affine coefficients follow Algorithm 3's solved-coefficient rules: a
  dimension whose counter never changes between consecutive accesses of
  a reference stays UNKNOWN (``None``), every other dimension solves to
  ``elem_size · c · step``.

Everything the walker cannot prove is recorded as a
:class:`~repro.staticfar.model.StaticRefusal` — never guessed at — which
is what makes the static-vs-dynamic differential oracle sound.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Union

from repro.foray.extractor import TraceStats
from repro.foray.filters import FilterConfig
from repro.foray.model import AffineExpression, ForayLoop, ForayReference
from repro.lang import ast_nodes as ast
from repro.lang.ctypes_ import ArrayType, StructType
from repro.lang.semantics import Symbol
from repro.sim.memory import STACK_TOP
from repro.sim.trace import load_pc, store_pc
from repro.staticfar.detector import (
    CanonicalLoopInfo,
    StaticAnalysisResult,
    _const_value,
    detect,
)
from repro.staticfar.layout import global_layout
from repro.staticfar.model import StaticForayModel, StaticRefusal

#: Builtins that emit no trace records and touch no modeled state.
SILENT_BUILTINS = frozenset({"abs", "labs", "rand", "srand", "exit",
                             "malloc", "free"})

#: Abort exact footprint enumeration beyond this many distinct addresses.
_ENUM_LIMIT = 1_000_000

#: An affine form: ``{None: const, symbol: coefficient, ...}``.
AffineForm = dict[Union[Symbol, None], int]

# Statement walk statuses.
_LIVE = "live"
_CONTINUED = "continued"  # unconditional break/continue hit
_RETURNED = "returned"
_EXITED = "exited"


@dataclass
class _FnSummary:
    has_loop: bool = False
    may_exit: bool = False
    recursive: bool = False


@dataclass
class _StaticRef:
    """Accumulator for one modeled (loop node, pc) reference."""

    pc: int
    expression: AffineExpression
    addresses: frozenset[int]
    access_size: int
    exec_count: int = 0
    reads: int = 0
    writes: int = 0
    dead: bool = False


@dataclass
class _MirrorNode:
    """Static twin of :class:`repro.foray.looptree.LoopNode`."""

    begin_id: int
    kind: str
    ast_node_id: int
    parent: "_MirrorNode | None"
    depth: int
    uid: int
    info: CanonicalLoopInfo | None = None
    sound: bool = True
    trip: int = 0
    entries: int = 0
    total_iterations: int = 0
    children: "dict[int, _MirrorNode]" = field(default_factory=dict)
    refs: dict[int, _StaticRef] = field(default_factory=dict)

    @property
    def is_root(self) -> bool:
        return self.parent is None

    def path_from_root(self) -> "tuple[_MirrorNode, ...]":
        path: list[_MirrorNode] = []
        node: _MirrorNode | None = self
        while node is not None and not node.is_root:
            path.append(node)
            node = node.parent
        path.reverse()
        return tuple(path)

    def iter_subtree(self) -> "Iterable[_MirrorNode]":
        yield self
        for child in self.children.values():
            yield from child.iter_subtree()


@dataclass
class _Frame:
    """One walked call instance (register env + frame memory layout)."""

    fn: str
    #: Register-int affine forms over *live* iterator symbols.
    env: dict[Symbol, AffineForm] = field(default_factory=dict)
    #: Frame addresses of in-memory locals/params of this instance.
    mem_addrs: dict[Symbol, int] = field(default_factory=dict)
    #: Open canonical loops belonging to this function instance.
    open_loops: int = 0


class _Refuse(Exception):
    """Internal: abort modeling one reference with a reason."""

    def __init__(self, reason: str, detail: str = ""):
        super().__init__(reason)
        self.reason = reason
        self.detail = detail


class StaticAnalyzer:
    """Single-use walker; see :func:`analyze_static`."""

    def __init__(self, program: ast.Program, filter_config: FilterConfig,
                 detector_result: StaticAnalysisResult | None = None):
        self.program = program
        self.filter = filter_config
        self.detector = detector_result or detect(program)
        self.layout = global_layout(program)
        self.summaries = _summarize_functions(program)

        #: Functions reachable both from modeled (unconditional) call
        #: sites and from conditional regions. Their total activation
        #: counts are input-dependent, so modeling them from the
        #: unconditional sites alone would understate every statistic;
        #: :meth:`run` demotes them and re-walks (see there).
        self._tainted_fns: set[str] = set()
        self._reset()

    def _reset(self) -> None:
        """(Re)initialize all per-walk mutable state."""
        self.root = _MirrorNode(begin_id=0, kind="root", ast_node_id=-1,
                                parent=None, depth=0, uid=0)
        self.stack: list[list[object]] = [[self.root, True]]
        self._next_uid = 1
        #: All open canonical loops on the stack, keyed by iterator symbol.
        self.live_iters: dict[Symbol, _MirrorNode] = {}
        self.frames: list[_Frame] = []
        self.count = 1
        #: True while the identity of the attribution node is data-dependent
        #: (a conditional branch may have left loop nodes on the dynamic
        #: stack). Cleared by the next unconditional checkpoint.
        self.poisoned = False
        #: Simulated stack pointer (the engines' downward bump allocator).
        self.sp = STACK_TOP
        self.sp_exact = True

        self.refusals: dict[int, StaticRefusal] = {}
        self.executed: dict[int, str] = {}
        self.model_complete = True
        self.stats_exact = True
        self._scanned: set[tuple[str, str]] = set()
        #: Functions modeled through an unconditional call this walk.
        self._modeled_fns: set[str] = set()
        #: Functions reached (transitively) from a scanned region.
        self._cond_called: set[str] = set()

    # ------------------------------------------------------------------
    # entry point
    # ------------------------------------------------------------------

    def run(self, entry: str = "main") -> StaticForayModel:
        if not self.program.has_function(entry):
            raise ValueError(f"no entry function {entry!r}")
        while True:
            fn = self.program.function(entry)
            frame = _Frame(fn=entry)
            self.frames.append(frame)
            self._bind_params(fn, [], frame)
            status, taint = self._walk_stmt(fn.body, (entry,))
            if taint - {"loop", "fn"}:
                # A conditional exit() may have cut the run short anywhere.
                self.stats_exact = False
            self.frames.pop()
            # A function reached from a modeled call site AND a scanned
            # (conditional) region executes more often than the modeled
            # sites alone can account for — by an input-dependent
            # amount. Modeling it would understate every statistic, so
            # demote it and walk again: its call sites now scan, its
            # references join the contextual-refusal set, and the
            # dynamic extraction keeps sole custody of its counts.
            # Iterated to a fixpoint because each demotion can expose
            # new conditionally-reached callees.
            newly_tainted = (self._modeled_fns & self._cond_called
                             - self._tainted_fns)
            if not newly_tainted:
                return self._finish()
            self._tainted_fns |= newly_tainted
            self._reset()

    # ------------------------------------------------------------------
    # function summaries / helpers
    # ------------------------------------------------------------------

    @property
    def frame(self) -> _Frame:
        return self.frames[-1]

    def _note_refusal(self, node_id: int, reason: str, detail: str = "",
                      provable: bool = False) -> None:
        if node_id not in self.refusals:
            self.refusals[node_id] = StaticRefusal(node_id, reason, detail,
                                                   provably_filtered=provable)
        if not provable:
            self.model_complete = False
        self.stats_exact = False

    def _provably_filtered(self, expr: ast.Expr) -> bool:
        """True when no solver outcome for this node survives the filter.

        A reference whose address is a single compile-time constant has
        footprint 1 and solves every varying dimension's coefficient to 0,
        so ``require_iterator`` (or any ``nloc > 1``) provably drops it.
        """
        if not (self.filter.require_iterator or self.filter.nloc > 1):
            return False
        return self._const_address(expr)

    def _const_address(self, expr: ast.Expr) -> bool:
        node: ast.Expr = expr
        while True:
            if isinstance(node, ast.Index):
                if _const_value(node.index) is None:
                    return False
                node = node.base
            elif isinstance(node, ast.Member):
                if node.is_arrow:
                    return False
                node = node.base
            elif isinstance(node, ast.Identifier):
                symbol = node.symbol
                return isinstance(symbol, Symbol) and symbol.storage == "global"
            else:
                return False

    # ------------------------------------------------------------------
    # expression algebra over the register environment
    # ------------------------------------------------------------------

    def _affine(self, expr: ast.Expr, frame: _Frame) -> AffineForm | None:
        """``expr`` as const + Σ c·iter over live iterators, or None.

        Unlike the detector's source-level ``affine_terms``, this resolves
        register scalars through the environment, which propagates
        constants and caller-iterator affine forms through parameters —
        the interprocedural reach the dynamic extractor gets for free.
        """
        value = _const_value(expr)
        if value is not None:
            return {None: value}
        if isinstance(expr, ast.Identifier):
            symbol = expr.symbol
            if not isinstance(symbol, Symbol):
                return None
            if symbol in self.live_iters:
                return {symbol: 1, None: 0}
            form = frame.env.get(symbol)
            return dict(form) if form is not None else None
        if isinstance(expr, ast.Unary) and expr.op in ("-", "+"):
            inner = self._affine(expr.operand, frame)
            if inner is None:
                return None
            if expr.op == "+":
                return inner
            return {key: -val for key, val in inner.items()}
        if isinstance(expr, ast.Binary):
            if expr.op in ("+", "-"):
                left = self._affine(expr.left, frame)
                right = self._affine(expr.right, frame)
                if left is None or right is None:
                    return None
                sign = 1 if expr.op == "+" else -1
                merged = dict(left)
                merged.setdefault(None, 0)
                for key, val in right.items():
                    merged[key] = merged.get(key, 0) + sign * val
                return merged
            if expr.op == "*":
                left = self._affine(expr.left, frame)
                right = self._affine(expr.right, frame)
                if left is None or right is None:
                    return None
                lconst = left.get(None, 0) if len(left) == 1 else None
                rconst = right.get(None, 0) if len(right) == 1 else None
                if rconst is not None:
                    return {k: v * rconst for k, v in left.items()}
                if lconst is not None:
                    return {k: v * lconst for k, v in right.items()}
                return None
            if expr.op in ("/", "<<", ">>", "%"):
                left = self._affine(expr.left, frame)
                right = self._affine(expr.right, frame)
                if (left is None or right is None or len(left) > 1
                        or len(right) > 1):
                    return None
                lc, rc = left.get(None, 0), right.get(None, 0)
                if expr.op == "<<":
                    return {None: lc << rc}
                if expr.op == ">>":
                    return {None: lc >> rc}
                if rc == 0:
                    return None
                if expr.op == "/":
                    q = abs(lc) // abs(rc)
                    return {None: q if (lc >= 0) == (rc >= 0) else -q}
                return {None: lc - rc * ((abs(lc) // abs(rc))
                                         if (lc >= 0) == (rc >= 0)
                                         else -(abs(lc) // abs(rc)))}
        return None

    def _fold(self, expr: ast.Expr, frame: _Frame) -> int | None:
        form = self._affine(expr, frame)
        if form is not None and len(form) == 1:
            return form.get(None, 0)
        return None

    def _invalidate_assigned(self, node: ast.Node, frame: _Frame) -> None:
        """Drop env bindings for every symbol assigned inside ``node``."""
        for sym in _assigned_symbols(node):
            frame.env.pop(sym, None)

    # ------------------------------------------------------------------
    # reference modeling
    # ------------------------------------------------------------------

    def _resolve_address(self, expr: ast.Expr,
                         frame: _Frame) -> tuple[int, dict[Symbol, int]]:
        """Byte address of an lvalue chain as (const, {iterator: bytes})."""
        offset = 0
        coeffs: dict[Symbol, int] = {}
        node: ast.Expr = expr
        while True:
            if isinstance(node, ast.Index):
                elem = node.ctype
                if elem is None:
                    raise _Refuse("non-affine-index", "untyped subscript")
                terms = self._affine(node.index, frame)
                if terms is None:
                    raise _Refuse("non-affine-index",
                                  "index not affine in live iterators")
                for sym, coeff in terms.items():
                    if sym is None:
                        offset += coeff * elem.size
                    else:
                        coeffs[sym] = coeffs.get(sym, 0) + coeff * elem.size
                node = node.base
            elif isinstance(node, ast.Member):
                if node.is_arrow:
                    raise _Refuse("pointer-dereference", "arrow member access")
                base_type = node.base.ctype
                if not isinstance(base_type, StructType):
                    raise _Refuse("pointer-dereference", "untyped member base")
                offset += base_type.member(node.name).offset
                node = node.base
            elif isinstance(node, ast.Identifier):
                symbol = node.symbol
                if not isinstance(symbol, Symbol):
                    raise _Refuse("non-affine-index", "unresolved symbol")
                if symbol.storage == "global":
                    return self.layout[symbol] + offset, coeffs
                base = frame.mem_addrs.get(symbol)
                if base is None:
                    raise _Refuse("stack-allocated",
                                  f"no static frame address for {symbol.name!r}")
                return base + offset, coeffs
            else:
                raise _Refuse("pointer-dereference",
                              f"unsupported base {type(node).__name__}")

    def _emit_ref(self, expr: ast.Expr, is_write: bool, frame: _Frame) -> None:
        """Model one memory access at ``expr`` (refusing when unsound)."""
        try:
            if self.poisoned:
                raise _Refuse("indeterminate-attribution",
                              "loop context depends on data")
            top, top_open = self.stack[-1]
            assert isinstance(top, _MirrorNode)
            if not top.sound:
                raise _Refuse("non-canonical-loop",
                              "attributed to a non-canonical loop context")
            base, coeffs = self._resolve_address(expr, frame)
            self._emit_resolved(expr.node_id, base, coeffs, is_write,
                                expr.ctype.size if expr.ctype else 1)
        except _Refuse as refusal:
            self._note_refusal(expr.node_id, refusal.reason, refusal.detail,
                               provable=self._provably_filtered(expr))

    def _emit_resolved(self, node_id: int, base: int,
                       coeffs: dict[Symbol, int], is_write: bool,
                       access_size: int) -> None:
        top = self.stack[-1][0]
        assert isinstance(top, _MirrorNode)
        # Constant term: real address at all-zero open iteration counters.
        const = base
        for sym, coeff in coeffs.items():
            node = self.live_iters.get(sym)
            if node is None:
                raise _Refuse("non-affine-index",
                              f"iterator {sym.name!r} not live")
            assert node.info is not None
            const += coeff * node.info.start
        # Dimensions, innermost (stack top) first, as the solver sees them.
        dims: list[int | None] = []
        enum: list[tuple[int, int]] = []  # (coefficient, trip) to enumerate
        for entry in reversed(self.stack[1:]):
            dim_node, dim_open = entry
            assert isinstance(dim_node, _MirrorNode)
            if not dim_open or dim_node.trip <= 1:
                # Never changes between consecutive accesses: the solver
                # keeps this coefficient UNKNOWN.
                dims.append(None)
                continue
            assert dim_node.info is not None
            coeff = coeffs.get(dim_node.info.iterator, 0) * dim_node.info.step
            dims.append(coeff)
            if coeff:
                enum.append((coeff, dim_node.trip))
        addresses = {const}
        for coeff, trip in enum:
            if len(addresses) * trip > _ENUM_LIMIT:
                raise _Refuse("footprint-too-large",
                              f"> {_ENUM_LIMIT} distinct addresses")
            addresses = {addr + coeff * k
                         for addr in addresses for k in range(trip)}
        pc = store_pc(node_id) if is_write else load_pc(node_id)
        expression = AffineExpression(const=const, coefficients=tuple(dims),
                                      num_iterators=len(dims))
        ref = top.refs.get(pc)
        if ref is None:
            ref = _StaticRef(pc=pc, expression=expression,
                             addresses=frozenset(addresses),
                             access_size=access_size)
            top.refs[pc] = ref
        elif ref.dead:
            return
        elif ref.expression != expression:
            # Same reference, different address pattern across call
            # instances (distinct frame bases): the dynamic solver would
            # patch its constant term; we refuse rather than mis-model.
            ref.dead = True
            self._note_refusal(node_id, "stack-allocated",
                               "frame address varies across call instances")
            return
        ref.exec_count += self.count
        if is_write:
            ref.writes += self.count
        else:
            ref.reads += self.count

    # ------------------------------------------------------------------
    # conditional / unsound region scanning
    # ------------------------------------------------------------------

    def _scan(self, node: ast.Node | None, reason: str,
              chain: tuple[str, ...]) -> None:
        """Record refusals for every access in a region we cannot model."""
        if node is None:
            return
        for sub in ast.walk(node):
            if isinstance(sub, ast.Loop):
                self.stats_exact = False
            elif isinstance(sub, ast.DeclStmt):
                for decl in sub.decls:
                    symbol = decl.symbol
                    if isinstance(symbol, Symbol) and symbol.in_memory:
                        self.sp_exact = False
                        self.stats_exact = False
                        if decl.init is not None:
                            for item in ast.walk(decl.init):
                                if isinstance(item, ast.Expr):
                                    self._note_refusal(item.node_id, reason,
                                                       "conditional init")
            elif isinstance(sub, ast.Expr) and _is_memory_ref(sub):
                self._note_refusal(sub.node_id, reason,
                                   provable=self._provably_filtered(sub))
            elif isinstance(sub, ast.Identifier):
                symbol = sub.symbol
                if (isinstance(symbol, Symbol) and symbol.in_memory
                        and symbol.ctype.is_scalar):
                    self._note_refusal(sub.node_id, reason,
                                       provable=self._provably_filtered(sub))
            if isinstance(sub, ast.Call):
                if sub.is_builtin:
                    if sub.name not in SILENT_BUILTINS:
                        self.stats_exact = False
                elif self.program.has_function(sub.name):
                    self._cond_called.add(sub.name)
                    if sub.name in chain:
                        self._note_refusal(sub.node_id, "recursion",
                                           f"cycle through {sub.name!r}")
                        continue
                    key = (sub.name, reason)
                    if key not in self._scanned:
                        self._scanned.add(key)
                        self._scan(self.program.function(sub.name).body,
                                   reason, chain + (sub.name,))

    def _escapes(self, node: ast.Node | None) -> set[str]:
        """Which escape kinds a conditionally-executed region can trigger."""
        out: set[str] = set()
        if node is None:
            return out
        stack: list[ast.Node] = [node]
        while stack:
            sub = stack.pop()
            if isinstance(sub, ast.Return):
                out.add("fn")
            elif isinstance(sub, (ast.Break, ast.Continue)):
                out.add("loop")
            elif isinstance(sub, ast.Call):
                if sub.is_builtin:
                    if sub.name == "exit":
                        out.add("exit")
                elif self.summaries.get(sub.name, _FnSummary()).may_exit:
                    out.add("exit")
            if isinstance(sub, ast.Loop):
                # breaks/continues inside a nested loop bind to it; returns
                # and exits still escape, so scan its subtree for those.
                for inner in ast.walk(sub):
                    if isinstance(inner, ast.Return):
                        out.add("fn")
                    elif isinstance(inner, ast.Call):
                        if inner.is_builtin:
                            if inner.name == "exit":
                                out.add("exit")
                        elif self.summaries.get(inner.name,
                                                _FnSummary()).may_exit:
                            out.add("exit")
                continue
            stack.extend(ast.children(sub))
        return out

    def _disturbs_stack(self, node: ast.Node | None) -> bool:
        """Could this region move the dynamic loop stack (enter loops)?"""
        if node is None:
            return False
        for sub in ast.walk(node):
            if isinstance(sub, ast.Loop):
                return True
            if (isinstance(sub, ast.Call) and not sub.is_builtin
                    and self.summaries.get(sub.name,
                                           _FnSummary()).has_loop):
                return True
        return False

    def _enter_conditional(self, node: ast.Node, reason: str,
                           chain: tuple[str, ...], frame: _Frame) -> set[str]:
        """Handle a region that may or may not execute."""
        self._scan(node, reason, chain)
        self._invalidate_assigned(node, frame)
        if self._disturbs_stack(node):
            self.poisoned = True
        return self._escapes(node)

    # ------------------------------------------------------------------
    # statement walk
    # ------------------------------------------------------------------

    def _walk_stmt(self, stmt: ast.Stmt,
                   chain: tuple[str, ...]) -> tuple[str, set[str]]:
        frame = self.frame
        if isinstance(stmt, ast.Block):
            return self._walk_block(stmt.stmts, chain)
        if isinstance(stmt, ast.DeclStmt):
            return self._walk_decl(stmt, chain)
        if isinstance(stmt, ast.ExprStmt):
            taint, exited = self._visit_expr(stmt.expr, chain)
            return (_EXITED if exited else _LIVE), taint
        if isinstance(stmt, ast.If):
            return self._walk_if(stmt, chain)
        if isinstance(stmt, ast.For):
            return self._walk_for(stmt, chain)
        if isinstance(stmt, (ast.While, ast.DoWhile)):
            return self._walk_irregular_loop(stmt, chain)
        if isinstance(stmt, ast.Return):
            taint: set[str] = set()
            if stmt.expr is not None:
                taint, exited = self._visit_expr(stmt.expr, chain)
                if exited:
                    return _EXITED, taint
            return _RETURNED, taint
        if isinstance(stmt, (ast.Break, ast.Continue)):
            return _CONTINUED, set()
        return _LIVE, set()  # EmptyStmt

    def _walk_block(self, stmts: list[ast.Stmt],
                    chain: tuple[str, ...]) -> tuple[str, set[str]]:
        frame = self.frame
        taint: set[str] = set()
        for stmt in stmts:
            if taint:
                # Everything after a conditional escape is conditionally
                # executed: scan, don't model.
                taint |= self._enter_conditional(stmt, "control-dependent",
                                                 chain, frame)
                continue
            status, t = self._walk_stmt(stmt, chain)
            taint |= t
            if status != _LIVE:
                return status, taint
        return _LIVE, taint

    def _walk_decl(self, stmt: ast.DeclStmt,
                   chain: tuple[str, ...]) -> tuple[str, set[str]]:
        frame = self.frame
        taint: set[str] = set()
        for decl in stmt.decls:
            symbol = decl.symbol
            if not isinstance(symbol, Symbol):
                continue
            if symbol.in_memory:
                if not self.sp_exact or frame.open_loops > 0:
                    # Per-iteration frame allocation (or an already
                    # indeterminate sp): give up on frame addresses for the
                    # rest of this instance.
                    self.sp_exact = False
                    self.stats_exact = False
                    if decl.init is not None:
                        # Initializer stores trace at the item nodes
                        # themselves (_init_object), not just at nested
                        # memory references: refuse them all.
                        for item in ast.walk(decl.init):
                            if isinstance(item, ast.Expr):
                                self._note_refusal(item.node_id,
                                                   "stack-allocated",
                                                   "indeterminate frame addr")
                        self._scan(decl.init, "stack-allocated", chain)
                    continue
                align = max(1, symbol.ctype.alignment)
                addr = (self.sp - max(1, symbol.ctype.size)) // align * align
                self.sp = addr
                frame.mem_addrs[symbol] = addr
                if decl.init is not None:
                    taint |= self._walk_init_object(addr, symbol.ctype,
                                                    decl.init, chain)
            else:
                if decl.init is not None:
                    t, exited = self._visit_expr(decl.init, chain)
                    taint |= t
                    if exited:
                        return _EXITED, taint
                    form = self._affine(decl.init, frame)
                else:
                    form = {None: 0}  # fresh registers read as zero
                if symbol.ctype.is_integer and form is not None:
                    frame.env[symbol] = form
                else:
                    frame.env.pop(symbol, None)
        return _LIVE, taint

    def _walk_init_object(self, addr: int, ctype, init: ast.Expr,
                          chain: tuple[str, ...]) -> set[str]:
        """Mirror ``Interpreter._init_object``: traced element stores."""
        taint: set[str] = set()
        if isinstance(init, ast.Call) and init.name == "__init_list__":
            if isinstance(ctype, ArrayType):
                element = ctype.element
                for index, item in enumerate(init.args[: ctype.length]):
                    taint |= self._walk_init_object(
                        addr + index * element.size, element, item, chain)
            elif isinstance(ctype, StructType):
                for item, member in zip(init.args, ctype.members):
                    taint |= self._walk_init_object(addr + member.offset,
                                                    member.ctype, item, chain)
            return taint
        if isinstance(init, ast.StringLiteral) and isinstance(ctype, ArrayType):
            return taint  # written untraced, like program load
        t, _ = self._visit_expr(init, chain)
        taint |= t
        try:
            self._emit_resolved(init.node_id, addr, {}, True,
                                ctype.size if ctype else 1)
        except _Refuse as refusal:
            self._note_refusal(init.node_id, refusal.reason, refusal.detail)
        return taint

    def _walk_if(self, stmt: ast.If,
                 chain: tuple[str, ...]) -> tuple[str, set[str]]:
        frame = self.frame
        taint, exited = self._visit_expr(stmt.cond, chain)
        if exited:
            return _EXITED, taint
        for branch in (stmt.then_stmt, stmt.else_stmt):
            if branch is not None:
                taint |= self._enter_conditional(branch, "control-dependent",
                                                 chain, frame)
        return _LIVE, taint

    def _loop_begin(self, stmt: ast.Loop) -> _MirrorNode:
        """Mirror of the LOOP_BEGIN checkpoint: lazy-pop then descend."""
        while len(self.stack) > 1 and not self.stack[-1][1]:
            self.stack.pop()
        parent = self.stack[-1][0]
        assert isinstance(parent, _MirrorNode)
        begin_id = stmt.begin_id
        assert begin_id is not None, "static analysis needs instrumentation"
        child = parent.children.get(begin_id)
        if child is None:
            child = _MirrorNode(begin_id=begin_id, kind=stmt.kind,
                                ast_node_id=stmt.node_id, parent=parent,
                                depth=parent.depth + 1, uid=self._next_uid)
            self._next_uid += 1
            parent.children[begin_id] = child
        child.entries += self.count
        self.stack.append([child, False])
        # An unconditional checkpoint resynchronizes attribution.
        self.poisoned = False
        self.executed.setdefault(stmt.node_id, stmt.kind)
        return child

    def _walk_for(self, stmt: ast.For,
                  chain: tuple[str, ...]) -> tuple[str, set[str]]:
        frame = self.frame
        info = self.detector.canonical_loops.get(stmt.node_id)
        child = self._loop_begin(stmt)
        escapes = self._escapes_function_level(stmt.body)
        if info is None or escapes or not child.sound:
            return self._give_up_loop(stmt, child, chain,
                                      "non-canonical-loop" if info is None
                                      else "early-exit-loop")
        child.sound = True
        child.info = info
        if child.trip and child.trip != info.trip_count:
            return self._give_up_loop(stmt, child, chain, "non-canonical-loop")
        child.trip = info.trip_count
        taint: set[str] = set()
        if stmt.init is not None:
            # Canonical inits are register-only: just update the env.
            status, t = self._walk_stmt(stmt.init, chain)
            taint |= t
        frame.env.pop(info.iterator, None)
        if info.trip_count > 0:
            child.total_iterations += self.count * info.trip_count
            # BODY_BEGIN: open; body walked once, symbolically.
            self.stack[-1][1] = True
            self.live_iters[info.iterator] = child
            self._invalidate_assigned(stmt.body, frame)
            saved_count = self.count
            self.count *= info.trip_count
            frame.open_loops += 1
            status, t = self._walk_stmt(stmt.body, chain)
            frame.open_loops -= 1
            self.count = saved_count
            assert status in (_LIVE, _CONTINUED), \
                "early function exit inside a sound loop"
            taint |= {k for k in t if k != "loop"}
            # BODY_END: pop trailing children, close; attribution is
            # deterministic again.
            while self.stack[-1][0] is not child:
                self.stack.pop()
            self.stack[-1][1] = False
            self.poisoned = False
            del self.live_iters[info.iterator]
            self._invalidate_assigned(stmt.body, frame)
        # Exit value of an assignment-form iterator is a known constant.
        if not _declares_iterator(stmt):
            frame.env[info.iterator] = {
                None: info.start + info.step * info.trip_count}
        return _LIVE, taint

    def _give_up_loop(self, stmt: ast.Loop, child: _MirrorNode,
                      chain: tuple[str, ...],
                      reason: str) -> tuple[str, set[str]]:
        frame = self.frame
        child.sound = False
        self.stats_exact = False
        parts: list[ast.Node | None] = [stmt.body]
        if isinstance(stmt, ast.For):
            parts = [stmt.init, stmt.cond, stmt.step, stmt.body]
        elif isinstance(stmt, (ast.While, ast.DoWhile)):
            parts = [stmt.cond, stmt.body]
        taint: set[str] = set()
        for part in parts:
            if part is not None:
                self._scan(part, reason, chain)
                self._invalidate_assigned(part, frame)
        if isinstance(stmt, ast.For) and stmt.init is not None:
            # the init also assigns (e.g. `i = 0`)
            self._invalidate_assigned(stmt.init, frame)
        escape = self._escapes(stmt.body) | self._escapes(
            stmt.cond if isinstance(stmt, (ast.While, ast.DoWhile, ast.For))
            else None)
        taint |= {k for k in escape if k != "loop"}
        # The loop node stays on the stack, closed: trailing accesses are
        # attributed to it, and _emit_ref refuses on `not child.sound`.
        return _LIVE, taint

    def _walk_irregular_loop(self, stmt: ast.Loop,
                             chain: tuple[str, ...]) -> tuple[str, set[str]]:
        child = self._loop_begin(stmt)
        return self._give_up_loop(stmt, child, chain, "non-canonical-loop")

    def _escapes_function_level(self, body: ast.Node) -> bool:
        """Does the body contain a return or a (possibly nested) exit?"""
        for sub in ast.walk(body):
            if isinstance(sub, ast.Return):
                return True
            if isinstance(sub, ast.Call):
                if sub.is_builtin and sub.name == "exit":
                    return True
                if (not sub.is_builtin
                        and self.summaries.get(sub.name,
                                               _FnSummary()).may_exit):
                    return True
        return False

    # ------------------------------------------------------------------
    # expression walk (mirrors the interpreter's evaluation order)
    # ------------------------------------------------------------------

    def _visit_expr(self, expr: ast.Expr | None,
                    chain: tuple[str, ...]) -> tuple[set[str], bool]:
        frame = self.frame
        taint: set[str] = set()
        if expr is None:
            return taint, False
        if isinstance(expr, (ast.IntLiteral, ast.FloatLiteral,
                             ast.StringLiteral, ast.SizeofType,
                             ast.SizeofExpr)):
            return taint, False
        if isinstance(expr, ast.Identifier):
            symbol = expr.symbol
            if (isinstance(symbol, Symbol) and symbol.in_memory
                    and symbol.ctype.is_scalar):
                self._emit_ref(expr, False, frame)
            return taint, False
        if isinstance(expr, ast.Unary):
            if expr.op == "&":
                return self._visit_lvalue_subexprs(expr.operand, chain)
            taint, exited = self._visit_expr(expr.operand, chain)
            if exited:
                return taint, True
            if expr.op == "*" and expr.ctype is not None \
                    and expr.ctype.is_scalar:
                self._emit_ref(expr, False, frame)
            return taint, False
        if isinstance(expr, ast.IncDec):
            taint, exited = self._visit_lvalue_subexprs(expr.operand, chain)
            if exited:
                return taint, True
            if self._lvalue_in_memory(expr.operand):
                self._emit_ref(expr.operand, False, frame)
                self._emit_ref(expr.operand, True, frame)
            else:
                self._update_register(expr.operand, expr, frame)
            return taint, False
        if isinstance(expr, ast.Binary):
            taint, exited = self._visit_expr(expr.left, chain)
            if exited:
                return taint, True
            if expr.op in ("&&", "||"):
                taint |= self._enter_conditional(expr.right, "short-circuit",
                                                 chain, frame)
                return taint, False
            t, exited = self._visit_expr(expr.right, chain)
            return taint | t, exited
        if isinstance(expr, ast.Assign):
            return self._visit_assign(expr, chain)
        if isinstance(expr, ast.Ternary):
            taint, exited = self._visit_expr(expr.cond, chain)
            if exited:
                return taint, True
            for arm in (expr.then_expr, expr.else_expr):
                taint |= self._enter_conditional(arm, "control-dependent",
                                                 chain, frame)
            return taint, False
        if isinstance(expr, ast.Call):
            return self._visit_call(expr, chain)
        if isinstance(expr, (ast.Index, ast.Member)):
            taint, exited = self._visit_lvalue_subexprs(expr, chain)
            if exited:
                return taint, True
            if expr.ctype is not None and expr.ctype.is_scalar:
                self._emit_ref(expr, False, frame)
            return taint, False
        if isinstance(expr, ast.Cast):
            return self._visit_expr(expr.operand, chain)
        return taint, False

    def _visit_lvalue_subexprs(self, expr: ast.Expr,
                               chain: tuple[str, ...]) -> tuple[set[str], bool]:
        """Evaluate an lvalue's address subexpressions (no final access)."""
        if isinstance(expr, ast.Index):
            taint, exited = self._visit_expr(expr.base, chain)
            if exited:
                return taint, True
            t, exited = self._visit_expr(expr.index, chain)
            return taint | t, exited
        if isinstance(expr, ast.Member):
            return self._visit_expr(expr.base, chain)
        if isinstance(expr, ast.Unary) and expr.op == "*":
            return self._visit_expr(expr.operand, chain)
        if isinstance(expr, ast.Identifier):
            return set(), False
        return self._visit_expr(expr, chain)

    def _lvalue_in_memory(self, target: ast.Expr) -> bool:
        if isinstance(target, ast.Identifier):
            symbol = target.symbol
            return isinstance(symbol, Symbol) and symbol.in_memory
        return True  # Index/Member/deref targets always touch memory

    def _update_register(self, target: ast.Expr, source: ast.Expr,
                         frame: _Frame) -> None:
        """Register lvalue mutated; refresh or drop its env binding."""
        if not isinstance(target, ast.Identifier):
            return
        symbol = target.symbol
        if not isinstance(symbol, Symbol):
            return
        if symbol in self.live_iters:
            return  # canonical-loop soundness already excludes this
        form: AffineForm | None = None
        if isinstance(source, ast.IncDec):
            old = frame.env.get(symbol)
            if old is not None:
                form = dict(old)
                form[None] = form.get(None, 0) + (1 if source.op == "++"
                                                  else -1)
        elif isinstance(source, ast.Assign):
            value_form = self._affine(source.value, frame)
            if source.op == "":
                form = value_form
            else:
                old = frame.env.get(symbol)
                if old is not None and value_form is not None:
                    form = _combine(old, source.op, value_form)
        if form is not None and symbol.ctype.is_integer:
            frame.env[symbol] = form
        else:
            frame.env.pop(symbol, None)

    def _visit_assign(self, expr: ast.Assign,
                      chain: tuple[str, ...]) -> tuple[set[str], bool]:
        frame = self.frame
        taint, exited = self._visit_lvalue_subexprs(expr.target, chain)
        if exited:
            return taint, True
        in_memory = self._lvalue_in_memory(expr.target)
        if expr.op and in_memory:
            self._emit_ref(expr.target, False, frame)  # compound load
        t, exited = self._visit_expr(expr.value, chain)
        taint |= t
        if exited:
            return taint, True
        if in_memory:
            self._emit_ref(expr.target, True, frame)
        else:
            self._update_register(expr.target, expr, frame)
        return taint, False

    def _visit_call(self, expr: ast.Call,
                    chain: tuple[str, ...]) -> tuple[set[str], bool]:
        frame = self.frame
        taint: set[str] = set()
        arg_forms: list[AffineForm | None] = []
        for arg in expr.args:
            t, exited = self._visit_expr(arg, chain)
            taint |= t
            if exited:
                return taint, True
            arg_forms.append(self._affine(arg, frame))
        if expr.is_builtin:
            if expr.name == "exit":
                return taint, True
            if expr.name not in SILENT_BUILTINS:
                self.stats_exact = False
            return taint, False
        if not self.program.has_function(expr.name):
            self.stats_exact = False
            return taint, False
        if expr.name in chain:
            self._note_refusal(expr.node_id, "recursion",
                               f"cycle through {expr.name!r}")
            summary = self.summaries.get(expr.name, _FnSummary())
            if summary.has_loop:
                self.poisoned = True
            self._scan(self.program.function(expr.name).body, "recursion",
                       chain + (expr.name,))
            return taint, False
        fn = self.program.function(expr.name)
        if expr.name in self._tainted_fns:
            # Also reachable from a conditional region: the function's
            # total activation count is input-dependent, so modeling
            # this call site would understate its statistics. Scan the
            # body instead (contextual refusals on every access). If the
            # callee begins loops, their checkpoints leave dynamic
            # attribution inside the callee's innermost loop after the
            # return — without the inline walk the mirror cannot follow,
            # so poison attribution until the next unconditional
            # checkpoint, exactly as for a skipped recursive call.
            self._note_refusal(expr.node_id, "control-dependent",
                               f"{expr.name!r} is also called "
                               "conditionally")
            summary = self.summaries.get(expr.name, _FnSummary())
            if summary.has_loop:
                self.poisoned = True
            self._scan(fn.body, "control-dependent", chain + (expr.name,))
            self._invalidate_assigned(fn.body, frame)
            if summary.may_exit:
                taint.add("exit")
            return taint, False
        self._modeled_fns.add(expr.name)
        saved_sp, saved_sp_exact = self.sp, self.sp_exact
        callee = _Frame(fn=expr.name)
        self._bind_params(fn, arg_forms, callee)
        self.frames.append(callee)
        status, t = self._walk_stmt(fn.body, chain + (expr.name,))
        self.frames.pop()
        self.sp, self.sp_exact = saved_sp, saved_sp_exact
        taint |= {k for k in t if k == "exit"}
        return taint, status == _EXITED

    def _bind_params(self, fn: ast.FunctionDef,
                     arg_forms: list[AffineForm | None],
                     frame: _Frame) -> None:
        for index, param in enumerate(fn.params):
            symbol = param.symbol
            if not isinstance(symbol, Symbol):
                continue
            if symbol.in_memory:
                # Parameter spills are written untraced at call entry.
                if self.sp_exact:
                    align = max(1, symbol.ctype.alignment)
                    addr = ((self.sp - max(1, symbol.ctype.size))
                            // align * align)
                    self.sp = addr
                    frame.mem_addrs[symbol] = addr
                continue
            form = arg_forms[index] if index < len(arg_forms) else None
            if form is not None and symbol.ctype.is_integer:
                frame.env[symbol] = form

    # ------------------------------------------------------------------
    # model construction (mirrors ForayExtractor.finish)
    # ------------------------------------------------------------------

    def _finish(self) -> StaticForayModel:
        foray_loops: dict[int, ForayLoop] = {}

        def loop_of(node: _MirrorNode) -> ForayLoop:
            cached = foray_loops.get(node.uid)
            if cached is None:
                cached = ForayLoop(
                    begin_id=node.begin_id,
                    kind=node.kind,
                    depth=node.depth,
                    max_trip=node.trip,
                    min_trip=node.trip,
                    entries=node.entries,
                    total_iterations=node.total_iterations,
                    uid=node.uid,
                    ast_node_id=node.ast_node_id,
                )
                foray_loops[node.uid] = cached
            return cached

        unfiltered: list[ForayReference] = []
        addresses_of: dict[int, frozenset[int]] = {}
        stats = TraceStats()
        for node in self.root.iter_subtree():
            if not node.sound:
                continue
            path = tuple(loop_of(a) for a in node.path_from_root())
            for ref in node.refs.values():
                if ref.dead:
                    continue
                reference = ForayReference(
                    pc=ref.pc,
                    loop_path=path,
                    expression=ref.expression,
                    exec_count=ref.exec_count,
                    footprint=len(ref.addresses),
                    reads=ref.reads,
                    writes=ref.writes,
                    mispredictions=0,
                    access_size=ref.access_size,
                )
                unfiltered.append(reference)
                addresses_of[id(reference)] = ref.addresses
                stats.total_accesses += ref.exec_count
                stats.user_accesses += ref.exec_count
                stats.user_refs.add((node.uid, ref.pc))
                stats.user_addresses.update(ref.addresses)

        references = self.filter.apply(unfiltered)
        captured: set[int] = set()
        captured_accesses = 0
        for reference in references:
            captured_accesses += reference.exec_count
            captured |= addresses_of[id(reference)]

        model_loops: dict[int, ForayLoop] = {}
        for reference in unfiltered:
            if reference.expression.includes_iterator():
                for loop in reference.loop_path:
                    model_loops[loop.uid] = loop

        histogram: dict[str, int] = {}
        for refusal in self.refusals.values():
            histogram[refusal.reason] = histogram.get(refusal.reason, 0) + 1

        return StaticForayModel(
            name="",
            references=references,
            unfiltered_references=unfiltered,
            loops=sorted(model_loops.values(), key=lambda lp: lp.uid),
            refusals=dict(self.refusals),
            executed_loops=dict(self.executed),
            trace_stats=stats,
            captured_accesses=captured_accesses,
            captured_footprint=len(captured),
            filter_config=self.filter,
            model_complete=self.model_complete,
            stats_exact=self.stats_exact,
            refusal_histogram=histogram,
        )


# ----------------------------------------------------------------------
# module helpers
# ----------------------------------------------------------------------


def _is_memory_ref(node: ast.Expr) -> bool:
    if not isinstance(node, (ast.Index, ast.Member, ast.Unary)):
        return False
    if isinstance(node, ast.Unary) and node.op != "*":
        return False
    return node.ctype is not None and node.ctype.is_scalar


def _assigned_symbols(node: ast.Node) -> set[Symbol]:
    out: set[Symbol] = set()
    for sub in ast.walk(node):
        target = None
        if isinstance(sub, ast.Assign):
            target = sub.target
        elif isinstance(sub, ast.IncDec):
            target = sub.operand
        elif isinstance(sub, ast.DeclStmt):
            for decl in sub.decls:
                if isinstance(decl.symbol, Symbol):
                    out.add(decl.symbol)
            continue
        if isinstance(target, ast.Identifier) and isinstance(target.symbol,
                                                             Symbol):
            out.add(target.symbol)
    return out


def _declares_iterator(stmt: ast.For) -> bool:
    return isinstance(stmt.init, ast.DeclStmt)


def _combine(old: AffineForm, op: str, value: AffineForm) -> AffineForm | None:
    if op == "+" or op == "-":
        sign = 1 if op == "+" else -1
        merged = dict(old)
        merged.setdefault(None, 0)
        for key, val in value.items():
            merged[key] = merged.get(key, 0) + sign * val
        return merged
    if op == "*" and len(value) == 1:
        factor = value.get(None, 0)
        return {k: v * factor for k, v in old.items()}
    return None


def _summarize_functions(program: ast.Program) -> dict[str, _FnSummary]:
    """Transitive has-loop / may-exit / recursion facts per function."""
    direct: dict[str, tuple[bool, bool, set[str]]] = {}
    for fn in program.functions:
        has_loop = False
        may_exit = False
        calls: set[str] = set()
        for sub in ast.walk(fn.body):
            if isinstance(sub, ast.Loop):
                has_loop = True
            elif isinstance(sub, ast.Call):
                if sub.is_builtin:
                    if sub.name == "exit":
                        may_exit = True
                else:
                    calls.add(sub.name)
        direct[fn.name] = (has_loop, may_exit, calls)

    summaries = {name: _FnSummary(has_loop=h, may_exit=e)
                 for name, (h, e, _) in direct.items()}
    changed = True
    while changed:
        changed = False
        for name, (_, _, calls) in direct.items():
            summary = summaries[name]
            for callee in calls:
                sub = summaries.get(callee)
                if sub is None:
                    continue
                if sub.has_loop and not summary.has_loop:
                    summary.has_loop = True
                    changed = True
                if sub.may_exit and not summary.may_exit:
                    summary.may_exit = True
                    changed = True

    # Recursion: any cycle in the call graph marks every participant.
    for name in direct:
        stack = [name]
        seen: set[str] = set()
        while stack:
            current = stack.pop()
            for callee in direct.get(current, (False, False, set()))[2]:
                if callee == name:
                    summaries[name].recursive = True
                    stack = []
                    break
                if callee not in seen:
                    seen.add(callee)
                    stack.append(callee)
    return summaries


def analyze_static(
    program: ast.Program,
    filter_config: FilterConfig | None = None,
    detector_result: StaticAnalysisResult | None = None,
    name: str = "",
    entry: str = "main",
) -> StaticForayModel:
    """Compute the compile-time FORAY model of an instrumented program."""
    analyzer = StaticAnalyzer(program, filter_config or FilterConfig(),
                              detector_result)
    model = analyzer.run(entry)
    model.name = name
    return model
