"""Inter-function optimization hints (paper Section 4, Figure 9).

The FORAY model has no function hierarchy — functions appear inlined
because loop-tree nodes are identified by their dynamic path. When the same
static memory reference (same pc) shows up under several loop-tree
contexts, the enclosing function was called from several places; if the
access patterns differ between the contexts, the paper suggests duplicating
(specializing) the function so each call site can be optimized separately.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.foray.model import ForayModel, ForayReference
from repro.lang import ast_nodes as ast
from repro.sim.trace import node_id_of_pc


@dataclass(frozen=True)
class InliningHint:
    """One pc observed in several dynamic contexts."""

    pc: int
    function_name: str | None
    contexts: tuple[ForayReference, ...]
    #: True when the contexts disagree on coefficients or constants —
    #: the case where duplicating the function helps (Figure 9).
    patterns_differ: bool

    @property
    def context_count(self) -> int:
        return len(self.contexts)

    def describe(self) -> str:
        where = f"function {self.function_name!r}" if self.function_name else "code"
        verdict = (
            "access patterns differ between call contexts; consider "
            "duplicating the function so each context can be optimized "
            "separately"
            if self.patterns_differ
            else "access patterns agree; a single optimized version suffices"
        )
        return (
            f"reference {self.contexts[0].array_name} in {where} appears in "
            f"{self.context_count} contexts: {verdict}"
        )


def _pattern_signature(reference: ForayReference):
    expr = reference.expression
    return (expr.used_coefficients(), expr.const, expr.num_iterators,
            tuple(loop.max_trip for loop in reference.effective_loops))


def function_of_node(program: ast.Program, node_id: int) -> str | None:
    """Name of the function whose body contains AST node ``node_id``."""
    for fn in program.functions:
        for node in ast.walk(fn):
            if isinstance(node, ast.Node) and node.node_id == node_id:
                return fn.name
    return None


def inlining_hints(
    model: ForayModel,
    program: ast.Program | None = None,
    include_filtered_out: bool = True,
) -> list[InliningHint]:
    """Compute inlining/duplication hints for a FORAY model.

    ``include_filtered_out`` also considers analyzable references that the
    step-4 purge removed — a reference can be uninteresting in one context
    but interesting in another, and the hint is about the function, not one
    context.
    """
    pool = (
        model.unfiltered_references if include_filtered_out else model.references
    )
    by_pc: dict[int, list[ForayReference]] = {}
    for reference in pool:
        by_pc.setdefault(reference.pc, []).append(reference)

    hints: list[InliningHint] = []
    for pc, contexts in sorted(by_pc.items()):
        if len(contexts) < 2:
            continue
        signatures = {_pattern_signature(ref) for ref in contexts}
        name = None
        if program is not None:
            name = function_of_node(program, node_id_of_pc(pc))
        hints.append(
            InliningHint(
                pc=pc,
                function_name=name,
                contexts=tuple(contexts),
                patterns_differ=len(signatures) > 1,
            )
        )
    return hints
