"""Validation of a FORAY model against a (possibly different) trace.

The paper's future work asks how dependent the FORAY model is on the
profiling input. This module answers it operationally: replay any trace
against an extracted model and measure, per reference, how many accesses
the model's affine expression predicts exactly.

* Full references are predicted from the expression alone.
* Partial references are allowed to re-base their constant whenever an
  iterator outside the expression (or a context re-entry) changes — the
  semantics the paper gives them — and are scored on the accesses in
  between.

Typical use::

    model = extract_foray_model(source).model           # profile input A
    report = validate_model(model, records_b, cmap)     # replay input B
    assert report.overall_accuracy > 0.95
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.foray.looptree import LoopTreeBuilder
from repro.foray.model import ForayModel, ForayReference
from repro.sim.trace import Access, CheckpointMap, TraceRecord, is_library_pc


@dataclass
class ReferenceValidation:
    """Prediction accuracy of one model reference on one trace."""

    reference: ForayReference
    checked: int = 0
    predicted: int = 0

    @property
    def accuracy(self) -> float:
        return self.predicted / self.checked if self.checked else 1.0


@dataclass
class ValidationReport:
    per_reference: list[ReferenceValidation] = field(default_factory=list)
    #: Model references never exercised by the replayed trace.
    unexercised: int = 0

    @property
    def total_checked(self) -> int:
        return sum(v.checked for v in self.per_reference)

    @property
    def total_predicted(self) -> int:
        return sum(v.predicted for v in self.per_reference)

    @property
    def overall_accuracy(self) -> float:
        checked = self.total_checked
        return self.total_predicted / checked if checked else 1.0

    def summary(self) -> str:
        return (
            f"{self.total_predicted}/{self.total_checked} accesses predicted "
            f"({self.overall_accuracy:.1%}) across "
            f"{len(self.per_reference)} references; "
            f"{self.unexercised} unexercised"
        )


class _RefState:
    __slots__ = ("validation", "expression", "rebase", "offset", "anchor_iters")

    def __init__(self, validation: ReferenceValidation):
        self.validation = validation
        self.expression = validation.reference.expression
        #: Partial expressions may re-anchor their constant per context.
        self.rebase = not validation.reference.is_full
        self.offset: int | None = None
        self.anchor_iters: tuple[int, ...] | None = None


def validate_model(
    model: ForayModel,
    records: Iterable[TraceRecord],
    checkpoint_map: CheckpointMap,
) -> ValidationReport:
    """Replay ``records`` and score every model reference's predictions.

    References are matched by (loop-begin-id path, pc), which is stable
    across runs of the same instrumented program.
    """
    report = ValidationReport()
    states: dict[tuple[tuple[int, ...], int], _RefState] = {}
    for reference in model.references:
        validation = ReferenceValidation(reference)
        report.per_reference.append(validation)
        path_key = tuple(loop.begin_id for loop in reference.loop_path)
        states[(path_key, reference.pc)] = _RefState(validation)

    builder = LoopTreeBuilder(checkpoint_map)
    for record in records:
        if not isinstance(record, Access):
            builder.on_checkpoint(record)
            continue
        if is_library_pc(record.pc):
            continue
        node = builder.current
        path_key = tuple(n.begin_id for n in node.path_from_root())
        state = states.get((path_key, record.pc))
        if state is None:
            continue
        _score_access(state, record.addr, builder.current_iterators())

    report.unexercised = sum(
        1 for validation in report.per_reference if validation.checked == 0
    )
    return report


def _score_access(state: _RefState, addr: int, iterators: tuple[int, ...]) -> None:
    expression = state.expression
    m = expression.num_iterators
    inner = iterators[:m]
    inner_part = sum(
        coefficient * value
        for coefficient, value in zip(expression.used_coefficients(), inner)
    )
    if state.rebase:
        outer = iterators[m:]
        if state.offset is None or state.anchor_iters != outer:
            # New outer context: re-anchor the constant (partial affine
            # semantics) and do not score this access.
            state.offset = addr - inner_part
            state.anchor_iters = outer
            return
        predicted = state.offset + inner_part
    else:
        predicted = expression.const + inner_part

    state.validation.checked += 1
    if predicted == addr:
        state.validation.predicted += 1
