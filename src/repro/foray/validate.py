"""Validation of a FORAY model against a (possibly different) trace.

The paper's future work asks how dependent the FORAY model is on the
profiling input. This module answers it operationally: replay any trace
against an extracted model and measure, per reference, how many accesses
the model's affine expression predicts exactly.

* Full references are predicted from the expression alone.
* Partial references are allowed to re-base their constant whenever an
  iterator outside the expression (or a context re-entry) changes — the
  semantics the paper gives them — and are scored on the accesses in
  between.

:class:`ValidationSink` implements the engines' batched trace-sink
protocol, so a replay can be scored *online* while the program runs —
the replayed trace is never materialized. The ``validate`` pipeline
stage (:mod:`repro.pipeline`) drives it over a workload's whole input
scenario matrix; :func:`validate_model` is the classic offline entry
point for stored record streams.

Typical use::

    model = extract_foray_model(source).model           # profile input A
    report = validate_model(model, records_b, cmap)     # replay input B
    assert report.overall_accuracy > 0.95

or, streaming (what the pipeline's ``validate`` stage does)::

    sink = ValidationSink(model, compiled.checkpoint_map)
    run_compiled(compiled, sinks=(sink,), config=scenario_config)
    report = sink.finish()
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Iterable

from repro.foray.looptree import LoopTreeBuilder
from repro.foray.model import ForayModel, ForayReference
from repro.sim.trace import (
    LIB_PC_BASE,
    Access,
    CheckpointMap,
    ColumnBlock,
    TraceRecord,
    is_library_pc,
)


@dataclass
class ReferenceValidation:
    """Prediction accuracy of one model reference on one trace."""

    reference: ForayReference
    checked: int = 0
    predicted: int = 0

    @property
    def exercised(self) -> bool:
        """Whether the replayed trace reached this reference at all."""
        return self.checked > 0

    @property
    def accuracy(self) -> float:
        """Fraction of scored accesses predicted exactly.

        A reference the replayed trace never exercised scores 0.0 — it
        demonstrated nothing, so it must not read as perfectly predicted
        (it is also excluded from :attr:`ValidationReport.overall_accuracy`,
        which only aggregates scored accesses).
        """
        return self.predicted / self.checked if self.checked else 0.0


@dataclass
class ValidationReport:
    per_reference: list[ReferenceValidation] = field(default_factory=list)
    #: Model references never exercised by the replayed trace.
    unexercised: int = 0

    @property
    def total_checked(self) -> int:
        return sum(v.checked for v in self.per_reference)

    @property
    def total_predicted(self) -> int:
        return sum(v.predicted for v in self.per_reference)

    @property
    def overall_accuracy(self) -> float:
        checked = self.total_checked
        return self.total_predicted / checked if checked else 1.0

    @property
    def full_accuracy(self) -> float:
        """Accuracy over the model's *full* references only (the paper's
        strongest claim: one constant predicts every access)."""
        checked = predicted = 0
        for validation in self.per_reference:
            if validation.reference.is_full:
                checked += validation.checked
                predicted += validation.predicted
        return predicted / checked if checked else 1.0

    @property
    def unexercised_share(self) -> float:
        """Fraction of model references the replay never exercised."""
        if not self.per_reference:
            return 0.0
        return self.unexercised / len(self.per_reference)

    def exercised_references(self) -> list[ReferenceValidation]:
        return [v for v in self.per_reference if v.exercised]

    def worst_reference(self) -> ReferenceValidation | None:
        """The exercised reference with the lowest accuracy (None when
        nothing was exercised)."""
        exercised = self.exercised_references()
        if not exercised:
            return None
        return min(exercised, key=lambda v: v.accuracy)

    def summary(self) -> str:
        return (
            f"{self.total_predicted}/{self.total_checked} accesses predicted "
            f"({self.overall_accuracy:.1%}) across "
            f"{len(self.per_reference)} references; "
            f"{self.unexercised} unexercised "
            f"({self.unexercised_share:.0%} of references)"
        )

    def fingerprint(self) -> str:
        """Stable content hash of the scored outcome.

        Validation reports are persisted in the disk artifact store and
        replayed across processes; the fingerprint lets incremental runs
        assert that a disk-served report is *identical* to a recomputed
        one (per-reference identity, counts and exercised state), without
        comparing whole object graphs.
        """
        digest = hashlib.sha256()
        for validation in self.per_reference:
            reference = validation.reference
            path = ",".join(
                str(loop.begin_id) for loop in reference.loop_path
            )
            digest.update(
                f"{reference.pc}@{path}:{validation.checked}:"
                f"{validation.predicted};".encode()
            )
        digest.update(str(self.unexercised).encode())
        return digest.hexdigest()


class _RefState:
    __slots__ = ("validation", "expression", "rebase", "offset", "anchor_iters")

    def __init__(self, validation: ReferenceValidation):
        self.validation = validation
        self.expression = validation.reference.expression
        #: Partial expressions may re-anchor their constant per context.
        self.rebase = not validation.reference.is_full
        self.offset: int | None = None
        self.anchor_iters: tuple[int, ...] | None = None


class ValidationSink:
    """A trace sink that scores a model online while an engine runs.

    Implements both entry points of the sink protocol: the per-record
    :meth:`emit` (stored-trace replay) and the batched :meth:`emit_block`
    hot path (attach directly to a simulation via
    ``run_compiled(..., sinks=(sink,))``). References are matched by
    (loop-begin-id path, pc), which is stable across runs — and across
    input scenarios, whose sources share one AST skeleton by construction.
    """

    def __init__(self, model: ForayModel, checkpoint_map: CheckpointMap):
        self._report = ValidationReport()
        self._states: dict[tuple[tuple[int, ...], int], _RefState] = {}
        for reference in model.references:
            validation = ReferenceValidation(reference)
            self._report.per_reference.append(validation)
            path_key = tuple(loop.begin_id for loop in reference.loop_path)
            self._states[(path_key, reference.pc)] = _RefState(validation)
        self._builder = LoopTreeBuilder(checkpoint_map)

    def emit(self, record: TraceRecord) -> None:
        if isinstance(record, Access):
            if not is_library_pc(record.pc):
                self._score_at_current(record.pc, record.addr)
        else:
            self._builder.on_checkpoint(record)

    def emit_block(self, accesses, checkpoints) -> None:
        # Mirrors the extractor's batched loop: the loop position (and so
        # the path key and iterator vector) only changes at checkpoints,
        # so both are recomputed per checkpoint run, not per access.
        builder = self._builder
        states = self._states
        on_checkpoint = builder.on_checkpoint_code
        ci = 0
        ncp = len(checkpoints)
        path_key = tuple(
            n.begin_id for n in builder.current.path_from_root()
        )
        iterators = builder.current_iterators()
        for i, (pc, addr, _size, _is_write) in enumerate(accesses):
            if ci < ncp and checkpoints[ci][0] <= i:
                while ci < ncp and checkpoints[ci][0] <= i:
                    entry = checkpoints[ci]
                    ci += 1
                    on_checkpoint(entry[1], entry[2])
                path_key = tuple(
                    n.begin_id for n in builder.current.path_from_root()
                )
                iterators = builder.current_iterators()
            if pc >= LIB_PC_BASE:
                continue
            state = states.get((path_key, pc))
            if state is not None:
                _score_access(state, addr, iterators)
        while ci < ncp:
            entry = checkpoints[ci]
            ci += 1
            on_checkpoint(entry[1], entry[2])

    def emit_columns(self, block: ColumnBlock) -> None:
        """Columnar sink entry point: same per-segment recomputation as
        :meth:`emit_block`, walking the block's plain-list views (sizes
        and write flags are never consulted by scoring)."""
        checkpoints = block.checkpoints
        builder = self._builder
        states = self._states
        on_checkpoint = builder.on_checkpoint_code
        ci = 0
        ncp = len(checkpoints)
        if block.n:
            pcs, addrs, _sizes, _writes = block.lists()
            path_key = tuple(
                node.begin_id for node in builder.current.path_from_root()
            )
            iterators = builder.current_iterators()
            for i, pc in enumerate(pcs):
                if ci < ncp and checkpoints[ci][0] <= i:
                    while ci < ncp and checkpoints[ci][0] <= i:
                        entry = checkpoints[ci]
                        ci += 1
                        on_checkpoint(entry[1], entry[2])
                    path_key = tuple(
                        node.begin_id
                        for node in builder.current.path_from_root()
                    )
                    iterators = builder.current_iterators()
                if pc >= LIB_PC_BASE:
                    continue
                state = states.get((path_key, pc))
                if state is not None:
                    _score_access(state, addrs[i], iterators)
        while ci < ncp:
            entry = checkpoints[ci]
            ci += 1
            on_checkpoint(entry[1], entry[2])

    def _score_at_current(self, pc: int, addr: int) -> None:
        node = self._builder.current
        path_key = tuple(n.begin_id for n in node.path_from_root())
        state = self._states.get((path_key, pc))
        if state is not None:
            _score_access(state, addr, self._builder.current_iterators())

    def finish(self) -> ValidationReport:
        self._report.unexercised = sum(
            1 for validation in self._report.per_reference
            if not validation.exercised
        )
        return self._report


def validate_model(
    model: ForayModel,
    records: Iterable[TraceRecord],
    checkpoint_map: CheckpointMap,
) -> ValidationReport:
    """Replay stored ``records`` and score every model reference."""
    sink = ValidationSink(model, checkpoint_map)
    for record in records:
        sink.emit(record)
    return sink.finish()


def _score_access(state: _RefState, addr: int, iterators: tuple[int, ...]) -> None:
    expression = state.expression
    m = expression.num_iterators
    if len(iterators) < m:
        # The replayed nest is shallower than the expression (e.g. a
        # truncated or foreign trace): the prediction is undefined, so
        # score a misprediction instead of zip-truncating the iterator
        # vector into a garbage match.
        state.validation.checked += 1
        return
    inner = iterators[:m]
    inner_part = sum(
        coefficient * value
        for coefficient, value in zip(expression.used_coefficients(), inner)
    )
    if state.rebase:
        outer = iterators[m:]
        if state.offset is None or state.anchor_iters != outer:
            # New outer context: re-anchor the constant (partial affine
            # semantics) and do not score this access.
            state.offset = addr - inner_part
            state.anchor_iters = outer
            return
        predicted = state.offset + inner_part
    else:
        predicted = expression.const + inner_part

    state.validation.checked += 1
    if predicted == addr:
        state.validation.predicted += 1


@dataclass(frozen=True)
class ScenarioValidation:
    """One cell of the scenario matrix: a model extracted on
    ``profile`` replayed against ``scenario``'s trace."""

    workload: str
    scenario: str
    profile: str
    engine: str
    report: ValidationReport


@dataclass(frozen=True)
class WorkloadValidation:
    """Cross-input stability of one workload's model over its matrix."""

    workload: str
    profile: str
    scenario_count: int
    #: The profile scenario replayed against its own model (sanity row:
    #: full references must score 100% here).
    self_validation: ValidationReport
    #: Every other scenario replayed against the profile model.
    cross: tuple[ScenarioValidation, ...]

    @property
    def min_accuracy(self) -> float:
        return min(
            (cell.report.overall_accuracy for cell in self.cross), default=1.0
        )

    @property
    def mean_accuracy(self) -> float:
        if not self.cross:
            return 1.0
        return sum(
            cell.report.overall_accuracy for cell in self.cross
        ) / len(self.cross)

    @property
    def max_unexercised(self) -> int:
        return max((cell.report.unexercised for cell in self.cross), default=0)

    def worst_reference(self) -> tuple[str, ReferenceValidation] | None:
        """(scenario, reference validation) of the least-predictable
        exercised reference across all cross-input replays."""
        worst: tuple[str, ReferenceValidation] | None = None
        for cell in self.cross:
            candidate = cell.report.worst_reference()
            if candidate is None:
                continue
            if worst is None or candidate.accuracy < worst[1].accuracy:
                worst = (cell.scenario, candidate)
        return worst

    def passes(self, threshold: float = 0.0) -> bool:
        """The CI gate: full references must self-validate perfectly and
        every cross-input replay must clear the accuracy threshold.

        A replay that scored nothing (``total_checked == 0``) demonstrated
        nothing — its vacuous 100% overall accuracy must not satisfy the
        gate, so such cells (self-validation included) fail it outright.
        """
        return (
            self.self_validation.full_accuracy == 1.0
            and self.self_validation.total_checked > 0
            and all(cell.report.total_checked > 0 for cell in self.cross)
            and self.min_accuracy >= threshold
        )
