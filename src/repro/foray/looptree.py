"""Algorithm 2 — reconstructing the dynamic loop tree from the trace.

The trace contains only checkpoint ids (three kinds per loop). The builder
maintains a stack of ``(loop node, body_open)`` entries:

* **loop-begin** pops any closed-body tops, then descends into (creating on
  demand) the child identified by the begin-checkpoint id and resets its
  iteration counter;
* **body-begin** pops until the matching node is on top, marks the body
  open and increments the node's iterator;
* **body-end** pops until the matching node is on top and marks the body
  closed.

Popping on mismatch is what lets three checkpoint kinds disambiguate loop
*exit* (which has no checkpoint of its own — see the paper's Figure 4(c),
where the inner ``for`` simply stops appearing) and sequential-vs-nested
loops.

Because a node is identified by its *path* from the root, a loop executed
under two different call sites (or two different outer loops) yields two
distinct nodes — this is the "functions appear inlined" property the paper
uses for inlining hints.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sim.trace import Checkpoint, CheckpointKind, CheckpointMap


@dataclass
class LoopNode:
    """One node of the dynamic loop tree."""

    begin_id: int  # 0 for the synthetic root
    kind: str  # "for" | "while" | "do" | "root"
    parent: "LoopNode | None" = None
    depth: int = 0
    #: Unique id of this dynamic node (distinguishes the same static loop
    #: reached through different call contexts — "inlined" instances).
    uid: int = 0
    #: node_id of the loop's AST node (joins dynamic results back to the
    #: source program for Table II and the static baseline).
    ast_node_id: int = -1
    children: dict[int, "LoopNode"] = field(default_factory=dict)

    # Dynamic state maintained during trace processing.
    iteration: int = -1  # current iterator value (paper's per-loop counter)
    entries: int = 0
    total_iterations: int = 0
    max_trip: int = 0
    min_trip: int | None = None

    # Per-(node, pc) Algorithm-3 state lives here; the extractor owns the
    # value type to avoid a circular import.
    references: dict[int, object] = field(default_factory=dict)

    @property
    def is_root(self) -> bool:
        return self.parent is None

    def path_from_root(self) -> tuple["LoopNode", ...]:
        """Loop nodes from the outermost enclosing loop down to self
        (excluding the root)."""
        path: list[LoopNode] = []
        node: LoopNode | None = self
        while node is not None and not node.is_root:
            path.append(node)
            node = node.parent
        path.reverse()
        return tuple(path)

    def begin_entry(self) -> None:
        self._close_trip()
        self.entries += 1
        self.iteration = -1

    def begin_iteration(self) -> None:
        self.iteration += 1
        self.total_iterations += 1
        if self.iteration + 1 > self.max_trip:
            self.max_trip = self.iteration + 1

    def _close_trip(self) -> None:
        """Record the trip count of the entry that just finished."""
        if self.entries > 0:
            trip = self.iteration + 1
            if self.min_trip is None or trip < self.min_trip:
                self.min_trip = trip

    def finalize(self) -> None:
        """Close the last entry's trip count, recursively."""
        self._close_trip()
        for child in self.children.values():
            child.finalize()

    def iter_subtree(self):
        yield self
        for child in self.children.values():
            yield from child.iter_subtree()


class LoopTreeBuilder:
    """Streaming implementation of Algorithm 2.

    Feed :class:`Checkpoint` records through :meth:`on_checkpoint`; between
    checkpoints, :attr:`current` is the loop node that subsequent memory
    accesses belong to and :meth:`current_iterators` gives the paper's
    IT1..ITN vector (innermost first).
    """

    def __init__(self, checkpoint_map: CheckpointMap):
        self._map = checkpoint_map
        self.root = LoopNode(0, "root")
        self._next_uid = 1
        #: Stack of (node, body_open); the root is always at the bottom.
        self._stack: list[list] = [[self.root, True]]

    @property
    def current(self) -> LoopNode:
        return self._stack[-1][0]

    @property
    def depth(self) -> int:
        """Loop nest depth at the current position (root not counted)."""
        return len(self._stack) - 1

    def current_iterators(self) -> tuple[int, ...]:
        """IT1..ITN — current iterator values, innermost loop first."""
        return tuple(
            self._stack[i][0].iteration for i in range(len(self._stack) - 1, 0, -1)
        )

    def on_checkpoint(self, record: Checkpoint) -> None:
        kind = record.kind
        checkpoint_id = record.checkpoint_id
        if kind is CheckpointKind.LOOP_BEGIN:
            self._on_loop_begin(checkpoint_id)
        elif kind is CheckpointKind.BODY_BEGIN:
            self._on_body_begin(checkpoint_id)
        else:
            self._on_body_end(checkpoint_id)

    def on_checkpoint_code(self, checkpoint_id: int, kind_code: int) -> None:
        """Batched-protocol entry point: kind as a compact integer code.

        Avoids constructing a :class:`Checkpoint` record per event (see
        :data:`repro.sim.trace.KIND_TO_CODE`).
        """
        if kind_code == 0:  # LOOP_BEGIN
            self._on_loop_begin(checkpoint_id)
        elif kind_code == 1:  # BODY_BEGIN
            self._on_body_begin(checkpoint_id)
        else:  # BODY_END
            self._on_body_end(checkpoint_id)

    def _on_loop_begin(self, begin_id: int) -> None:
        # A new loop starting while the top's body is closed means the top
        # loop has exited: pop it.
        while len(self._stack) > 1 and not self._stack[-1][1]:
            self._stack.pop()
        parent = self.current
        child = parent.children.get(begin_id)
        if child is None:
            info = self._map.infos.get(begin_id)
            kind = info.loop_kind if info is not None else "loop"
            ast_node_id = info.loop_node_id if info is not None else -1
            child = LoopNode(begin_id, kind, parent, parent.depth + 1,
                             uid=self._next_uid, ast_node_id=ast_node_id)
            self._next_uid += 1
            parent.children[begin_id] = child
        child.begin_entry()
        self._stack.append([child, False])

    def _find_on_stack(self, begin_id: int, body_kind: CheckpointKind) -> None:
        """Pop until the node owning ``begin_id`` is on top."""
        while len(self._stack) > 1 and self._stack[-1][0].begin_id != begin_id:
            self._stack.pop()
        if self._stack[-1][0].begin_id != begin_id:
            raise ValueError(
                f"{body_kind.value} checkpoint for loop {begin_id} "
                "without a matching loop-begin"
            )

    def _on_body_begin(self, body_begin_id: int) -> None:
        begin_id = self._owning_loop(body_begin_id)
        self._find_on_stack(begin_id, CheckpointKind.BODY_BEGIN)
        top = self._stack[-1]
        top[1] = True
        top[0].begin_iteration()

    def _on_body_end(self, body_end_id: int) -> None:
        begin_id = self._owning_loop(body_end_id)
        self._find_on_stack(begin_id, CheckpointKind.BODY_END)
        self._stack[-1][1] = False

    def _owning_loop(self, checkpoint_id: int) -> int:
        """Map a body-begin/body-end id back to its loop's begin id."""
        begin_id = self._map.begin_id_for(checkpoint_id)
        if begin_id is None:
            raise ValueError(f"unknown checkpoint id {checkpoint_id}")
        return begin_id

    def finish(self) -> LoopNode:
        """Finalize trip counts and return the tree root."""
        self.root.finalize()
        return self.root
