"""Algorithm 3 — online identification of (partial) affine index expressions.

One :class:`ReferenceSolver` exists per (loop-tree node, instruction pc)
pair. Every executed access of the reference calls :meth:`observe` with the
access address and the current iterator vector (innermost loop first), and
the solver incrementally maintains:

* ``CONST`` — the constant term (initially the first address seen);
* ``C1..CN`` — iterator coefficients, each ``None`` (the paper's UNKNOWN)
  until the iterator is observed changing *alone* among the unknowns;
* ``M`` — how many innermost iterators form the (partial) expression;
* ``S1..SN`` — the misprediction bookkeeping vector of the paper's step 6.

The constant-term update on misprediction (``CONST += IND − INDC``) is what
turns data-dependent base addresses (reallocated local arrays, offsets
passed into functions — paper Figure 7) into *partial* affine expressions
over the innermost M iterators.

Note on the coefficient formula: the paper's step 3 prints
``ADJ = Σ ITi·Ci`` over changed known-coefficient iterators, but its own
worked example (Figure 4: coefficient 103 for the outer ``while``) requires
the delta form ``ADJ = Σ (ITi − ITPi)·Ci``; we implement the delta form
(see DESIGN.md) and reproduce the paper's numbers in the test suite.
"""

from __future__ import annotations

from repro.foray.model import AffineExpression


class ReferenceSolver:
    """Online affine-expression solver for one memory reference."""

    __slots__ = (
        "pc",
        "nest_depth",
        "const",
        "const_first",
        "coefficients",
        "num_iterators",
        "s_vector",
        "prev_iterators",
        "prev_addr",
        "exec_count",
        "reads",
        "writes",
        "addresses",
        "non_analyzable",
        "mispredictions",
        "access_size",
    )

    def __init__(self, pc: int, nest_depth: int):
        self.pc = pc
        self.nest_depth = nest_depth  # N
        self.const = 0  # CONST
        self.const_first = 0  # first address (used for emission)
        self.coefficients: list[int | None] = []  # C1..CN; None = UNKNOWN
        self.num_iterators = nest_depth  # M
        self.s_vector: list[int] = []  # S1..SN
        self.prev_iterators: tuple[int, ...] = ()  # ITP1..ITPN
        self.prev_addr = 0  # INDP
        self.exec_count = 0
        self.reads = 0
        self.writes = 0
        self.addresses: set[int] = set()
        self.non_analyzable = False
        self.mispredictions = 0
        #: Largest access width observed (bytes) — element size estimate
        #: used by the SPM phase to turn footprints into buffer bytes.
        self.access_size = 1

    # ------------------------------------------------------------------

    def observe(self, addr: int, iterators: tuple[int, ...], is_write: bool,
                size: int = 1) -> None:
        """Process one executed access (the body of the paper's Algorithm 3).

        ``iterators`` are the current loop counters, innermost first; their
        length must equal the solver's nest depth.
        """
        self.exec_count += 1
        if size > self.access_size:
            self.access_size = size
        if is_write:
            self.writes += 1
        else:
            self.reads += 1
        self.addresses.add(addr)

        if self.exec_count == 1:
            # Step 1: first encounter.
            self.const = addr
            self.const_first = addr
            self.coefficients = [None] * self.nest_depth
            self.s_vector = [0] * self.nest_depth
            self.num_iterators = self.nest_depth
            self.prev_iterators = iterators
            self.prev_addr = addr
            return

        if self.non_analyzable:
            # Step 4 already gave up on the expression; keep only counters.
            self.prev_iterators = iterators
            self.prev_addr = addr
            return

        previous = self.prev_iterators
        coefficients = self.coefficients

        # Step 2: iterators that changed while their coefficient is UNKNOWN.
        unknown_changed = [
            i
            for i in range(self.nest_depth)
            if iterators[i] != previous[i] and coefficients[i] is None
        ]

        if len(unknown_changed) == 1:
            # Step 3: solve for the single unknown coefficient.
            k = unknown_changed[0]
            adjust = 0
            for i in range(self.nest_depth):
                coefficient = coefficients[i]
                if i != k and coefficient is not None and iterators[i] != previous[i]:
                    adjust += coefficient * (iterators[i] - previous[i])
            delta_iter = iterators[k] - previous[k]
            numerator = addr - adjust - self.prev_addr
            coefficient, remainder = divmod(numerator, delta_iter)
            if remainder != 0:
                # A truly affine reference always divides exactly; a
                # fractional result means the pattern is not affine in this
                # iterator. Recording 0 makes step 6 absorb the difference
                # into the constant term (demoting the expression to
                # partial) instead of silently using a wrong coefficient.
                coefficient = 0
            coefficients[k] = coefficient
        elif len(unknown_changed) > 1:
            # Step 4: several unknowns changed together — give up.
            self.non_analyzable = True
            self.prev_iterators = iterators
            self.prev_addr = addr
            return

        # Step 5: predict the address with the known coefficients.
        predicted = self.const
        for i in range(self.nest_depth):
            coefficient = coefficients[i]
            if coefficient is not None:
                predicted += coefficient * iterators[i]

        # Step 6: on misprediction, adjust CONST and shrink M.
        if predicted != addr:
            self.mispredictions += 1
            for i in range(self.nest_depth):
                if iterators[i] == previous[i]:
                    self.s_vector[i] = 1
            self.const += addr - predicted
            # Paper: M = (last 1-based i with S_i = 0) - 1, or 0 when the
            # whole vector is marked; with 0-based indices that is simply
            # the last index whose S is 0.
            m = 0
            for i in range(self.nest_depth):
                if self.s_vector[i] == 0:
                    m = i
            self.num_iterators = m

        # Step 7: remember state for the next execution.
        self.prev_iterators = iterators
        self.prev_addr = addr

    # ------------------------------------------------------------------

    @property
    def footprint(self) -> int:
        return len(self.addresses)

    @property
    def is_full(self) -> bool:
        return self.mispredictions == 0 and self.num_iterators == self.nest_depth

    def expression(self) -> AffineExpression:
        """The (partial) affine expression in its final state.

        The constant term is the *first* base address (matching the paper's
        emitted models, whose constants are the initial array bases); for
        partial expressions the constant is only valid within one
        invocation of the outer context.
        """
        return AffineExpression(
            const=self.const_first,
            coefficients=tuple(self.coefficients)
            or tuple([None] * self.nest_depth),
            num_iterators=self.num_iterators,
        )
