"""Data model of the FORAY form: affine expressions, references, loops.

A FORAY model (paper Section 3) is "a C program consisting of any
combination of for loops and array references, with all array index
expressions being affine functions of outer loop iterators". Here it is a
structured object — :class:`ForayModel` — that the emitter can render as C
text (paper Figures 2 and 4d) and that the SPM phase consumes directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class AffineExpression:
    """``addr = const + C1*iter1 + ... + CM*iterM`` (iter1 = innermost).

    ``coefficients`` holds C1..CN for the full nest depth N; entries may be
    ``None`` when Algorithm 3 never observed the iterator changing alone
    (UNKNOWN in the paper — such iterators contribute nothing observable).
    ``num_iterators`` is the paper's M: how many innermost iterators form
    the (possibly partial) affine expression. ``is_full`` means the single
    constant term predicted every access (no constant-term adjustments).
    """

    const: int
    coefficients: tuple[int | None, ...]
    num_iterators: int

    @property
    def nest_depth(self) -> int:
        return len(self.coefficients)

    @property
    def is_full(self) -> bool:
        return self.num_iterators == self.nest_depth

    def used_coefficients(self) -> tuple[int, ...]:
        """C1..CM with UNKNOWN treated as 0 (iterator never varied)."""
        return tuple(
            c if c is not None else 0
            for c in self.coefficients[: self.num_iterators]
        )

    def includes_iterator(self) -> bool:
        """Paper filter condition: at least one iterator with a non-zero
        coefficient inside the (partial) expression."""
        return any(c for c in self.used_coefficients())

    def evaluate(self, iterators: tuple[int, ...]) -> int:
        """Predicted address for iterator values (innermost first)."""
        addr = self.const
        for coefficient, value in zip(self.used_coefficients(), iterators):
            addr += coefficient * value
        return addr

    def format(self, iterator_names: tuple[str, ...] | None = None) -> str:
        """Render like the paper: ``2147440948+1*i15+103*i12``."""
        names = iterator_names or tuple(
            f"iter{i + 1}" for i in range(self.num_iterators)
        )
        parts = [str(self.const)]
        for coefficient, name in zip(self.used_coefficients(), names):
            parts.append(f"{coefficient}*{name}")
        return "+".join(parts)


@dataclass(frozen=True)
class ForayLoop:
    """One loop of the FORAY model (a reconstructed loop-tree node).

    The same static loop reached through two call contexts yields two
    ForayLoop instances (distinct ``uid``) — the paper's "functions appear
    inlined" property. ``ast_node_id`` joins back to the source loop.
    """

    begin_id: int
    kind: str  # for|while|do — the *original* loop kind
    depth: int
    max_trip: int
    min_trip: int
    entries: int
    total_iterations: int
    uid: int = 0
    ast_node_id: int = -1

    @property
    def name(self) -> str:
        """Iterator name in the emitted model, e.g. ``i15``."""
        return f"i{self.begin_id}"

    @property
    def has_constant_trip(self) -> bool:
        return self.max_trip == self.min_trip


@dataclass(frozen=True)
class ForayReference:
    """One memory reference of the FORAY model.

    ``loop_path`` lists the enclosing :class:`ForayLoop` nodes from the
    outermost to the innermost (the dynamic loop-tree path, i.e. with
    functions effectively inlined).
    """

    pc: int
    loop_path: tuple[ForayLoop, ...]
    expression: AffineExpression
    exec_count: int
    footprint: int
    reads: int
    writes: int
    is_library: bool = False
    #: Times the constant term had to be adjusted (0 for full expressions).
    mispredictions: int = 0
    #: Largest access width observed, in bytes (element-size estimate).
    access_size: int = 1

    @property
    def array_name(self) -> str:
        return f"A{self.pc:x}"

    @property
    def nest_depth(self) -> int:
        return len(self.loop_path)

    @property
    def is_full(self) -> bool:
        return self.expression.is_full and self.mispredictions == 0

    @property
    def effective_loops(self) -> tuple[ForayLoop, ...]:
        """The M innermost loops whose iterators appear in the expression,
        ordered outermost-of-the-M first."""
        m = self.expression.num_iterators
        return self.loop_path[len(self.loop_path) - m :]

    def index_text(self) -> str:
        """Paper-style index expression, e.g. ``2147440948+1*i15+103*i12``."""
        names = tuple(loop.name for loop in reversed(self.effective_loops))
        return self.expression.format(names)


@dataclass
class ForayModel:
    """The extracted FORAY model plus extraction-wide statistics."""

    references: list[ForayReference] = field(default_factory=list)
    #: All analyzable references before the step-4 filter (for ablations).
    unfiltered_references: list[ForayReference] = field(default_factory=list)
    #: Loops that contain at least one model reference.
    loops: list[ForayLoop] = field(default_factory=list)
    #: Number of references marked non-analyzable by Algorithm 3 step 4.
    non_analyzable_count: int = 0
    #: Trace-wide statistics (filled by the extractor; see coverage module).
    trace_stats: object = None
    #: Accesses made by the filtered references (Table III "Accesses").
    captured_accesses: int = 0
    #: Distinct addresses touched by the filtered references
    #: (Table III "Footprint").
    captured_footprint: int = 0

    @property
    def reference_count(self) -> int:
        return len(self.references)

    @property
    def loop_count(self) -> int:
        return len(self.loops)

    def references_in_loop(self, begin_id: int) -> list[ForayReference]:
        return [
            ref
            for ref in self.references
            if any(loop.begin_id == begin_id for loop in ref.loop_path)
        ]

    def full_references(self) -> list[ForayReference]:
        return [ref for ref in self.references if ref.is_full]

    def partial_references(self) -> list[ForayReference]:
        return [ref for ref in self.references if not ref.is_full]
