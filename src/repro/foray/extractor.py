"""The FORAY-GEN driver — Algorithm 1 of the paper.

:class:`ForayExtractor` is a trace *sink*: it consumes checkpoint and
memory-access records one at a time, routing checkpoints to the loop-tree
builder (Algorithm 2) and accesses to per-reference affine solvers
(Algorithm 3). Because it never looks back at earlier records, it can be

* attached directly to the running simulator (the paper's "no need to save
  the typically large trace file" mode — constant space in the trace
  length), or
* fed from a written trace file via :func:`repro.sim.trace.parse_trace`.

Both modes produce identical models (tested).

Convenience entry points: :func:`extract_from_source` runs the whole
pipeline (annotate → profile → analyze → purge) on MiniC source text.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.foray.affine import ReferenceSolver
from repro.foray.filters import FilterConfig
from repro.foray.looptree import LoopNode, LoopTreeBuilder
from repro.foray.model import ForayLoop, ForayModel, ForayReference
from repro.sim.trace import (
    HAVE_NUMPY,
    LIB_PC_BASE,
    Access,
    CheckpointMap,
    ColumnBlock,
    TraceRecord,
    is_library_pc,
)

if HAVE_NUMPY:
    import numpy as _np


@dataclass
class TraceStats:
    """Trace-wide counters backing Table III.

    References are counted per (dynamic loop node, pc) — i.e. with
    functions considered inlined, as the paper does. Footprints are sets of
    distinct accessed addresses per category.
    """

    total_accesses: int = 0
    user_accesses: int = 0
    lib_accesses: int = 0
    user_refs: set = field(default_factory=set)
    lib_refs: set = field(default_factory=set)
    user_addresses: set = field(default_factory=set)
    lib_addresses: set = field(default_factory=set)

    @property
    def total_references(self) -> int:
        return len(self.user_refs) + len(self.lib_refs)

    @property
    def total_footprint(self) -> int:
        return len(self.user_addresses | self.lib_addresses)


class ForayExtractor:
    """Streaming FORAY-GEN analysis (a :class:`~repro.sim.trace.TraceSink`)."""

    def __init__(
        self,
        checkpoint_map: CheckpointMap,
        filter_config: FilterConfig | None = None,
    ):
        self._filter = filter_config or FilterConfig()
        self._tree = LoopTreeBuilder(checkpoint_map)
        self.stats = TraceStats()
        self._finished: ForayModel | None = None

    # -- sink interface ---------------------------------------------------

    def emit(self, record: TraceRecord) -> None:
        if type(record) is Access:
            self._on_access(record)
        else:
            self._tree.on_checkpoint(record)  # type: ignore[arg-type]

    def consume(self, records: Iterable[TraceRecord]) -> None:
        for record in records:
            self.emit(record)

    def emit_block(self, accesses, checkpoints) -> None:
        """Batched sink entry point (the engines' hot path).

        ``accesses`` are ``(pc, addr, size, is_write)`` tuples and
        ``checkpoints`` are ``(pos, checkpoint_id, kind_code)`` tuples as
        described in :mod:`repro.sim.trace`. Processing stays strictly
        online and constant-space: the block is consumed event by event
        without constructing record objects, and the paper's loop-iterator
        vector is recomputed only when a checkpoint changes it.
        """
        tree = self._tree
        stats = self.stats
        on_checkpoint = tree.on_checkpoint_code
        ci = 0
        ncp = len(checkpoints)
        node = tree.current
        iterators = tree.current_iterators()
        for i, (pc, addr, size, is_write) in enumerate(accesses):
            if ci < ncp and checkpoints[ci][0] <= i:
                while ci < ncp and checkpoints[ci][0] <= i:
                    entry = checkpoints[ci]
                    ci += 1
                    on_checkpoint(entry[1], entry[2])
                node = tree.current
                iterators = tree.current_iterators()
            stats.total_accesses += 1
            if pc >= LIB_PC_BASE:
                # System-library references are not handled by FORAY-GEN
                # (paper Section 5.2) but are counted for Table III.
                stats.lib_accesses += 1
                stats.lib_refs.add((node.uid, pc))
                stats.lib_addresses.add(addr)
                continue
            stats.user_accesses += 1
            stats.user_refs.add((node.uid, pc))
            stats.user_addresses.add(addr)
            solver = node.references.get(pc)
            if solver is None:
                solver = ReferenceSolver(pc, node.depth)
                node.references[pc] = solver
            solver.observe(addr, iterators, is_write, size)
        while ci < ncp:
            entry = checkpoints[ci]
            ci += 1
            on_checkpoint(entry[1], entry[2])

    def emit_columns(self, block: ColumnBlock) -> None:
        """Columnar sink entry point.

        The segment-independent Table III tallies (access counts and
        footprint sets) are computed block-wide from the columns; the
        order-dependent work — loop-tree checkpoints, per-reference
        solver observations — walks the plain-list views, which keeps
        every value stashed in long-lived sets a native Python int.
        """
        checkpoints = block.checkpoints
        tree = self._tree
        on_checkpoint = tree.on_checkpoint_code
        ci = 0
        ncp = len(checkpoints)
        n = block.n
        if n == 0:
            while ci < ncp:
                entry = checkpoints[ci]
                ci += 1
                on_checkpoint(entry[1], entry[2])
            return
        pcs, addrs, sizes, writes = block.lists()
        stats = self.stats
        stats.total_accesses += n
        if HAVE_NUMPY:
            lib_count = int(_np.count_nonzero(block.pc >= LIB_PC_BASE))
        else:
            lib_count = sum(1 for pc in pcs if pc >= LIB_PC_BASE)
        stats.lib_accesses += lib_count
        stats.user_accesses += n - lib_count
        if lib_count == 0:
            stats.user_addresses.update(addrs)
        elif lib_count == n:
            stats.lib_addresses.update(addrs)
        elif HAVE_NUMPY:
            lib_mask = block.pc >= LIB_PC_BASE
            stats.lib_addresses.update(block.addr[lib_mask].tolist())
            stats.user_addresses.update(block.addr[~lib_mask].tolist())
        else:
            for pc, addr in zip(pcs, addrs):
                if pc >= LIB_PC_BASE:
                    stats.lib_addresses.add(addr)
                else:
                    stats.user_addresses.add(addr)
        node = tree.current
        iterators = tree.current_iterators()
        for i, pc in enumerate(pcs):
            if ci < ncp and checkpoints[ci][0] <= i:
                while ci < ncp and checkpoints[ci][0] <= i:
                    entry = checkpoints[ci]
                    ci += 1
                    on_checkpoint(entry[1], entry[2])
                node = tree.current
                iterators = tree.current_iterators()
            if pc >= LIB_PC_BASE:
                stats.lib_refs.add((node.uid, pc))
                continue
            stats.user_refs.add((node.uid, pc))
            solver = node.references.get(pc)
            if solver is None:
                solver = ReferenceSolver(pc, node.depth)
                node.references[pc] = solver
            solver.observe(addrs[i], iterators, writes[i], sizes[i])
        while ci < ncp:
            entry = checkpoints[ci]
            ci += 1
            on_checkpoint(entry[1], entry[2])

    # -- record processing ---------------------------------------------------

    def _on_access(self, access: Access) -> None:
        stats = self.stats
        stats.total_accesses += 1
        node = self._tree.current
        if is_library_pc(access.pc):
            # System-library references are not handled by FORAY-GEN
            # (paper Section 5.2) but are counted for Table III.
            stats.lib_accesses += 1
            stats.lib_refs.add((node.uid, access.pc))
            stats.lib_addresses.add(access.addr)
            return
        stats.user_accesses += 1
        stats.user_refs.add((node.uid, access.pc))
        stats.user_addresses.add(access.addr)

        solver = node.references.get(access.pc)
        if solver is None:
            solver = ReferenceSolver(access.pc, node.depth)
            node.references[access.pc] = solver
        solver.observe(access.addr, self._tree.current_iterators(),
                       access.is_write, access.size)

    # -- model construction ---------------------------------------------------

    def finish(self) -> ForayModel:
        """Finalize the tree and build the (filtered) FORAY model."""
        if self._finished is not None:
            return self._finished
        root = self._tree.finish()

        foray_loops: dict[int, ForayLoop] = {}  # node uid -> ForayLoop

        def loop_of(node: LoopNode) -> ForayLoop:
            cached = foray_loops.get(node.uid)
            if cached is None:
                cached = ForayLoop(
                    begin_id=node.begin_id,
                    kind=node.kind,
                    depth=node.depth,
                    max_trip=node.max_trip,
                    min_trip=node.min_trip or 0,
                    entries=node.entries,
                    total_iterations=node.total_iterations,
                    uid=node.uid,
                    ast_node_id=node.ast_node_id,
                )
                foray_loops[node.uid] = cached
            return cached

        unfiltered: list[ForayReference] = []
        solver_of: dict[int, ReferenceSolver] = {}
        non_analyzable = 0
        for node in root.iter_subtree():
            path = tuple(loop_of(ancestor) for ancestor in node.path_from_root())
            for solver in node.references.values():
                assert isinstance(solver, ReferenceSolver)
                if solver.non_analyzable:
                    non_analyzable += 1
                    continue
                reference = ForayReference(
                    pc=solver.pc,
                    loop_path=path,
                    expression=solver.expression(),
                    exec_count=solver.exec_count,
                    footprint=solver.footprint,
                    reads=solver.reads,
                    writes=solver.writes,
                    mispredictions=solver.mispredictions,
                    access_size=solver.access_size,
                )
                unfiltered.append(reference)
                solver_of[id(reference)] = solver

        references = self._filter.apply(unfiltered)
        captured_addresses: set[int] = set()
        captured_accesses = 0
        for reference in references:
            captured_accesses += reference.exec_count
            captured_addresses |= solver_of[id(reference)].addresses

        # Loops "representable in FORAY form" (Table II): loops on the path
        # of any analyzable iterator-bearing reference — the step-4 size
        # thresholds prune references, not the loops they demonstrated to
        # be reconstructible.
        loop_bearing = [
            ref for ref in unfiltered if ref.expression.includes_iterator()
        ]
        model_loops: dict[int, ForayLoop] = {}
        for reference in loop_bearing:
            for loop in reference.loop_path:
                model_loops[loop.uid] = loop

        self._finished = ForayModel(
            references=references,
            unfiltered_references=unfiltered,
            loops=sorted(model_loops.values(), key=lambda lp: lp.uid),
            non_analyzable_count=non_analyzable,
            trace_stats=self.stats,
            captured_accesses=captured_accesses,
            captured_footprint=len(captured_addresses),
        )
        return self._finished

    @property
    def loop_tree_root(self) -> LoopNode:
        return self._tree.root

    def executed_loops(self) -> dict[int, str]:
        """ast node_id → loop kind for every *static* loop that executed.

        Distinct from the dynamic (inlined) loop count: a loop reached via
        two call sites appears once here but twice in the tree.
        """
        out: dict[int, str] = {}
        for node in self._tree.root.iter_subtree():
            if not node.is_root and node.ast_node_id >= 0:
                out[node.ast_node_id] = node.kind
        return out


def extract_from_records(
    records: Iterable[TraceRecord],
    checkpoint_map: CheckpointMap,
    filter_config: FilterConfig | None = None,
) -> ForayModel:
    """Run Algorithm 1 steps 3–4 over an iterable of trace records."""
    extractor = ForayExtractor(checkpoint_map, filter_config)
    extractor.consume(records)
    return extractor.finish()


def extract_from_source(
    source: str,
    filter_config: FilterConfig | None = None,
    entry: str = "main",
    max_steps: int = 200_000_000,
):
    """Full pipeline on MiniC source: annotate, profile (online), purge.

    Runs the extractor as a live trace sink — the constant-space mode the
    paper describes at the end of Section 4. Returns
    ``(model, run_result, compiled)``.
    """
    from repro.sim.machine import compile_program, run_compiled

    compiled = compile_program(source)
    extractor = ForayExtractor(compiled.checkpoint_map, filter_config)
    result = run_compiled(compiled, sinks=(extractor,), entry=entry,
                          max_steps=max_steps)
    return extractor.finish(), result, compiled
