"""Emission of the FORAY model as C source (paper Figures 2 and 4d).

Each group of references sharing the same effective loop nest is emitted as
one perfect ``for`` nest whose iterators are named after the loop-begin
checkpoint ids (``i15``), with the reference rendered as an array access
whose array is named after the instruction pc (``A4002a0``)::

    for (int i12 = 0; i12 < 2; i12++)
        for (int i15 = 0; i15 < 3; i15++)
            A4002a0[2147440948+1*i15+103*i12];

Partial affine references are emitted under their M innermost loops with a
comment noting that the constant term changes with the outer context
(paper Figure 7 discussion). ``extern`` declarations make the emitted text
self-contained C.
"""

from __future__ import annotations

from repro.foray.model import ForayModel, ForayReference

_INDENT = "    "


def _nest_key(reference: ForayReference) -> tuple[int, ...]:
    """Group key: the uids of the effective (inner M) loops."""
    return tuple(loop.uid for loop in reference.effective_loops)


def emit_model(model: ForayModel, include_extern_decls: bool = True,
               include_comments: bool = True) -> str:
    """Render ``model`` as FORAY-form C text."""
    groups: dict[tuple[int, ...], list[ForayReference]] = {}
    order: list[tuple[int, ...]] = []
    for reference in model.references:
        key = _nest_key(reference)
        if key not in groups:
            groups[key] = []
            order.append(key)
        groups[key].append(reference)

    lines: list[str] = []
    if include_extern_decls:
        names = sorted({ref.array_name for ref in model.references})
        for name in names:
            lines.append(f"extern char {name}[];")
        if names:
            lines.append("")

    for key in order:
        references = groups[key]
        loops = references[0].effective_loops
        for depth, loop in enumerate(loops):
            indent = _INDENT * depth
            header = (
                f"for (int {loop.name} = 0; {loop.name} < {loop.max_trip}; "
                f"{loop.name}++)"
            )
            if include_comments and not loop.has_constant_trip:
                header += f"  /* trip varies: {loop.min_trip}..{loop.max_trip} */"
            if include_comments and loop.kind != "for":
                header += f"  /* originally a {loop.kind} loop */"
            lines.append(indent + header)
        body_indent = _INDENT * len(loops)
        for reference in references:
            stmt = f"{reference.array_name}[{reference.index_text()}];"
            if include_comments:
                details = [
                    f"{reference.exec_count} accesses",
                    f"footprint {reference.footprint}",
                ]
                if reference.writes and reference.reads:
                    details.append("rd/wr")
                elif reference.writes:
                    details.append("wr")
                else:
                    details.append("rd")
                if not reference.is_full:
                    details.append("partial: const varies with outer context")
                stmt += "  /* " + ", ".join(details) + " */"
            lines.append(body_indent + stmt)
        lines.append("")

    while lines and not lines[-1]:
        lines.pop()
    return "\n".join(lines) + ("\n" if lines else "")
