"""Step 4 of Algorithm 1 — purging uninteresting memory references.

The paper keeps only references that

* have an affine index expression including at least one iterator
  (excludes irregular patterns and scalars),
* executed at least ``Nexec`` times (paper value: 20),
* touched at least ``Nloc`` distinct locations (paper value: 10 — small
  arrays that fit in the SPM whole are better handled by object-level
  techniques [8][9][10]).

Non-analyzable references (several unknown-coefficient iterators changed
together, Algorithm 3 step 4) are always dropped.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.foray.model import ForayReference

#: Paper values (Section 4).
PAPER_NEXEC = 20
PAPER_NLOC = 10


@dataclass(frozen=True)
class FilterConfig:
    """Thresholds of the step-4 purge heuristic."""

    nexec: int = PAPER_NEXEC
    nloc: int = PAPER_NLOC
    require_iterator: bool = True

    def keep(self, reference: ForayReference) -> bool:
        """Whether ``reference`` survives the purge."""
        if self.require_iterator and not reference.expression.includes_iterator():
            return False
        if reference.exec_count < self.nexec:
            return False
        if reference.footprint < self.nloc:
            return False
        return True

    def apply(self, references: list[ForayReference]) -> list[ForayReference]:
        return [ref for ref in references if self.keep(ref)]
