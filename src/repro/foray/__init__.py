"""FORAY-GEN core: the paper's primary contribution.

* :mod:`repro.foray.looptree` — Algorithm 2 (loop tree from checkpoints)
* :mod:`repro.foray.affine` — Algorithm 3 (online affine solving)
* :mod:`repro.foray.filters` — step 4 purge heuristic
* :mod:`repro.foray.extractor` — the streaming Algorithm 1 driver
* :mod:`repro.foray.emitter` — FORAY model → C text
* :mod:`repro.foray.hints` — function-duplication hints (Figure 9)
"""

from repro.foray.affine import ReferenceSolver
from repro.foray.emitter import emit_model
from repro.foray.extractor import (
    ForayExtractor,
    TraceStats,
    extract_from_records,
    extract_from_source,
)
from repro.foray.filters import PAPER_NEXEC, PAPER_NLOC, FilterConfig
from repro.foray.hints import InliningHint, inlining_hints
from repro.foray.looptree import LoopNode, LoopTreeBuilder
from repro.foray.validate import (
    ReferenceValidation,
    ValidationReport,
    validate_model,
)
from repro.foray.model import (
    AffineExpression,
    ForayLoop,
    ForayModel,
    ForayReference,
)

__all__ = [
    "ReferenceSolver",
    "emit_model",
    "ForayExtractor",
    "TraceStats",
    "extract_from_records",
    "extract_from_source",
    "PAPER_NEXEC",
    "PAPER_NLOC",
    "FilterConfig",
    "InliningHint",
    "inlining_hints",
    "LoopNode",
    "LoopTreeBuilder",
    "ReferenceValidation",
    "ValidationReport",
    "validate_model",
    "AffineExpression",
    "ForayLoop",
    "ForayModel",
    "ForayReference",
]
