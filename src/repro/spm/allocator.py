"""Buffer selection under an SPM capacity (Phase II step 3).

At most one candidate per mutual-exclusion group may be selected (two
reuse levels of the same reference — or two windows of the same array in
the reuse-graph IR — are redundant), which makes this a multiple-choice
knapsack. Three policies are available via :class:`AllocatorPolicy`:

* ``dp`` (default) — exact dynamic program over 4-byte-granular capacity;
  capacities are small (hundreds of bytes to tens of KiB), so the exact
  solve is fast and optimal.
* ``greedy`` — rank by benefit *density* (energy saved per SPM byte), the
  classic heuristic; a large low-value buffer can no longer crowd out
  several small high-value ones.
* ``greedy-benefit`` — rank by raw benefit, the historical ordering; kept
  reachable so ``bench_spm.py`` can quantify what density ranking and the
  exact DP each buy.

Both greedy variants charge the same granule-aligned capacity as the DP,
so the exact solve dominates them at every capacity by construction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import TYPE_CHECKING, Callable, Sequence

from repro.spm.candidates import BufferCandidate

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.spm.graph import ReuseGraph, ReuseNode

_GRANULE = 4


class AllocatorPolicy(str, Enum):
    """Selection policy for :func:`allocate` / :func:`allocate_graph`."""

    DP = "dp"
    GREEDY = "greedy"
    GREEDY_BENEFIT = "greedy-benefit"


#: CLI-facing policy names.
ALLOCATOR_POLICIES = tuple(policy.value for policy in AllocatorPolicy)


@dataclass
class Allocation:
    """The outcome of design-space selection for one SPM capacity."""

    capacity_bytes: int
    selected: list[BufferCandidate] = field(default_factory=list)
    total_benefit_nj: float = 0.0
    policy: str = AllocatorPolicy.DP.value
    #: Graph nodes behind ``selected`` (filled by :func:`allocate_graph`).
    nodes: tuple = ()

    @property
    def used_bytes(self) -> int:
        return sum(candidate.size_bytes for candidate in self.selected)

    @property
    def buffer_count(self) -> int:
        return len(self.selected)


def _granules(item) -> int:
    return -(-item.size_bytes // _GRANULE)  # ceil


def _dp_select(groups: Sequence[Sequence], slots: int) -> tuple[float, list]:
    """Exact multiple-choice knapsack over granule-aligned capacity."""
    best: list[float] = [0.0] * (slots + 1)
    choice: list[dict[int, object]] = [{} for _ in range(slots + 1)]

    for group_index, group in enumerate(groups):
        new_best = best[:]
        new_choice = [dict(entry) for entry in choice]
        for item in group:
            need = _granules(item)
            if need > slots:
                continue
            for capacity in range(slots, need - 1, -1):
                gain = best[capacity - need] + item.benefit_nj
                if gain > new_best[capacity]:
                    new_best[capacity] = gain
                    merged = dict(choice[capacity - need])
                    merged[group_index] = item
                    new_choice[capacity] = merged
        best = new_best
        choice = new_choice

    winner = max(range(slots + 1), key=lambda c: best[c])
    return best[winner], list(choice[winner].values())


def _greedy_select(
    groups: Sequence[Sequence], slots: int, rank: Callable
) -> tuple[float, list]:
    """One pass over rank-ordered items, first-fit with group exclusion."""
    items = [
        (group_index, item)
        for group_index, group in enumerate(groups)
        for item in group
    ]
    items.sort(key=lambda pair: rank(pair[1]), reverse=True)
    remaining = slots
    taken: dict[int, object] = {}
    for group_index, item in items:
        if group_index in taken:
            continue
        need = _granules(item)
        if need <= remaining:
            taken[group_index] = item
            remaining -= need
    chosen = list(taken.values())
    return sum(item.benefit_nj for item in chosen), chosen


def _run_policy(
    groups: Sequence[Sequence], capacity_bytes: int, policy: AllocatorPolicy
) -> tuple[float, list]:
    slots = max(0, capacity_bytes // _GRANULE)
    if policy is AllocatorPolicy.DP:
        return _dp_select(groups, slots)
    if policy is AllocatorPolicy.GREEDY:
        # Benefit per byte; ties broken toward the larger absolute saving.
        rank = lambda item: (  # noqa: E731
            item.benefit_nj / max(1, item.size_bytes),
            item.benefit_nj,
        )
    else:
        # Historical ordering: raw benefit, smaller buffers on ties.
        rank = lambda item: (item.benefit_nj, -item.size_bytes)  # noqa: E731
    return _greedy_select(groups, slots, rank)


def allocate(
    candidates: list[BufferCandidate],
    capacity_bytes: int,
    policy: AllocatorPolicy | str = AllocatorPolicy.DP,
) -> Allocation:
    """Select buffers from a flat candidate list.

    Exclusion groups are per reference (buffering the same reference at
    two levels is redundant). Prefer :func:`allocate_graph` where a
    :class:`~repro.spm.graph.ReuseGraph` is available — its groups also
    capture same-array exclusivity and shared windows.
    """
    policy = AllocatorPolicy(policy)
    grouped: dict[int, list[BufferCandidate]] = {}
    order: list[int] = []
    for candidate in candidates:
        key = id(candidate.reference)
        if key not in grouped:
            grouped[key] = []
            order.append(key)
        grouped[key].append(candidate)

    benefit, chosen = _run_policy(
        [grouped[key] for key in order], capacity_bytes, policy
    )
    allocation = Allocation(capacity_bytes, policy=policy.value)
    allocation.selected = sorted(chosen, key=lambda cand: -cand.benefit_nj)
    allocation.total_benefit_nj = benefit
    return allocation


def allocate_graph(
    graph: "ReuseGraph",
    capacity_bytes: int,
    policy: AllocatorPolicy | str = AllocatorPolicy.DP,
) -> Allocation:
    """Select buffers over the reuse-graph IR's exclusive groups."""
    policy = AllocatorPolicy(policy)
    benefit, chosen = _run_policy(
        graph.exclusive_groups(), capacity_bytes, policy
    )
    nodes: list["ReuseNode"] = sorted(
        chosen, key=lambda node: -node.benefit_nj
    )
    allocation = Allocation(capacity_bytes, policy=policy.value,
                            nodes=tuple(nodes))
    allocation.selected = [node.candidate for node in nodes]
    allocation.total_benefit_nj = benefit
    return allocation
