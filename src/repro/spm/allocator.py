"""Buffer selection under an SPM capacity (Phase II step 3).

At most one candidate per reference may be selected (buffering the same
reference at two levels is redundant), which makes this a multiple-choice
knapsack. Capacities are small (hundreds of bytes to tens of KiB), so an
exact dynamic program over 4-byte-granular capacity is fast and optimal.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.spm.candidates import BufferCandidate

_GRANULE = 4


@dataclass
class Allocation:
    """The outcome of design-space selection for one SPM capacity."""

    capacity_bytes: int
    selected: list[BufferCandidate] = field(default_factory=list)
    total_benefit_nj: float = 0.0

    @property
    def used_bytes(self) -> int:
        return sum(candidate.size_bytes for candidate in self.selected)

    @property
    def buffer_count(self) -> int:
        return len(self.selected)


def allocate(candidates: list[BufferCandidate], capacity_bytes: int) -> Allocation:
    """Exact multiple-choice knapsack over the candidate set."""
    groups: dict[int, list[BufferCandidate]] = {}
    for candidate in candidates:
        groups.setdefault(id(candidate.reference), []).append(candidate)

    slots = max(0, capacity_bytes // _GRANULE)
    # best[c] = (benefit, chosen-list) using at most c granules.
    best: list[float] = [0.0] * (slots + 1)
    choice: list[dict[int, BufferCandidate]] = [{} for _ in range(slots + 1)]

    for group_key, group in groups.items():
        new_best = best[:]
        new_choice = [dict(entry) for entry in choice]
        for candidate in group:
            need = -(-candidate.size_bytes // _GRANULE)  # ceil
            if need > slots:
                continue
            for capacity in range(slots, need - 1, -1):
                without = best[capacity - need] + candidate.benefit_nj
                if without > new_best[capacity]:
                    new_best[capacity] = without
                    merged = dict(choice[capacity - need])
                    merged[group_key] = candidate
                    new_choice[capacity] = merged
        best = new_best
        choice = new_choice

    winner = max(range(slots + 1), key=lambda c: best[c])
    allocation = Allocation(capacity_bytes)
    allocation.selected = sorted(
        choice[winner].values(), key=lambda cand: -cand.benefit_nj
    )
    allocation.total_benefit_nj = best[winner]
    return allocation
