"""Phase II step 4 — rewriting the FORAY model to use the scratch pad.

Produces the "Transformed FORAY model code" box of the paper's Figure 3:
for every selected buffer, a buffer declaration, a fill loop at the right
nesting level (annotated as a DMA transfer), the rewritten access, and an
optional write-back loop. The designer then back-annotates this into the
legacy code (Phase III, manual by design in the paper).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.spm.allocator import Allocation
from repro.spm.candidates import BufferCandidate

_INDENT = "    "


def transform_model(allocation: Allocation) -> str:
    """Render the SPM-transformed FORAY model as C-like text."""
    lines: list[str] = [
        f"/* SPM capacity: {allocation.capacity_bytes} bytes; "
        f"{allocation.buffer_count} buffers selected; "
        f"estimated saving {allocation.total_benefit_nj:.0f} nJ */",
        "",
    ]
    for candidate in allocation.selected:
        lines.append(
            f"char {candidate.name}[{candidate.size_bytes}];  "
            f"/* SPM buffer for {candidate.reference.array_name} */"
        )
    if allocation.selected:
        lines.append("")

    for candidate in allocation.selected:
        reference = candidate.reference
        level = candidate.level
        loops = reference.effective_loops
        outer_loops = loops[: len(loops) - level.level]
        inner_loops = loops[len(loops) - level.level :]

        depth = 0
        for loop in outer_loops:
            lines.append(
                _INDENT * depth
                + f"for (int {loop.name} = 0; {loop.name} < {loop.max_trip}; "
                  f"{loop.name}++) {{"
            )
            depth += 1
        lines.append(
            _INDENT * depth
            + f"dma_copy({candidate.name}, &{reference.array_name}"
              f"[{_base_index(reference, outer_loops)}], "
              f"{candidate.size_bytes});  /* fill */"
        )
        for loop in inner_loops:
            lines.append(
                _INDENT * depth
                + f"for (int {loop.name} = 0; {loop.name} < {loop.max_trip}; "
                  f"{loop.name}++) {{"
            )
            depth += 1
        lines.append(
            _INDENT * depth
            + f"{candidate.name}[{_buffer_index(reference, inner_loops)}];  "
              f"/* was {reference.array_name}[{reference.index_text()}] */"
        )
        for _ in inner_loops:
            depth -= 1
            lines.append(_INDENT * depth + "}")
        if reference.writes:
            lines.append(
                _INDENT * depth
                + f"dma_copy(&{reference.array_name}"
                  f"[{_base_index(reference, outer_loops)}], {candidate.name}, "
                  f"{candidate.size_bytes});  /* write back */"
            )
        for _ in outer_loops:
            depth -= 1
            lines.append(_INDENT * depth + "}")
        lines.append("")

    while lines and not lines[-1]:
        lines.pop()
    return "\n".join(lines) + ("\n" if lines else "")


def _base_index(reference, outer_loops) -> str:
    """Index of the first element covered by the buffer at this fill."""
    expr = reference.expression
    coefficients = expr.used_coefficients()
    names_inner_first = [loop.name for loop in reversed(reference.effective_loops)]
    outer_names = {loop.name for loop in outer_loops}
    parts = [str(expr.const)]
    for coefficient, name in zip(coefficients, names_inner_first):
        if name in outer_names and coefficient:
            parts.append(f"{coefficient}*{name}")
    return "+".join(parts)


def _buffer_index(reference, inner_loops) -> str:
    """Index into the SPM buffer (inner iterators only, rebased to 0)."""
    expr = reference.expression
    coefficients = expr.used_coefficients()
    names_inner_first = [loop.name for loop in reversed(reference.effective_loops)]
    inner_names = {loop.name for loop in inner_loops}
    parts = []
    for coefficient, name in zip(coefficients, names_inner_first):
        if name in inner_names and coefficient:
            parts.append(f"{coefficient}*{name}")
    return "+".join(parts) if parts else "0"


# ---------------------------------------------------------------------------
# Runnable MiniC replay + transform (end-to-end round trip)
# ---------------------------------------------------------------------------
#
# `transform_model` above is designer-facing *text*. The functions below
# instead emit compilable MiniC programs so the predicted traffic reduction
# can be verified end to end: `emit_replay_source` replays the model's
# access pattern (one global array per *array group*, so aliasing between
# references is preserved), `emit_transformed_source` is the same program
# with the selected buffers applied. Buffers live on the stack — the
# stand-in for the scratch pad — so the count of traced accesses in the
# global address range is exactly the main-memory traffic.


@dataclass(frozen=True)
class BufferPlan:
    """One emitted SPM buffer and the replay references it serves."""

    buffer: str
    #: ``(reference index, candidate)`` per member routed through it.
    members: tuple[tuple[int, BufferCandidate], ...]
    fill_words: int
    writeback_words: int

    @property
    def served_accesses(self) -> int:
        return sum(
            candidate.reference.reads + candidate.reference.writes
            for _index, candidate in self.members
        )

    @property
    def predicted_drop(self) -> int:
        """Main-memory accesses the rewrite removes for this buffer."""
        return self.served_accesses - self.fill_words - self.writeback_words


@dataclass(frozen=True)
class ReplayProgram:
    """A compilable replay of a FORAY model (possibly SPM-transformed)."""

    source: str
    buffered: tuple[BufferPlan, ...]

    @property
    def predicted_drop(self) -> int:
        return sum(plan.predicted_drop for plan in self.buffered)


@dataclass(frozen=True)
class _ReplayLayout:
    """Shared addressing of the replay: one array per array group."""

    group_of: dict[int, int]          # id(reference) -> group id
    group_lo: dict[int, int]          # group id -> lowest byte address
    group_hi: dict[int, int]          # group id -> highest byte address
    element_size: dict[int, int]      # group id -> 1 (char) or 4 (int)

    def array(self, reference) -> str:
        return f"G{self.group_of[id(reference)]}"

    def es(self, reference) -> int:
        return self.element_size[self.group_of[id(reference)]]

    def offset(self, reference) -> int:
        group = self.group_of[id(reference)]
        base = reference.expression.const - self.group_lo[group]
        return base // self.element_size[group]


def _replay_layout(references) -> _ReplayLayout:
    from repro.spm.graph import _group_by_array, reference_interval

    group_of = _group_by_array(list(references))
    group_lo: dict[int, int] = {}
    group_hi: dict[int, int] = {}
    word_ok: dict[int, bool] = {}
    for reference in references:
        group = group_of[id(reference)]
        lo, hi = reference_interval(reference)
        group_lo[group] = min(group_lo.get(group, lo), lo)
        group_hi[group] = max(group_hi.get(group, hi), hi)
        aligned = (reference.access_size == 4 and all(
            c % 4 == 0 for c in reference.expression.used_coefficients()
        ))
        word_ok[group] = word_ok.get(group, True) and aligned
    element_size = {}
    for group, ok in word_ok.items():
        ok = ok and group_lo[group] % 4 == 0
        ok = ok and all(
            (ref.expression.const - group_lo[group]) % 4 == 0
            for ref in references if group_of[id(ref)] == group
        )
        element_size[group] = 4 if ok else 1
    return _ReplayLayout(group_of, group_lo, group_hi, element_size)


def _index_terms(reference, element_size: int, loops) -> list[str]:
    """``coefficient*iterator`` terms for the given subset of loops."""
    coefficients = reference.expression.used_coefficients()
    names_inner_first = [
        loop.name for loop in reversed(reference.effective_loops)
    ]
    wanted = {loop.name for loop in loops}
    terms = []
    for coefficient, name in zip(coefficients, names_inner_first):
        if name in wanted and coefficient:
            terms.append(f"{coefficient // element_size}*{name}")
    return terms


def _index_expr(reference, element_size: int, loops, extra: int = 0) -> str:
    terms = _index_terms(reference, element_size, loops)
    if extra:
        terms.append(str(extra))
    return " + ".join(terms) if terms else "0"


def _buffer_eligible(reference, candidate: BufferCandidate,
                     element_size: int) -> bool:
    """Whether the candidate's window can be emitted as a dense fill loop.

    Requires non-negative element-aligned coefficients, an inner window
    that is dense in elements (its span equals the footprint — so
    ``buf[k] = A[base + k]`` covers exactly the touched addresses), and a
    profile that matches the rectangular replay nest: constant trips,
    every iteration executing exactly one access, and one fill per outer
    iteration. Guarded or variable-trip references are rejected — the
    replay would execute more accesses than were profiled and
    ``predicted_drop`` would be wrong for them.
    """
    loops = reference.effective_loops
    if not all(loop.has_constant_trip for loop in loops):
        return False
    iterations = 1
    for loop in loops:
        iterations *= max(1, loop.max_trip)
    if reference.exec_count != iterations:
        return False
    if reference.reads + reference.writes != reference.exec_count:
        return False
    level = candidate.level.level
    fills = 1
    for loop in loops[: len(loops) - level]:
        fills *= max(1, loop.max_trip)
    if candidate.level.fills != fills:
        return False
    coefficients = reference.expression.used_coefficients()
    if any(c < 0 or c % element_size for c in coefficients):
        return False
    inner = coefficients[:level]
    trips = [max(1, loop.max_trip) for loop in reversed(loops)][:level]
    span = sum((c // element_size) * (t - 1) for c, t in zip(inner, trips))
    return span + 1 == candidate.level.footprint_words


def replay_buffer_eligible(reference, candidate: BufferCandidate) -> bool:
    """Eligibility of one reference in isolation (its own array group)."""
    layout = _replay_layout([reference])
    return _buffer_eligible(reference, candidate, layout.es(reference))


def _emit_access(reference, array: str, index: str) -> str:
    if reference.writes and reference.reads:
        return f"{array}[{index}] = {array}[{index}] + 1;"
    if reference.writes:
        return f"{array}[{index}] = s;"
    return f"s = s + {array}[{index}];"


def _emit_copy_loop(lines, depth, dst, dst_index, src, src_index,
                    words) -> None:
    lines.append(
        _INDENT * depth
        + f"for (k = 0; k < {words}; k = k + 1) {{ "
          f"{dst}[{dst_index}] = {src}[{src_index}]; }}"
    )


def _emit_reference(
    lines: list[str],
    reference,
    layout: _ReplayLayout,
    candidate: BufferCandidate | None,
    buffer: str | None,
    inline_fill: bool = True,
) -> None:
    """Emit one reference's loop nest (optionally through an SPM buffer).

    ``inline_fill`` places the fill/write-back loops at the candidate's
    split point inside this nest; shared buffers instead fill once before
    the first member nest (see :func:`emit_transformed_source`).
    """
    array = layout.array(reference)
    element_size = layout.es(reference)
    offset = layout.offset(reference)
    loops = reference.effective_loops
    split = candidate.level.level if candidate else 0
    outer = loops[: len(loops) - split]
    inner = loops[len(loops) - split:]

    depth = 1
    for loop in outer:
        lines.append(
            _INDENT * depth
            + f"for ({loop.name} = 0; {loop.name} < {loop.max_trip}; "
              f"{loop.name} = {loop.name} + 1) {{"
        )
        depth += 1
    if candidate is not None and inline_fill:
        base = _index_expr(reference, element_size, outer, offset)
        _emit_copy_loop(lines, depth, buffer, "k", array, f"{base} + k",
                        candidate.level.footprint_words)
    for loop in inner:
        lines.append(
            _INDENT * depth
            + f"for ({loop.name} = 0; {loop.name} < {loop.max_trip}; "
              f"{loop.name} = {loop.name} + 1) {{"
        )
        depth += 1
    if candidate is not None:
        lines.append(
            _INDENT * depth
            + _emit_access(reference, buffer,
                           _index_expr(reference, element_size, inner))
        )
    else:
        lines.append(
            _INDENT * depth
            + _emit_access(reference, array,
                           _index_expr(reference, element_size, loops,
                                       offset))
        )
    for _ in inner:
        depth -= 1
        lines.append(_INDENT * depth + "}")
    if candidate is not None and inline_fill and reference.writes:
        base = _index_expr(reference, element_size, outer, offset)
        _emit_copy_loop(lines, depth, array, f"{base} + k", buffer, "k",
                        candidate.level.footprint_words)
    for _ in outer:
        depth -= 1
        lines.append(_INDENT * depth + "}")


def _emit_program(model, plans: list[BufferPlan]) -> ReplayProgram:
    references = [ref for ref in model.references if ref.effective_loops]
    layout = _replay_layout(references)

    decls: list[str] = []
    seen_groups: set[int] = set()
    iterator_names: list[str] = []
    for reference in references:
        group = layout.group_of[id(reference)]
        if group not in seen_groups:
            seen_groups.add(group)
            element_size = layout.element_size[group]
            ctype = "int" if element_size == 4 else "char"
            length = -(-(layout.group_hi[group] - layout.group_lo[group])
                       // element_size)
            decls.append(
                f"{ctype} G{group}[{max(1, length)}];  "
                f"/* array group {group} */"
            )
        for loop in reference.effective_loops:
            if loop.name not in iterator_names:
                iterator_names.append(loop.name)

    body: list[str] = [_INDENT + "int s = 0;", _INDENT + "int k = 0;"]
    for name in iterator_names:
        body.append(_INDENT + f"int {name} = 0;")

    member_plan: dict[int, tuple[BufferPlan, BufferCandidate]] = {}
    fill_before: dict[int, list[BufferPlan]] = {}
    writeback_after: dict[int, list[BufferPlan]] = {}
    for plan in plans:
        element_size = layout.es(plan.members[0][1].reference)
        ctype = "int" if element_size == 4 else "char"
        words = plan.members[0][1].level.footprint_words
        body.append(
            _INDENT + f"{ctype} {plan.buffer}[{words}];  /* SPM (stack) */"
        )
        for index, candidate in plan.members:
            member_plan[index] = (plan, candidate)
        if len(plan.members) > 1:
            # Shared buffer: fill before the first member nest, write
            # back (if any member writes) after the last one.
            first = min(index for index, _candidate in plan.members)
            last = max(index for index, _candidate in plan.members)
            fill_before.setdefault(first, []).append(plan)
            if plan.writeback_words:
                writeback_after.setdefault(last, []).append(plan)

    for index, reference in enumerate(references):
        plan_entry = member_plan.get(index)
        if plan_entry is None:
            _emit_reference(body, reference, layout, None, None)
            continue
        plan, candidate = plan_entry
        shared = len(plan.members) > 1
        for fill_plan in fill_before.get(index, ()):
            fill_candidate = fill_plan.members[0][1]
            fill_reference = fill_candidate.reference
            base = layout.offset(fill_reference)
            _emit_copy_loop(body, 1, fill_plan.buffer, "k",
                            layout.array(fill_reference), f"{base} + k",
                            fill_candidate.level.footprint_words)
        _emit_reference(body, reference, layout, candidate, plan.buffer,
                        inline_fill=not shared)
        for wb_plan in writeback_after.get(index, ()):
            wb_candidate = wb_plan.members[0][1]
            wb_reference = wb_candidate.reference
            base = layout.offset(wb_reference)
            _emit_copy_loop(body, 1, layout.array(wb_reference),
                            f"{base} + k", wb_plan.buffer, "k",
                            wb_candidate.level.footprint_words)

    lines = [
        "/* machine-generated replay of a FORAY model: one global array",
        "   per array group; SPM buffers live on the stack, so accesses",
        "   in the global address range == main-memory traffic. */",
        *decls,
        "int main() {",
        *body,
        _INDENT + "return s % 128;",
        "}",
    ]
    return ReplayProgram("\n".join(lines) + "\n", tuple(plans))


def emit_replay_source(model) -> str:
    """Compilable MiniC replay of the model's access pattern (no SPM)."""
    return _emit_program(model, []).source


def emit_transformed_source(allocation: Allocation, model) -> ReplayProgram:
    """The replay program with the allocation's buffers applied.

    Only candidates with dense, non-negative windows are rewritten; a
    shared node is rewritten only when it spans its members' whole nests
    (single fill) and its members cover the entire array group, so the
    fill-once/write-back-once schedule is sound. Everything else replays
    untouched; ``buffered`` lists exactly what was rewritten so callers
    can compute the predicted traffic delta for it.
    """
    references = [ref for ref in model.references if ref.effective_loops]
    layout = _replay_layout(references)
    index_of = {id(ref): i for i, ref in enumerate(references)}
    group_members: dict[int, set[int]] = {}
    for reference in references:
        group_members.setdefault(
            layout.group_of[id(reference)], set()
        ).add(id(reference))

    if allocation.nodes:
        node_members = [
            (node.members,
             node.fill_words,
             node.writeback_words)
            for node in allocation.nodes
        ]
    else:  # flat allocation: every candidate is its own singleton node
        node_members = []
        for candidate in allocation.selected:
            fill = candidate.level.fills * candidate.level.footprint_words
            writeback = fill if candidate.reference.writes else 0
            node_members.append(((candidate,), fill, writeback))

    plans: list[BufferPlan] = []
    for members, fill_words, writeback_words in node_members:
        entries = []
        ok = True
        for candidate in members:
            reference = candidate.reference
            index = index_of.get(id(reference))
            if index is None or not _buffer_eligible(
                reference, candidate, layout.es(reference)
            ):
                ok = False
                break
            entries.append((index, candidate))
        if not ok:
            continue
        if len(entries) > 1:
            # Shared schedule: one fill for the whole run, members must
            # own their entire array group (no outside reader/writer).
            full_depth = all(
                candidate.level.level == len(
                    candidate.reference.effective_loops)
                and candidate.level.fills == 1
                for _index, candidate in entries
            )
            group = layout.group_of[id(entries[0][1].reference)]
            covered = {id(c.reference) for _i, c in entries}
            if not full_depth or group_members[group] != covered:
                continue
        plans.append(
            BufferPlan(f"B{len(plans)}", tuple(entries), fill_words,
                       writeback_words)
        )
    return _emit_program(model, plans)
